#!/usr/bin/env python3
"""CI perf-trajectory gate over ``BENCH_history.jsonl``.

Every standalone bench appends one record per run (see
``benchmarks/bench_history.py``). This gate compares the **latest**
record of each (bench, mode) group against the **trailing median** of
the prior records in that group and fails (exit 1) when the throughput
metric dropped by more than ``--threshold`` (default 20 %):

    python tools/check_bench_regression.py --history BENCH_history.jsonl

Groups with fewer than ``--min-history`` prior records pass with a note
— a fresh repo must not fail its own gate. By default only records from
the same host as the latest entry are compared (CI runners vs laptops
are not comparable); ``--any-host`` lifts that.

``--smoke`` self-tests the gate against synthetic trajectories (a flat
one must pass, a 25 % drop must fail) — this is the CI leg that proves
the gate actually gates.
"""

from __future__ import annotations

import argparse
import json
import math
import statistics
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 0.20
DEFAULT_METRIC = "samples_per_sec"


def load_history(path: Path) -> list:
    """Parse the JSONL trajectory, skipping torn/foreign lines loudly."""
    entries = []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            print(f"note: {path}:{lineno}: unparseable line skipped")
            continue
        if isinstance(rec, dict) and "bench" in rec and "metrics" in rec:
            entries.append(rec)
    return entries


def check_group(
    entries: list,
    *,
    metric: str,
    threshold: float,
    window: int,
    min_history: int,
    same_host: bool,
) -> tuple:
    """Gate one (bench, mode) group → (ok, message).

    ``entries`` are in file (chronological) order; the last one is the
    run under test.
    """
    latest = entries[-1]
    label = f"{latest['bench']}/{latest['mode']}"
    value = latest["metrics"].get(metric)
    if value is None:
        return True, f"{label}: no {metric!r} metric, skipped"
    if not math.isfinite(float(value)):
        return False, f"{label}: latest {metric} is not finite ({value!r})"

    prior = entries[:-1]
    if same_host:
        prior = [e for e in prior if e.get("host") == latest.get("host")]
    prior_values = [
        float(e["metrics"][metric])
        for e in prior
        if metric in e["metrics"] and math.isfinite(float(e["metrics"][metric]))
    ][-window:]
    if len(prior_values) < min_history:
        return True, (
            f"{label}: only {len(prior_values)} comparable prior run(s) "
            f"(< {min_history}), trajectory too short to gate — pass"
        )

    baseline = statistics.median(prior_values)
    if baseline <= 0:
        return True, f"{label}: non-positive baseline {baseline}, skipped"
    drop = 1.0 - float(value) / baseline
    verdict = (
        f"{label}: {metric} {float(value):.1f} vs trailing median "
        f"{baseline:.1f} ({-drop:+.1%}, n={len(prior_values)})"
    )
    if drop > threshold:
        return False, f"REGRESSION {verdict} exceeds -{threshold:.0%}"
    return True, verdict


def run_gate(entries: list, args) -> int:
    groups: dict = {}
    for rec in entries:
        groups.setdefault((rec["bench"], rec.get("mode", "")), []).append(rec)
    if args.bench:
        groups = {k: v for k, v in groups.items() if k[0] == args.bench}
        if not groups:
            print(f"note: no history for bench {args.bench!r} — pass")
            return 0
    failures = 0
    for key in sorted(groups):
        ok, message = check_group(
            groups[key],
            metric=args.metric,
            threshold=args.threshold,
            window=args.window,
            min_history=args.min_history,
            same_host=not args.any_host,
        )
        print(("ok:   " if ok else "FAIL: ") + message)
        failures += 0 if ok else 1
    return 1 if failures else 0


def smoke() -> int:
    """Prove the gate gates: flat trajectory passes, 25 % drop fails."""

    def entry(value: float, host: str = "ci") -> dict:
        return {
            "bench": "fleet",
            "mode": "smoke",
            "host": host,
            "git_sha": "0000000",
            "ts": 0.0,
            "metrics": {DEFAULT_METRIC: value},
        }

    flat = [entry(v) for v in (1000.0, 1020.0, 990.0, 1010.0, 1005.0)]
    dropped = flat[:-1] + [entry(750.0)]  # 25 % below the ~1000 median
    other_host = flat[:-1] + [entry(750.0, host="laptop")]

    checks = [
        ("flat trajectory passes", flat, True, False),
        ("25% drop fails", dropped, False, False),
        ("improvement passes", flat[:-1] + [entry(1400.0)], True, False),
        ("short history passes", flat[:2], True, False),
        ("cross-host drop ignored by default", other_host, True, False),
        ("cross-host drop caught with --any-host", other_host, False, True),
    ]
    failures = 0
    for name, entries, expect_ok, any_host in checks:
        ok, message = check_group(
            entries,
            metric=DEFAULT_METRIC,
            threshold=DEFAULT_THRESHOLD,
            window=10,
            min_history=3,
            same_host=not any_host,
        )
        verdict = "ok" if ok == expect_ok else "SMOKE-FAIL"
        print(f"{verdict}: {name} -> {message}")
        failures += 0 if ok == expect_ok else 1
    if failures:
        print(f"FAIL: {failures} smoke check(s) contradicted the gate contract.")
        return 1
    print("OK: the regression gate fails on a 25% drop and passes a flat trajectory.")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--history", default="BENCH_history.jsonl",
                        help="trajectory file (default: ./BENCH_history.jsonl)")
    parser.add_argument("--metric", default=DEFAULT_METRIC,
                        help=f"throughput metric to gate (default {DEFAULT_METRIC})")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="max allowed relative drop vs the trailing "
                             "median (default 0.20)")
    parser.add_argument("--window", type=int, default=10,
                        help="how many prior runs feed the median (default 10)")
    parser.add_argument("--min-history", type=int, default=3,
                        help="prior runs required before gating (default 3)")
    parser.add_argument("--bench", default=None,
                        help="gate only this bench name (default: all)")
    parser.add_argument("--any-host", action="store_true",
                        help="compare across hosts (default: same host as "
                             "the latest entry only)")
    parser.add_argument("--smoke", action="store_true",
                        help="self-test the gate on synthetic trajectories")
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke()

    path = Path(args.history)
    if not path.exists():
        print(f"note: no history at {path} — nothing to gate, pass")
        return 0
    entries = load_history(path)
    if not entries:
        print(f"note: {path} holds no parseable records — pass")
        return 0
    return run_gate(entries, args)


if __name__ == "__main__":
    sys.exit(main())
