#!/usr/bin/env python
"""Import-cycle / layering check for the streaming engine refactor.

Rules (see ``docs/architecture.md``):

1. ``repro.core`` must not import ``repro.guard``, ``repro.resilience``,
   or ``repro.telemetry`` **at any level** (module scope or inside a
   function) — those services plug in *through* the engine's interceptor
   stack or the ``repro.utils.hooks`` indirection, never the other way
   around. ``if TYPE_CHECKING:`` blocks are exempt (never executed, so
   they create no runtime coupling).
2. ``repro.core`` must not import ``repro.engine`` **at module level**
   (lazy imports inside ``run``/``resume`` are the sanctioned exception —
   otherwise ``core → engine → core`` would be a load-time cycle).
3. ``repro.engine`` modules must not import ``repro.guard``,
   ``repro.resilience``, or ``repro.telemetry`` at module level (lazy,
   call-time imports are fine: the engine stays importable on a stripped
   deployment where those subsystems are absent).

Exits non-zero listing every violation as ``file:line: message``.
Run from the repo root::

    python tools/check_layering.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

SERVICES = ("guard", "resilience", "telemetry")


def _imported_packages(node: ast.AST, module_path: Path) -> list[str]:
    """Top-level ``repro.*`` subpackage names imported by this node."""
    out = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == "repro" and len(parts) > 1:
                out.append(parts[1])
    elif isinstance(node, ast.ImportFrom):
        if node.level == 0:
            parts = (node.module or "").split(".")
            if parts[0] == "repro":
                if len(parts) > 1:
                    out.append(parts[1])
                else:
                    out.extend(a.name for a in node.names)
        else:
            # Relative import: resolve against the module's package depth.
            rel = module_path.relative_to(SRC)
            package = list(rel.parts[:-1])  # drop the filename
            base = package[: len(package) - (node.level - 1)]
            parts = (node.module or "").split(".") if node.module else []
            full = base + [p for p in parts if p]
            if full:
                out.append(full[0])
            else:
                out.extend(a.name for a in node.names)
    return out


def _is_type_checking_if(node: ast.AST) -> bool:
    """``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:`` guard?"""
    if not isinstance(node, ast.If):
        return False
    test = node.test
    return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
        isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
    )


def _module_level(tree: ast.Module):
    """Import nodes executed at import time (module scope, incl. try/if)."""
    stack = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
        elif isinstance(node, (ast.If, ast.Try, ast.With)):
            if _is_type_checking_if(node):
                continue
            for child in ast.iter_child_nodes(node):
                stack.append(child)


def _type_checking_imports(tree: ast.Module) -> set[int]:
    """ids of import nodes living under an ``if TYPE_CHECKING:`` guard."""
    out: set[int] = set()
    for node in ast.walk(tree):
        if _is_type_checking_if(node):
            for child in ast.walk(node):
                if isinstance(child, (ast.Import, ast.ImportFrom)):
                    out.add(id(child))
    return out


def check() -> list[str]:
    errors: list[str] = []

    def scan(package: str, *, banned_everywhere=(), banned_module_level=()):
        for path in sorted((SRC / package).rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            module_level_nodes = set(id(n) for n in _module_level(tree))
            type_only = _type_checking_imports(tree)
            for node in ast.walk(tree):
                if not isinstance(node, (ast.Import, ast.ImportFrom)):
                    continue
                if id(node) in type_only:
                    continue
                rel = path.relative_to(REPO)
                for pkg in _imported_packages(node, path):
                    if pkg in banned_everywhere:
                        errors.append(
                            f"{rel}:{node.lineno}: repro.{package} must not "
                            f"import repro.{pkg} (any level)"
                        )
                    elif pkg in banned_module_level and id(node) in module_level_nodes:
                        errors.append(
                            f"{rel}:{node.lineno}: repro.{package} must not "
                            f"import repro.{pkg} at module level"
                        )
        return errors

    scan("core", banned_everywhere=SERVICES, banned_module_level=("engine",))
    scan("engine", banned_module_level=SERVICES)
    return errors


def main() -> int:
    errors = check()
    if errors:
        print(f"layering check FAILED ({len(errors)} violation(s)):")
        for err in errors:
            print(f"  {err}")
        return 1
    print("layering check OK: core is service-free, engine imports lazily.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
