"""Unit tests for the op-count cost model (Table 6 structure)."""

from __future__ import annotations

import pytest

from repro.device import EXP_FLOPS, OpCount, StageCostModel
from repro.utils.exceptions import ConfigurationError


class TestOpCount:
    def test_addition(self):
        a = OpCount(macs=10, adds=5)
        b = OpCount(macs=1, cmps=2)
        c = a + b
        assert c.macs == 11 and c.adds == 5 and c.cmps == 2

    def test_scaled(self):
        a = OpCount(macs=3, divs=2).scaled(10)
        assert a.macs == 30 and a.divs == 20

    def test_flop_weights(self):
        assert OpCount(macs=1).flops == 2.0
        assert OpCount(adds=1).flops == 1.0
        assert OpCount(divs=1).flops == 4.0
        assert OpCount(exps=1).flops == EXP_FLOPS
        assert OpCount(moves=4).flops == 1.0

    def test_empty_is_zero(self):
        assert OpCount().flops == 0.0


class TestStageCostModel:
    @pytest.fixture
    def paper_geometry(self):
        """Pico demo geometry: C=2, D=511, H=22."""
        return StageCostModel(2, 511, 22)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            StageCostModel(0, 511, 22)

    def test_prediction_scales_with_instances(self):
        one = StageCostModel(1, 511, 22).label_prediction().flops
        two = StageCostModel(2, 511, 22).label_prediction().flops
        assert two == pytest.approx(2 * one, rel=0.01)

    def test_prediction_dominated_by_matmuls(self, paper_geometry):
        ops = paper_geometry.label_prediction()
        assert ops.macs == 2 * (511 * 22 + 22 * 511)

    def test_distance_linear_in_dims(self):
        lo = StageCostModel(2, 100, 22).distance_computation().flops
        hi = StageCostModel(2, 200, 22).distance_computation().flops
        assert hi == pytest.approx(2 * lo, rel=0.05)

    def test_table6_row_ordering(self, paper_geometry):
        """The paper's qualitative cost ordering must hold structurally:
        retrain-with-prediction > prediction > retrain-without >
        distance/update/init (cheap coordinate ops)."""
        rows = {k: v.flops for k, v in paper_geometry.table6_rows().items()}
        pred = rows["Label prediction"]
        assert rows["Model retraining with label prediction"] > pred
        assert pred > rows["Model retraining without label prediction"]
        assert pred > 10 * rows["Distance computation"]
        assert pred > 10 * rows["Label coordinates update"]
        assert pred > 10 * rows["Label coordinates initialization"]

    def test_retrain_with_equals_pred_plus_cached_update(self, paper_geometry):
        rows = paper_geometry.table6_rows()
        expected = (
            paper_geometry.label_prediction().flops
            + paper_geometry.oselm_train_cached().flops
        )
        assert rows["Model retraining with label prediction"].flops == pytest.approx(expected)

    def test_detection_overhead_below_prediction(self, paper_geometry):
        """Paper §5.4: 'the additional computation time for the concept
        drift detection is less than the label prediction time'."""
        rows = paper_geometry.table6_rows()
        detection_extra = (
            rows["Distance computation"].flops
            + rows["Label coordinates update"].flops
            + rows["Label coordinates initialization"].flops
        )
        assert detection_extra < rows["Label prediction"].flops

    def test_init_coord_quadratic_in_labels(self):
        c2 = StageCostModel(2, 100, 8).init_coord().flops
        c4 = StageCostModel(4, 100, 8).init_coord().flops
        # pairs: C=2 -> 1, C=4 -> 6; candidate loop adds another factor C.
        assert c4 > 5 * c2

    def test_all_rows_present(self, paper_geometry):
        rows = paper_geometry.table6_rows()
        assert set(rows) == {
            "Label prediction",
            "Distance computation",
            "Model retraining without label prediction",
            "Model retraining with label prediction",
            "Label coordinates initialization",
            "Label coordinates update",
        }
