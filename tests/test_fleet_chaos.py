"""Chaos-proven fleet recovery: golden byte-identity under real faults.

The self-healing claim is end-to-end: SIGKILL a shard worker mid-stream
(or wedge it, or corrupt a spool checkpoint on disk) and the recovered
fleet's records must be **byte-for-byte identical** to the same specs
running alone — the fault is invisible in the output, not merely
survived. The kill matrix covers every registered pipeline family with
the guard layer on and off, at a *seeded* injection point so failures
replay exactly.

Under ``pytest --smoke`` the matrix shrinks to the proposed pipeline
(guard on/off) — the CI leg; the full matrix covers all five families.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.engine import ExperimentSpec, build_experiment
from repro.fleet import (
    ChaosEvent,
    ShardedFleetManager,
    SupervisorConfig,
    make_chaos_schedule,
    run_fleet_soak,
)
from repro.utils.exceptions import ConfigurationError

#: every pipeline family the registry knows, with small fast kwargs
PIPELINES = {
    "proposed": {"window_size": 60},
    "baseline": {},
    "onlad": {"forgetting_factor": 0.95},
    "quanttree": {"batch_size": 100, "n_bins": 8},
    "spll": {"batch_size": 100},
}

N_TEST = 240
FEED = 60
N_DEVICES = 4


def _spec(pipeline: str, seed: int, guard_policy=None) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"{pipeline}-{seed}",
        pipeline=pipeline,
        dataset="blobs",
        seed=seed,
        model_seed=5,
        pipeline_kwargs=PIPELINES[pipeline],
        dataset_kwargs={"n_test": N_TEST, "drift_at": 150},
        guard_policy=guard_policy,
    )


def _assert_identical(a, b):
    assert len(a) == len(b)
    assert a == b
    sa = np.array([r.anomaly_score for r in a], dtype=np.float64)
    sb = np.array([r.anomaly_score for r in b], dtype=np.float64)
    assert sa.tobytes() == sb.tobytes()


def _run_with_kill(specs, tmp_path, *, kill_at, kill_shard=0, seed=0):
    """Interleaved replay that SIGKILLs a shard worker at feed ``kill_at``."""
    streams = {dev: build_experiment(spec).test for dev, spec in specs.items()}
    fm = ShardedFleetManager(
        capacity=2,
        n_shards=2,
        spool_dir=tmp_path / "spool",
        supervisor=SupervisorConfig(request_timeout=30.0, seed=seed,
                                    checkpoint_every=8),
    )
    try:
        for dev, spec in specs.items():
            fm.add_device(dev, spec)
        feed = 0
        for start in range(0, N_TEST, FEED):
            for dev in specs:
                if feed == kill_at:
                    os.kill(fm.worker_pid(kill_shard), signal.SIGKILL)
                s = streams[dev]
                fm.submit(dev, s.X[start:start + FEED], s.y[start:start + FEED])
                feed += 1
        per_device = fm.finish_all()
        return per_device, fm.supervisor
    finally:
        fm.close()


def pytest_generate_tests(metafunc):
    """Shrink the kill matrix under ``--smoke`` (the CI leg)."""
    if "pipeline" in metafunc.fixturenames:
        smoke = metafunc.config.getoption("--smoke")
        metafunc.parametrize(
            "pipeline", ["proposed"] if smoke else sorted(PIPELINES)
        )


class TestKillMatrix:
    @pytest.mark.parametrize("guard_policy", [None, "impute_last_good"])
    def test_sigkilled_shard_recovers_byte_identically(
        self, pipeline, guard_policy, tmp_path
    ):
        cell = sorted(PIPELINES).index(pipeline) * 2 + int(guard_policy is not None)
        rng = np.random.default_rng((cell, 0xC4405))
        n_feeds = (N_TEST // FEED) * N_DEVICES
        kill_at = int(rng.integers(2, n_feeds - 2))  # seeded injection point
        specs = {
            f"dev{i}": _spec(pipeline, seed=60 + i, guard_policy=guard_policy)
            for i in range(N_DEVICES)
        }
        per_device, sup = _run_with_kill(
            specs, tmp_path, kill_at=kill_at, seed=cell
        )
        assert sup.respawns >= 1, "the SIGKILL was never noticed"
        assert not sup.quarantined
        assert sup.failed_recoveries == 0
        for dev, spec in specs.items():
            _assert_identical(build_experiment(spec).run(), per_device[dev])


class TestHangEscalation:
    def test_wedged_worker_is_escalated_and_recovered(self, tmp_path):
        specs = {f"dev{i}": _spec("proposed", seed=90 + i) for i in range(4)}
        streams = {dev: build_experiment(spec).test for dev, spec in specs.items()}
        fm = ShardedFleetManager(
            capacity=2, n_shards=2, spool_dir=tmp_path / "spool",
            supervisor=SupervisorConfig(request_timeout=0.5, seed=1),
        )
        try:
            for dev, spec in specs.items():
                fm.add_device(dev, spec)
            for dev in specs:
                s = streams[dev]
                fm.submit(dev, s.X[:FEED], s.y[:FEED])
            fm.inject_hang(0, 30.0)  # far beyond the 0.5 s deadline
            fm.drain()
            assert fm.supervisor.respawns >= 1
            for start in range(FEED, N_TEST, FEED):
                for dev in specs:
                    s = streams[dev]
                    fm.submit(dev, s.X[start:start + FEED], s.y[start:start + FEED])
            per_device = fm.finish_all()
            for dev, spec in specs.items():
                _assert_identical(build_experiment(spec).run(), per_device[dev])
        finally:
            fm.close()


class TestCorruptSpoolChaos:
    def test_corrupt_checkpoint_benches_only_the_victim(self, tmp_path):
        r = run_fleet_soak(
            10, 2, spool_dir=tmp_path / "spool", seed=5, n_test=N_TEST,
            feed_chunk=FEED, n_shards=2,
            supervise=SupervisorConfig(request_timeout=30.0, seed=5),
            chaos=[ChaosEvent(kind="corrupt", at_chunk=20, shard=0, pick=1)],
            verify=10,
        )
        assert len(r.quarantined) == 1, "the corrupted device was not benched"
        assert r.mismatches == []  # every surviving device byte-identical
        assert r.verified == 10 - len(r.quarantined)
        assert r.chaos_events[0]["kind"] == "corrupt"


class TestMixedChaosSoak:
    def test_generated_schedule_recovers_end_to_end(self, tmp_path):
        r = run_fleet_soak(
            12, 3, spool_dir=tmp_path / "spool", seed=11, n_test=N_TEST,
            feed_chunk=40, n_shards=2,
            supervise=SupervisorConfig(request_timeout=3.0, seed=11),
            chaos=3, verify=12,
        )
        kinds = {e["kind"] for e in r.chaos_events}
        assert kinds == {"kill", "hang", "corrupt"}
        assert r.respawns >= 2  # the kill and the hang both respawn
        assert r.failed_recoveries == 0
        assert r.mismatches == []


class TestChaosSchedule:
    def test_same_seed_same_schedule(self):
        a = make_chaos_schedule(100, 4, seed=9, n_events=5)
        b = make_chaos_schedule(100, 4, seed=9, n_events=5)
        assert a == b
        assert a != make_chaos_schedule(100, 4, seed=10, n_events=5)

    def test_events_land_in_the_middle_and_cycle_kinds(self):
        events = make_chaos_schedule(100, 4, seed=0, n_events=6)
        chunks = [e.at_chunk for e in events]
        assert chunks == sorted(chunks) and len(set(chunks)) == len(chunks)
        assert all(10 <= c < 90 for c in chunks)
        assert [e.kind for e in events] == [
            "kill", "hang", "corrupt", "kill", "hang", "corrupt"
        ]
        assert all(0 <= e.shard < 4 for e in events)

    def test_bad_kind_and_count_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos kind"):
            make_chaos_schedule(100, 2, kinds=("segfault",))
        with pytest.raises(ConfigurationError, match="n_events"):
            make_chaos_schedule(100, 2, n_events=0)

    def test_chaos_requires_supervision(self, tmp_path):
        with pytest.raises(ConfigurationError, match="supervis"):
            run_fleet_soak(
                4, 2, spool_dir=tmp_path / "spool", n_shards=2, chaos=1
            )
