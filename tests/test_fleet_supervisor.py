"""Self-healing fleet units: pool deadlines/escalation, supervisor policy,
and the FleetManager recovery surface (corrupt spools, replay, shedding).

The end-to-end chaos proofs live in ``test_fleet_chaos.py``; this module
pins each mechanism in isolation so a chaos failure bisects quickly.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.engine import ExperimentSpec, build_experiment
from repro.fleet import FleetManager, FleetSupervisor, JournalEntry, SupervisorConfig
from repro.guard.ladder import GuardLevel
from repro.metrics import ShardDiedError, ShardError, ShardPool, ShardTimeoutError
from repro.metrics.parallel import SHARD_RESTARTED
from repro.utils.exceptions import (
    ConfigurationError,
    DeviceQuarantinedError,
    FleetOverloadError,
)


# --------------------------------------------------------------------------
# ShardPool: per-request deadlines, death detection, restart escalation
# --------------------------------------------------------------------------


class _PoolHost:
    def __init__(self, shard_index):
        self.shard_index = shard_index

    def echo(self, x):
        return x

    def sleep(self, seconds):
        time.sleep(seconds)
        return seconds

    def wedge(self, seconds):
        """Ignore SIGTERM first, so only SIGKILL can stop the sleep."""
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        time.sleep(seconds)
        return seconds

    def close(self):
        pass


def _pool_host_factory(shard_index):
    return _PoolHost(shard_index)


class TestShardPoolDeadlines:
    def test_collect_timeout_raises_and_ticket_stays_outstanding(self):
        with ShardPool(1, _pool_host_factory) as pool:
            ticket = pool.submit(0, "sleep", 1.0)
            with pytest.raises(ShardTimeoutError, match="no reply"):
                pool.collect(ticket, timeout=0.1)
            # the worker finishes the sleep; the reply is still collectable
            assert pool.collect(ticket, timeout=5.0) == 1.0

    def test_default_request_timeout_applies_to_call(self):
        with ShardPool(1, _pool_host_factory, request_timeout=0.1) as pool:
            with pytest.raises(ShardTimeoutError):
                pool.call(0, "sleep", 1.0)
            pool.restart_shard(0)  # leave a responsive worker for close()

    def test_dead_worker_raises_shard_died(self):
        with ShardPool(1, _pool_host_factory) as pool:
            os.kill(pool.worker_pid(0), signal.SIGKILL)
            with pytest.raises(ShardDiedError):
                for _ in range(100):  # submit may buffer before EPIPE
                    pool.call(0, "echo", 1)
            # "terminated" can race SIGKILL reaping; both mean a fresh worker
            assert pool.restart_shard(0) in ("dead", "terminated")
            assert pool.call(0, "echo", 7) == 7


class TestShardPoolRestart:
    def test_restart_fails_outstanding_tickets_with_marker(self):
        with ShardPool(1, _pool_host_factory) as pool:
            slow = pool.submit(0, "sleep", 30.0)
            queued = pool.submit(0, "echo", 1)
            assert pool.restart_shard(0, grace=0.2) in ("terminated", "killed")
            for ticket in (slow, queued):
                with pytest.raises(ShardError, match=SHARD_RESTARTED):
                    pool.collect(ticket)
            assert pool.call(0, "echo", 2) == 2

    def test_sigterm_ignoring_worker_escalates_to_kill(self):
        with ShardPool(1, _pool_host_factory) as pool:
            pool.submit(0, "wedge", 30.0)
            time.sleep(0.3)  # let the worker install SIG_IGN and sleep
            assert pool.restart_shard(0, grace=0.2) == "killed"
            assert pool.call(0, "echo", 3) == 3

    def test_close_escalates_a_stuck_worker(self):
        pool = ShardPool(1, _pool_host_factory)
        pool.submit(0, "sleep", 30.0)
        t0 = time.perf_counter()
        pool.close(grace=0.2)
        assert time.perf_counter() - t0 < 10.0


# --------------------------------------------------------------------------
# FleetSupervisor: policy bookkeeping (no processes)
# --------------------------------------------------------------------------


def _supervisor(**overrides) -> FleetSupervisor:
    return FleetSupervisor(SupervisorConfig(**overrides), n_shards=2)


class TestDeterministicBackoff:
    def test_same_seed_same_jitter(self):
        a = _supervisor(seed=3)
        b = _supervisor(seed=3)
        a.open_incident(), b.open_incident()
        seq_a = [a.backoff_seconds(0, k) for k in range(5)]
        seq_b = [b.backoff_seconds(0, k) for k in range(5)]
        assert seq_a == seq_b

    def test_different_seed_different_jitter(self):
        a, b = _supervisor(seed=3), _supervisor(seed=4)
        a.open_incident(), b.open_incident()
        assert [a.backoff_seconds(0, k) for k in range(1, 5)] != [
            b.backoff_seconds(0, k) for k in range(1, 5)
        ]

    def test_attempt_zero_is_immediate_and_growth_is_capped(self):
        sup = _supervisor(backoff_base=0.1, backoff_max=0.4)
        sup.open_incident()
        assert sup.backoff_seconds(0, 0) == 0.0
        for attempt in range(1, 10):
            delay = sup.backoff_seconds(0, attempt)
            assert 0.0 < delay < 0.4 * 1.5

    def test_incident_index_varies_the_draw(self):
        sup = _supervisor(seed=3)
        sup.open_incident()
        first = sup.backoff_seconds(0, 1)
        sup.open_incident()
        assert sup.backoff_seconds(0, 1) != first


class TestStrikesAndQuarantine:
    def test_third_strike_quarantines(self):
        sup = _supervisor(strikes=3)
        assert sup.strike("dev0", "bad feed") is False
        assert sup.strike("dev0", "bad feed") is False
        assert sup.strike("dev0", "bad feed") is True
        assert "dev0" in sup.quarantined
        assert "3 strikes" in sup.quarantined["dev0"]

    def test_quarantined_device_is_gated(self):
        sup = _supervisor(strikes=1)
        sup.strike("dev0", "poison")
        with pytest.raises(DeviceQuarantinedError, match="dev0"):
            sup.gate("dev0")
        sup.gate("dev1")  # others unaffected

    def test_note_quarantined_is_idempotent(self):
        sup = _supervisor()
        sup.note_quarantined("dev0", "first reason")
        sup.note_quarantined("dev0", "second reason")
        assert sup.quarantined["dev0"] == "first reason"


class TestJournal:
    def _entry(self, dev="dev0", start=0):
        return JournalEntry(dev, np.zeros((4, 2)), np.zeros(4), start)

    def test_sync_due_at_checkpoint_every(self):
        sup = _supervisor(checkpoint_every=3)
        assert sup.journal(0, self._entry(start=0)) is False
        assert sup.journal(0, self._entry(start=4)) is False
        assert sup.journal(0, self._entry(start=8)) is True
        assert sup.journal_depth(0) == 3 and sup.journal_depth(1) == 0

    def test_truncate_drops_only_that_shard(self):
        sup = _supervisor()
        sup.journal(0, self._entry())
        sup.journal(1, self._entry("dev1"))
        sup.truncate(0)
        assert sup.journal_depth(0) == 0
        assert [e.device_id for e in sup.entries(1)] == ["dev1"]


class TestFleetLadder:
    def test_failed_recovery_trips_to_passthrough_and_rejects(self):
        sup = _supervisor()
        t = sup.note_recovery_failed(0, "unrecoverable")
        assert t is not None and t.to_level >= GuardLevel.PASSTHROUGH
        with pytest.raises(FleetOverloadError):
            sup.gate("dev0")
        assert sup.rejected_submits == 1

    def test_respawn_churn_escalates_to_sanitizing(self):
        sup = _supervisor(trip_faults=2, fault_window=100)
        sup.tick()
        assert sup.note_respawn(0, outcome="dead", attempt=0, replayed=0, seconds=0.1) is None
        t = sup.note_respawn(0, outcome="dead", attempt=0, replayed=5, seconds=0.1)
        assert t is not None and t.to_level == GuardLevel.SANITIZING
        assert sup.respawns == 2 and sup.replayed_samples == 5

    def test_queue_depth_breach_is_a_fault(self):
        sup = _supervisor(max_pending=10, trip_faults=1)
        assert sup.note_queue_depth(10) is None
        t = sup.note_queue_depth(11)
        assert t is not None and t.to_level == GuardLevel.SANITIZING

    def test_health_dict_reflects_state(self):
        sup = _supervisor()
        assert sup.health()["status"] == "ok"
        sup.note_recovery_failed(0, "gone")
        h = sup.health()
        assert h["status"] == "degraded"
        assert h["failed_recoveries"] == 1
        assert h["transitions"][0]["to"] in ("PASSTHROUGH", "FROZEN")

    def test_health_serves_ladder_health_provider(self):
        from repro.telemetry.httpd import ladder_health

        sup = _supervisor()
        body = ladder_health(sup)()
        assert body["status"] == "ok" and body["level_value"] == 0


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"request_timeout": 0.0},
            {"max_respawns": 0},
            {"strikes": 0},
            {"checkpoint_every": 0},
            {"shed_fraction": 0.0},
            {"shed_fraction": 1.5},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SupervisorConfig(**kwargs)


# --------------------------------------------------------------------------
# FleetManager recovery surface
# --------------------------------------------------------------------------


def _spec(seed: int) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"cell-{seed}",
        pipeline="proposed",
        dataset="blobs",
        seed=seed,
        model_seed=5,
        pipeline_kwargs={"window_size": 60},
        dataset_kwargs={"n_test": 240, "drift_at": 150},
    )


@pytest.fixture
def recovery_fleet(tmp_path):
    specs = {f"dev{i}": _spec(70 + i) for i in range(3)}
    streams = {dev: build_experiment(spec).test for dev, spec in specs.items()}
    fm = FleetManager(capacity=1, spool_dir=tmp_path / "spool")
    for dev, spec in specs.items():
        fm.add_device(dev, spec)
    yield fm, specs, streams
    fm.close()


def _feed(fm, streams, dev, start, stop):
    s = streams[dev]
    return fm.submit(dev, s.X[start:stop], s.y[start:stop])


class TestCorruptSpool:
    def test_corrupt_restore_quarantines_and_keeps_serving(self, recovery_fleet):
        from repro.resilience import flip_bit

        fm, specs, streams = recovery_fleet
        _feed(fm, streams, "dev0", 0, 60)
        _feed(fm, streams, "dev1", 0, 60)  # capacity 1: dev0 spooled
        spool = fm.spool_dir / "dev0.fleetck"
        flip_bit(spool, 64 * 8 + 3)  # payload bit, past the header
        with pytest.raises(DeviceQuarantinedError, match="dev0"):
            _feed(fm, streams, "dev0", 60, 120)
        assert fm.stats.corrupt_checkpoints == 1
        assert "dev0" in fm.quarantined
        assert fm.finish("dev0") == []
        # the rest of the fleet is untouched and still byte-identical
        _feed(fm, streams, "dev1", 60, 240)
        _assert_identical(build_experiment(specs["dev1"]).run(), fm.finish("dev1"))

    def test_quarantine_is_idempotent_and_counts_once(self, recovery_fleet):
        fm, _, streams = recovery_fleet
        _feed(fm, streams, "dev0", 0, 60)
        fm.quarantine("dev0", "manual")
        fm.quarantine("dev0", "again")
        assert fm.quarantined["dev0"] == "manual"
        assert fm.stats.quarantined == 1
        with pytest.raises(DeviceQuarantinedError):
            _feed(fm, streams, "dev0", 60, 120)


class TestCheckpointAndReplay:
    def test_checkpoint_resident_spools_without_evicting(self, recovery_fleet):
        fm, _, streams = recovery_fleet
        _feed(fm, streams, "dev0", 0, 60)
        assert fm.checkpoint_resident() == 1
        assert (fm.spool_dir / "dev0.fleetck").is_file()
        assert fm.resident == ["dev0"]  # still live, no restore needed
        restores = fm.stats.restores
        _feed(fm, streams, "dev0", 60, 120)
        assert fm.stats.restores == restores

    def test_replay_skips_what_the_checkpoint_covers(self, recovery_fleet):
        fm, _, streams = recovery_fleet
        _feed(fm, streams, "dev0", 0, 60)
        # fully covered chunk: nothing to re-feed
        s = streams["dev0"]
        assert fm.replay("dev0", s.X[0:60], s.y[0:60], 0) == 0
        # half-covered chunk: only the tail past position 60 is fed
        assert fm.replay("dev0", s.X[30:90], s.y[30:90], 30) == 30

    def test_replay_gap_quarantines_loudly(self, recovery_fleet):
        fm, _, streams = recovery_fleet
        _feed(fm, streams, "dev0", 0, 60)
        s = streams["dev0"]
        assert fm.replay("dev0", s.X[120:180], s.y[120:180], 120) == 0
        assert "replay gap" in fm.quarantined["dev0"]

    def test_replayed_device_stays_byte_identical(self, recovery_fleet):
        fm, specs, streams = recovery_fleet
        s = streams["dev0"]
        _feed(fm, streams, "dev0", 0, 60)
        fm.replay("dev0", s.X[30:120], s.y[30:120], 30)  # overlap replay
        _feed(fm, streams, "dev0", 120, 240)
        _assert_identical(build_experiment(specs["dev0"]).run(), fm.finish("dev0"))


class TestAttachSpoolAndShed:
    def test_fresh_manager_adopts_surviving_spools(self, recovery_fleet, tmp_path):
        fm, specs, streams = recovery_fleet
        _feed(fm, streams, "dev0", 0, 120)
        _feed(fm, streams, "dev1", 0, 60)  # evicts dev0 to its spool
        # simulate the worker dying: a *new* manager over the same spool dir
        fm2 = FleetManager(capacity=1, spool_dir=fm.spool_dir)
        fm2.add_device("dev0", specs["dev0"])
        assert fm2.attach_spool("dev0") is True
        _feed(fm2, streams, "dev0", 120, 240)
        _assert_identical(build_experiment(specs["dev0"]).run(), fm2.finish("dev0"))
        fm2.close()

    def test_attach_spool_without_file_starts_cold(self, recovery_fleet):
        fm, specs, _ = recovery_fleet
        fm2 = FleetManager(capacity=1, spool_dir=fm.spool_dir / "elsewhere")
        fm2.add_device("dev0", specs["dev0"])
        assert fm2.attach_spool("dev0") is False
        fm2.close()

    def test_shed_evicts_coldest_first(self, tmp_path):
        specs = {f"dev{i}": _spec(80 + i) for i in range(3)}
        streams = {dev: build_experiment(spec).test for dev, spec in specs.items()}
        fm = FleetManager(capacity=3, spool_dir=tmp_path / "spool")
        for dev, spec in specs.items():
            fm.add_device(dev, spec)
        for dev in specs:
            _feed(fm, streams, dev, 0, 60)
        assert fm.shed(2) == 2
        assert fm.resident == ["dev2"]  # dev0/dev1 were coldest
        assert fm.stats.shed_sessions == 2
        fm.close()

    def test_evict_device_targets_one_resident(self, recovery_fleet):
        fm, _, streams = recovery_fleet
        _feed(fm, streams, "dev0", 0, 60)
        assert fm.evict_device("dev0") is True
        assert fm.resident == []
        assert (fm.spool_dir / "dev0.fleetck").is_file()
        assert fm.evict_device("dev0") is False  # already spooled


def _assert_identical(a, b):
    assert len(a) == len(b)
    assert a == b
    sa = np.array([r.anomaly_score for r in a], dtype=np.float64)
    sb = np.array([r.anomaly_score for r in b], dtype=np.float64)
    assert sa.tobytes() == sb.tobytes()
