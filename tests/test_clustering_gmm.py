"""Unit tests for the EM-fitted Gaussian mixture model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import GaussianMixture
from repro.utils.exceptions import ConfigurationError, NotFittedError


@pytest.fixture
def two_gaussians(rng):
    a = rng.normal([0, 0], 0.5, size=(150, 2))
    b = rng.normal([6, 6], 0.8, size=(150, 2))
    return np.concatenate([a, b])


COV_TYPES = ["full", "tied", "diag", "spherical"]


class TestFit:
    @pytest.mark.parametrize("cov", COV_TYPES)
    def test_recovers_means(self, two_gaussians, cov):
        g = GaussianMixture(2, covariance_type=cov, seed=0).fit(two_gaussians)
        means = g.means_[np.argsort(g.means_[:, 0])]
        np.testing.assert_allclose(means[0], [0, 0], atol=0.3)
        np.testing.assert_allclose(means[1], [6, 6], atol=0.3)

    def test_weights_near_half(self, two_gaussians):
        g = GaussianMixture(2, seed=0).fit(two_gaussians)
        np.testing.assert_allclose(g.weights_, 0.5, atol=0.1)
        assert g.weights_.sum() == pytest.approx(1.0)

    def test_loglik_increases_with_components(self, two_gaussians):
        g1 = GaussianMixture(1, seed=0).fit(two_gaussians)
        g2 = GaussianMixture(2, seed=0).fit(two_gaussians)
        assert g2.score(two_gaussians) > g1.score(two_gaussians)

    def test_converged_flag(self, two_gaussians):
        g = GaussianMixture(2, seed=0, max_iter=200).fit(two_gaussians)
        assert g.converged_
        assert g.n_iter_ <= 200

    def test_single_component_matches_sample_stats(self, rng):
        X = rng.normal(3.0, 2.0, size=(400, 3))
        g = GaussianMixture(1, covariance_type="diag", seed=0).fit(X)
        np.testing.assert_allclose(g.means_[0], X.mean(axis=0), atol=0.05)
        np.testing.assert_allclose(g.covariances_[0], X.var(axis=0), rtol=0.2)

    def test_too_many_components(self):
        with pytest.raises(ConfigurationError):
            GaussianMixture(5).fit(np.ones((3, 2)))

    def test_unknown_covariance_type(self):
        with pytest.raises(ConfigurationError):
            GaussianMixture(2, covariance_type="banded")

    def test_reg_covar_keeps_degenerate_data_finite(self):
        X = np.zeros((50, 3))  # zero-variance data
        g = GaussianMixture(1, covariance_type="full", reg_covar=1e-4, seed=0).fit(X)
        assert np.isfinite(g.score(X))

    def test_tied_covariance_is_single_matrix(self, two_gaussians):
        g = GaussianMixture(2, covariance_type="tied", seed=0).fit(two_gaussians)
        assert g.covariances_.shape == (2, 2)


class TestInference:
    def test_predict_separates_blobs(self, two_gaussians):
        g = GaussianMixture(2, seed=0).fit(two_gaussians)
        labels = g.predict(two_gaussians)
        # First 150 from blob A, rest from blob B — one swap allowed.
        first, second = labels[:150], labels[150:]
        assert (first == first[0]).mean() > 0.97
        assert (second == second[0]).mean() > 0.97
        assert first[0] != second[0]

    def test_score_samples_higher_near_means(self, two_gaussians):
        g = GaussianMixture(2, seed=0).fit(two_gaussians)
        near = g.score_samples(np.array([[0.0, 0.0]]))
        far = g.score_samples(np.array([[20.0, 20.0]]))
        assert near[0] > far[0]

    def test_density_normalised_1d(self, rng):
        # Numerically integrate exp(score) over a grid — should be ~1.
        X = rng.normal(0, 1, size=(500, 1))
        g = GaussianMixture(2, seed=0).fit(X)
        grid = np.linspace(-8, 8, 4001).reshape(-1, 1)
        dens = np.exp(g.score_samples(grid))
        integral = np.trapezoid(dens.ravel(), grid.ravel())
        assert integral == pytest.approx(1.0, abs=0.02)

    def test_not_fitted(self):
        g = GaussianMixture(2)
        with pytest.raises(NotFittedError):
            g.predict(np.ones((2, 2)))
        with pytest.raises(NotFittedError):
            g.score_samples(np.ones((2, 2)))
        with pytest.raises(NotFittedError):
            g.sample(3)

    @pytest.mark.parametrize("cov", COV_TYPES)
    def test_sample_roundtrip(self, two_gaussians, cov, rng):
        g = GaussianMixture(2, covariance_type=cov, seed=0).fit(two_gaussians)
        S = g.sample(1000, rng)
        assert S.shape == (1000, 2)
        # Samples should score comparably to training data under the model.
        assert abs(g.score(S) - g.score(two_gaussians)) < 1.0
