"""Unit tests for the experiment runner and table formatting."""

from __future__ import annotations

import pytest

from repro.core import build_baseline, build_proposed
from repro.metrics import (
    MethodResult,
    compare_methods,
    evaluate_method,
    format_paper_comparison,
    format_table,
)
from repro.utils.exceptions import DataValidationError


class TestEvaluateMethod:
    def test_result_fields(self, train_stream, drift_stream):
        pipe = build_proposed(
            train_stream.X, train_stream.y, n_hidden=4,
            reconstruction_samples=60, window_size=20, seed=0,
        )
        res = evaluate_method(pipe, drift_stream)
        assert isinstance(res, MethodResult)
        assert res.name == "proposed"
        assert 0 <= res.accuracy <= 1
        assert res.wall_seconds > 0
        assert res.phase_tally.total == len(drift_stream)
        assert res.detector_nbytes > 0
        assert len(res.records) == len(drift_stream)

    def test_delay_against_ground_truth(self, train_stream, drift_stream):
        pipe = build_proposed(
            train_stream.X, train_stream.y, n_hidden=4,
            reconstruction_samples=60, window_size=20, seed=0,
        )
        res = evaluate_method(pipe, drift_stream)
        assert res.first_delay is not None and res.first_delay >= 0

    def test_accuracy_curve(self, train_stream, drift_stream):
        pipe = build_baseline(train_stream.X, train_stream.y, n_hidden=4, seed=0)
        res = evaluate_method(pipe, drift_stream)
        pos, acc = res.accuracy_curve(window=100)
        assert len(pos) == len(acc) == len(drift_stream) - 99
        assert acc.max() <= 1.0 and acc.min() >= 0.0

    def test_summary_row_keys(self, train_stream, drift_stream):
        pipe = build_baseline(train_stream.X, train_stream.y, n_hidden=4, seed=0)
        row = evaluate_method(pipe, drift_stream).summary_row()
        assert set(row) == {
            "method", "accuracy_pct", "delay", "false_positives",
            "wall_seconds", "detector_kb",
        }

    def test_empty_stream_rejected(self, train_stream):
        pipe = build_baseline(train_stream.X, train_stream.y, n_hidden=4, seed=0)
        with pytest.raises(DataValidationError):
            evaluate_method(pipe, train_stream.slice(0, 0))

    def test_name_override(self, train_stream, drift_stream):
        pipe = build_baseline(train_stream.X, train_stream.y, n_hidden=4, seed=0)
        assert evaluate_method(pipe, drift_stream.take(50), name="frozen").name == "frozen"


class TestCompareMethods:
    def test_runs_all_builders(self, train_stream, drift_stream):
        builders = {
            "baseline": lambda: build_baseline(
                train_stream.X, train_stream.y, n_hidden=4, seed=0
            ),
            "proposed": lambda: build_proposed(
                train_stream.X, train_stream.y, n_hidden=4,
                reconstruction_samples=60, window_size=20, seed=0,
            ),
        }
        results = compare_methods(builders, drift_stream)
        assert set(results) == {"baseline", "proposed"}
        assert results["proposed"].accuracy > results["baseline"].accuracy


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["method", "acc"], [["qt", 96.8], ["spll", 96.3]])
        lines = out.splitlines()
        assert "method" in lines[0] and "acc" in lines[0]
        assert "96.80" in out and "spll" in out

    def test_none_rendered_as_dash(self):
        out = format_table(["m", "delay"], [["baseline", None]])
        assert "-" in out.splitlines()[-1]

    def test_row_width_mismatch(self):
        with pytest.raises(DataValidationError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers(self):
        with pytest.raises(DataValidationError):
            format_table([], [])

    def test_title(self):
        out = format_table(["a"], [[1]], title="Table X")
        assert out.splitlines()[0] == "Table X"

    def test_paper_comparison(self):
        out = format_paper_comparison(
            "Table 4", {"proposed": 16.4}, {"proposed": 69.0, "spll": 1933.0}, unit="kB"
        )
        assert "reproduced (kB)" in out
        assert "16.40" in out and "1933.00" in out
        # Missing measured value renders as '-'.
        assert out.splitlines()[-1].count("-") >= 1
