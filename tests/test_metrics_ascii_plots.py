"""Unit tests for the terminal plotting helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.ascii_plots import ascii_scatter, hbar_chart, sparkline
from repro.utils.exceptions import ConfigurationError, DataValidationError


class TestSparkline:
    def test_monotone_series(self):
        s = sparkline(np.linspace(0, 1, 50), width=8)
        assert len(s) == 8
        assert s[0] == "▁" and s[-1] == "█"

    def test_constant_series_mid_block(self):
        s = sparkline([5.0, 5.0, 5.0], width=3)
        assert len(set(s)) == 1

    def test_pinned_scale(self):
        # With lo/hi pinned wide, a small series stays low.
        s = sparkline([0.1, 0.2], width=2, lo=0.0, hi=1.0)
        assert all(ch in "▁▂▃" for ch in s)

    def test_short_series_not_padded(self):
        assert len(sparkline([1.0, 2.0], width=50)) == 2

    def test_validation(self):
        with pytest.raises(DataValidationError):
            sparkline([])
        with pytest.raises(DataValidationError):
            sparkline([np.nan])
        with pytest.raises(ConfigurationError):
            sparkline([1.0], lo=2.0, hi=1.0)


class TestHBar:
    def test_proportional_bars(self):
        out = hbar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_labels_aligned(self):
        out = hbar_chart({"short": 1.0, "muchlonger": 2.0})
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_unit_suffix(self):
        out = hbar_chart({"x": 3.0}, unit="ms")
        assert "3ms" in out

    def test_zero_values_ok(self):
        out = hbar_chart({"x": 0.0, "y": 0.0})
        assert "#" not in out

    def test_validation(self):
        with pytest.raises(DataValidationError):
            hbar_chart({})
        with pytest.raises(DataValidationError):
            hbar_chart({"x": -1.0})


class TestAsciiScatter:
    def test_grid_dimensions(self):
        out = ascii_scatter({"*": np.array([[0.5, 0.5]])}, width=10, height=4)
        lines = out.splitlines()
        assert len(lines) == 6  # border + 4 rows + border
        assert all(len(row) == 12 for row in lines)

    def test_point_placement_corners(self):
        out = ascii_scatter(
            {"a": np.array([[0.0, 0.0]]), "b": np.array([[1.0, 1.0]])},
            width=10, height=4,
        )
        lines = out.splitlines()
        assert lines[-2][1] == "a"  # bottom-left
        assert lines[1][-2] == "b"  # top-right (clipped to last cell)

    def test_later_glyph_overdraws(self):
        pts = np.array([[0.5, 0.5]])
        out = ascii_scatter({"x": pts, "o": pts}, width=8, height=4)
        assert "o" in out and "x" not in out

    def test_out_of_bounds_clipped(self):
        out = ascii_scatter({"*": np.array([[5.0, -3.0]])}, width=8, height=4)
        assert "*" in out  # clipped onto the border cell, not dropped

    def test_custom_bounds(self):
        out = ascii_scatter(
            {"*": np.array([[50.0, 50.0]])},
            width=9, height=3, bounds=(0.0, 100.0, 0.0, 100.0),
        )
        assert out.splitlines()[2][5] == "*"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_scatter({"ab": np.array([[0.5, 0.5]])})
        with pytest.raises(ConfigurationError):
            ascii_scatter({"*": np.zeros((1, 2))}, bounds=(1.0, 0.0, 0.0, 1.0))
