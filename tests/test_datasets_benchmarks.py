"""Unit tests for the classic synthetic drift benchmarks (SEA etc.)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    make_hyperplane_stream,
    make_rbf_drift_stream,
    make_sea_stream,
)
from repro.utils.exceptions import ConfigurationError


class TestSEA:
    def test_shape_and_drifts(self):
        s = make_sea_stream(500, seed=0)
        assert s.X.shape == (2000, 3)
        assert s.drift_points == (500, 1000, 1500)

    def test_label_rule_per_block(self):
        s = make_sea_stream(400, thresholds=(8.0, 9.5), noise=0.0, seed=1)
        for k, theta in enumerate((8.0, 9.5)):
            sl = slice(k * 400, (k + 1) * 400)
            expected = (s.X[sl, 0] + s.X[sl, 1] <= theta).astype(int)
            np.testing.assert_array_equal(s.y[sl], expected)

    def test_feature_range(self):
        s = make_sea_stream(200, seed=0)
        assert s.X.min() >= 0.0 and s.X.max() <= 10.0

    def test_noise_flips_labels(self):
        clean = make_sea_stream(500, noise=0.0, seed=2)
        noisy = make_sea_stream(500, noise=0.3, seed=2)
        assert (clean.y != noisy.y).mean() == pytest.approx(0.3, abs=0.05)

    def test_third_feature_irrelevant(self):
        s = make_sea_stream(1000, noise=0.0, seed=3)
        # Labels determined entirely by f1+f2.
        expected = (s.X[:, 0] + s.X[:, 1] <= 8.0).astype(int)
        np.testing.assert_array_equal(s.y[:1000], expected[:1000])

    def test_empty_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            make_sea_stream(100, thresholds=())

    def test_single_block_no_drift(self):
        s = make_sea_stream(300, thresholds=(8.0,), seed=0)
        assert s.drift_points == ()


class TestHyperplane:
    def test_shape(self):
        s = make_hyperplane_stream(1500, 6, drift_start=700, seed=0)
        assert s.X.shape == (1500, 6)
        assert s.drift_points == (700,)

    def test_classes_roughly_balanced(self):
        s = make_hyperplane_stream(3000, drift_start=1500, seed=0)
        assert 0.35 < s.y.mean() < 0.65

    def test_boundary_is_stationary_before_drift(self):
        s = make_hyperplane_stream(
            3000, 6, drift_start=2999, rotation_per_step=0.0, seed=0
        )
        # With zero rotation the labels are a fixed linear rule; a simple
        # linear probe (least squares) should classify well.
        X, y = s.X - 0.5, 2.0 * s.y - 1.0
        w, *_ = np.linalg.lstsq(X, y, rcond=None)
        acc = ((X @ w > 0) == (y > 0)).mean()
        assert acc > 0.9

    def test_boundary_moves_after_drift(self):
        s = make_hyperplane_stream(
            6000, 6, drift_start=1000, rotation_per_step=5e-3,
            margin_noise=0.0, seed=0,
        )
        X, y = s.X - 0.5, s.y
        w, *_ = np.linalg.lstsq(X[:1000], 2.0 * y[:1000] - 1.0, rcond=None)
        acc_pre = ((X[:1000] @ w > 0) == (y[:1000] > 0)).mean()
        acc_post = ((X[5000:] @ w > 0) == (y[5000:] > 0)).mean()
        assert acc_pre > 0.95
        assert acc_post < acc_pre - 0.1

    def test_invalid_drift_start(self):
        with pytest.raises(ConfigurationError):
            make_hyperplane_stream(100, drift_start=500)


class TestRBFDrift:
    def test_shape(self):
        s = make_rbf_drift_stream(1000, 5, 4, drift_start=400, seed=0)
        assert s.X.shape == (1000, 5)
        assert s.drift_points == (400,)

    def test_two_classes(self):
        s = make_rbf_drift_stream(1000, 5, 4, drift_start=400, seed=0)
        assert set(np.unique(s.y)) == {0, 1}

    def test_prototypes_move_after_drift(self):
        s = make_rbf_drift_stream(
            6000, 4, 2, drift_start=1000, velocity=2e-3, spread=0.02, seed=0
        )
        pre = s.X[:1000].mean(axis=0)
        post = s.X[5000:].mean(axis=0)
        assert np.abs(pre - post).sum() > 0.2

    def test_stationary_before_drift(self):
        s = make_rbf_drift_stream(
            4000, 4, 2, drift_start=3999, velocity=2e-3, spread=0.02, seed=0
        )
        a = s.X[:1500].mean(axis=0)
        b = s.X[1500:3000].mean(axis=0)
        assert np.abs(a - b).sum() < 0.1

    def test_samples_bounded_near_box(self):
        s = make_rbf_drift_stream(3000, 4, 3, drift_start=100, velocity=5e-3, seed=0)
        assert s.X.min() > -1.0 and s.X.max() < 2.0
