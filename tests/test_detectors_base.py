"""Unit tests for detector base classes and the null detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors import NoDetection
from repro.detectors.base import BatchDriftDetector
from repro.utils.exceptions import NotFittedError


class TestNoDetection:
    def test_never_fires(self, rng):
        nd = NoDetection().fit_reference(rng.normal(size=(10, 3)))
        for x in rng.normal(size=(50, 3)) + 100:  # wildly shifted
            assert not nd.update_one(x)

    def test_detect_batch_false(self, rng):
        nd = NoDetection(batch_size=5).fit_reference(rng.normal(size=(10, 3)))
        assert not nd.detect_batch(rng.normal(size=(5, 3)) + 100)

    def test_zero_memory(self, rng):
        nd = NoDetection().fit_reference(rng.normal(size=(10, 3)))
        assert nd.state_nbytes() == 0

    def test_default_batch_size_one(self):
        assert NoDetection().batch_size == 1


class _ThresholdDetector(BatchDriftDetector):
    """Minimal concrete detector: statistic = batch mean, threshold = 1."""

    def _fit(self, X):
        self.ref_mean = X.mean()

    def _statistic(self, batch):
        return float(batch.mean() - self.ref_mean)

    def _threshold(self):
        return 1.0


class TestBatchBase:
    def test_buffering_protocol(self, rng):
        det = _ThresholdDetector(batch_size=4).fit_reference(np.zeros((10, 2)))
        assert not det.update_one(np.zeros(2))
        assert det.buffered_samples == 1
        for _ in range(2):
            det.update_one(np.zeros(2))
        assert det.buffered_samples == 3
        det.update_one(np.zeros(2))
        assert det.buffered_samples == 0
        assert det.n_tests == 1

    def test_detection_on_completing_sample(self):
        det = _ThresholdDetector(batch_size=2).fit_reference(np.zeros((10, 2)))
        assert not det.update_one(np.full(2, 5.0))
        assert det.update_one(np.full(2, 5.0))

    def test_reset_stream(self):
        det = _ThresholdDetector(batch_size=4).fit_reference(np.zeros((10, 2)))
        det.update_one(np.zeros(2))
        det.reset_stream()
        assert det.buffered_samples == 0

    def test_fit_clears_state(self):
        det = _ThresholdDetector(batch_size=2).fit_reference(np.zeros((10, 2)))
        det.update_one(np.zeros(2))
        det.fit_reference(np.ones((10, 2)))
        assert det.buffered_samples == 0 and det.n_tests == 0
        assert det.last_statistic is None

    def test_not_fitted(self):
        det = _ThresholdDetector(batch_size=2)
        with pytest.raises(NotFittedError):
            det.update_one(np.zeros(2))

    def test_statistic_recorded(self):
        det = _ThresholdDetector(batch_size=2).fit_reference(np.zeros((10, 2)))
        det.detect_batch(np.full((2, 2), 3.0))
        assert det.last_statistic == pytest.approx(3.0)
