"""Unit tests for DataStream and concatenation semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import DataStream, concatenate_streams
from repro.utils.exceptions import DataValidationError


def make(n=10, d=3, drifts=(), name="s", label=0):
    X = np.arange(n * d, dtype=float).reshape(n, d)
    y = np.full(n, label, dtype=np.int64)
    return DataStream(X, y, drift_points=drifts, name=name)


class TestConstruction:
    def test_basic_properties(self):
        s = make(n=8, d=4)
        assert len(s) == 8 and s.n_features == 4 and s.n_classes == 1

    def test_length_mismatch(self):
        with pytest.raises(DataValidationError):
            DataStream(np.ones((3, 2)), np.zeros(4, dtype=int))

    def test_drift_out_of_range(self):
        with pytest.raises(DataValidationError):
            make(n=5, drifts=(9,))

    def test_drift_points_sorted_deduped_order(self):
        s = make(n=10, drifts=(7, 3))
        assert s.drift_points == (3, 7)

    def test_immutability(self):
        s = make()
        with pytest.raises(ValueError):
            s.X[0, 0] = 99.0
        with pytest.raises(ValueError):
            s.y[0] = 1

    def test_caller_arrays_stay_writable(self):
        """Regression: freezing the stream must not freeze the caller's
        arrays — contiguous float64 input used to be frozen in place."""
        X = np.zeros((4, 3), dtype=np.float64)  # taken by reference pre-fix
        y = np.zeros(4, dtype=np.int64)
        s = DataStream(X, y)
        assert X.flags.writeable and y.flags.writeable
        X[0, 0] = 7.0  # caller keeps full ownership...
        assert s.X[0, 0] == 0.0  # ...and the stream is unaffected
        assert not s.X.flags.writeable and not s.y.flags.writeable

    def test_iteration_yields_pairs(self):
        s = make(n=3)
        pairs = list(s)
        assert len(pairs) == 3
        x, y = pairs[0]
        assert x.shape == (3,) and isinstance(y, int)

    def test_n_classes_from_max_label(self):
        s = DataStream(np.ones((4, 2)), np.array([0, 2, 1, 2]))
        assert s.n_classes == 3


class TestSlice:
    def test_basic(self):
        s = make(n=10, drifts=(5,))
        sub = s.slice(2, 8)
        assert len(sub) == 6
        assert sub.drift_points == (3,)

    def test_drift_outside_slice_dropped(self):
        s = make(n=10, drifts=(5,))
        assert s.slice(6, 10).drift_points == ()

    def test_default_stop(self):
        s = make(n=10)
        assert len(s.slice(4)) == 6

    def test_take(self):
        assert len(make(n=10).take(3)) == 3

    def test_slice_copies_data(self):
        s = make(n=5)
        sub = s.slice(0, 2)
        assert sub.X.base is None or not np.shares_memory(sub.X, s.X)

    def test_drift_at_stop_boundary_kept(self):
        # A drift annotation is legal anywhere in 0 <= d <= len, so a
        # drift sitting exactly at ``stop`` belongs to the sub-stream
        # (re-indexed to its end) — it used to be silently dropped.
        s = make(n=10, drifts=(5,))
        assert s.slice(2, 5).drift_points == (3,)

    def test_take_keeps_end_annotation(self):
        s = make(n=10, drifts=(6,))
        assert s.take(6).drift_points == (6,)
        assert s.take(10).drift_points == (6,)

    def test_drift_at_start_boundary_kept(self):
        s = make(n=10, drifts=(5,))
        assert s.slice(5, 10).drift_points == (0,)

    def test_boundary_drift_changes_fingerprint(self):
        # Same data, drift only at the stop boundary: the kept
        # annotation must show up in the slice's identity.
        s = make(n=10, drifts=(5,))
        plain = make(n=10, drifts=())
        assert s.slice(2, 5).fingerprint() != plain.slice(2, 5).fingerprint()


class TestTransforms:
    def test_with_noise_changes_values(self, rng):
        s = make(n=5)
        noisy = s.with_noise(0.1, rng)
        assert not np.allclose(noisy.X, s.X)
        assert noisy.drift_points == s.drift_points

    def test_shuffled_within_region_only(self, rng):
        s = make(n=10)
        shuffled = s.shuffled_within(2, 8, rng)
        np.testing.assert_array_equal(shuffled.X[:2], s.X[:2])
        np.testing.assert_array_equal(shuffled.X[8:], s.X[8:])
        # Region contents preserved as a multiset.
        np.testing.assert_array_equal(
            np.sort(shuffled.X[2:8], axis=0), np.sort(s.X[2:8], axis=0)
        )


class TestConcatenate:
    def test_boundary_marked(self):
        s = concatenate_streams([make(n=4), make(n=6)])
        assert s.drift_points == (4,)
        assert len(s) == 10

    def test_boundary_not_marked(self):
        s = concatenate_streams([make(n=4), make(n=6)], mark_boundaries=False)
        assert s.drift_points == ()

    def test_inner_drifts_reindexed(self):
        a = make(n=4, drifts=(2,))
        b = make(n=6, drifts=(3,))
        s = concatenate_streams([a, b], mark_boundaries=False)
        assert s.drift_points == (2, 7)

    def test_feature_mismatch(self):
        with pytest.raises(DataValidationError):
            concatenate_streams([make(d=3), make(d=4)])

    def test_empty_list(self):
        with pytest.raises(DataValidationError):
            concatenate_streams([])

    def test_three_parts(self):
        s = concatenate_streams([make(n=2), make(n=3), make(n=4)])
        assert s.drift_points == (2, 5)
        assert len(s) == 9
