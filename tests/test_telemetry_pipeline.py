"""Integration tests: the instrumented pipelines, detector, reconstructor,
and parallel runner against the acceptance criteria.

The key guarantees exercised here:

* event streams (ring buffer and JSONL) carry exactly the drift /
  reconstruction indices that ``pipeline.detections`` and the per-sample
  :class:`StepRecord` list report;
* instrumentation never changes results — records are identical with
  telemetry enabled and disabled;
* :class:`ParallelRunner` cache-hit/miss counters agree with the on-disk
  cache and the ``from_cache`` flags.
"""

from __future__ import annotations

import json

import pytest

from repro.core import build_proposed, build_quanttree_pipeline
from repro.metrics import ParallelRunner, make_grid
from repro.metrics.parallel import STREAM_FACTORIES
from repro.telemetry import JsonlSink, RingBufferSink, configure, get_telemetry

#: One blobs stream where the proposed pipeline detects one drift and
#: completes one 100-sample reconstruction well before the stream ends.
STREAM_KWARGS = {"seed": 3, "n_test": 900, "drift_at": 300}


def make_streams():
    return STREAM_FACTORIES["blobs"](**STREAM_KWARGS)


def make_proposed(train):
    return build_proposed(
        train.X, train.y, window_size=30, reconstruction_samples=100, seed=1
    )


@pytest.fixture
def ring():
    """Enable the default hub with a ring sink; restore no-op afterwards."""
    sink = RingBufferSink()
    configure(enabled=True, sinks=[sink], reset=True)
    yield sink
    configure(enabled=False, sinks=[], reset=True)


def indices(events, name):
    return [e.fields["index"] for e in events if e.name == name]


class TestProposedEventStream:
    def test_drift_events_match_detections_exactly(self, ring, tmp_path):
        """Acceptance: JSONL + ring event indices == pipeline.detections
        and the StepRecord reconstruction phases."""
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        get_telemetry().add_sink(sink)
        train, test = make_streams()
        pipe = make_proposed(train)
        records = pipe.run(test)
        sink.close()

        events = ring.events()
        assert pipe.detections == [456]  # regression pin for this config
        assert indices(events, "drift_detected") == pipe.detections
        # reconstruction edges derived from the records themselves
        started = [
            r.index
            for prev, r in zip([None, *records], records)
            if r.reconstructing and not (prev and prev.reconstructing)
        ]
        finished = [r.index for r in records if r.phase == "finish"]
        assert indices(events, "reconstruction_started") == started
        assert indices(events, "reconstruction_finished") == finished

        # the JSONL trace is the same event stream, line for line
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert len(lines) == len(events)
        for line, event in zip(lines, events):
            assert line["event"] == event.name
            assert line["seq"] == event.seq
        jsonl_drifts = [
            ln["index"] for ln in lines if ln["event"] == "drift_detected"
        ]
        assert jsonl_drifts == pipe.detections

    def test_chunked_and_per_sample_paths_emit_same_indices(self, ring):
        train, test = make_streams()
        chunked = make_proposed(train)
        chunked.run(test)
        by_chunk = {
            name: indices(ring.events(), name)
            for name in ("drift_detected", "reconstruction_started",
                         "reconstruction_finished")
        }
        ring.clear()
        configure(reset=True)
        reference = make_proposed(train)
        reference.run(test, chunk_size=1)
        for name, idx in by_chunk.items():
            assert indices(ring.events(), name) == idx

    def test_sample_counter_totals_stream_length(self, ring):
        train, test = make_streams()
        pipe = make_proposed(train)
        pipe.run(test)
        samples = get_telemetry().registry.get("pipeline.samples")
        assert samples.total == len(test)

    def test_run_and_chunk_spans_recorded(self, ring):
        train, test = make_streams()
        make_proposed(train).run(test)
        reg = get_telemetry().registry
        assert reg.get("span.pipeline.run.seconds").count() == 1
        assert reg.get("span.pipeline.chunk.seconds").count() >= 1


class TestGoldenEquivalence:
    def test_records_identical_with_and_without_telemetry(self, ring):
        train, test = make_streams()
        instrumented = make_proposed(train).run(test)
        configure(enabled=False, reset=True)
        plain = make_proposed(train).run(test)
        assert instrumented == plain


class TestDetectorAndModelMetrics:
    def test_counters_consistent_with_records(self, ring):
        train, test = make_streams()
        pipe = make_proposed(train)
        records = pipe.run(test, chunk_size=1)  # one predict per sample
        reg = get_telemetry().registry

        assert reg.get("detector.drifts").total == len(pipe.detections)
        opened = reg.get("detector.windows_opened").total
        closed = reg.get("detector.windows_closed").total
        assert closed <= opened <= closed + 1  # at most one window open at EOS
        assert reg.get("detector.windows_closed").value(
            drift=True
        ) == len(pipe.detections)
        assert reg.get("detector.distance") is not None

        n_recon = sum(r.reconstructing for r in records)
        n_finish = sum(r.phase == "finish" for r in records)
        assert reg.get("reconstructor.samples").total == n_recon
        assert reg.get("reconstructor.reconstructions").total == n_finish
        # every reconstruction sample except the final one trains the model
        assert reg.get("oselm.train").total == n_recon - n_finish
        assert reg.get("oselm.predict").total == len(test)

    def test_window_events_carry_scores(self, ring):
        train, test = make_streams()
        make_proposed(train).run(test)
        opened = ring.events("window_opened")
        closed = ring.events("window_closed")
        assert opened and closed
        assert all("score" in e.fields for e in opened)
        assert all("distance" in e.fields and "drift" in e.fields for e in closed)
        assert sum(e.fields["drift"] for e in closed) == 1


class TestBatchPipelineEvents:
    def test_quanttree_drift_and_refit_events(self, ring):
        train, test = make_streams()
        pipe = build_quanttree_pipeline(
            train.X, train.y, batch_size=100, n_bins=8,
            reconstruction_samples=100, seed=1,
        )
        records = pipe.run(test)
        events = ring.events()
        assert pipe.detections  # this config does detect
        assert indices(events, "drift_detected") == pipe.detections
        assert indices(events, "reconstruction_finished") == [
            r.index for r in records if r.phase == "finish"
        ]
        (refit,) = [e for e in events if e.name == "reference_refitted"]
        assert refit.fields["pipeline"] == pipe.name


class TestDeviceEvents:
    def test_quantize_pipeline_emits_event(self, ring):
        from repro.device import quantize_pipeline

        train, _test = make_streams()
        quantize_pipeline(make_proposed(train), "float32")
        (event,) = ring.events("pipeline_quantized")
        assert event.fields["dtype"] == "float32"
        assert event.fields["state_bytes"] > 0


class TestParallelRunnerTelemetry:
    CELLS_KWARGS = {"seed": 3, "n_test": 300, "drift_at": 120}

    def cells(self):
        return make_grid(
            {"Proposed": ("proposed", {"window_size": 30}),
             "Baseline": ("baseline", {})},
            {"blobs": ("blobs", dict(self.CELLS_KWARGS))},
            seeds=[1],
        )

    def test_cache_counters_match_disk_and_flags(self, ring, tmp_path):
        """Acceptance: re-runs report cache-hit counters consistent with
        the on-disk cache."""
        runner = ParallelRunner(cache_dir=tmp_path, max_workers=1)
        reg = get_telemetry().registry

        first = runner.run(self.cells())
        assert all(not r.from_cache for r in first)
        assert reg.get("parallel.cache_misses").total == len(first)
        assert reg.get("parallel.cache_hits") is None  # never incremented
        assert reg.get("parallel.cells_run").total == len(first)
        on_disk = list(tmp_path.glob("*.json"))
        assert len(on_disk) == len(first)

        configure(reset=True)
        second = runner.run(self.cells())
        assert all(r.from_cache for r in second)
        assert reg.get("parallel.cache_hits").total == len(second)
        assert reg.get("parallel.cache_misses") is None
        assert reg.get("parallel.cells_run") is None  # nothing recomputed
        hit_names = {
            e.fields["name"] for e in ring.events("cell_cache_hit")
        }
        assert hit_names == {r.name for r in second}

    def test_cell_lifecycle_events(self, ring):
        results = ParallelRunner(max_workers=1).run(self.cells())
        started = ring.events("cell_started")
        finished = ring.events("cell_finished")
        assert {e.fields["name"] for e in started} == {r.name for r in results}
        assert {e.fields["name"] for e in finished} == {r.name for r in results}
        assert all(e.fields["wall_seconds"] >= 0 for e in finished)

    def test_no_cache_dir_counts_no_misses(self, ring):
        ParallelRunner(max_workers=1).run(self.cells())
        reg = get_telemetry().registry
        assert reg.get("parallel.cache_misses") is None
        assert reg.get("parallel.cache_hits") is None
