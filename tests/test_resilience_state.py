"""Property tests for the uniform ``get_state()``/``set_state()`` protocol.

Every stateful component must satisfy, at *any* point of its lifecycle:

1. **round-trip identity** — ``fresh.set_state(obj.get_state())`` makes the
   fresh object's own snapshot equal to the original's, and the two then
   behave identically on the same subsequent inputs;
2. **snapshot isolation** — mutating the original after the snapshot does
   not change what was captured;
3. **footprint audit** — ``state_nbytes()`` (the paper's Table-4 memory
   accounting) agrees with the actually serialized array payload within a
   small class-specific tolerance (the accounting charges batch buffers at
   full capacity; the snapshot stores what is really there).

Lifecycle points are randomized but seeded: each component is advanced a
random number of steps before the snapshot, several times.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CentroidSet,
    ModelReconstructor,
    SequentialDriftDetector,
    build_model,
)
from repro.detectors import (
    ADWIN,
    CUSUM,
    DDM,
    EDDM,
    HDDDM,
    KSWIN,
    SPLL,
    PageHinkley,
    QuantTree,
    VotingDetectorEnsemble,
)
from repro.oselm import MultiInstanceModel
from repro.resilience import state_arrays_nbytes
from repro.resilience.state import flatten_state, unflatten_state

SEED = 20240817
D = 6  # feature dim for the synthetic fixtures


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def assert_state_equal(a, b, path="state"):
    """Recursive equality over state trees (dicts/lists/arrays/scalars)."""
    assert type(a) is type(b) or (
        isinstance(a, (int, float)) and isinstance(b, (int, float))
    ), f"{path}: {type(a)} vs {type(b)}"
    if isinstance(a, dict):
        assert a.keys() == b.keys(), f"{path}: keys {a.keys()} vs {b.keys()}"
        for k in a:
            assert_state_equal(a[k], b[k], f"{path}.{k}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: length {len(a)} vs {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            assert_state_equal(x, y, f"{path}[{i}]")
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype, f"{path}: dtype {a.dtype} vs {b.dtype}"
        assert a.shape == b.shape, f"{path}: shape {a.shape} vs {b.shape}"
        assert a.tobytes() == b.tobytes(), f"{path}: array bytes differ"
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


def _reference_data(rng, n=300):
    return rng.normal(0.5, 0.15, size=(n, D))


# ---------------------------------------------------------------------------
# error-rate detectors: drive with a bernoulli error stream
# ---------------------------------------------------------------------------

ERROR_RATE_MAKERS = {
    "ddm": lambda: DDM(),
    "eddm": lambda: EDDM(),
    "adwin": lambda: ADWIN(),
    "cusum": lambda: CUSUM(),
    "page_hinkley": lambda: PageHinkley(),
    "kswin": lambda: KSWIN(window_size=40, stat_size=10, seed=7),
    "ensemble": lambda: VotingDetectorEnsemble([DDM(), PageHinkley()]),
}


@pytest.mark.parametrize("name", sorted(ERROR_RATE_MAKERS))
def test_error_rate_detector_round_trip(name):
    rng = np.random.default_rng(SEED)
    for trial in range(3):
        cut = int(rng.integers(1, 400))
        errors = (rng.random(cut + 100) < 0.25).astype(float)
        original = ERROR_RATE_MAKERS[name]()
        for e in errors[:cut]:
            original.update(e)

        snapshot = original.get_state()
        clone = ERROR_RATE_MAKERS[name]()
        clone.set_state(snapshot)
        assert_state_equal(clone.get_state(), original.get_state())

        # identical behaviour on the identical continuation
        for e in errors[cut:]:
            assert clone.update(e) == original.update(e)
        assert_state_equal(clone.get_state(), original.get_state())


def test_error_rate_snapshot_is_isolated():
    rng = np.random.default_rng(SEED)
    det = DDM()
    for e in (rng.random(50) < 0.2).astype(float):
        det.update(e)
    snap = det.get_state()
    flat_before = flatten_state(snap)
    for _ in range(200):
        det.update(1.0)
    assert_state_equal(unflatten_state(*flatten_state(snap)), unflatten_state(*flat_before))


# ---------------------------------------------------------------------------
# batch detectors: fit a reference then stream partial batches
# ---------------------------------------------------------------------------

BATCH_MAKERS = {
    "quanttree": lambda: QuantTree(batch_size=50, n_bins=8, seed=5),
    "spll": lambda: SPLL(batch_size=50, seed=5),
    "hdddm": lambda: HDDDM(batch_size=50),
}


@pytest.mark.parametrize("name", sorted(BATCH_MAKERS))
def test_batch_detector_round_trip(name):
    rng = np.random.default_rng(SEED + 1)
    ref = _reference_data(rng)
    for trial in range(3):
        cut = int(rng.integers(1, 140))  # mid-buffer and past a full batch
        stream = rng.normal(0.5, 0.15, size=(cut + 80, D))
        original = BATCH_MAKERS[name]().fit_reference(ref)
        for x in stream[:cut]:
            original.update_one(x)

        clone = BATCH_MAKERS[name]()  # NOT fitted — set_state must suffice
        clone.set_state(original.get_state())
        assert_state_equal(clone.get_state(), original.get_state())
        assert clone.buffered_samples == original.buffered_samples

        for x in stream[cut:]:
            assert clone.update_one(x) == original.update_one(x)
        assert_state_equal(clone.get_state(), original.get_state())


def test_batch_detector_snapshot_is_isolated():
    rng = np.random.default_rng(SEED + 2)
    det = QuantTree(batch_size=50, n_bins=8, seed=5).fit_reference(_reference_data(rng))
    for x in rng.normal(0.5, 0.15, size=(20, D)):
        det.update_one(x)
    snap = flatten_state(det.get_state())
    for x in rng.normal(0.9, 0.3, size=(200, D)):
        det.update_one(x)
    restored = QuantTree(batch_size=50, n_bins=8, seed=5)
    restored.set_state(unflatten_state(*snap))
    assert restored.buffered_samples == 20


# ---------------------------------------------------------------------------
# proposed-method components and the model substrate
# ---------------------------------------------------------------------------

def _labelled(rng, n=200):
    y = rng.integers(0, 2, size=n)
    X = rng.normal(0.3, 0.1, size=(n, D)) + 0.4 * y[:, None]
    return X, y


def test_centroid_set_round_trip():
    rng = np.random.default_rng(SEED + 3)
    X, y = _labelled(rng)
    c = CentroidSet.from_labelled_data(X, y, 2)
    for i in range(60):
        c.update(int(y[i]), X[i])
    clone = CentroidSet.from_labelled_data(X[:50], y[:50], 2)
    clone.set_state(c.get_state())
    assert_state_equal(clone.get_state(), c.get_state())
    assert clone.drift_distance() == c.drift_distance()


def test_centroid_set_rejects_shape_mismatch():
    from repro.utils.exceptions import ConfigurationError

    rng = np.random.default_rng(SEED + 4)
    X, y = _labelled(rng)
    c = CentroidSet.from_labelled_data(X, y, 2)
    other = CentroidSet(np.zeros((3, D)), np.ones(3))
    with pytest.raises(ConfigurationError):
        other.set_state(c.get_state())


def test_sequential_detector_round_trip():
    rng = np.random.default_rng(SEED + 5)
    X, y = _labelled(rng)
    for trial in range(3):
        cut = int(rng.integers(5, 150))
        cents = CentroidSet.from_labelled_data(X, y, 2)
        det = SequentialDriftDetector(cents, window_size=20, theta_error=0.0, theta_drift=0.3)
        stream = rng.normal(0.5, 0.2, size=(cut + 60, D))
        labels = rng.integers(0, 2, size=cut + 60)
        errs = rng.random(cut + 60)
        for i in range(cut):
            det.update(stream[i], int(labels[i]), error=float(errs[i]))

        cents2 = CentroidSet.from_labelled_data(X, y, 2)
        det2 = SequentialDriftDetector(cents2, window_size=20, theta_error=0.0, theta_drift=0.3)
        det2.set_state(det.get_state())
        assert_state_equal(det2.get_state(), det.get_state())
        for i in range(cut, cut + 60):
            a = det.update(stream[i], int(labels[i]), error=float(errs[i]))
            b = det2.update(stream[i], int(labels[i]), error=float(errs[i]))
            assert a == b
        assert_state_equal(det2.get_state(), det.get_state())


def test_model_round_trip_bit_exact():
    rng = np.random.default_rng(SEED + 6)
    X, y = _labelled(rng)
    for trial in range(2):
        cut = int(rng.integers(1, 80))
        m = MultiInstanceModel(D, 4, 2, seed=1).fit_initial(X, y)
        extra = rng.normal(0.5, 0.2, size=(cut + 40, D))
        for i in range(cut):
            m.partial_fit_one(extra[i])

        clone = MultiInstanceModel(D, 4, 2, seed=999)  # different layers on purpose
        clone.set_state(m.get_state())
        assert_state_equal(clone.get_state(), m.get_state())
        probe = rng.normal(0.5, 0.2, size=(30, D))
        np.testing.assert_array_equal(m.predict(probe), clone.predict(probe))
        for i in range(cut, cut + 40):
            m.partial_fit_one(extra[i])
            clone.partial_fit_one(extra[i])
        assert_state_equal(clone.get_state(), m.get_state())


def test_reconstructor_round_trip():
    rng = np.random.default_rng(SEED + 7)
    X, y = _labelled(rng)
    model = build_model(X, y, seed=1)
    cents = CentroidSet.from_labelled_data(X, y, 2)
    rec = ModelReconstructor(model, cents, n_total=40)
    for i in range(15):  # process() auto-begins the reconstruction
        rec.process(X[i])

    model2 = build_model(X, y, seed=1)
    cents2 = CentroidSet.from_labelled_data(X, y, 2)
    rec2 = ModelReconstructor(model2, cents2, n_total=40)
    rec2.set_state(rec.get_state())
    assert_state_equal(rec2.get_state(), rec.get_state())
    assert rec2.is_active == rec.is_active


# ---------------------------------------------------------------------------
# footprint audit: declared state_nbytes vs actually serialized payload
# ---------------------------------------------------------------------------

#: (maker, driver, max serialized/declared ratio). The accounting charges
#: capacity (full batch buffers, provisioned histograms); the snapshot
#: stores contents — so the audited direction is "the serialized payload
#: must not dwarf the declared footprint".
AUDITED = {
    "quanttree": (
        BATCH_MAKERS["quanttree"],
        "batch",
        1.5,
    ),
    "hdddm": (BATCH_MAKERS["hdddm"], "batch", 1.5),
    "spll": (BATCH_MAKERS["spll"], "batch", 1.5),
    "adwin": (ERROR_RATE_MAKERS["adwin"], "errors", 2.0),
    "kswin": (ERROR_RATE_MAKERS["kswin"], "errors", 3.0),
}


@pytest.mark.parametrize("name", sorted(AUDITED))
def test_state_nbytes_audit(name):
    maker, kind, ratio = AUDITED[name]
    rng = np.random.default_rng(SEED + 8)
    det = maker()
    if kind == "batch":
        det.fit_reference(_reference_data(rng))
        # fill the streaming buffer to ~90% of capacity: declared capacity
        # accounting and actual contents are as close as they ever get
        for x in rng.normal(0.5, 0.15, size=(45, D)):
            det.update_one(x)
    else:
        for e in (rng.random(500) < 0.3).astype(float):
            det.update(e)
    declared = det.state_nbytes()
    serialized = state_arrays_nbytes(det.get_state())
    assert declared > 0
    assert serialized <= ratio * declared + 1024, (
        f"{name}: serialized {serialized}B vs declared {declared}B"
    )


def test_state_nbytes_audit_model():
    rng = np.random.default_rng(SEED + 9)
    X, y = _labelled(rng)
    m = MultiInstanceModel(D, 4, 2, seed=1).fit_initial(X, y)
    declared = m.state_nbytes()  # β + P only (random layers live in flash)
    serialized = state_arrays_nbytes(m.get_state())
    # serialized additionally carries the random layers; bound both sides
    assert declared <= serialized <= declared + 4 * (D * 4 + 4) * 8 + 1024
