"""Property-based tests (hypothesis) on the library's core invariants.

Each property pins an algebraic identity or structural invariant that the
paper's correctness rests on:

* sequential running-mean updates ≡ the arithmetic mean (Algorithm 4);
* OS-ELM sequential updates ≡ ridge regression re-solved from scratch;
* Welford moments ≡ two-pass mean/variance;
* Quant Tree bins form an (approximately equal-probability) partition;
* drift threshold Eq. 1 responds monotonically to ``z``;
* the sequential detector never stores samples (O(1) memory);
* MinMax scaling round-trips; ADWIN window bookkeeping stays exact.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.clustering import sequential_mean_update
from repro.core import CentroidSet, drift_threshold
from repro.datasets import MinMaxScaler
from repro.detectors import ADWIN, QuantTreePartition
from repro.oselm import OSELM
from repro.utils.math import RunningMoments

# Bounded, finite float strategies keep the algebra numerically honest.
finite = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, width=64)


def sample_matrix(n_min=2, n_max=24, d_min=1, d_max=6):
    return st.integers(n_min, n_max).flatmap(
        lambda n: st.integers(d_min, d_max).flatmap(
            lambda d: arrays(np.float64, (n, d), elements=finite)
        )
    )


class TestSequentialMeanProperty:
    @given(sample_matrix())
    @settings(max_examples=60, deadline=None)
    def test_stream_equals_mean(self, X):
        c, n = np.zeros(X.shape[1]), 0
        for row in X:
            c, n = sequential_mean_update(c, n, row)
        np.testing.assert_allclose(c, X.mean(axis=0), atol=1e-8, rtol=1e-8)

    @given(sample_matrix(), st.permutations(list(range(8))))
    @settings(max_examples=30, deadline=None)
    def test_order_invariance(self, X, perm_idx):
        """The exact running mean is order-invariant."""
        idx = [i % len(X) for i in perm_idx]
        A = X[idx]
        c1, n1 = np.zeros(X.shape[1]), 0
        c2, n2 = np.zeros(X.shape[1]), 0
        for row in A:
            c1, n1 = sequential_mean_update(c1, n1, row)
        for row in A[::-1]:
            c2, n2 = sequential_mean_update(c2, n2, row)
        np.testing.assert_allclose(c1, c2, atol=1e-8)


class TestOSELMEquivalenceProperty:
    @given(st.integers(0, 2**31 - 1), st.integers(4, 20), st.integers(1, 10))
    @settings(max_examples=25, deadline=None)
    def test_sequential_equals_ridge(self, seed, n_extra, chunk):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(12 + n_extra, 3))
        T = rng.normal(size=(12 + n_extra, 2))
        m = OSELM(3, 6, 2, reg=1e-2, seed=0).fit_initial(X[:12], T[:12])
        i = 12
        while i < len(X):
            j = min(i + chunk, len(X))
            m.partial_fit(X[i:j], T[i:j])
            i = j
        H = m.layer.transform(X)
        beta_ridge = np.linalg.solve(
            H.T @ H + m.reg * np.eye(6), H.T @ T
        )
        np.testing.assert_allclose(m.beta, beta_ridge, atol=1e-5, rtol=1e-4)


class TestWelfordProperty:
    @given(arrays(np.float64, st.integers(1, 200), elements=finite))
    @settings(max_examples=60, deadline=None)
    def test_matches_two_pass(self, values):
        m = RunningMoments()
        m.update_many(values)
        assert m.count == len(values)
        np.testing.assert_allclose(m.mean, values.mean(), atol=1e-9)
        np.testing.assert_allclose(m.variance, values.var(), atol=1e-7)


class TestQuantTreePartitionProperty:
    @given(st.integers(0, 2**31 - 1), st.integers(2, 16), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_bins_partition_probability(self, seed, n_bins, dims):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(max(4 * n_bins, 40), dims))
        part = QuantTreePartition(n_bins, seed=seed).fit(X)
        assert part.probabilities.sum() == pytest.approx(1.0)
        assert (part.probabilities >= 0).all()
        # Every bin holds roughly 1/K of the reference data.
        np.testing.assert_allclose(
            part.probabilities, 1.0 / n_bins, atol=0.6 / n_bins
        )

    @given(st.integers(0, 2**31 - 1), st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_assignment_total_preserved(self, seed, n_bins):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 3))
        part = QuantTreePartition(n_bins, seed=seed).fit(X)
        batch = rng.normal(size=(37, 3))
        counts = part.counts(batch)
        assert counts.sum() == 37
        assert (part.assign(batch) < n_bins).all()


class TestThresholdProperty:
    @given(arrays(np.float64, st.integers(2, 100),
                  elements=st.floats(0.0, 50.0, allow_nan=False, width=64)),
           st.floats(0.0, 5.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_z_monotone_and_above_mean(self, dists, z):
        t = drift_threshold(dists, z=z)
        assert t >= dists.mean() - 1e-9
        assert drift_threshold(dists, z=z + 1.0) >= t


class TestCentroidMemoryProperty:
    @given(st.integers(0, 2**31 - 1), st.integers(1, 4), st.integers(1, 8),
           st.integers(1, 120))
    @settings(max_examples=25, deadline=None)
    def test_state_size_independent_of_stream_length(self, seed, C, D, n_updates):
        rng = np.random.default_rng(seed)
        cents = CentroidSet(rng.normal(size=(C, D)), np.ones(C, dtype=int))
        before = cents.state_nbytes()
        for _ in range(n_updates):
            cents.update(int(rng.integers(C)), rng.normal(size=D))
        assert cents.state_nbytes() == before

    @given(st.integers(0, 2**31 - 1), st.integers(2, 4), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_drift_distance_nonnegative_and_zero_at_reset(self, seed, C, D):
        rng = np.random.default_rng(seed)
        cents = CentroidSet(rng.normal(size=(C, D)), np.ones(C, dtype=int))
        for _ in range(10):
            cents.update(int(rng.integers(C)), rng.normal(size=D))
            assert cents.drift_distance() >= 0.0
        cents.reset_recent()
        assert cents.drift_distance() == 0.0


class TestMinMaxProperty:
    @given(sample_matrix(n_min=2))
    @settings(max_examples=60, deadline=None)
    def test_transform_bounded_and_roundtrips(self, X):
        sc = MinMaxScaler().fit(X)
        out = sc.transform(X)
        assert out.min() >= -1e-9 and out.max() <= 1.0 + 1e-9
        back = sc.inverse_transform(out)
        # (Near-)constant features lose information (map to 0); compare
        # only the columns the scaler actually scales.
        varying = sc.scale_ > 0
        np.testing.assert_allclose(back[:, varying], X[:, varying], atol=1e-6)


class TestADWINProperty:
    @given(arrays(np.float64, st.integers(1, 300),
                  elements=st.floats(0.0, 1.0, allow_nan=False, width=64)))
    @settings(max_examples=30, deadline=None)
    def test_width_and_total_consistent(self, values):
        ad = ADWIN(delta=1e-6, clock=1000)  # effectively no cuts
        for v in values:
            ad.update(float(v))
        assert ad.width == len(values)
        np.testing.assert_allclose(ad.estimation, values.mean(), atol=1e-6)

    @given(arrays(np.float64, st.integers(50, 300),
                  elements=st.floats(0.0, 1.0, allow_nan=False, width=64)))
    @settings(max_examples=20, deadline=None)
    def test_bucket_counts_are_powers_of_two_summing_to_width(self, values):
        ad = ADWIN()
        for v in values:
            ad.update(float(v))
        counts = [b.count for b in ad._buckets]
        assert sum(counts) == ad.width
        assert all(c & (c - 1) == 0 for c in counts)  # powers of two
