"""Unit tests for the two-sided CUSUM detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors import CUSUM, DriftState
from repro.utils.exceptions import ConfigurationError


class TestWarmup:
    def test_estimates_mean_from_warmup(self, rng):
        c = CUSUM(warmup=50)
        for v in rng.normal(0.3, 0.1, 49):
            c.update(v)
            assert c.estimated_mean is None
        c.update(0.3)
        assert c.estimated_mean == pytest.approx(0.3, abs=0.05)

    def test_no_detection_during_warmup(self):
        c = CUSUM(threshold=0.001, warmup=30)
        for _ in range(29):
            assert c.update(100.0) is DriftState.NORMAL

    def test_given_target_mean_skips_warmup(self):
        c = CUSUM(target_mean=0.1, threshold=5.0, drift_magnitude=0.0)
        assert c.estimated_mean == 0.1
        fired = False
        for _ in range(10):
            fired |= c.update(1.0) is DriftState.DRIFT
        assert fired  # deviations accumulate immediately


class TestDetection:
    def test_detects_mean_increase(self, rng):
        c = CUSUM(threshold=10.0, drift_magnitude=0.05)
        first = None
        for i in range(3000):
            v = rng.normal(0.1 if i < 1500 else 0.6, 0.1)
            if c.update(v) is DriftState.DRIFT:
                first = i
                break
        assert first is not None and 1500 <= first <= 1600
        assert c.last_direction == "increase"

    def test_detects_mean_decrease(self, rng):
        c = CUSUM(threshold=10.0, drift_magnitude=0.05)
        first = None
        for i in range(3000):
            v = rng.normal(0.6 if i < 1500 else 0.1, 0.1)
            if c.update(v) is DriftState.DRIFT:
                first = i
                break
        assert first is not None and first >= 1500
        assert c.last_direction == "decrease"

    def test_quiet_on_stationary(self, rng):
        c = CUSUM(threshold=30.0, drift_magnitude=0.1)
        fired = sum(
            c.update(v) is DriftState.DRIFT for v in rng.normal(0.3, 0.1, 5000)
        )
        assert fired == 0

    def test_slack_suppresses_small_shifts(self, rng):
        # A shift smaller than the slack never accumulates.
        c = CUSUM(target_mean=0.5, threshold=10.0, drift_magnitude=0.3)
        fired = any(
            c.update(v) is DriftState.DRIFT for v in rng.normal(0.6, 0.05, 4000)
        )
        assert not fired

    def test_higher_threshold_slower(self, rng):
        def first(th, seed):
            c = CUSUM(threshold=th, drift_magnitude=0.05)
            r = np.random.default_rng(seed)
            for i in range(4000):
                v = r.normal(0.1 if i < 1000 else 0.7, 0.1)
                if c.update(v) is DriftState.DRIFT:
                    return i
            return 4000

        assert first(5.0, 3) <= first(50.0, 3)


class TestLifecycle:
    def test_reset_restores_warmup_when_estimating(self, rng):
        c = CUSUM(warmup=20)
        for v in rng.normal(size=50):
            c.update(v)
        c.reset()
        assert c.estimated_mean is None and c.n_samples_seen == 0

    def test_reset_keeps_given_target(self):
        c = CUSUM(target_mean=0.4)
        c.update(1.0)
        c.reset()
        assert c.estimated_mean == 0.4

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            CUSUM(threshold=0.0)
        with pytest.raises(ConfigurationError):
            CUSUM(drift_magnitude=-0.1)

    def test_state_nbytes_tiny(self):
        assert CUSUM().state_nbytes() < 100
