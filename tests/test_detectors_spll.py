"""Unit tests for the SPLL (semi-parametric log-likelihood) detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors import SPLL, spll_statistic
from repro.utils.exceptions import ConfigurationError, NotFittedError


@pytest.fixture
def reference(rng):
    a = rng.normal([0, 0, 0], 0.5, size=(150, 3))
    b = rng.normal([4, 4, 4], 0.5, size=(150, 3))
    return np.concatenate([a, b])


class TestStatistic:
    def test_small_for_matching_distribution(self, rng):
        means = np.array([[0.0, 0.0]])
        cov = np.ones(2)
        batch = rng.normal(size=(200, 2))
        s = spll_statistic(means, cov, batch, diag=True)
        # Mean squared Mahalanobis to the single unit-covariance cluster ≈ d.
        assert s == pytest.approx(2.0, abs=0.4)

    def test_grows_with_shift(self, rng):
        means = np.array([[0.0, 0.0]])
        cov = np.ones(2)
        near = spll_statistic(means, cov, rng.normal(size=(100, 2)), diag=True)
        far = spll_statistic(means, cov, rng.normal(size=(100, 2)) + 3, diag=True)
        assert far > near + 3

    def test_min_over_clusters(self, rng):
        means = np.array([[0.0, 0.0], [10.0, 10.0]])
        cov = np.ones(2)
        batch = rng.normal(size=(50, 2)) + 10  # near the second cluster
        s = spll_statistic(means, cov, batch, diag=True)
        assert s < 5

    def test_full_covariance_path(self, rng):
        means = np.array([[0.0, 0.0]])
        cov = np.array([[2.0, 0.5], [0.5, 1.0]])
        L = np.linalg.cholesky(cov)
        batch = rng.normal(size=(500, 2)) @ L.T
        s = spll_statistic(means, cov, batch, diag=False)
        assert s == pytest.approx(2.0, abs=0.4)


class TestDetector:
    def test_no_detection_on_stationary(self, reference, rng):
        sp = SPLL(batch_size=100, n_clusters=2, seed=0).fit_reference(reference)
        a = rng.normal([0, 0, 0], 0.5, size=(50, 3))
        b = rng.normal([4, 4, 4], 0.5, size=(50, 3))
        assert not sp.detect_batch(np.concatenate([a, b]))

    def test_detects_shift(self, reference, rng):
        sp = SPLL(batch_size=100, n_clusters=2, seed=0).fit_reference(reference)
        assert sp.detect_batch(rng.normal([2, 2, 2], 0.5, size=(100, 3)))

    def test_detects_collapse_to_one_cluster(self, reference, rng):
        sp = SPLL(batch_size=100, n_clusters=2, seed=0).fit_reference(reference)
        batch = rng.normal([0, 0, 0], 0.5, size=(100, 3))  # cluster B vanished
        # Symmetric criterion catches the reverse direction.
        assert sp.detect_batch(batch)

    def test_asymmetric_mode(self, reference, rng):
        sp = SPLL(batch_size=100, n_clusters=2, symmetric=False, seed=0).fit_reference(
            reference
        )
        assert sp.detect_batch(rng.normal([2, 2, 2], 0.5, size=(100, 3)))

    def test_threshold_calibrated(self, reference):
        sp = SPLL(batch_size=100, n_clusters=2, seed=0).fit_reference(reference)
        assert sp.threshold_ is not None and sp.threshold_ > 0

    def test_not_fitted(self, rng):
        with pytest.raises(NotFittedError):
            SPLL(batch_size=10).detect_batch(rng.normal(size=(10, 2)))

    def test_reference_too_small(self):
        with pytest.raises(ConfigurationError):
            SPLL(batch_size=10, n_clusters=5, seed=0).fit_reference(np.random.default_rng(0).normal(size=(8, 2)))

    def test_invalid_covariance(self):
        with pytest.raises(ConfigurationError):
            SPLL(batch_size=10, covariance="banded")

    def test_state_nbytes_counts_two_windows(self, reference):
        sp = SPLL(batch_size=100, n_clusters=2, seed=0).fit_reference(reference)
        nbytes = sp.state_nbytes()
        # reference window + batch buffer at least
        assert nbytes >= reference.nbytes + 100 * 3 * 8

    def test_streaming_update_one(self, reference, rng):
        sp = SPLL(batch_size=60, n_clusters=2, seed=0).fit_reference(reference)
        shifted = rng.normal([2, 2, 2], 0.5, size=(60, 3))
        fired = [sp.update_one(x) for x in shifted]
        assert fired[-1]

    def test_full_covariance_detector(self, reference, rng):
        sp = SPLL(batch_size=100, n_clusters=2, covariance="full", seed=0).fit_reference(
            reference
        )
        assert sp.detect_batch(rng.normal([2, 2, 2], 0.5, size=(100, 3)))

    def test_false_positive_rate_reasonable(self, reference, rng):
        sp = SPLL(batch_size=100, n_clusters=2, seed=0).fit_reference(reference)
        hits = 0
        for _ in range(30):
            a = rng.normal([0, 0, 0], 0.5, size=(50, 3))
            b = rng.normal([4, 4, 4], 0.5, size=(50, 3))
            hits += sp.detect_batch(np.concatenate([a, b]))
        assert hits <= 5
