"""Unit tests for the multi-window detector ensemble (future-work feature)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CentroidSet, MultiWindowDetector
from repro.utils.exceptions import ConfigurationError


def make_ensemble(windows=(2, 5, 10), policy="majority", theta_drift=2.0):
    cents = CentroidSet(np.array([[0.0, 0.0], [10.0, 10.0]]), np.array([1, 1]))
    return MultiWindowDetector(
        cents, windows, theta_error=0.5, theta_drift=theta_drift, policy=policy
    )


class TestConstruction:
    def test_members_sorted_by_window(self):
        ens = make_ensemble(windows=(10, 2, 5))
        assert ens.window_sizes == (2, 5, 10)
        assert [m.window_size for m in ens.members] == [2, 5, 10]

    def test_members_have_independent_state(self):
        ens = make_ensemble()
        states = {id(m.centroids) for m in ens.members}
        assert len(states) == len(ens.members)

    def test_invalid_policy(self):
        with pytest.raises(ConfigurationError):
            make_ensemble(policy="quorum")

    def test_duplicate_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            make_ensemble(windows=(5, 5))

    def test_empty_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            make_ensemble(windows=())

    def test_max_count_propagates(self):
        cents = CentroidSet(np.zeros((1, 2)), np.array([1]), max_count=7)
        ens = MultiWindowDetector(cents, (2, 4), theta_error=0.5, theta_drift=2.0)
        assert all(m.centroids.max_count == 7 for m in ens.members)


class TestVoting:
    def feed_drifting(self, ens, n):
        """Drive all members toward drift with far-away anomalous samples."""
        steps = []
        for _ in range(n):
            steps.append(ens.update(np.array([8.0, 0.0]), 0, error=1.0))
        return steps

    def test_any_policy_fires_with_fastest_member(self):
        ens = make_ensemble(policy="any")
        steps = self.feed_drifting(ens, 2)  # smallest window = 2 completes
        assert steps[-1].drift_detected

    def test_majority_waits_for_second_member(self):
        ens = make_ensemble(policy="majority")
        steps = self.feed_drifting(ens, 5)
        fired_at = [i for i, s in enumerate(steps) if s.drift_detected]
        assert fired_at == [4]  # members with W=2 and W=5 both drifting

    def test_all_policy_waits_for_slowest(self):
        ens = make_ensemble(policy="all")
        steps = self.feed_drifting(ens, 10)
        fired_at = [i for i, s in enumerate(steps) if s.drift_detected]
        assert fired_at == [9]

    def test_votes_counted(self):
        ens = make_ensemble(policy="all")
        steps = self.feed_drifting(ens, 6)
        assert steps[-1].votes == 2  # W=2 and W=5 drifting, W=10 not yet

    def test_detected_only_on_transition(self):
        ens = make_ensemble(policy="any")
        steps = self.feed_drifting(ens, 6)
        detections = [s.drift_detected for s in steps]
        assert sum(detections) == 1  # no re-fire while flag stays up

    def test_no_drift_when_stationary(self, rng):
        ens = make_ensemble(theta_drift=50.0)
        for _ in range(100):
            step = ens.update(rng.normal(0, 0.1, 2), 0, error=1.0)
            assert not step.drift_detected

    def test_end_drift_resets_all(self):
        ens = make_ensemble(policy="any")
        self.feed_drifting(ens, 3)
        assert ens.drift
        ens.end_drift()
        assert not ens.drift
        assert all(not m.drift for m in ens.members)

    def test_member_steps_exposed(self):
        ens = make_ensemble()
        step = ens.update(np.array([8.0, 0.0]), 0, error=1.0)
        assert len(step.member_steps) == 3
        assert all(s.checking for s in step.member_steps)


class TestMemory:
    def test_linear_in_members(self):
        one = make_ensemble(windows=(5,))
        three = make_ensemble(windows=(2, 5, 10))
        assert three.state_nbytes() == 3 * one.state_nbytes()
