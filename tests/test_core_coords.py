"""Unit tests for CentroidSet — Algorithms 3/4 and the drift rate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CentroidSet
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def cents():
    trained = np.array([[0.0, 0.0], [4.0, 4.0], [8.0, 0.0]])
    return CentroidSet(trained, np.array([10, 10, 10]))


class TestConstruction:
    def test_recent_starts_at_trained(self, cents):
        np.testing.assert_array_equal(cents.recent, cents.trained)
        assert cents.drift_distance() == 0.0

    def test_counts_validation(self):
        with pytest.raises(ConfigurationError):
            CentroidSet(np.zeros((2, 3)), np.array([1, -1]))
        with pytest.raises(ConfigurationError):
            CentroidSet(np.zeros((2, 3)), np.array([1, 1, 1]))

    def test_trained_immutable(self, cents):
        with pytest.raises(ValueError):
            cents.trained[0, 0] = 5.0

    def test_from_labelled_data(self, rng):
        X = np.array([[0.0, 0.0], [2.0, 0.0], [10.0, 10.0]])
        y = np.array([0, 0, 1])
        c = CentroidSet.from_labelled_data(X, y)
        np.testing.assert_allclose(c.trained[0], [1.0, 0.0])
        np.testing.assert_allclose(c.trained[1], [10.0, 10.0])
        np.testing.assert_array_equal(c.counts, [2, 1])

    def test_from_labelled_data_missing_label(self):
        with pytest.raises(ConfigurationError):
            CentroidSet.from_labelled_data(np.ones((3, 2)), np.zeros(3, dtype=int), n_labels=2)

    def test_from_labelled_data_label_exceeds_n(self):
        with pytest.raises(ConfigurationError):
            CentroidSet.from_labelled_data(
                np.ones((3, 2)), np.array([0, 1, 2]), n_labels=2
            )

    def test_properties(self, cents):
        assert cents.n_labels == 3 and cents.n_features == 2


class TestUpdate:
    def test_paper_running_mean_formula(self, cents):
        # cor ← (cor·num + x) / (num + 1)
        cents.update(0, np.array([11.0, 0.0]))
        np.testing.assert_allclose(cents.recent[0], [1.0, 0.0])
        assert cents.counts[0] == 11

    def test_only_that_label_moves(self, cents):
        cents.update(1, np.array([100.0, 100.0]))
        np.testing.assert_array_equal(cents.recent[0], cents.trained[0])
        np.testing.assert_array_equal(cents.recent[2], cents.trained[2])

    def test_invalid_label(self, cents):
        with pytest.raises(ConfigurationError):
            cents.update(3, np.zeros(2))

    def test_zero_count_adopts_sample(self):
        c = CentroidSet(np.zeros((1, 2)), np.array([0]))
        c.update(0, np.array([5.0, 5.0]))
        np.testing.assert_array_equal(c.recent[0], [5.0, 5.0])
        assert c.counts[0] == 1

    def test_max_count_caps_inertia(self):
        capped = CentroidSet(np.zeros((1, 2)), np.array([1000]), max_count=10)
        exact = CentroidSet(np.zeros((1, 2)), np.array([1000]))
        x = np.array([1.0, 1.0])
        capped.update(0, x)
        exact.update(0, x)
        # Capped: weight 1/11 ; exact: weight 1/1001.
        assert capped.recent[0, 0] == pytest.approx(1.0 / 11)
        assert exact.recent[0, 0] == pytest.approx(1.0 / 1001)

    def test_max_count_converges_exponentially(self):
        c = CentroidSet(np.zeros((1, 1)), np.array([500]), max_count=20)
        for _ in range(200):
            c.update(0, np.array([1.0]))
        assert c.recent[0, 0] > 0.99

    def test_drift_distance_is_l1_sum(self, cents):
        cents.update(0, np.array([11.0, 2.0]))  # recent[0] -> (1.0, 0.1818...)
        expected = np.abs(cents.recent - cents.trained).sum()
        assert cents.drift_distance() == pytest.approx(expected)

    def test_sample_distance(self, cents):
        d = cents.sample_distance(1, np.array([5.0, 5.0]))
        assert d == pytest.approx(2.0)
        d_recent = cents.sample_distance(1, np.array([5.0, 5.0]), which="recent")
        assert d_recent == pytest.approx(2.0)


class TestInitCoord:
    def test_adopts_spread_increasing_sample(self, cents):
        # A far-away sample should replace some coordinate.
        label = cents.init_coord(np.array([100.0, 100.0]))
        assert label != -1
        assert (cents.recent[label] == [100.0, 100.0]).all()

    def test_rejects_spread_decreasing_sample(self, cents):
        # The exact centroid of the current coordinates reduces spread.
        label = cents.init_coord(np.array([4.0, 1.3]))
        assert label == -1
        np.testing.assert_array_equal(cents.recent, cents.trained)

    def test_picks_best_replacement(self):
        c = CentroidSet(np.array([[0.0], [1.0]]), np.array([1, 1]))
        # Replacing the coordinate CLOSEST to the far sample maximises spread.
        label = c.init_coord(np.array([10.0]))
        assert label == 1
        np.testing.assert_array_equal(c.recent[0], [0.0])

    def test_single_label_never_adopts(self):
        c = CentroidSet(np.zeros((1, 2)), np.array([1]))
        assert c.init_coord(np.array([9.0, 9.0])) == -1

    def test_trained_untouched(self, cents):
        before = cents.trained.copy()
        cents.init_coord(np.array([100.0, 100.0]))
        np.testing.assert_array_equal(cents.trained, before)


class TestUpdateCoord:
    def test_assigns_l1_nearest(self, cents):
        # (7, 1) is L1-nearest to coordinate 2 at (8, 0).
        label = cents.update_coord(np.array([7.0, 1.0]))
        assert label == 2

    def test_updates_after_assignment(self, cents):
        cents.update_coord(np.array([7.0, 1.0]))
        assert cents.counts[2] == 11
        np.testing.assert_allclose(cents.recent[2], [(8 * 10 + 7) / 11, 1 / 11])

    def test_nearest_label_l1_vs_l2_difference(self):
        # Point where L1 and L2 nearest differ: L1 favours axis-aligned.
        c = CentroidSet(np.array([[0.0, 0.0], [3.0, 3.0]]), np.array([1, 1]))
        x = np.array([2.4, 2.4])  # L1: 4.8 vs 1.2 -> label 1
        assert c.nearest_label(x) == 1


class TestLifecycle:
    def test_reset_recent(self, cents):
        cents.update(0, np.array([50.0, 50.0]))
        cents.reset_recent()
        np.testing.assert_array_equal(cents.recent, cents.trained)
        np.testing.assert_array_equal(cents.counts, [10, 10, 10])
        assert cents.drift_distance() == 0.0

    def test_reset_counts(self, cents):
        cents.reset_counts(1)
        np.testing.assert_array_equal(cents.counts, [1, 1, 1])

    def test_promote_recent_to_trained(self, cents):
        cents.update(0, np.array([50.0, 50.0]))
        moved = cents.recent.copy()
        cents.promote_recent_to_trained()
        np.testing.assert_array_equal(cents.trained, moved)
        assert cents.drift_distance() == 0.0
        # Reset after promotion snaps to the NEW trained state.
        cents.update(1, np.array([99.0, 99.0]))
        cents.reset_recent()
        np.testing.assert_array_equal(cents.recent, moved)

    def test_state_nbytes(self, cents):
        expected = cents.trained.nbytes + cents.recent.nbytes + cents.counts.nbytes
        assert cents.state_nbytes() == expected
        # 3 labels × 2 dims × 8 B × 2 matrices + counts — tiny.
        assert cents.state_nbytes() < 1000
