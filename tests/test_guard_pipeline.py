"""Integration tests: RuntimeGuard attached to the five stream pipelines.

Pins the three load-bearing contracts of the self-healing runtime:

1. **zero-cost when clean** — with a guard attached and no faults in the
   stream, every pipeline's records are byte-identical to an unguarded
   run (the guard delegates whole chunks verbatim);
2. **every policy x every pipeline survives faults** — repaired or
   quarantined samples keep the record stream index-aligned, reject
   raises :class:`GuardError` loudly;
3. **sentinel trips recover** — diverged model state rolls back to the
   last healthy snapshot (or re-initializes), the ladder bypasses
   adaptation, and the whole trail lands in telemetry with exact stream
   indices.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CentroidSet,
    ErrorRatePipeline,
    ModelReconstructor,
    build_baseline,
    build_model,
    build_onlad,
    build_proposed,
    build_quanttree_pipeline,
)
from repro.datasets import DataStream
from repro.detectors import DDM
from repro.guard import (
    GuardLevel,
    NumericHealthSentinel,
    POLICIES,
    RuntimeGuard,
)
from repro.resilience import InjectedCrash, crash_at, nan_burst, spike_train
from repro.telemetry import RingBufferSink, Telemetry
from repro.utils.exceptions import ConfigurationError, GuardError

SEED = 3


def _ddm_pipeline(train):
    model = build_model(train.X, train.y, seed=SEED)
    cents = CentroidSet.from_labelled_data(train.X, train.y, train.n_classes)
    rec = ModelReconstructor(model, cents, n_total=120)
    return ErrorRatePipeline(model, DDM(), rec)


MAKERS = {
    "baseline": lambda tr: build_baseline(tr.X, tr.y, seed=SEED),
    "onlad": lambda tr: build_onlad(tr.X, tr.y, forgetting_factor=0.95, seed=SEED),
    "proposed": lambda tr: build_proposed(tr.X, tr.y, window_size=60, seed=SEED),
    "quanttree": lambda tr: build_quanttree_pipeline(
        tr.X, tr.y, batch_size=250, n_bins=8, seed=SEED
    ),
    "ddm": _ddm_pipeline,
}


def make_guard(train, policy="impute_last_good", **kw) -> RuntimeGuard:
    return RuntimeGuard.from_init_data(train.X, policy=policy, **kw)


@pytest.fixture
def faulty_stream(drift_stream) -> DataStream:
    """The drift stream with a NaN burst and a spike train spliced in."""
    X = nan_burst(drift_stream.X, 150, 8, columns=[1, 4])
    X = spike_train(X, 600, 30, columns=[2], period=5, magnitude=1e4)
    return DataStream(
        X, drift_stream.y, drift_stream.drift_points,
        name="faulty", ensure_finite=False,
    )


class TestByteIdentityWhenClean:
    @pytest.mark.parametrize("name", list(MAKERS))
    def test_guarded_equals_unguarded(self, name, train_stream, drift_stream):
        golden = MAKERS[name](train_stream).run(drift_stream)
        pipe = MAKERS[name](train_stream)
        guard = make_guard(train_stream)
        pipe.attach_guard(guard)
        assert pipe.run(drift_stream) == golden
        assert guard.sanitizer.n_faults == 0
        assert guard.level == GuardLevel.HEALTHY

    def test_guarded_per_sample_path_equals_chunked(self, train_stream, drift_stream):
        chunked = MAKERS["proposed"](train_stream)
        chunked.attach_guard(make_guard(train_stream))
        per_sample = MAKERS["proposed"](train_stream)
        per_sample.attach_guard(make_guard(train_stream))
        assert (
            chunked.run(drift_stream)
            == per_sample.run(drift_stream, chunk_size=1)
        )


class TestPolicyMatrix:
    @pytest.mark.parametrize("name", list(MAKERS))
    @pytest.mark.parametrize("policy", [p for p in POLICIES if p != "reject"])
    def test_every_policy_survives_faults(
        self, name, policy, train_stream, faulty_stream
    ):
        pipe = MAKERS[name](train_stream)
        guard = make_guard(train_stream, policy=policy)
        pipe.attach_guard(guard)
        records = pipe.run(faulty_stream)
        assert len(records) == len(faulty_stream)
        assert [r.index for r in records] == list(range(len(faulty_stream)))
        assert guard.sanitizer.n_faults > 0

    @pytest.mark.parametrize("name", list(MAKERS))
    def test_reject_policy_raises_guard_error(self, name, train_stream, faulty_stream):
        pipe = MAKERS[name](train_stream)
        pipe.attach_guard(make_guard(train_stream, policy="reject"))
        with pytest.raises(GuardError, match="sample 150"):
            pipe.run(faulty_stream)

    def test_quarantine_records_are_placeholders(self, train_stream, faulty_stream):
        pipe = MAKERS["baseline"](train_stream)
        guard = make_guard(train_stream, policy="quarantine")
        pipe.attach_guard(guard)
        records = pipe.run(faulty_stream)
        quarantined = [r for r in records if r.phase == "quarantine"]
        assert len(quarantined) == guard.sanitizer.counts["quarantined"] > 0
        assert {r.index for r in quarantined} >= set(range(150, 158))
        # The raw faulty samples are retained for post-mortem inspection.
        assert len(guard.sanitizer.quarantined) > 0

    def test_unguarded_pipeline_refuses_faulty_stream(
        self, train_stream, faulty_stream
    ):
        # The historical loud-failure contract survives: without a guard,
        # non-finite input raises instead of corrupting state.
        from repro.utils.exceptions import DataValidationError

        with pytest.raises(DataValidationError):
            MAKERS["onlad"](train_stream).run(faulty_stream)

    def test_clean_samples_unaffected_by_repairs(self, train_stream, faulty_stream):
        # Records before the first fault are byte-identical to golden.
        golden = MAKERS["baseline"](train_stream).run(faulty_stream.slice(0, 150))
        pipe = MAKERS["baseline"](train_stream)
        pipe.attach_guard(make_guard(train_stream, policy="clip"))
        records = pipe.run(faulty_stream)
        assert records[:150] == golden


class TestSentinelRecovery:
    def _run_with_tight_sentinel(self, train_stream, stream, maker="onlad"):
        """A sentinel that trips on the first sequential update."""
        pipe = MAKERS[maker](train_stream)
        tel = Telemetry(enabled=True, sinks=[RingBufferSink()])
        pipe.telemetry = tel
        sentinel = NumericHealthSentinel(max_beta_norm=1e-9)
        guard = RuntimeGuard.from_init_data(
            train_stream.X, sentinel=sentinel, snapshot_every=10_000
        )
        pipe.attach_guard(guard)
        # chunk_size=1 gives per-sample sentinel cadence (the chunked fast
        # path probes once per chunk, which is the cheap default).
        records = pipe.run(stream, chunk_size=1)
        return pipe, guard, tel.sinks[0], records

    def test_trip_rolls_back_and_bypasses(self, train_stream, drift_stream):
        stream = drift_stream.take(200)
        pipe, guard, sink, records = self._run_with_tight_sentinel(
            train_stream, stream
        )
        assert len(records) == len(stream)
        assert guard.sentinel.n_trips > 0
        assert guard.level >= GuardLevel.PASSTHROUGH
        # ONLAD trains every sample, so the trip fires immediately and the
        # rest of the stream runs in bypass phases.
        assert records[-1].phase in ("passthrough", "frozen")

    def test_recovery_trail_in_telemetry(self, train_stream, drift_stream):
        stream = drift_stream.take(200)
        _, guard, sink, _ = self._run_with_tight_sentinel(train_stream, stream)
        tripped = sink.events("sentinel_tripped")
        assert tripped and tripped[0].fields["index"] >= 1
        recovered = sink.events("model_rolled_back") + sink.events(
            "model_reinitialized"
        )
        assert len(recovered) >= guard.n_rollbacks + guard.n_reinits > 0
        # Trip 1 -> PASSTHROUGH; a clean cooldown streak steps back down
        # to SANITIZING; training resumes, trips again -> FROZEN.
        moves = sink.events("guard_level_changed")
        assert [m.fields["to_level"] for m in moves] == [
            "PASSTHROUGH",
            "SANITIZING",
            "FROZEN",
        ]
        # Every transition carries the exact stream index it happened at.
        assert [m.fields["index"] for m in moves] == [
            t.index for t in guard.transitions
        ]

    def test_rollback_restores_snapshot_state(self, train_stream, drift_stream):
        pipe = MAKERS["onlad"](train_stream)
        guard = RuntimeGuard.from_init_data(
            train_stream.X,
            sentinel=NumericHealthSentinel(),
            snapshot_every=10_000,
        )
        pipe.attach_guard(guard)
        beta0 = pipe.model.instances[0].core.beta.copy()
        # Poison the live model, then feed one clean sample: the sentinel
        # must restore the bind-time snapshot.
        pipe.model.instances[0].core.beta[:] = np.nan
        pipe.run(drift_stream.take(1))
        assert guard.n_rollbacks == 1
        np.testing.assert_array_equal(pipe.model.instances[0].core.beta, beta0)

    def test_bypass_aborts_inflight_reconstruction(self, train_stream, drift_stream):
        pipe = MAKERS["proposed"](train_stream)
        guard = RuntimeGuard.from_init_data(
            train_stream.X, sentinel=NumericHealthSentinel(max_beta_norm=1e-9)
        )
        pipe.attach_guard(guard)
        pipe.run(drift_stream)
        # The tight sentinel tripped during reconstruction training; the
        # bypass hook must have aborted it and idled the detector.
        assert guard.level >= GuardLevel.PASSTHROUGH
        assert not pipe.reconstructor.is_active
        assert not pipe.detector.drift and not pipe.detector.check


class TestAttachment:
    def test_attach_returns_pipeline(self, train_stream):
        pipe = MAKERS["baseline"](train_stream)
        assert pipe.attach_guard(make_guard(train_stream)) is pipe

    def test_guard_cannot_serve_two_pipelines(self, train_stream):
        guard = make_guard(train_stream)
        MAKERS["baseline"](train_stream).attach_guard(guard)
        with pytest.raises(ConfigurationError):
            MAKERS["onlad"](train_stream).attach_guard(guard)

    def test_guard_adopts_pipeline_telemetry(self, train_stream):
        pipe = MAKERS["baseline"](train_stream)
        tel = Telemetry(enabled=True, sinks=[RingBufferSink()])
        pipe.telemetry = tel
        guard = make_guard(train_stream)
        pipe.attach_guard(guard)
        assert guard.telemetry is tel

    def test_report_text_mentions_policy_and_level(self, train_stream, drift_stream):
        pipe = MAKERS["baseline"](train_stream)
        guard = make_guard(train_stream, policy="clip")
        pipe.attach_guard(guard)
        pipe.run(drift_stream.take(50))
        text = guard.report_text()
        assert "clip" in text and "HEALTHY" in text


class TestCheckpointComposition:
    def test_guarded_checkpointed_run_matches_plain_guarded(
        self, tmp_path, train_stream, faulty_stream
    ):
        plain = MAKERS["proposed"](train_stream)
        plain.attach_guard(make_guard(train_stream, policy="clip"))
        golden = plain.run(faulty_stream)

        ckpt = MAKERS["proposed"](train_stream)
        ckpt.attach_guard(make_guard(train_stream, policy="clip"))
        path = tmp_path / "guarded.ckpt"
        records = ckpt.run(
            faulty_stream, checkpoint_every=64, checkpoint_path=path
        )
        assert records == golden

    def test_guarded_crash_resume_is_byte_identical(
        self, tmp_path, train_stream, drift_stream
    ):
        golden_pipe = MAKERS["proposed"](train_stream)
        golden_pipe.attach_guard(make_guard(train_stream))
        golden = golden_pipe.run(drift_stream)

        path = tmp_path / "crash.ckpt"
        victim = MAKERS["proposed"](train_stream)
        victim.attach_guard(make_guard(train_stream))
        with crash_at(victim, 700):
            with pytest.raises(InjectedCrash):
                victim.run(drift_stream, checkpoint_every=100, checkpoint_path=path)

        fresh = MAKERS["proposed"](train_stream)
        fresh.attach_guard(make_guard(train_stream))
        assert fresh.resume(drift_stream, path) == golden
