"""Integration: the full gateway→quantise→persist→restore→stream chain.

Combines `repro.device.quantize` and `repro.io` the way a real deployment
would: calibrate at float64, quantise the state for the device format,
persist, restore, and confirm the quantised deployment still detects and
recovers from a drift while fitting the Pico's RAM at float32.
"""

from __future__ import annotations

import pytest

from repro.core import build_proposed
from repro.datasets import NSLKDDConfig, make_nslkdd_like
from repro.device import proposed_memory, discriminative_model_memory, RASPBERRY_PI_PICO
from repro.device.quantize import quantize_pipeline, state_bytes_at
from repro.io import load_pipeline, save_pipeline
from repro.metrics import evaluate_method, segment_accuracy

CFG = NSLKDDConfig(n_train=500, n_test=3000, drift_at=1000)


@pytest.fixture(scope="module")
def streams():
    return make_nslkdd_like(CFG, seed=0)


@pytest.fixture(scope="module")
def f64_result(streams):
    train, test = streams
    pipe = build_proposed(train.X, train.y, window_size=50, seed=1)
    return evaluate_method(pipe, test)


@pytest.mark.parametrize("dtype", ["float32", "float16"])
def test_quantized_deployment_detects_and_recovers(streams, f64_result, dtype):
    train, test = streams
    pipe = build_proposed(train.X, train.y, window_size=50, seed=1)
    q = quantize_pipeline(pipe, dtype)
    res = evaluate_method(q, test)
    assert res.delay.detections, f"{dtype} deployment missed the drift"
    # Accuracy within a couple points of the float64 run.
    assert res.accuracy > f64_result.accuracy - 0.03
    det_end = res.delay.detections[0] + 450
    _, _, post = segment_accuracy(res.records, [1000, det_end])
    assert post > 0.8


def test_quantize_then_persist_roundtrip(streams, tmp_path):
    train, test = streams
    pipe = build_proposed(train.X, train.y, window_size=50, seed=1)
    q = quantize_pipeline(pipe, "float32")
    path = tmp_path / "edge_f32.npz"
    save_pipeline(q, path)
    restored = load_pipeline(path)
    a = [r.predicted for r in q.run(test.take(600))]
    b = [r.predicted for r in restored.run(test.take(600))]
    assert a == b


def test_float32_state_fits_pico_with_margin(streams):
    """At the deployment precision the whole mutable state uses well under
    half of the Pico's RAM."""
    train, _ = streams
    pipe = build_proposed(train.X, train.y, window_size=50, seed=1)
    C, D, H = pipe.model.n_labels, pipe.model.n_features, pipe.model.n_hidden
    n_values = (
        proposed_memory(C, D).total_bytes
        + discriminative_model_memory(C, D, H, alpha_in_flash=True).total_bytes
    ) // 8
    f32_bytes = state_bytes_at(n_values, "float32")
    assert f32_bytes < RASPBERRY_PI_PICO.ram_bytes / 2
