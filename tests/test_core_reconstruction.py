"""Unit tests for ModelReconstructor — Algorithm 2's four phases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CentroidSet, ModelReconstructor
from repro.oselm import MultiInstanceModel
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def setup(train_stream):
    model = MultiInstanceModel(6, 4, 2, seed=0).fit_initial(train_stream.X, train_stream.y)
    cents = CentroidSet.from_labelled_data(train_stream.X, train_stream.y, 2)
    rec = ModelReconstructor(model, cents, n_total=40, n_search=4, n_update=12)
    return model, cents, rec


class TestConfiguration:
    def test_phase_bounds_enforced(self, setup):
        model, cents, _ = setup
        with pytest.raises(ConfigurationError):
            ModelReconstructor(model, cents, n_total=40, n_search=12, n_update=12)
        with pytest.raises(ConfigurationError):
            ModelReconstructor(model, cents, n_total=40, n_search=2, n_update=30)

    def test_defaults_valid_over_range(self, setup):
        model, cents, _ = setup
        for n in (40, 100, 400, 1000):
            r = ModelReconstructor(model, cents, n_total=n)
            assert 0 < r.n_search < r.n_update <= n // 2

    def test_min_total(self, setup):
        model, cents, _ = setup
        with pytest.raises(ConfigurationError):
            ModelReconstructor(model, cents, n_total=3)


class TestPhaseSequence:
    def test_phases_in_order(self, setup, drift_stream):
        _, _, rec = setup
        phases = []
        i = 400
        while True:
            step = rec.process(drift_stream.X[i])
            phases.append(step.phase)
            i += 1
            if not step.still_reconstructing:
                break
        # count runs 1..40: search for count<4, update for count<12,
        # centroid training until count<20, predict training until 40.
        assert phases[0] == "search"
        assert phases[4] == "update"
        assert phases[12] == "train_centroid"
        assert phases[25] == "train_predict"
        assert phases[-1] == "finish"
        assert len(phases) == 40

    def test_returns_false_exactly_at_n(self, setup, drift_stream):
        _, _, rec = setup
        results = [rec.process(drift_stream.X[400 + i]).still_reconstructing for i in range(40)]
        assert all(results[:-1]) and not results[-1]

    def test_counter_resets_for_next_reconstruction(self, setup, drift_stream):
        _, _, rec = setup
        for i in range(40):
            rec.process(drift_stream.X[400 + i])
        assert rec.count == 0
        assert not rec.is_active
        assert rec.n_reconstructions == 1
        step = rec.process(drift_stream.X[500])
        assert step.count == 1 and rec.is_active

    def test_counts_reset_at_begin(self, setup, drift_stream):
        _, cents, rec = setup
        assert cents.counts.max() > 1
        rec.process(drift_stream.X[400])
        assert (cents.counts <= 2).all()  # reset to 1, maybe one update since


class TestModelEffects:
    def test_covariance_reset(self, setup, drift_stream):
        model, _, rec = setup
        p_before = [inst.core.P.copy() for inst in model.instances]
        rec.process(drift_stream.X[400])
        for inst, pb in zip(model.instances, p_before):
            assert not np.allclose(inst.core.P, pb)

    def test_covariance_reset_optional(self, train_stream, drift_stream):
        model = MultiInstanceModel(6, 4, 2, seed=0).fit_initial(train_stream.X, train_stream.y)
        cents = CentroidSet.from_labelled_data(train_stream.X, train_stream.y, 2)
        rec = ModelReconstructor(
            model, cents, n_total=40, n_search=4, n_update=12, reset_covariance=False
        )
        p_before = model.instances[0].core.P.copy()
        rec.process(drift_stream.X[400])
        np.testing.assert_array_equal(model.instances[0].core.P, p_before)

    def test_model_trains_during_reconstruction(self, setup, drift_stream):
        model, _, rec = setup
        seen_before = sum(inst.n_samples_seen for inst in model.instances)
        for i in range(40):
            rec.process(drift_stream.X[400 + i])
        seen_after = sum(inst.n_samples_seen for inst in model.instances)
        # All samples except the final count==N one train the model.
        assert seen_after - seen_before == 39

    def test_promotion_on_finish(self, setup, drift_stream):
        _, cents, rec = setup
        trained_before = cents.trained.copy()
        for i in range(40):
            rec.process(drift_stream.X[400 + i])
        assert not np.allclose(cents.trained, trained_before)
        assert cents.drift_distance() == 0.0

    def test_adapts_to_shifted_concept(self, setup, drift_stream):
        """End-to-end: after reconstruction on post-drift samples the model
        classifies the shifted blobs accurately again."""
        model, cents, _ = setup
        rec = ModelReconstructor(model, cents, n_total=300, n_search=20, n_update=100)
        i = 400
        while True:
            step = rec.process(drift_stream.X[i])
            i += 1
            if not step.still_reconstructing:
                break
        post = drift_stream.slice(i, 1200)
        acc = (model.predict(post.X) == post.y).mean()
        assert acc > 0.9

    def test_literal_overlap_double_trains(self, train_stream, drift_stream):
        model = MultiInstanceModel(6, 4, 2, seed=0).fit_initial(train_stream.X, train_stream.y)
        cents = CentroidSet.from_labelled_data(train_stream.X, train_stream.y, 2)
        rec = ModelReconstructor(
            model, cents, n_total=40, n_search=4, n_update=12, literal_overlap=True
        )
        seen_before = sum(inst.n_samples_seen for inst in model.instances)
        for i in range(19):  # counts 1..19 (< N/2): double-train region
            rec.process(drift_stream.X[400 + i])
        seen_after = sum(inst.n_samples_seen for inst in model.instances)
        assert seen_after - seen_before == 2 * 19
