"""Units for the fleet's batched scoring: signature, kernel, priming, plan.

The differential end-to-end proof lives in
``tests/test_fleet_batched_golden.py``; this file pins the pieces the
batcher is assembled from — in particular the regression the planner
must never reintroduce: **grouping by shape alone**. Two devices with
identical dims but different model seeds draw different random-layer
weights, and stacking them into one forward pass scores one of them
against the other's hidden layer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ExperimentSpec, build_experiment
from repro.fleet import FleetManager, FleetStats
from repro.fleet.batching import BatchPlanner, model_signature
from repro.oselm import MultiInstanceModel


def _fitted_model(seed, n_features=6, n_hidden=12, n_labels=2, **kwargs):
    rng = np.random.default_rng(99)
    model = MultiInstanceModel(n_features, n_hidden, n_labels, seed=seed, **kwargs)
    X = rng.normal(0.5, 0.2, size=(40, n_features))
    y = np.arange(40) % n_labels
    return model.fit_initial(X, y)


def _pipeline(pipeline="proposed", seed=0, model_seed=5, **extra):
    spec = ExperimentSpec(
        name=f"{pipeline}-{seed}",
        pipeline=pipeline,
        dataset="blobs",
        seed=seed,
        model_seed=model_seed,
        dataset_kwargs={"n_test": 60, "drift_at": 40},
        **extra,
    )
    return build_experiment(spec).pipeline


class TestModelSignature:
    def test_same_seed_same_signature(self):
        assert model_signature(_fitted_model(7)) == model_signature(_fitted_model(7))

    def test_different_seed_different_signature(self):
        # The satellite regression: identical shapes, different RNG draws.
        a, b = _fitted_model(7), _fitted_model(8)
        assert (a.n_features, a.n_hidden, a.n_labels) == (
            b.n_features, b.n_hidden, b.n_labels,
        )
        assert model_signature(a) != model_signature(b)

    def test_shape_and_config_change_signature(self):
        base = model_signature(_fitted_model(7))
        assert model_signature(_fitted_model(7, n_hidden=13)) != base
        assert model_signature(_fitted_model(7, error_metric="mae")) != base

    def test_unfitted_and_foreign_models_are_unsigned(self):
        assert model_signature(MultiInstanceModel(6, 12, 2, seed=7)) is None
        assert model_signature(object()) is None

    def test_training_preserves_signature(self):
        # Sequential training moves beta, not the random layer: the device
        # keeps batching with its firmware siblings as it adapts.
        model = _fitted_model(7)
        before = model_signature(model)
        model.partial_fit_one(np.full(6, 0.4), 0)
        assert model_signature(model) == before


class TestScoreBatchMany:
    def test_bit_identical_to_per_device_scoring(self):
        rng = np.random.default_rng(3)
        models = [_fitted_model(7) for _ in range(5)]
        # Same seed -> same layer, but different data histories per model.
        for k, model in enumerate(models):
            for _ in range(k * 3):
                model.partial_fit_one(rng.normal(0.5, 0.2, size=6), rng.integers(2))
        rows = [rng.normal(0.5, 0.3, size=(n, 6)) for n in (4, 1, 7, 3, 2)]
        X = np.concatenate(rows)
        owners = np.repeat(np.arange(5), [len(r) for r in rows])
        labels, scores = MultiInstanceModel.score_batch_many(models, X, owners)
        offset = 0
        for model, chunk in zip(models, rows):
            want_labels, want_scores = model.predict_with_score_batch(chunk)
            n = len(chunk)
            assert np.array_equal(labels[offset : offset + n], want_labels)
            assert scores[offset : offset + n].tobytes() == want_scores.tobytes()
            offset += n

    def test_mixed_layers_scored_together_are_wrong(self):
        # Why the planner keys on weights: stacking different seeds uses
        # the first model's hidden layer for every row.
        rng = np.random.default_rng(4)
        a, b = _fitted_model(7), _fitted_model(8)
        X = rng.normal(0.5, 0.3, size=(6, 6))
        owners = np.array([0, 0, 0, 1, 1, 1])
        _, mixed = MultiInstanceModel.score_batch_many([a, b], X, owners)
        _, own = b.predict_with_score_batch(X[3:])
        assert not np.allclose(mixed[3:], own)

    def test_validates_owner_shape(self):
        model = _fitted_model(7)
        with pytest.raises(Exception):
            MultiInstanceModel.score_batch_many(
                [model], np.zeros((3, 6)), np.zeros(2, dtype=int)
            )


class TestScorePriming:
    def _primed(self, model, X, at=0):
        cursor = {"index": at}
        labels, scores = model.predict_with_score_batch(X)
        model.prime_scores(
            labels, scores, base_index=at, index_fn=lambda: cursor["index"]
        )
        return cursor

    def test_scalar_consume_is_bit_identical(self):
        rng = np.random.default_rng(5)
        model = _fitted_model(7)
        X = rng.normal(0.5, 0.3, size=(8, 6))
        want = [model.predict_with_score(x) for x in X]
        cursor = self._primed(model, X)
        for k, x in enumerate(X):
            cursor["index"] = k
            label, score = model.predict_with_score(x)
            assert (label, score) == want[k]
            assert isinstance(label, int) and isinstance(score, float)

    def test_batch_consume_is_bit_identical(self):
        rng = np.random.default_rng(6)
        model = _fitted_model(7)
        X = rng.normal(0.5, 0.3, size=(10, 6))
        want_labels, want_scores = model.predict_with_score_batch(X)
        cursor = self._primed(model, X)
        cursor["index"] = 4
        labels, scores = model.predict_with_score_batch(X[4:])
        assert np.array_equal(labels, want_labels[4:])
        assert scores.tobytes() == want_scores[4:].tobytes()

    def test_out_of_range_falls_through(self):
        rng = np.random.default_rng(7)
        model = _fitted_model(7)
        X = rng.normal(0.5, 0.3, size=(4, 6))
        cursor = self._primed(model, X)
        cursor["index"] = 4  # past the primed rows
        label, score = model.predict_with_score(X[0])
        want = _fitted_model(7).predict_with_score(X[0])
        assert (label, score) == want

    @pytest.mark.parametrize("mutate", ["partial_fit_one", "fit_initial", "set_state"])
    def test_training_invalidates(self, mutate):
        rng = np.random.default_rng(8)
        model = _fitted_model(7)
        X = rng.normal(0.5, 0.3, size=(4, 6))
        self._primed(model, X)
        if mutate == "partial_fit_one":
            model.partial_fit_one(X[0], 0)
        elif mutate == "fit_initial":
            model.fit_initial(rng.normal(0.5, 0.2, size=(20, 6)), np.arange(20) % 2)
        else:
            model.set_state(model.get_state())
        assert model._primed is None

    def test_clear_primed_is_idempotent(self):
        model = _fitted_model(7)
        model.clear_primed()
        model.clear_primed()
        assert model._primed is None


class TestBatchPlanner:
    def test_groups_by_signature_not_shape(self):
        rng = np.random.default_rng(9)
        rows = rng.normal(0.5, 0.3, size=(5, 6))
        same_a = _pipeline("baseline", seed=1, model_seed=5)
        same_b = _pipeline("baseline", seed=2, model_seed=5)
        other = _pipeline("baseline", seed=3, model_seed=6)
        groups, fallback = BatchPlanner().plan(
            [("a", same_a, rows), ("b", same_b, rows), ("c", other, rows)]
        )
        assert not fallback
        sizes = sorted(g.n_devices for g in groups)
        assert sizes == [1, 2]
        paired = next(g for g in groups if g.n_devices == 2)
        assert paired.device_ids == ["a", "b"]

    def test_sequential_states_fall_back(self):
        rng = np.random.default_rng(10)
        rows = rng.normal(0.5, 0.3, size=(5, 6))
        onlad = _pipeline(
            "onlad", seed=1, pipeline_kwargs={"forgetting_factor": 0.95}
        )
        guarded = _pipeline("proposed", seed=2, guard_policy="impute_last_good")
        drifting = _pipeline("proposed", seed=3)
        drifting.detector.drift = True
        clean = _pipeline("proposed", seed=4)
        groups, fallback = BatchPlanner().plan(
            [
                ("onlad", onlad, rows),
                ("guarded", guarded, rows),
                ("drifting", drifting, rows),
                ("clean", clean, rows),
            ]
        )
        assert [dev for dev, _ in fallback] == ["onlad", "guarded", "drifting"]
        assert [g.device_ids for g in groups] == [["clean"]]

    def test_empty_rows_are_skipped(self):
        pipe = _pipeline("baseline", seed=1)
        groups, fallback = BatchPlanner().plan([("a", pipe, np.empty((0, 6)))])
        assert not groups and not fallback

    def test_group_prime_installs_primed_rows(self):
        rng = np.random.default_rng(11)
        rows = rng.normal(0.5, 0.3, size=(5, 6))
        a = _pipeline("baseline", seed=1, model_seed=5)
        b = _pipeline("baseline", seed=2, model_seed=5)
        groups, _ = BatchPlanner().plan([("a", a, rows), ("b", b, rows[:3])])
        (group,) = groups
        assert group.n_samples == 8
        assert group.prime() == 8
        for pipe, n in ((a, 5), (b, 3)):
            labels, scores, base, _ = pipe.model._primed
            assert base == pipe._index and len(scores) == n


class TestSubmitMany:
    def _specs(self, pipelines=("proposed", "baseline"), model_seed=5):
        specs = {}
        for k, pipeline in enumerate(pipelines):
            extra = (
                {"pipeline_kwargs": {"forgetting_factor": 0.95}}
                if pipeline == "onlad"
                else {}
            )
            specs[f"dev{k}"] = ExperimentSpec(
                name=f"dev{k}",
                pipeline=pipeline,
                dataset="blobs",
                seed=20 + k,
                model_seed=model_seed,
                dataset_kwargs={"n_test": 120, "drift_at": 80},
                **extra,
            )
        return specs

    def _streams(self, specs):
        return {dev: build_experiment(spec).test for dev, spec in specs.items()}

    def test_disabled_flag_matches_submit_loop(self, tmp_path):
        specs = self._specs()
        streams = self._streams(specs)
        with FleetManager(capacity=4, spool_dir=tmp_path / "a") as fm:
            for dev, spec in specs.items():
                fm.add_device(dev, spec)
            batch = [
                (dev, streams[dev].X[:60], streams[dev].y[:60]) for dev in specs
            ]
            out = fm.submit_many(batch)
            assert [len(recs) for recs in out] == [60, 60]
            assert fm.stats.batch_groups == 0

    def test_batched_records_match_sequential(self, tmp_path):
        specs = self._specs(("proposed", "baseline", "onlad", "proposed"))
        streams = self._streams(specs)

        def soak(batch_scoring):
            with FleetManager(
                capacity=4,
                spool_dir=tmp_path / f"bs{batch_scoring}",
                batch_scoring=batch_scoring,
            ) as fm:
                for dev, spec in specs.items():
                    fm.add_device(dev, spec)
                for start in range(0, 120, 40):
                    fm.submit_many(
                        [
                            (
                                dev,
                                streams[dev].X[start : start + 40],
                                streams[dev].y[start : start + 40],
                            )
                            for dev in specs
                        ]
                    )
                return fm.finish_all(), fm.stats

        (seq_records, _), (bat_records, stats) = soak(False), soak(True)
        for dev in specs:
            assert seq_records[dev] == bat_records[dev]
        assert stats.batched_samples > 0
        assert stats.fallback_samples > 0  # onlad always falls back

    def test_windows_respect_capacity(self, tmp_path):
        specs = self._specs(("baseline",) * 5)
        streams = self._streams(specs)
        with FleetManager(
            capacity=2, spool_dir=tmp_path / "w", batch_scoring=True
        ) as fm:
            for dev, spec in specs.items():
                fm.add_device(dev, spec)
            out = fm.submit_many(
                [(dev, streams[dev].X[:30], streams[dev].y[:30]) for dev in specs]
            )
            assert [len(recs) for recs in out] == [30] * 5
            assert len(fm.resident) <= 2
            # 5 devices through capacity-2 windows -> 3 windows of GEMMs
            assert fm.stats.batch_groups == 3
            assert fm.stats.batched_samples == 150


class TestFleetStatsBatchFields:
    def test_json_roundtrip_and_merge(self):
        stats = FleetStats(batch_groups=2, batched_samples=100, fallback_samples=7)
        clone = FleetStats.from_json(stats.to_json())
        assert (clone.batch_groups, clone.batched_samples, clone.fallback_samples) == (
            2, 100, 7,
        )
        clone.merge(stats)
        assert clone.batched_samples == 200 and clone.fallback_samples == 14
