"""Unit tests for the ``python -m repro`` experiment CLI."""

from __future__ import annotations

import pytest

from repro.cli import COMMANDS, main


class TestArgParsing:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            main([])

    def test_all_commands_registered(self):
        assert set(COMMANDS) == {
            "table2", "table3", "table4", "table5", "table6", "fig1"
        }


class TestFastCommands:
    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "Quant Tree" in out and "SPLL" in out and "Proposed" in out
        assert "NO" in out and "yes" in out  # Pico feasibility column

    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "Label prediction" in out
        assert "148.87" in out  # paper column present

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        for kind in ("sudden", "gradual", "incremental", "reoccurring"):
            assert kind in out


@pytest.mark.slow
class TestStreamCommands:
    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Window size = 10" in out
        assert "Reoccurring" in out

    def test_table2_reduced(self, capsys):
        assert main(["table2", "--reduced"]) == 0
        out = capsys.readouterr().out
        assert "ONLAD" in out and "accuracy %" in out

    def test_table5(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "estimated Pi4 s" in out
