"""Unit tests for the ``python -m repro`` experiment CLI."""

from __future__ import annotations

import json

import pytest

import repro
from repro.cli import COMMANDS, main
from repro.telemetry import get_telemetry


class TestArgParsing:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            main([])

    def test_all_commands_registered(self):
        assert set(COMMANDS) == {
            "table2", "table3", "table4", "table5", "table6", "fig1", "fleet",
            "audit", "serve",
        }

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"


class TestFastCommands:
    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "Quant Tree" in out and "SPLL" in out and "Proposed" in out
        assert "NO" in out and "yes" in out  # Pico feasibility column

    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "Label prediction" in out
        assert "148.87" in out  # paper column present

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        for kind in ("sudden", "gradual", "incremental", "reoccurring"):
            assert kind in out


class TestTinyStreamCommands:
    """End-to-end smoke of the streaming tables on ``--tiny`` streams
    (seconds, through the chunked runner — not faithful numbers)."""

    def test_table2_tiny(self, capsys):
        assert main(["table2", "--tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "stream 1500" in out
        for method in ("Quant Tree", "SPLL", "Baseline", "ONLAD", "Proposed"):
            assert method in out

    def test_table3_tiny(self, capsys):
        assert main(["table3", "--tiny"]) == 0
        out = capsys.readouterr().out
        assert "Window size = 10" in out
        assert "Sudden" in out and "Reoccurring" in out

    def test_table5_tiny(self, capsys):
        assert main(["table5", "--tiny"]) == 0
        out = capsys.readouterr().out
        assert "300-sample fan stream" in out
        assert "estimated Pi4 s" in out


class TestTelemetryFlags:
    def test_telemetry_writes_jsonl_and_restores_hub(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["table3", "--tiny", "--telemetry", str(path)]) == 0
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert lines  # events were captured
        assert {"event", "seq", "t"} <= set(lines[0])
        assert any(ln["event"] == "drift_detected" for ln in lines)
        # main() must leave the process-wide hub as it found it
        hub = get_telemetry()
        assert not hub.enabled and hub.sinks == [] and len(hub.registry) == 0

    def test_telemetry_summary_printed(self, capsys):
        assert main(["table3", "--tiny", "--telemetry-summary"]) == 0
        out = capsys.readouterr().out
        assert "drift_detected" in out
        assert "Span timings" in out
        assert not get_telemetry().enabled

    def test_no_flags_leave_hub_untouched(self, capsys):
        assert main(["table4"]) == 0
        assert not get_telemetry().enabled


@pytest.mark.slow
class TestStreamCommands:
    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Window size = 10" in out
        assert "Reoccurring" in out

    def test_table2_reduced(self, capsys):
        assert main(["table2", "--reduced"]) == 0
        out = capsys.readouterr().out
        assert "ONLAD" in out and "accuracy %" in out

    def test_table5(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "estimated Pi4 s" in out


class TestAuditCommand:
    def trace(self, tmp_path) -> str:
        path = tmp_path / "trace.jsonl"
        events = [
            {"event": "drift_audit", "device": "dev-3", "index": 100,
             "distance": 0.5, "threshold": 0.3, "recovered": True,
             "outcome": "recovered", "recovery_index": 140,
             "recovery_samples": 40, "recon_seconds": 0.01,
             "ladder_level": None},
            {"event": "drift_detected", "index": 100},
        ]
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        return str(path)

    def test_audit_renders_report(self, tmp_path, capsys):
        assert main(["audit", self.trace(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "drift audit" in out and "dev-3" in out

    def test_audit_requires_a_path(self, capsys):
        with pytest.raises(SystemExit):
            main(["audit"])

    def test_path_rejected_for_other_commands(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["table4", self.trace(tmp_path)])

    def test_audit_excluded_from_all(self):
        from repro.cli import cmd_audit, cmd_fleet

        # 'all' must never require a trace file or spin up a fleet.
        targets = [n for n in COMMANDS if n not in ("fleet", "audit")]
        assert cmd_audit not in [COMMANDS[n] for n in targets]
        assert cmd_fleet not in [COMMANDS[n] for n in targets]


class TestFleetObservabilityFlags:
    FAST = [
        "fleet", "--devices", "4", "--capacity", "2",
        "--fleet-samples", "60", "--fleet-chunk", "30",
    ]

    def test_serve_metrics_scrapes_during_soak(self, monkeypatch, capsys):
        import socket
        import urllib.request

        import repro.fleet as fleet_pkg
        from repro.telemetry import lint_prometheus

        real_soak = fleet_pkg.run_fleet_soak
        with socket.socket() as s:  # a port known before the CLI prints it
            s.bind(("127.0.0.1", 0))
            port = s.getsockname()[1]
        url = f"http://127.0.0.1:{port}"
        captured = {}

        def spying_soak(*args, **kwargs):
            inner = kwargs.get("manager_hook")

            def hook(fm):
                if inner is not None:
                    inner(fm)
                # The devices are registered and the server is live:
                # scrape every endpoint mid-run.
                with urllib.request.urlopen(url + "/metrics", timeout=10) as r:
                    captured["metrics"] = r.read().decode()
                with urllib.request.urlopen(url + "/health", timeout=10) as r:
                    captured["health"] = json.loads(r.read().decode())
                with urllib.request.urlopen(url + "/fleet", timeout=10) as r:
                    captured["fleet"] = json.loads(r.read().decode())

            kwargs["manager_hook"] = hook
            return real_soak(*args, **kwargs)

        monkeypatch.setattr(fleet_pkg, "run_fleet_soak", spying_soak)
        assert main(self.FAST + ["--serve-metrics", str(port)]) == 0
        out = capsys.readouterr().out
        assert f"serving metrics on {url}" in out
        assert "Fleet soak report" in out
        assert lint_prometheus(captured["metrics"]) == []
        assert captured["health"]["status"] == "ok"
        assert captured["fleet"]["devices"] == 4

    def test_sharded_fleet_reports_aggregate_totals(self, capsys):
        assert main(self.FAST + ["--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 shards" in out
        assert "shards" in out and "drifts" in out
        # Aggregate totals surfaced from the workers, not parent-side zeros.
        assert "960" in out or "240" in out  # samples row (4 devices x 60)

    def test_serve_metrics_rejected_off_fleet(self):
        with pytest.raises(SystemExit):
            main(["table4", "--serve-metrics", "0"])

    def test_hub_restored_after_serve_metrics(self, capsys):
        before = get_telemetry().enabled
        assert main(self.FAST + ["--serve-metrics", "0"]) == 0
        assert get_telemetry().enabled == before
