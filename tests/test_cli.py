"""Unit tests for the ``python -m repro`` experiment CLI."""

from __future__ import annotations

import json

import pytest

import repro
from repro.cli import COMMANDS, main
from repro.telemetry import get_telemetry


class TestArgParsing:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            main([])

    def test_all_commands_registered(self):
        assert set(COMMANDS) == {
            "table2", "table3", "table4", "table5", "table6", "fig1", "fleet"
        }

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"


class TestFastCommands:
    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "Quant Tree" in out and "SPLL" in out and "Proposed" in out
        assert "NO" in out and "yes" in out  # Pico feasibility column

    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "Label prediction" in out
        assert "148.87" in out  # paper column present

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        for kind in ("sudden", "gradual", "incremental", "reoccurring"):
            assert kind in out


class TestTinyStreamCommands:
    """End-to-end smoke of the streaming tables on ``--tiny`` streams
    (seconds, through the chunked runner — not faithful numbers)."""

    def test_table2_tiny(self, capsys):
        assert main(["table2", "--tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "stream 1500" in out
        for method in ("Quant Tree", "SPLL", "Baseline", "ONLAD", "Proposed"):
            assert method in out

    def test_table3_tiny(self, capsys):
        assert main(["table3", "--tiny"]) == 0
        out = capsys.readouterr().out
        assert "Window size = 10" in out
        assert "Sudden" in out and "Reoccurring" in out

    def test_table5_tiny(self, capsys):
        assert main(["table5", "--tiny"]) == 0
        out = capsys.readouterr().out
        assert "300-sample fan stream" in out
        assert "estimated Pi4 s" in out


class TestTelemetryFlags:
    def test_telemetry_writes_jsonl_and_restores_hub(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["table3", "--tiny", "--telemetry", str(path)]) == 0
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert lines  # events were captured
        assert {"event", "seq", "t"} <= set(lines[0])
        assert any(ln["event"] == "drift_detected" for ln in lines)
        # main() must leave the process-wide hub as it found it
        hub = get_telemetry()
        assert not hub.enabled and hub.sinks == [] and len(hub.registry) == 0

    def test_telemetry_summary_printed(self, capsys):
        assert main(["table3", "--tiny", "--telemetry-summary"]) == 0
        out = capsys.readouterr().out
        assert "drift_detected" in out
        assert "Span timings" in out
        assert not get_telemetry().enabled

    def test_no_flags_leave_hub_untouched(self, capsys):
        assert main(["table4"]) == 0
        assert not get_telemetry().enabled


@pytest.mark.slow
class TestStreamCommands:
    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Window size = 10" in out
        assert "Reoccurring" in out

    def test_table2_reduced(self, capsys):
        assert main(["table2", "--reduced"]) == 0
        out = capsys.readouterr().out
        assert "ONLAD" in out and "accuracy %" in out

    def test_table5(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "estimated Pi4 s" in out
