"""Unit tests for SequentialDriftDetector — Algorithm 1's state machine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CentroidSet, SequentialDriftDetector
from repro.utils.exceptions import ConfigurationError


def make_detector(window=5, theta_error=1.0, theta_drift=3.0, counts=(1, 1)):
    cents = CentroidSet(np.array([[0.0, 0.0], [10.0, 10.0]]), np.array(counts))
    return SequentialDriftDetector(
        cents, window_size=window, theta_error=theta_error, theta_drift=theta_drift
    )


class TestConstruction:
    def test_initial_state(self):
        det = make_detector()
        assert not det.drift and not det.check
        assert det.window_count == 0

    def test_requires_centroid_set(self):
        with pytest.raises(ConfigurationError):
            SequentialDriftDetector(
                np.zeros((2, 2)), window_size=5, theta_error=1.0, theta_drift=1.0
            )

    def test_invalid_window(self):
        cents = CentroidSet(np.zeros((1, 2)), np.array([1]))
        with pytest.raises(ConfigurationError):
            SequentialDriftDetector(cents, window_size=0, theta_error=1.0, theta_drift=1.0)


class TestWindowTrigger:
    def test_low_error_keeps_idle(self):
        det = make_detector(theta_error=1.0)
        step = det.update(np.zeros(2), 0, error=0.5)
        assert not step.checking and step.window_count == 0
        # Idle samples never touch the centroids (Algorithm 1 gates the
        # update on check=True).
        assert det.centroids.drift_distance() == 0.0

    def test_high_error_opens_window(self):
        det = make_detector(theta_error=1.0)
        step = det.update(np.zeros(2), 0, error=2.0)
        assert step.checking
        assert step.window_count == 1
        assert det.n_windows_opened == 1

    def test_threshold_is_inclusive(self):
        det = make_detector(theta_error=1.0)
        assert det.update(np.zeros(2), 0, error=1.0).checking  # line 8: >=

    def test_window_not_retriggered_while_open(self):
        det = make_detector(window=5, theta_error=1.0)
        det.update(np.zeros(2), 0, error=2.0)
        det.update(np.zeros(2), 0, error=2.0)
        assert det.n_windows_opened == 1

    def test_window_samples_update_centroids(self):
        det = make_detector(window=5, theta_error=1.0, counts=(1, 1))
        det.update(np.array([2.0, 0.0]), 0, error=2.0)
        assert det.centroids.counts[0] == 2
        assert det.centroids.drift_distance() > 0


class TestDriftDecision:
    def test_drift_fires_at_window_end_when_far(self):
        det = make_detector(window=3, theta_error=0.5, theta_drift=2.0)
        steps = [det.update(np.array([5.0, 5.0]), 0, error=1.0) for _ in range(3)]
        assert not steps[0].drift_detected and not steps[1].drift_detected
        assert steps[2].drift_detected
        assert det.drift
        assert det.n_drifts == 1

    def test_no_drift_when_distance_small(self):
        det = make_detector(window=3, theta_error=0.5, theta_drift=100.0)
        steps = [det.update(np.array([1.0, 0.0]), 0, error=1.0) for _ in range(3)]
        assert not steps[2].drift_detected
        assert not det.drift
        assert not det.check  # window closed (line 19)

    def test_window_count_zero_after_negative_check(self):
        """Regression: ``window_count`` documents "0 when idle" — a window
        that closes *without* drift must reset ``win``, not leave it at W."""
        det = make_detector(window=3, theta_error=0.5, theta_drift=100.0)
        steps = [det.update(np.array([1.0, 0.0]), 0, error=1.0) for _ in range(3)]
        assert not steps[2].checking and not steps[2].drifting  # idle again
        assert steps[2].window_count == 0
        assert det.window_count == 0

    def test_window_can_reopen_after_negative_check(self):
        det = make_detector(window=2, theta_error=0.5, theta_drift=100.0)
        for _ in range(2):
            det.update(np.array([1.0, 0.0]), 0, error=1.0)
        det.update(np.zeros(2), 0, error=1.0)
        assert det.n_windows_opened == 2

    def test_detector_inert_while_drifting(self):
        det = make_detector(window=2, theta_error=0.5, theta_drift=1.0)
        for _ in range(2):
            det.update(np.array([9.0, 9.0]), 0, error=1.0)
        assert det.drift
        counts_before = det.centroids.counts.copy()
        step = det.update(np.array([9.0, 9.0]), 0, error=1.0)
        assert step.drifting and not step.drift_detected
        np.testing.assert_array_equal(det.centroids.counts, counts_before)

    def test_end_drift_resets_flags(self):
        det = make_detector(window=2, theta_error=0.5, theta_drift=1.0)
        for _ in range(2):
            det.update(np.array([9.0, 9.0]), 0, error=1.0)
        det.end_drift()
        assert not det.drift and not det.check and det.window_count == 0

    def test_distance_reported(self):
        det = make_detector(window=3, theta_error=0.5, theta_drift=100.0)
        step = det.update(np.array([4.0, 0.0]), 0, error=1.0)
        assert step.distance == pytest.approx(det.centroids.drift_distance())

    def test_drift_threshold_inclusive(self):
        # Engineer dist to land exactly on theta_drift: counts=1,
        # window=1, sample at (4, 0) → recent[0]=(2,0) → dist=2.
        det = make_detector(window=1, theta_error=0.5, theta_drift=2.0, counts=(1, 1))
        step = det.update(np.array([4.0, 0.0]), 0, error=1.0)
        assert step.drift_detected  # line 17: >=


class TestMemory:
    def test_state_is_centroids_plus_scalars(self):
        det = make_detector()
        assert det.state_nbytes() == det.centroids.state_nbytes() + 48

    def test_memory_constant_over_stream(self, rng):
        det = make_detector(window=10, theta_error=0.0, theta_drift=1e9)
        before = det.state_nbytes()
        for _ in range(500):
            det.update(rng.random(2), int(rng.integers(2)), error=1.0)
        assert det.state_nbytes() == before  # never stores samples
