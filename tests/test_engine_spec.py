"""The declarative layer: registries, ExperimentSpec, layering, CLI specs.

Pins the refactor's contracts:

* registry lookups fail loudly, listing every registered key;
* ``ExperimentSpec`` JSON round-trips losslessly and hashes stably;
* building the same spec twice yields byte-identical record streams;
* the engine's import layering holds (``tools/check_layering.py``);
* ``python -m repro spec file.json`` runs experiments from a JSON file.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import (
    DATASET_FACTORIES,
    PIPELINE_BUILDERS,
    ExperimentSpec,
    build_experiment,
    register_dataset,
    register_pipeline,
    resolve_dataset,
    resolve_detector,
    resolve_pipeline,
)
from repro.metrics import evaluate_method
from repro.utils.exceptions import ConfigurationError

REPO = Path(__file__).resolve().parent.parent

BLOBS_SPEC = dict(
    name="cell",
    pipeline="proposed",
    dataset="blobs",
    seed=0,
    model_seed=1,
    pipeline_kwargs={"window_size": 60},
    dataset_kwargs={"n_test": 600, "drift_at": 200},
)


class TestRegistry:
    def test_builtin_population(self):
        assert {"proposed", "baseline", "onlad", "quanttree", "spll", "hdddm"} <= set(
            PIPELINE_BUILDERS
        )
        assert {"nslkdd", "coolingfan", "blobs"} <= set(DATASET_FACTORIES)

    def test_unknown_pipeline_lists_registered_keys(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_pipeline("no-such-method")
        message = str(excinfo.value)
        assert "'no-such-method'" in message
        for key in sorted(PIPELINE_BUILDERS):
            assert key in message
        assert "module:callable" in message

    def test_unknown_dataset_lists_registered_keys(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_dataset("no-such-stream")
        for key in sorted(DATASET_FACTORIES):
            assert key in str(excinfo.value)

    def test_unknown_detector_lists_registered_keys(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_detector("no-such-detector")
        assert "sequential" in str(excinfo.value)

    def test_module_callable_fallback(self):
        builder = resolve_pipeline("repro.core.factory:build_proposed")
        from repro.core.factory import build_proposed

        assert builder is build_proposed

    def test_decorator_registration_and_duplicate_guard(self):
        @register_pipeline("_test_engine_spec_tmp")
        def _builder(X, y, *, seed=None):  # pragma: no cover - never built
            raise AssertionError

        try:
            assert resolve_pipeline("_test_engine_spec_tmp") is _builder
            # same object re-registration is idempotent
            register_pipeline("_test_engine_spec_tmp", _builder)
            with pytest.raises(ConfigurationError, match="already registered"):
                register_pipeline("_test_engine_spec_tmp", lambda X, y: None)
            register_pipeline("_test_engine_spec_tmp", _builder, overwrite=True)
        finally:
            PIPELINE_BUILDERS.pop("_test_engine_spec_tmp", None)

    def test_parallel_aliases_are_the_same_dicts(self):
        from repro.metrics.parallel import METHOD_BUILDERS, STREAM_FACTORIES

        assert METHOD_BUILDERS is PIPELINE_BUILDERS
        assert STREAM_FACTORIES is DATASET_FACTORIES


class TestExperimentSpec:
    def test_json_round_trip_is_lossless(self):
        spec = ExperimentSpec(**BLOBS_SPEC, n_test=500, chunk_size=64,
                              guard_policy="clip")
        # through an actual serialized string, not just dicts
        clone = ExperimentSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert clone == spec
        assert clone.config_hash() == spec.config_hash()
        assert clone.to_json() == spec.to_json()

    def test_round_trip_of_minimal_spec(self):
        spec = ExperimentSpec(name="m", pipeline="proposed", dataset="blobs")
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="pipeline_kwargz"):
            ExperimentSpec.from_json(
                {"name": "x", "pipeline": "proposed", "dataset": "blobs",
                 "pipeline_kwargz": {}}
            )

    def test_from_json_requires_identity_fields(self):
        with pytest.raises(ConfigurationError, match="dataset"):
            ExperimentSpec.from_json({"name": "x", "pipeline": "proposed"})

    def test_hash_ignores_name_but_not_params(self):
        a = ExperimentSpec(**BLOBS_SPEC)
        b = a.replace(name="other display name")
        c = a.replace(pipeline_kwargs={"window_size": 61})
        assert a.config_hash() == b.config_hash()
        assert a.config_hash() != c.config_hash()

    def test_model_seed_defaults_to_seed(self):
        assert ExperimentSpec(name="x", pipeline="p", dataset="d",
                              seed=7).effective_model_seed == 7
        assert ExperimentSpec(name="x", pipeline="p", dataset="d", seed=7,
                              model_seed=3).effective_model_seed == 3

    def test_legacy_aliases(self):
        spec = ExperimentSpec(**BLOBS_SPEC)
        assert spec.method == spec.pipeline
        assert spec.stream == spec.dataset
        assert spec.method_kwargs is spec.pipeline_kwargs
        assert spec.stream_kwargs is spec.dataset_kwargs


class TestBuildExperiment:
    def test_same_spec_twice_is_byte_identical(self):
        spec = ExperimentSpec(**BLOBS_SPEC)
        runs = []
        for _ in range(2):
            experiment = build_experiment(spec)
            result = evaluate_method(experiment.pipeline, experiment.test,
                                     name=spec.name)
            runs.append(result.records)
        assert runs[0] == runs[1]

    def test_n_test_truncates_stream(self):
        spec = ExperimentSpec(**{**BLOBS_SPEC, "n_test": 250})
        assert len(build_experiment(spec).test) == 250

    def test_guard_policy_attaches_guard(self):
        spec = ExperimentSpec(**BLOBS_SPEC).replace(guard_policy="clip")
        experiment = build_experiment(spec)
        assert experiment.guard is not None
        assert experiment.pipeline.guard is experiment.guard

    def test_custom_registered_dataset_runs(self):
        @register_dataset("_test_engine_spec_ds")
        def _tiny(**kwargs):
            return DATASET_FACTORIES["blobs"](n_test=300, drift_at=100,
                                              seed=kwargs.get("seed", 0))

        try:
            spec = ExperimentSpec(name="c", pipeline="baseline",
                                  dataset="_test_engine_spec_ds")
            records = build_experiment(spec).run()
            assert len(records) == 300
        finally:
            DATASET_FACTORIES.pop("_test_engine_spec_ds", None)


class TestCliModelSeed:
    def test_model_seed_flag_threads_into_specs(self):
        import argparse

        from repro.cli import _spec

        args = argparse.Namespace(seed=3, model_seed=9, guard_policy=None)
        spec = _spec(args, name="x", pipeline="proposed", dataset="blobs")
        assert spec.seed == 3
        assert spec.model_seed == 9
        assert spec.effective_model_seed == 9

    def test_model_seed_default_is_one(self):
        # the paper tables fix the model seed at 1 while --seed moves data
        import argparse

        from repro.cli import main

        parser_default = None

        def fake_table4(args):
            nonlocal parser_default
            parser_default = args.model_seed

        from repro import cli

        original = cli.COMMANDS["table4"]
        cli.COMMANDS["table4"] = fake_table4
        try:
            assert main(["table4"]) == 0
        finally:
            cli.COMMANDS["table4"] = original
        assert parser_default == 1


class TestLayering:
    def test_check_layering_passes(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_layering.py")],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "layering check OK" in proc.stdout


class TestCliSpecCommand:
    def _write_spec(self, tmp_path: Path) -> Path:
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"experiments": [
            {"name": "Tiny proposed", "pipeline": "proposed",
             "dataset": "blobs", "seed": 0, "model_seed": 1,
             "pipeline_kwargs": {"window_size": 60},
             "dataset_kwargs": {"n_test": 500, "drift_at": 150}},
        ]}))
        return path

    def test_spec_file_runs_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["spec", str(self._write_spec(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "Spec run" in out and "Tiny proposed" in out
        assert "proposed @ blobs" in out

    def test_single_object_spec_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "one.json"
        path.write_text(json.dumps(
            {"name": "Solo", "pipeline": "baseline", "dataset": "blobs",
             "dataset_kwargs": {"n_test": 300, "drift_at": 100}}
        ))
        assert main(["spec", str(path)]) == 0
        assert "Solo" in capsys.readouterr().out

    def test_spec_command_requires_path(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["spec"])

    def test_spec_path_rejected_for_table_commands(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["table4", "whatever.json"])

    def test_bad_spec_field_fails_loudly(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"name": "x", "pipeline": "proposed", "dataset": "blobs",
             "pipline_kwargs": {}}
        ))
        with pytest.raises(ConfigurationError, match="pipline_kwargs"):
            main(["spec", str(path)])
