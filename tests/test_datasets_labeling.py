"""Unit tests for the unsupervised initial-labelling step (§3.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import cluster_label
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def separable(rng):
    a = rng.normal([0, 0, 0], 0.1, (60, 3))
    b = rng.normal([3, 3, 3], 0.1, (60, 3))
    idx = rng.permutation(120)
    return np.concatenate([a, b])[idx]


class TestClusterLabel:
    def test_labels_cover_all_clusters(self, separable):
        cl = cluster_label(separable, 2, seed=0)
        assert set(np.unique(cl.labels)) == {0, 1}
        assert cl.centers.shape == (2, 3)

    def test_labels_match_geometry(self, separable):
        cl = cluster_label(separable, 2, seed=0)
        # Samples near (0,0,0) share one label, samples near (3,3,3) the other.
        near_origin = separable.sum(axis=1) < 4.5
        lab0 = cl.labels[near_origin]
        lab1 = cl.labels[~near_origin]
        assert (lab0 == lab0[0]).all()
        assert (lab1 == lab1[0]).all()
        assert lab0[0] != lab1[0]

    def test_separation_low_for_separable_data(self, separable):
        cl = cluster_label(separable, 2, seed=0)
        assert cl.separation < 0.2
        assert cl.is_reliable()

    def test_separation_high_for_unclustered_data(self, rng):
        X = rng.normal(size=(200, 3))
        cl = cluster_label(X, 2, seed=0)
        assert cl.separation > 0.4

    def test_too_few_samples(self):
        with pytest.raises(ConfigurationError):
            cluster_label(np.ones((3, 2)), 2)

    def test_reproducible(self, separable):
        a = cluster_label(separable, 2, seed=3)
        b = cluster_label(separable, 2, seed=3)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_integration_with_proposed_pipeline(self, separable, rng):
        """The §3.2 unsupervised flow end-to-end: cluster-label the
        training window, build the proposed pipeline on the pseudo-labels,
        and detect a drift."""
        from repro.core import build_proposed
        from repro.datasets import DataStream

        cl = cluster_label(separable, 2, seed=0)
        pipe = build_proposed(
            separable, cl.labels, window_size=20, n_hidden=6,
            reconstruction_samples=60, seed=1,
        )
        drifted = separable + 2.0
        test = DataStream(
            np.concatenate([separable, drifted]),
            np.zeros(240, dtype=np.int64),
            drift_points=(120,),
        )
        records = pipe.run(test)
        det = [r.index for r in records if r.drift_detected]
        assert det and det[0] >= 120
