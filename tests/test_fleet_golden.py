"""Fleet golden-equivalence: evict + restore must be byte-invisible.

The fleet's core promise mirrors the crash-safety golden suite: a device
whose session is LRU-evicted to a spool checkpoint and lazily restored
mid-stream produces a record list **byte-for-byte identical** to the
same spec running alone through ``Experiment.run`` — same predictions,
same float64 anomaly scores to the last bit. Enforced for every
registered pipeline family by pairing devices against a capacity-1
manager so *every* alternation is an evict + restore.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ExperimentSpec, build_experiment
from repro.fleet import FleetManager

#: every pipeline family the registry knows, with small fast kwargs
PIPELINES = {
    "proposed": {"window_size": 60},
    "baseline": {},
    "onlad": {"forgetting_factor": 0.95},
    "quanttree": {"batch_size": 100, "n_bins": 8},
    "spll": {"batch_size": 100},
}

N_TEST = 240
FEED = 60  # four arrivals per device -> three evict/restore cycles each


def _spec(pipeline: str, seed: int, **extra) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"{pipeline}-{seed}",
        pipeline=pipeline,
        dataset="blobs",
        seed=seed,
        model_seed=5,
        pipeline_kwargs=PIPELINES[pipeline],
        dataset_kwargs={"n_test": N_TEST, "drift_at": 150},
        **extra,
    )


def _assert_identical(a, b):
    assert len(a) == len(b)
    assert a == b
    sa = np.array([r.anomaly_score for r in a], dtype=np.float64)
    sb = np.array([r.anomaly_score for r in b], dtype=np.float64)
    assert sa.tobytes() == sb.tobytes()


def _churn(specs, tmp_path, capacity=1):
    """Alternate chunks between the devices so each submit is a miss."""
    streams = {dev: build_experiment(spec).test for dev, spec in specs.items()}
    with FleetManager(capacity=capacity, spool_dir=tmp_path / "spool") as fm:
        for dev, spec in specs.items():
            fm.add_device(dev, spec)
        for start in range(0, N_TEST, FEED):
            for dev in specs:
                s = streams[dev]
                fm.submit(dev, s.X[start : start + FEED], s.y[start : start + FEED])
        per_device = fm.finish_all()
        stats = fm.stats
    return per_device, stats


@pytest.mark.parametrize("pipeline", sorted(PIPELINES))
def test_evicted_device_matches_standalone_run(pipeline, tmp_path):
    specs = {f"dev{i}": _spec(pipeline, seed=20 + i) for i in range(2)}
    per_device, stats = _churn(specs, tmp_path)
    assert stats.evictions >= len(specs) * (N_TEST // FEED) - 2
    assert stats.restores >= stats.evictions - len(specs)
    for dev, spec in specs.items():
        _assert_identical(build_experiment(spec).run(), per_device[dev])


def test_guarded_device_round_trips_guard_state(tmp_path):
    specs = {
        f"dev{i}": _spec("proposed", seed=30 + i, guard_policy="impute_last_good")
        for i in range(2)
    }
    per_device, stats = _churn(specs, tmp_path)
    assert stats.restores > 0
    for dev, spec in specs.items():
        _assert_identical(build_experiment(spec).run(), per_device[dev])


def test_mixed_fleet_under_churn(tmp_path):
    """One device per family sharing a capacity-2 LRU."""
    specs = {
        f"{name}-dev": _spec(name, seed=40 + i)
        for i, name in enumerate(sorted(PIPELINES))
    }
    per_device, stats = _churn(specs, tmp_path, capacity=2)
    assert stats.max_resident == 2
    assert stats.evictions > 0
    for dev, spec in specs.items():
        _assert_identical(build_experiment(spec).run(), per_device[dev])
