"""Integration tests: the five methods end-to-end on a reduced NSL-KDD-like
stream — the Table 2 / Figure 4 experiment at 1/6 scale.

These assert the *shape* of the paper's results: method ordering, drift
response, and delay relationships — not absolute values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    build_baseline,
    build_onlad,
    build_proposed,
    build_quanttree_pipeline,
    build_spll_pipeline,
)
from repro.datasets import NSLKDDConfig, make_nslkdd_like
from repro.metrics import compare_methods, evaluate_method, segment_accuracy

DRIFT_AT = 1500


@pytest.fixture(scope="module")
def streams():
    cfg = NSLKDDConfig(n_train=600, n_test=4500, drift_at=DRIFT_AT)
    return make_nslkdd_like(cfg, seed=0)


@pytest.fixture(scope="module")
def results(streams):
    train, test = streams
    builders = {
        "quanttree": lambda: build_quanttree_pipeline(
            train.X, train.y, batch_size=300, n_bins=16, seed=1
        ),
        "spll": lambda: build_spll_pipeline(train.X, train.y, batch_size=300, seed=1),
        "baseline": lambda: build_baseline(train.X, train.y, seed=1),
        "onlad": lambda: build_onlad(train.X, train.y, forgetting_factor=0.97, seed=1),
        "proposed": lambda: build_proposed(train.X, train.y, window_size=100, seed=1),
    }
    return compare_methods(builders, test)


class TestTable2Shape:
    def test_adaptive_methods_beat_frozen_baseline(self, results):
        for name in ("quanttree", "spll", "proposed"):
            assert results[name].accuracy > results["baseline"].accuracy, name

    def test_proposed_close_to_batch_methods(self, results):
        """Paper: proposed loses at most a few points to QuantTree/SPLL."""
        best_batch = max(results["quanttree"].accuracy, results["spll"].accuracy)
        assert results["proposed"].accuracy > best_batch - 0.08

    def test_all_active_methods_detect_the_drift(self, results):
        for name in ("quanttree", "spll", "proposed"):
            assert results[name].first_delay is not None, name

    def test_batch_methods_detect_faster(self, results):
        """Paper: the proposed method 'needed more samples to detect the
        concept drift compared to the batch-based' methods."""
        batch_delay = min(results["quanttree"].first_delay, results["spll"].first_delay)
        assert results["proposed"].first_delay >= batch_delay

    def test_baseline_never_detects(self, results):
        assert results["baseline"].delay.detections == ()

    def test_memory_ordering(self, results):
        assert (
            results["proposed"].detector_nbytes
            < results["quanttree"].detector_nbytes
            < results["spll"].detector_nbytes
        )


class TestFigure4Shape:
    def test_baseline_accuracy_drops_at_drift(self, results):
        pre, post = segment_accuracy(results["baseline"].records, [DRIFT_AT])
        assert pre > 0.9
        assert post < pre - 0.1

    def test_proposed_recovers_after_detection(self, results):
        res = results["proposed"]
        det = res.first_delay + DRIFT_AT
        recon_end = det + 450  # reconstruction budget + margin
        pre, dip, post = segment_accuracy(res.records, [DRIFT_AT, recon_end])
        assert post > dip
        assert post > 0.85

    def test_accuracy_curves_well_formed(self, results):
        for res in results.values():
            pos, acc = res.accuracy_curve(window=300)
            assert np.isfinite(acc).all()
            assert len(pos) == len(res.records) - 299


class TestWindowSizeSweep:
    def test_larger_windows_do_not_detect_faster(self, streams):
        """Table 2: delay grows (weakly) with window size."""
        train, test = streams
        delays = {}
        for W in (50, 400):
            p = build_proposed(train.X, train.y, window_size=W, seed=1)
            delays[W] = evaluate_method(p, test).first_delay
        assert delays[400] is None or delays[50] is None or delays[50] <= delays[400]

    def test_detection_reproducible(self, streams):
        train, test = streams
        a = evaluate_method(
            build_proposed(train.X, train.y, window_size=100, seed=5), test
        )
        b = evaluate_method(
            build_proposed(train.X, train.y, window_size=100, seed=5), test
        )
        assert a.delay.detections == b.delay.detections
        assert a.accuracy == b.accuracy
