"""Failure-injection tests: the library must refuse corrupted input at
every boundary rather than propagate it into sequential state.

On a microcontroller a NaN that slips into the RLS recursion poisons the
model *permanently* (there is no re-fit from scratch); these tests verify
that every public entry point that streams data rejects non-finite input,
mismatched dimensionality, and lifecycle misuse — and that rejected calls
leave state untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CentroidSet, SequentialDriftDetector, build_proposed
from repro.datasets import DataStream
from repro.oselm import MultiInstanceModel, OSELM
from repro.utils.exceptions import DataValidationError


NAN_SAMPLE = np.array([0.1, np.nan, 0.3, 0.4, 0.5, 0.6])
INF_SAMPLE = np.array([0.1, np.inf, 0.3, 0.4, 0.5, 0.6])


class TestNaNRejection:
    def test_oselm_fit_rejects_nan(self, rng):
        m = OSELM(3, 4, 3, seed=0)
        X = rng.normal(size=(10, 3))
        X[3, 1] = np.nan
        with pytest.raises(DataValidationError):
            m.fit_initial(X, X)

    def test_oselm_partial_fit_one_rejects_nan_and_preserves_state(self, rng):
        m = OSELM(3, 4, 3, seed=0)
        X = rng.normal(size=(10, 3))
        m.fit_initial(X, X)
        beta_before = m.beta.copy()
        with pytest.raises(Exception):
            m.partial_fit_one(np.array([1.0, np.nan, 0.0]), np.zeros(3))
        np.testing.assert_array_equal(m.beta, beta_before)
        assert np.isfinite(m.P).all()

    def test_model_prediction_rejects_nan(self, trained_model):
        with pytest.raises(DataValidationError):
            trained_model.predict_one(NAN_SAMPLE)

    def test_model_training_rejects_inf(self, trained_model):
        seen = [i.n_samples_seen for i in trained_model.instances]
        with pytest.raises(DataValidationError):
            trained_model.partial_fit_one(INF_SAMPLE)
        assert [i.n_samples_seen for i in trained_model.instances] == seen

    def test_centroid_update_rejects_nan(self):
        c = CentroidSet(np.zeros((2, 6)), np.array([1, 1]))
        with pytest.raises(DataValidationError):
            c.update(0, NAN_SAMPLE)
        assert c.drift_distance() == 0.0

    def test_detector_update_rejects_nan_sample(self):
        c = CentroidSet(np.zeros((2, 6)), np.array([1, 1]))
        det = SequentialDriftDetector(c, window_size=5, theta_error=0.0, theta_drift=1.0)
        with pytest.raises(DataValidationError):
            det.update(NAN_SAMPLE, 0, error=1.0)

    def test_stream_construction_rejects_nan(self):
        X = np.ones((4, 3))
        X[2, 0] = np.nan
        with pytest.raises(DataValidationError):
            DataStream(X, np.zeros(4, dtype=int))

    def test_pipeline_rejects_nan_and_stays_usable(self, train_stream, drift_stream):
        pipe = build_proposed(
            train_stream.X, train_stream.y, window_size=20, n_hidden=4,
            reconstruction_samples=60, seed=0,
        )
        with pytest.raises(DataValidationError):
            pipe.process_one(NAN_SAMPLE, 0)
        # The rejected sample must not have corrupted anything: the
        # pipeline still runs the full stream and detects the drift.
        records = pipe.run(drift_stream)
        assert any(r.drift_detected for r in records)
        assert all(np.isfinite(r.anomaly_score) for r in records)


class TestDimensionMismatch:
    def test_model_wrong_width(self, trained_model):
        with pytest.raises(Exception):
            trained_model.predict_one(np.ones(9))

    def test_detector_wrong_width(self):
        c = CentroidSet(np.zeros((2, 6)), np.array([1, 1]))
        det = SequentialDriftDetector(c, window_size=5, theta_error=0.0, theta_drift=1.0)
        with pytest.raises(Exception):
            det.update(np.ones(4), 0, error=1.0)

    def test_batch_detector_wrong_width(self, rng):
        from repro.detectors import QuantTree

        qt = QuantTree(batch_size=10, n_bins=4, seed=0).fit_reference(
            rng.normal(size=(50, 6))
        )
        with pytest.raises(Exception):
            qt.update_one(np.ones(5))


class TestLifecycleMisuse:
    def test_everything_guards_unfitted_use(self, rng):
        from repro.clustering import GaussianMixture, KMeans
        from repro.detectors import SPLL, QuantTree
        from repro.oselm import OSELMAutoencoder
        from repro.utils.exceptions import NotFittedError

        X = rng.normal(size=(5, 3))
        for obj, call in [
            (OSELM(3, 4, 1, seed=0), lambda o: o.predict(X)),
            (OSELMAutoencoder(3, 2, seed=0), lambda o: o.score(X)),
            (MultiInstanceModel(3, 2, 2, seed=0), lambda o: o.predict(X)),
            (KMeans(2), lambda o: o.predict(X)),
            (GaussianMixture(2), lambda o: o.score_samples(X)),
            (QuantTree(batch_size=4), lambda o: o.detect_batch(X[:4])),
            (SPLL(batch_size=4), lambda o: o.detect_batch(X[:4])),
        ]:
            with pytest.raises(NotFittedError):
                call(obj)

    def test_long_stream_after_many_rejections(self, train_stream, rng):
        """Hammer the model with alternating bad/good samples; state must
        stay finite throughout."""
        model = MultiInstanceModel(6, 4, 2, seed=0).fit_initial(
            train_stream.X, train_stream.y
        )
        for i in range(200):
            if i % 3 == 0:
                with pytest.raises(Exception):
                    model.partial_fit_one(NAN_SAMPLE)
            else:
                model.partial_fit_one(rng.random(6))
        for inst in model.instances:
            assert np.isfinite(inst.core.beta).all()
            assert np.isfinite(inst.core.P).all()


class TestCheckpointCorruption:
    """Damaged checkpoints must raise CheckpointCorruptError — partial
    state never reaches a live pipeline."""

    @pytest.fixture()
    def saved_checkpoint(self, tmp_path, train_stream, drift_stream):
        from repro.resilience import InjectedCrash, crash_at

        pipe = build_proposed(
            train_stream.X, train_stream.y, window_size=20, n_hidden=4,
            reconstruction_samples=60, seed=0,
        )
        path = tmp_path / "run.ckpt"
        with pytest.raises(InjectedCrash):
            with crash_at(pipe, 80):
                pipe.run(drift_stream, checkpoint_every=16, checkpoint_path=path)
        return path

    def _fresh(self, train_stream):
        return build_proposed(
            train_stream.X, train_stream.y, window_size=20, n_hidden=4,
            reconstruction_samples=60, seed=0,
        )

    def test_truncated_checkpoint_refused(self, saved_checkpoint, train_stream, drift_stream):
        from repro.resilience import truncate_file
        from repro.utils.exceptions import CheckpointCorruptError

        truncate_file(saved_checkpoint)
        with pytest.raises(CheckpointCorruptError):
            self._fresh(train_stream).resume(drift_stream, saved_checkpoint)

    def test_bit_flipped_checkpoint_refused(self, saved_checkpoint, train_stream, drift_stream):
        from repro.resilience import flip_bit
        from repro.utils.exceptions import CheckpointCorruptError

        flip_bit(saved_checkpoint, 1234)
        with pytest.raises(CheckpointCorruptError):
            self._fresh(train_stream).resume(drift_stream, saved_checkpoint)

    def test_wrong_version_checkpoint_refused(self, saved_checkpoint, train_stream, drift_stream):
        from repro.resilience import FORMAT_VERSION, corrupt_version
        from repro.utils.exceptions import CheckpointVersionError

        corrupt_version(saved_checkpoint, FORMAT_VERSION + 7)
        with pytest.raises(CheckpointVersionError):
            self._fresh(train_stream).resume(drift_stream, saved_checkpoint)

    def test_refusal_leaves_pipeline_usable(self, saved_checkpoint, train_stream, drift_stream):
        from repro.resilience import flip_bit
        from repro.utils.exceptions import CheckpointCorruptError

        flip_bit(saved_checkpoint, 999)
        pipe = self._fresh(train_stream)
        with pytest.raises(CheckpointCorruptError):
            pipe.resume(drift_stream, saved_checkpoint)
        records = pipe.run(drift_stream)  # state untouched → still golden
        assert len(records) == len(drift_stream)
        assert all(np.isfinite(r.anomaly_score) for r in records)


class TestParallelRunnerCrashRecovery:
    """A grid cell killed mid-stream resumes from its checkpoint on the
    retry wave, with counters that tell the true story."""

    def _spec(self, tmp_path):
        from repro.metrics.parallel import CellSpec

        stream_kwargs = {"seed": 3, "n_test": 300, "drift_at": 120}
        crashing = CellSpec(
            name="Proposed (crashes once)",
            method="tests._resilience_helpers:crashing_builder",
            stream="blobs",
            seed=1,
            method_kwargs={
                "window_size": 30,
                "crash_marker": str(tmp_path / "crashed.marker"),
                "crash_step": 150,
            },
            stream_kwargs=stream_kwargs,
        )
        plain = CellSpec(
            name="Proposed (reference)",
            method="proposed",
            stream="blobs",
            seed=1,
            method_kwargs={"window_size": 30},
            stream_kwargs=stream_kwargs,
        )
        return crashing, plain

    def test_cell_resumes_after_kill_with_consistent_counters(self, tmp_path):
        from repro.metrics.parallel import ParallelRunner
        from repro.telemetry import configure, get_telemetry

        crashing, plain = self._spec(tmp_path)
        configure(enabled=True, sinks=[], reset=True)
        try:
            runner = ParallelRunner(
                cache_dir=tmp_path / "cache",
                checkpoint_dir=tmp_path / "ckpt",
                checkpoint_every=32,
                max_workers=1,  # inline: the injected crash stays in-process
                retries=1,
            )
            (result,) = runner.run([crashing])
            reg = get_telemetry().registry
            assert reg.get("parallel.cache_misses").total == 1
            assert reg.get("parallel.failures").total == 1
            assert reg.get("parallel.retry_waves").total == 1
            assert reg.get("parallel.cells_run").total == 1
            assert reg.get("parallel.resumes").total == 1
            assert reg.get("pipeline.resumes").total == 1
        finally:
            configure(enabled=False, sinks=[], reset=True)

        assert result.attempts == 2
        assert result.resumed_at is not None
        assert 0 < result.resumed_at <= 150
        # the checkpoint is spent once the cell completes
        assert list((tmp_path / "ckpt").glob("*.ckpt")) == []

        # identical numbers to a cell that never crashed
        reference = ParallelRunner(max_workers=1).run([plain])[0]
        assert result.accuracy == reference.accuracy
        assert result.delays == reference.delays
        assert result.detections == reference.detections
        assert result.n_records == reference.n_records

    def test_corrupt_cell_checkpoint_falls_back_to_fresh_run(self, tmp_path):
        from repro.metrics.parallel import ParallelRunner, run_cell
        from repro.resilience import flip_bit

        crashing, plain = self._spec(tmp_path)
        runner = ParallelRunner(
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every=32,
            max_workers=1,
            retries=0,
        )
        ckpt = runner._checkpoint_path(crashing)
        with pytest.raises(Exception):
            runner.run([crashing])  # first attempt dies, checkpoint remains
        assert ckpt.exists()
        flip_bit(ckpt, 640)

        # retry with a damaged checkpoint: detected, discarded, clean rerun
        result = run_cell(
            crashing, checkpoint_path=ckpt, checkpoint_every=32
        )
        assert result.resumed_at is None
        reference = run_cell(plain)
        assert result.accuracy == reference.accuracy
        assert result.detections == reference.detections


class TestSensorFaultGenerators:
    """The four finite-garbage faults: deterministic, copying, clamped."""

    @pytest.fixture
    def X(self, rng):
        return rng.normal(size=(40, 5))

    def test_stuck_at_holds_first_windowed_reading(self, X):
        from repro.resilience import stuck_at

        out = stuck_at(X, start=10, length=6, columns=[1, 3])
        for i in range(10, 16):
            np.testing.assert_array_equal(out[i, [1, 3]], X[10, [1, 3]])
        # untouched columns and rows are bit-identical
        np.testing.assert_array_equal(out[:, [0, 2, 4]], X[:, [0, 2, 4]])
        np.testing.assert_array_equal(out[:10], X[:10])
        np.testing.assert_array_equal(out[16:], X[16:])

    def test_stuck_at_explicit_value(self, X):
        from repro.resilience import stuck_at

        out = stuck_at(X, start=0, length=3, value=7.5)
        assert (out[:3] == 7.5).all()

    def test_dropout_fills_constant(self, X):
        from repro.resilience import dropout

        out = dropout(X, start=5, length=4, columns=[0], fill=-1.0)
        assert (out[5:9, 0] == -1.0).all()
        assert np.isfinite(out).all()

    def test_spike_train_alternates_sign_on_period(self, X):
        from repro.resilience import spike_train

        out = spike_train(X, start=0, length=10, columns=[2], period=3,
                          magnitude=100.0)
        delta = out[:, 2] - X[:, 2]
        np.testing.assert_allclose(delta[[0, 3, 6, 9]], [100, -100, 100, -100])
        assert (delta[[1, 2, 4, 5, 7, 8]] == 0).all()

    def test_spike_train_rejects_bad_period(self, X):
        from repro.resilience import spike_train

        with pytest.raises(ValueError):
            spike_train(X, start=0, length=5, period=0)

    def test_feature_dead_flatlines_to_the_end(self, X):
        from repro.resilience import feature_dead

        out = feature_dead(X, column=4, start=12)
        assert (out[12:, 4] == 0.0).all()
        np.testing.assert_array_equal(out[:12, 4], X[:12, 4])

    def test_feature_dead_rejects_bad_column(self, X):
        from repro.resilience import feature_dead

        with pytest.raises(ValueError):
            feature_dead(X, column=5)

    def test_window_clamps_past_stream_end(self, X):
        from repro.resilience import dropout

        out = dropout(X, start=38, length=100)
        assert (out[38:] == 0.0).all() and out.shape == X.shape

    def test_invalid_start_rejected(self, X):
        from repro.resilience import stuck_at

        with pytest.raises(ValueError):
            stuck_at(X, start=41, length=1)
        with pytest.raises(ValueError):
            stuck_at(X, start=0, length=-1)

    def test_generators_never_mutate_input(self, X):
        from repro.resilience import dropout, feature_dead, spike_train, stuck_at

        before = X.copy()
        stuck_at(X, 0, 5)
        dropout(X, 0, 5)
        spike_train(X, 0, 5)
        feature_dead(X, column=0)
        np.testing.assert_array_equal(X, before)

    def test_finite_garbage_streams_silently_without_guard(self, train_stream):
        # The defining property that motivates the guard layer: stuck-at
        # garbage is finite, so an unguarded pipeline accepts it.
        from repro.resilience import stuck_at

        pipe = build_proposed(
            train_stream.X, train_stream.y, window_size=20, n_hidden=4,
            reconstruction_samples=60, seed=0,
        )
        X = stuck_at(np.tile(train_stream.X[:1], (30, 1)), 0, 30, value=0.5)
        for row in X:
            rec = pipe.process_one(row, 0)
            assert np.isfinite(rec.anomaly_score)


class TestNaNBurst:
    def test_nan_burst_stream_is_refused(self, rng):
        from repro.resilience import nan_burst

        X = rng.random((50, 6))
        bad = nan_burst(X, start=10, length=5)
        with pytest.raises(DataValidationError):
            DataStream(bad, np.zeros(50, dtype=int))

    def test_nan_burst_rejected_mid_stream_without_poisoning(self, train_stream, rng):
        from repro.resilience import nan_burst

        pipe = build_proposed(
            train_stream.X, train_stream.y, window_size=20, n_hidden=4,
            reconstruction_samples=60, seed=0,
        )
        burst = nan_burst(rng.random((30, 6)), start=0, length=30)
        for row in burst:
            with pytest.raises(DataValidationError):
                pipe.process_one(row, 0)
        clean = rng.random((100, 6))
        for row in clean:
            rec = pipe.process_one(row, 0)
            assert np.isfinite(rec.anomaly_score)
