"""Unit tests for repro.guard.sentinels and the OSELM health probes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.guard import NumericHealthSentinel
from repro.oselm import OSELM
from repro.utils.exceptions import (
    GuardError,
    NumericalHealthError,
    ReproError,
)


@pytest.fixture
def fitted(rng) -> OSELM:
    X = rng.normal(size=(30, 4))
    return OSELM(4, 6, 4, seed=0).fit_initial(X, X)


class TestOSELMHealthProbes:
    def test_unfitted_reports_unfitted(self):
        assert OSELM(3, 4, 3, seed=0).numeric_health() == {"fitted": False}

    def test_healthy_model_passes(self, fitted):
        h = fitted.numeric_health()
        assert h["fitted"] and h["finite"]
        assert h["p_asymmetry"] < 1e-9 and h["p_diag_min"] > 0
        fitted.check_health()  # must not raise

    def test_nan_in_beta_trips(self, fitted):
        fitted.beta[0, 0] = np.nan
        with pytest.raises(NumericalHealthError, match="non-finite"):
            fitted.check_health()

    def test_beta_explosion_trips(self, fitted):
        fitted.beta *= 1e9
        with pytest.raises(NumericalHealthError, match="beta"):
            fitted.check_health()

    def test_p_magnitude_trips(self, fitted):
        fitted.P *= 1e12
        with pytest.raises(NumericalHealthError):
            fitted.check_health()

    def test_p_asymmetry_trips(self, fitted):
        fitted.P[0, 1] += 1.0
        with pytest.raises(NumericalHealthError, match="asymmet"):
            fitted.check_health()

    def test_nonfinite_health_emits_no_warnings(self, fitted, recwarn):
        fitted.P[0, 0] = np.inf
        h = fitted.numeric_health()
        assert not h["finite"]
        assert not [w for w in recwarn.list if issubclass(w.category, RuntimeWarning)]

    def test_thresholds_are_tunable(self, fitted):
        fitted.check_health(max_beta_norm=np.inf)  # still fine
        with pytest.raises(NumericalHealthError):
            fitted.check_health(max_beta_norm=1e-12)


class TestExceptionTaxonomy:
    def test_numerical_health_is_guard_error(self):
        assert issubclass(NumericalHealthError, GuardError)
        assert issubclass(GuardError, ReproError)
        assert issubclass(GuardError, RuntimeError)


class TestNumericHealthSentinel:
    def test_healthy_ensemble_no_trips(self, trained_model):
        s = NumericHealthSentinel()
        assert s.check(trained_model) == ()
        assert s.is_healthy(trained_model)
        assert s.n_trips == 0

    def test_poisoned_instance_identified(self, trained_model):
        trained_model.instances[1].core.beta[:] = np.nan
        s = NumericHealthSentinel()
        trips = s.check(trained_model)
        assert [t.instance for t in trips] == [1]
        assert "non-finite" in trips[0].reason
        assert s.n_trips == 1

    def test_multiple_instances_all_reported(self, trained_model):
        for inst in trained_model.instances:
            inst.core.P *= 1e12
        s = NumericHealthSentinel()
        assert [t.instance for t in s.check(trained_model)] == [0, 1]

    def test_custom_thresholds(self, trained_model):
        tight = NumericHealthSentinel(max_beta_norm=1e-9)
        assert not tight.is_healthy(trained_model)
        loose = NumericHealthSentinel(max_beta_norm=1e30, max_p_magnitude=1e30)
        assert loose.is_healthy(trained_model)
