"""Drift provenance: the ``drift_audit`` stream and its report."""

from __future__ import annotations

import json

import pytest

from repro.engine import ExperimentSpec, build_experiment
from repro.telemetry import (
    RingBufferSink,
    audit_report,
    configure,
    load_audit,
    render_audit,
)
from repro.utils.exceptions import DataValidationError

#: A blobs stream whose drift the proposed detector reliably catches and
#: recovers from within the stream (shift 2.0 >> the fleet default 0.45).
DRIFTY = dict(
    pipeline="proposed",
    dataset="blobs",
    seed=0,
    dataset_kwargs={"n_test": 1200, "drift_at": 300, "shift": 2.0},
    chunk_size=50,
)


@pytest.fixture
def ring():
    sink = RingBufferSink()
    configure(enabled=True, sinks=[sink], reset=True)
    try:
        yield sink
    finally:
        configure(enabled=False, sinks=[], reset=True)


def audit_events(sink):
    return sink.events("drift_audit")


class TestEmission:
    def test_recovered_drift_emits_one_audit_event(self, ring):
        build_experiment(ExperimentSpec(name="d", **DRIFTY)).run()
        (event,) = audit_events(ring)
        f = event.fields
        assert f["outcome"] == "recovered" and f["recovered"] is True
        assert f["pipeline"] == "proposed"
        assert f["index"] >= 300  # detected at or after the planted drift
        assert f["recovery_index"] > f["index"]
        assert f["recovery_samples"] == f["recovery_index"] - f["index"]
        assert f["recon_seconds"] > 0
        assert 0 < f["threshold"]

    def test_recovery_histograms_observe(self, ring):
        from repro.telemetry import get_telemetry

        build_experiment(ExperimentSpec(name="d", **DRIFTY)).run()
        reg = get_telemetry().registry
        assert reg.get("audit.recovery.samples").count() == 1
        assert reg.get("audit.recon.seconds").count() == 1

    def test_truncated_stream_audits_unrecovered(self, ring):
        spec = ExperimentSpec(
            name="d",
            **{**DRIFTY, "dataset_kwargs": {**DRIFTY["dataset_kwargs"], "n_test": 500}},
        )
        build_experiment(spec).run()
        (event,) = audit_events(ring)
        assert event.fields["outcome"] == "unrecovered_at_end"
        assert event.fields["recovery_index"] is None
        from repro.telemetry import get_telemetry

        c = get_telemetry().registry.get("audit.unrecovered")
        assert c.value(outcome="unrecovered_at_end") == 1.0

    def test_disabled_hub_emits_nothing(self, ring):
        configure(enabled=False, sinks=[], reset=True)
        build_experiment(ExperimentSpec(name="d", **DRIFTY)).run()
        assert audit_events(ring) == []


class TestReport:
    def entries(self) -> list:
        base = dict(
            event="drift_audit", device="dev-0", index=100, distance=0.5,
            threshold=0.3, recovered=True, outcome="recovered",
            recovery_index=140, recovery_samples=40, recon_seconds=0.01,
            ladder_level=None,
        )
        return [
            base,
            {**base, "device": "dev-1", "recovery_samples": 80, "recon_seconds": 0.03},
            {**base, "device": "dev-1", "recovered": False,
             "outcome": "superseded", "recovery_samples": None,
             "recon_seconds": None},
        ]

    def test_report_aggregates(self):
        rep = audit_report(self.entries())
        assert rep["drifts"] == 3
        assert rep["devices"] == 2
        assert rep["recovered"] == 2 and rep["unrecovered"] == 1
        assert rep["top_devices"][0]["device"] == "dev-1"
        assert rep["recovery_samples"]["max"] == 80

    def test_render_is_ascii_and_complete(self):
        text = render_audit(audit_report(self.entries()))
        assert "drift audit" in text and "dev-1" in text
        assert text.isascii()

    def test_load_audit_filters_and_survives_torn_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [json.dumps(e) for e in self.entries()]
        lines.insert(1, json.dumps({"event": "drift_detected", "index": 3}))
        content = "\n".join(lines) + '\n{"event": "drift_audit", "trunc'
        path.write_text(content)
        records = load_audit(path)
        assert len(records) == 3  # foreign event dropped, torn tail tolerated

    def test_load_audit_rejects_garbage_mid_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('not json\n{"event": "drift_audit"}\n')
        with pytest.raises(DataValidationError):
            load_audit(path)

    def test_end_to_end_from_jsonl_sink(self, tmp_path):
        from repro.telemetry import JsonlSink

        trace = tmp_path / "trace.jsonl"
        sink = JsonlSink(trace)
        configure(enabled=True, sinks=[sink], reset=True)
        try:
            build_experiment(ExperimentSpec(name="d", **DRIFTY)).run()
        finally:
            sink.close()
            configure(enabled=False, sinks=[], reset=True)
        rep = audit_report(load_audit(trace))
        assert rep["drifts"] == 1 and rep["recovered"] == 1
        assert rep["recovery_samples"]["p50"] > 0
