"""Unit tests for repro.utils.math — distances, logsumexp, running moments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.math import (
    RunningMoments,
    logsumexp,
    pairwise_l1_dists,
    pairwise_sq_dists,
    sigmoid,
)


class TestPairwiseSqDists:
    def test_matches_bruteforce(self, rng):
        A, B = rng.normal(size=(7, 4)), rng.normal(size=(5, 4))
        D = pairwise_sq_dists(A, B)
        brute = ((A[:, None, :] - B[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(D, brute, atol=1e-10)

    def test_self_distance_zero(self, rng):
        A = rng.normal(size=(4, 3))
        D = pairwise_sq_dists(A, A)
        np.testing.assert_allclose(np.diag(D), 0.0, atol=1e-9)

    def test_never_negative(self, rng):
        A = rng.normal(size=(50, 10)) * 1e-8  # tiny values stress round-off
        assert (pairwise_sq_dists(A, A) >= 0).all()

    def test_shape(self, rng):
        assert pairwise_sq_dists(rng.normal(size=(3, 2)), rng.normal(size=(6, 2))).shape == (3, 6)


class TestPairwiseL1Dists:
    def test_matches_bruteforce(self, rng):
        A, B = rng.normal(size=(4, 5)), rng.normal(size=(6, 5))
        D = pairwise_l1_dists(A, B)
        brute = np.abs(A[:, None, :] - B[None, :, :]).sum(axis=2)
        np.testing.assert_allclose(D, brute)

    def test_symmetry(self, rng):
        A = rng.normal(size=(5, 3))
        np.testing.assert_allclose(pairwise_l1_dists(A, A), pairwise_l1_dists(A, A).T)


class TestLogsumexp:
    def test_matches_naive_small(self, rng):
        a = rng.normal(size=10)
        assert logsumexp(a) == pytest.approx(np.log(np.exp(a).sum()))

    def test_stable_large_values(self):
        a = np.array([1000.0, 1000.0])
        assert logsumexp(a) == pytest.approx(1000.0 + np.log(2.0))

    def test_axis(self, rng):
        a = rng.normal(size=(3, 4))
        out = logsumexp(a, axis=1)
        assert out.shape == (3,)
        np.testing.assert_allclose(out, np.log(np.exp(a).sum(axis=1)), atol=1e-10)

    def test_neg_inf_handled(self):
        a = np.array([-np.inf, 0.0])
        assert logsumexp(a) == pytest.approx(0.0)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array(0.0)) == pytest.approx(0.5)

    def test_extremes_no_warning(self):
        with np.errstate(over="raise"):
            out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0) and out[1] == pytest.approx(1.0)

    def test_monotone(self, rng):
        x = np.sort(rng.normal(size=100) * 10)
        assert (np.diff(sigmoid(x)) >= 0).all()

    def test_symmetry(self, rng):
        x = rng.normal(size=20)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), 1.0, atol=1e-12)


class TestRunningMoments:
    def test_mean(self):
        m = RunningMoments()
        for v in [1.0, 2.0, 3.0, 4.0]:
            m.update(v)
        assert m.mean == pytest.approx(2.5)

    def test_population_variance(self, rng):
        data = rng.normal(size=500)
        m = RunningMoments()
        m.update_many(data)
        assert m.variance == pytest.approx(data.var(), rel=1e-9)
        assert m.std == pytest.approx(data.std(), rel=1e-9)

    def test_empty_variance_zero(self):
        assert RunningMoments().variance == 0.0

    def test_single_value(self):
        m = RunningMoments()
        m.update(7.0)
        assert m.mean == 7.0 and m.variance == 0.0

    def test_reset(self):
        m = RunningMoments()
        m.update_many([1.0, 2.0])
        m.reset()
        assert m.count == 0 and m.mean == 0.0 and m.variance == 0.0

    def test_numerically_stable_offset(self):
        # Classic catastrophic-cancellation scenario for naive sum-of-squares.
        base = 1e9
        m = RunningMoments()
        for v in [base + 1, base + 2, base + 3]:
            m.update(v)
        assert m.variance == pytest.approx(2.0 / 3.0, rel=1e-6)
