"""Exposition validity: escaping, name rules, and a promtool-style lint."""

from __future__ import annotations

import pytest

from repro.engine import ExperimentSpec, build_experiment
from repro.telemetry import (
    Counter,
    MetricsRegistry,
    RingBufferSink,
    configure,
    get_telemetry,
    lint_prometheus,
)
from repro.utils.exceptions import ConfigurationError


class TestNameValidation:
    @pytest.mark.parametrize("bad", ["", "2fast", "has space", "bad-dash", "a{b}"])
    def test_invalid_metric_names_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            Counter(bad)

    @pytest.mark.parametrize("bad", ["2x", "bad-dash", "__reserved", "a b"])
    def test_invalid_label_names_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            Counter("ok", labels=(bad,))

    def test_duplicate_label_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("ok", labels=("a", "a"))

    def test_dotted_names_map_to_underscores(self):
        reg = MetricsRegistry()
        reg.counter("fleet.device.samples").inc()
        assert "repro_fleet_device_samples 1" in reg.to_prometheus()


class TestEscaping:
    def test_label_values_escape_specials(self):
        reg = MetricsRegistry()
        reg.counter("c", labels=("path",)).inc(path='a\\b"c\nd')
        text = reg.to_prometheus()
        assert '\\\\' in text and '\\"' in text and "\\n" in text
        assert lint_prometheus(text) == []

    def test_help_text_escapes_newlines(self):
        reg = MetricsRegistry()
        reg.counter("c", "line one\nline two").inc()
        text = reg.to_prometheus()
        assert "line one\\nline two" in text
        assert lint_prometheus(text) == []


class TestLinter:
    def test_clean_exposition_passes(self):
        reg = MetricsRegistry()
        reg.counter("hits", "h", labels=("kind",)).inc(kind="a")
        reg.gauge("temp", "t").set(3)
        reg.histogram("lat", "l", buckets=(0.1, 1.0)).observe(0.5)
        assert lint_prometheus(reg.to_prometheus()) == []

    def test_catches_duplicate_series(self):
        text = (
            "# TYPE x counter\n"
            "x 1\n"
            "x 2\n"
        )
        assert any("duplicate" in p for p in lint_prometheus(text))

    def test_catches_untyped_samples(self):
        assert any("TYPE" in p for p in lint_prometheus("x 1\n"))

    def test_catches_noncumulative_histogram(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1\n"
            "h_count 5\n"
        )
        assert any("cumulative" in p for p in lint_prometheus(text))

    def test_catches_missing_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            "h_sum 1\n"
            "h_count 5\n"
        )
        assert any("+Inf" in p for p in lint_prometheus(text))


class TestWholeCodebaseExposition:
    def test_everything_the_pipelines_register_lints_clean(self):
        """Exercise real pipelines, then lint every registered metric."""
        configure(enabled=True, sinks=[RingBufferSink()], reset=True)
        try:
            for pipeline in ("proposed", "quanttree", "baseline"):
                spec = ExperimentSpec(
                    name=f"lint-{pipeline}",
                    pipeline=pipeline,
                    dataset="blobs",
                    seed=0,
                    dataset_kwargs={"n_test": 1200, "drift_at": 300, "shift": 2.0},
                    chunk_size=50,
                )
                build_experiment(spec).run()
            tel = get_telemetry()
            text = tel.registry.to_prometheus()
            assert len(tel.registry.names()) >= 5
            assert lint_prometheus(text) == [], lint_prometheus(text)
        finally:
            configure(enabled=False, sinks=[], reset=True)
