"""Unit tests for the Table-5/6 latency estimation layer."""

from __future__ import annotations

import pytest

from repro.core.pipeline import StepRecord
from repro.device import (
    RASPBERRY_PI_4,
    RASPBERRY_PI_PICO,
    PhaseTally,
    StageCostModel,
    estimate_stream_seconds,
    quanttree_batch_ops,
    spll_batch_ops,
    stage_latency_table,
)
from repro.utils.exceptions import ConfigurationError


def rec(phase, index=0):
    return StepRecord(index, 0, 0, True, 0.0, False, False, phase)


class TestStageLatencyTable:
    def test_pico_label_prediction_near_calibration(self):
        """The Pico profile is calibrated on Table 6's 148.87 ms row."""
        tbl = stage_latency_table(StageCostModel(2, 511, 22), RASPBERRY_PI_PICO)
        assert tbl["Label prediction"] == pytest.approx(148.87, rel=0.05)

    def test_all_rows_positive(self):
        tbl = stage_latency_table(StageCostModel(2, 511, 22), RASPBERRY_PI_PICO)
        assert all(v > 0 for v in tbl.values())

    def test_pi4_much_faster(self):
        m = StageCostModel(2, 511, 22)
        pico = stage_latency_table(m, RASPBERRY_PI_PICO)
        pi4 = stage_latency_table(m, RASPBERRY_PI_4)
        for k in pico:
            assert pi4[k] < pico[k] / 50

    def test_latency_within_paper_magnitude(self):
        """Every reproduced Table 6 row within 3x of the paper's value."""
        paper = {
            "Label prediction": 148.87,
            "Distance computation": 10.58,
            "Model retraining without label prediction": 25.42,
            "Model retraining with label prediction": 166.65,
            "Label coordinates initialization": 25.59,
            "Label coordinates update": 6.05,
        }
        tbl = stage_latency_table(StageCostModel(2, 511, 22), RASPBERRY_PI_PICO)
        for k, v in paper.items():
            assert tbl[k] < 3 * v and tbl[k] > v / 5


class TestPhaseTally:
    def test_from_records(self):
        tally = PhaseTally.from_records([rec("predict"), rec("predict"), rec("check")])
        assert tally.counts["predict"] == 2
        assert tally.counts["check"] == 1
        assert tally.total == 3


class TestStreamEstimate:
    def test_predict_only_stream(self):
        tally = PhaseTally.from_records([rec("predict")] * 700)
        geom = StageCostModel(2, 511, 22)
        est = estimate_stream_seconds(tally, geom, RASPBERRY_PI_4)
        # 700 × label prediction on the Pi 4 ≈ Table 5's 1.05 s baseline.
        assert est == pytest.approx(1.05, rel=0.1)

    def test_check_phase_costs_more_than_predict(self):
        geom = StageCostModel(2, 511, 22)
        base = estimate_stream_seconds(
            PhaseTally.from_records([rec("predict")] * 100), geom, RASPBERRY_PI_4
        )
        check = estimate_stream_seconds(
            PhaseTally.from_records([rec("check")] * 100), geom, RASPBERRY_PI_4
        )
        assert check > base

    def test_unknown_phase_rejected(self):
        tally = PhaseTally.from_records([rec("teleport")])
        with pytest.raises(ConfigurationError):
            estimate_stream_seconds(tally, StageCostModel(2, 8, 4), RASPBERRY_PI_4)

    def test_batch_ops_added(self):
        geom = StageCostModel(2, 511, 22)
        tally = PhaseTally.from_records([rec("predict")] * 100)
        plain = estimate_stream_seconds(tally, geom, RASPBERRY_PI_4)
        with_batches = estimate_stream_seconds(
            tally, geom, RASPBERRY_PI_4,
            per_batch_ops=spll_batch_ops(235, 511, 3), n_batches=3,
        )
        assert with_batches > plain

    def test_spll_batches_far_heavier_than_quanttree(self):
        """Structural reason for Table 5's SPLL blow-up: per-batch k-means."""
        sp = spll_batch_ops(235, 511, 3).flops
        qt = quanttree_batch_ops(235, 16).flops
        assert sp > 100 * qt

    def test_spll_asymmetric_much_cheaper(self):
        sym = spll_batch_ops(235, 511, 3, symmetric=True).flops
        asym = spll_batch_ops(235, 511, 3, symmetric=False).flops
        assert asym < sym / 10

    def test_quanttree_batch_linear_in_size(self):
        a = quanttree_batch_ops(100, 16).flops
        b = quanttree_batch_ops(200, 16).flops
        assert b == pytest.approx(2 * a, rel=0.1)
