"""Unit tests for batch k-means and k-means++ seeding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import KMeans, kmeans_plus_plus_init
from repro.utils.exceptions import ConfigurationError, NotFittedError


@pytest.fixture
def three_blobs(rng):
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    X = np.concatenate([c + rng.normal(0, 0.3, size=(40, 2)) for c in centers])
    return X, centers


class TestKMeansPlusPlus:
    def test_shape(self, three_blobs, rng):
        X, _ = three_blobs
        centers = kmeans_plus_plus_init(X, 3, rng)
        assert centers.shape == (3, 2)

    def test_centers_are_data_points(self, three_blobs, rng):
        X, _ = three_blobs
        centers = kmeans_plus_plus_init(X, 3, rng)
        for c in centers:
            assert np.abs(X - c).sum(axis=1).min() < 1e-12

    def test_spreads_over_blobs(self, three_blobs, rng):
        X, true_centers = three_blobs
        # With well-separated blobs, k-means++ picks one seed per blob
        # almost always.
        hits = 0
        for trial in range(20):
            centers = kmeans_plus_plus_init(X, 3, np.random.default_rng(trial))
            assigned = {np.abs(true_centers - c).sum(axis=1).argmin() for c in centers}
            hits += len(assigned) == 3
        assert hits >= 18

    def test_too_many_clusters(self, rng):
        with pytest.raises(ConfigurationError):
            kmeans_plus_plus_init(np.ones((2, 2)), 3, rng)

    def test_identical_points_degenerate(self, rng):
        X = np.ones((10, 2))
        centers = kmeans_plus_plus_init(X, 3, rng)
        np.testing.assert_allclose(centers, 1.0)


class TestKMeans:
    def test_recovers_blob_centers(self, three_blobs):
        X, true_centers = three_blobs
        km = KMeans(3, seed=0).fit(X)
        found = km.cluster_centers_
        for tc in true_centers:
            assert np.abs(found - tc).sum(axis=1).min() < 0.5

    def test_labels_partition_data(self, three_blobs):
        X, _ = three_blobs
        km = KMeans(3, seed=0).fit(X)
        assert km.labels_.shape == (len(X),)
        assert set(np.unique(km.labels_)) == {0, 1, 2}

    def test_inertia_positive_and_small_for_tight_blobs(self, three_blobs):
        X, _ = three_blobs
        km = KMeans(3, seed=0).fit(X)
        assert 0 < km.inertia_ < len(X)  # ~0.18 variance per point

    def test_predict_matches_nearest_center(self, three_blobs, rng):
        X, _ = three_blobs
        km = KMeans(3, seed=0).fit(X)
        Q = rng.normal(size=(10, 2)) * 5
        pred = km.predict(Q)
        for q, p in zip(Q, pred):
            d = ((km.cluster_centers_ - q) ** 2).sum(axis=1)
            assert p == d.argmin()

    def test_fit_predict(self, three_blobs):
        X, _ = three_blobs
        km = KMeans(3, seed=0)
        np.testing.assert_array_equal(km.fit_predict(X), km.labels_)

    def test_transform_distances(self, three_blobs):
        X, _ = three_blobs
        km = KMeans(3, seed=0).fit(X)
        D = km.transform(X[:5])
        assert D.shape == (5, 3)
        assert (D >= 0).all()

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            KMeans(2).predict(np.ones((2, 2)))

    def test_more_clusters_than_samples(self):
        with pytest.raises(ConfigurationError):
            KMeans(5).fit(np.ones((3, 2)))

    def test_explicit_init_array(self, three_blobs):
        X, true_centers = three_blobs
        km = KMeans(3, init=true_centers).fit(X)
        # Initialised at the truth, Lloyd stays there.
        for tc in true_centers:
            assert np.abs(km.cluster_centers_ - tc).sum(axis=1).min() < 0.5

    def test_explicit_init_wrong_count(self, three_blobs):
        X, true_centers = three_blobs
        with pytest.raises(ConfigurationError):
            KMeans(2, init=true_centers).fit(X)

    def test_unknown_init_string(self):
        with pytest.raises(ConfigurationError):
            KMeans(2, init="fancy")

    def test_random_init_mode(self, three_blobs):
        X, _ = three_blobs
        km = KMeans(3, init="random", seed=0).fit(X)
        assert km.inertia_ is not None

    def test_k1_center_is_mean(self, rng):
        X = rng.normal(size=(50, 3))
        km = KMeans(1, seed=0).fit(X)
        np.testing.assert_allclose(km.cluster_centers_[0], X.mean(axis=0), atol=1e-8)

    def test_seed_reproducibility(self, three_blobs):
        X, _ = three_blobs
        a = KMeans(3, seed=42).fit(X).cluster_centers_
        b = KMeans(3, seed=42).fit(X).cluster_centers_
        np.testing.assert_array_equal(a, b)

    def test_empty_cluster_reseeded(self):
        # Degenerate init: all centres on one point; Lloyd must recover
        # without NaNs via the farthest-point reseeding rule.
        X = np.concatenate([np.zeros((20, 2)), np.full((20, 2), 5.0)])
        km = KMeans(2, init=np.zeros((2, 2)), max_iter=50).fit(X)
        assert np.isfinite(km.cluster_centers_).all()
        assert len(np.unique(km.labels_)) == 2
