"""ShardedFleetManager: stable device placement, cross-process identity."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.engine import ExperimentSpec, build_experiment
from repro.fleet import FleetStats, ShardedFleetManager, shard_of
from repro.metrics import ShardError, ShardPool
from repro.telemetry import RingBufferSink, configure, get_telemetry
from repro.utils.exceptions import ConfigurationError


def _spec(seed: int) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"cell-{seed}",
        pipeline="proposed",
        dataset="blobs",
        seed=seed,
        model_seed=5,
        pipeline_kwargs={"window_size": 40},
        dataset_kwargs={"n_test": 120, "drift_at": 60},
    )


class TestShardOf:
    def test_deterministic_and_in_range(self):
        for n in (1, 2, 7):
            for dev in ("dev0", "dev1", "edge-gw-17", ""):
                s = shard_of(dev, n)
                assert 0 <= s < n
                assert s == shard_of(dev, n)

    def test_not_builtin_hash(self):
        # sha256-derived: pinned values survive PYTHONHASHSEED changes.
        assert shard_of("dev0", 4) == 3
        assert shard_of("dev1", 4) == 3
        assert shard_of("dev2", 4) == 0

    def test_spreads_devices(self):
        shards = {shard_of(f"dev{i:04d}", 4) for i in range(64)}
        assert shards == {0, 1, 2, 3}


class TestShardedFleet:
    def test_matches_standalone_runs(self, tmp_path):
        specs = {f"dev{i}": _spec(60 + i) for i in range(4)}
        streams = {dev: build_experiment(spec).test for dev, spec in specs.items()}
        with ShardedFleetManager(
            2, capacity=1, spool_dir=tmp_path / "spool"
        ) as sfm:
            for dev, spec in specs.items():
                sfm.add_device(dev, spec)
            for start in range(0, 120, 40):
                for dev, s in streams.items():
                    sfm.submit(dev, s.X[start : start + 40], s.y[start : start + 40])
            per_device = sfm.finish_all()
            stats = sfm.stats()
        assert sum(s["devices"] for s in stats) == 4
        for dev, spec in specs.items():
            solo = build_experiment(spec).run()
            got = per_device[dev]
            assert solo == got
            a = np.array([r.anomaly_score for r in solo])
            b = np.array([r.anomaly_score for r in got])
            assert a.tobytes() == b.tobytes()

    def test_unknown_device_rejected_locally(self, tmp_path):
        with ShardedFleetManager(2, capacity=4) as sfm:
            with pytest.raises(ConfigurationError, match="unknown device"):
                sfm.submit("ghost", np.zeros((1, 6)), np.zeros(1, dtype=int))

    def test_worker_error_surfaces_on_drain(self):
        with ShardedFleetManager(1, capacity=4) as sfm:
            sfm.add_device("dev0", _spec(1))
            # Feed a chunk whose labels mismatch: the worker-side session
            # raises and the error must cross the pipe as a ShardError.
            sfm.submit("dev0", np.zeros((4, 6)), np.zeros(3, dtype=int))
            with pytest.raises(ShardError):
                sfm.drain()

    def test_nonpositive_shards_rejected(self):
        with pytest.raises(ConfigurationError, match="n_shards"):
            ShardedFleetManager(0)


class TestShardedTelemetryAggregation:
    N_DEVICES = 4
    N_TEST = 120

    def run_sharded(self, tmp_path, *, telemetry_every):
        specs = {f"dev{i}": _spec(60 + i) for i in range(self.N_DEVICES)}
        streams = {dev: build_experiment(spec).test for dev, spec in specs.items()}
        with ShardedFleetManager(
            2,
            capacity=2,
            spool_dir=tmp_path / "spool",
            telemetry_every=telemetry_every,
        ) as sfm:
            for dev, spec in specs.items():
                sfm.add_device(dev, spec)
            for start in range(0, self.N_TEST, 40):
                for dev, s in streams.items():
                    sfm.submit(dev, s.X[start : start + 40], s.y[start : start + 40])
            sfm.flush_telemetry()
            stats = sfm.aggregate_stats()
        return specs, stats

    def test_parent_hub_counters_equal_summed_worker_counters(self, tmp_path):
        """The lossless-aggregation proof: nothing dropped, nothing doubled."""
        configure(enabled=True, sinks=[RingBufferSink()], reset=True)
        try:
            specs, stats = self.run_sharded(tmp_path, telemetry_every=1)
            samples = get_telemetry().registry.get("fleet.device.samples")
            assert samples is not None
            # Every sample processed inside a worker landed exactly once.
            assert samples.total == float(self.N_DEVICES * self.N_TEST)
            assert stats.samples == self.N_DEVICES * self.N_TEST
            # Worker series arrive labelled by their shard of origin.
            assert "shard" in samples.label_names
            expect = {str(shard_of(dev, 2)) for dev in specs}
            got = {s["labels"]["shard"] for s in samples.samples()}
            assert got == expect
            # Per-shard totals match the devices placed on that shard.
            for shard in expect:
                on_shard = [d for d in specs if str(shard_of(d, 2)) == shard]
                total = sum(
                    s["value"]
                    for s in samples.samples()
                    if s["labels"]["shard"] == shard
                )
                assert total == float(len(on_shard) * self.N_TEST)
        finally:
            configure(enabled=False, sinks=[], reset=True)

    def test_close_flushes_unsynced_deltas(self, tmp_path):
        # A large telemetry_every means no piggyback fired; close() must
        # still pull the outstanding worker deltas into the parent.
        configure(enabled=True, sinks=[RingBufferSink()], reset=True)
        try:
            specs = {f"dev{i}": _spec(60 + i) for i in range(2)}
            streams = {d: build_experiment(s).test for d, s in specs.items()}
            sfm = ShardedFleetManager(
                2, capacity=2, spool_dir=tmp_path / "spool", telemetry_every=10_000
            )
            for dev, spec in specs.items():
                sfm.add_device(dev, spec)
            for dev, s in streams.items():
                sfm.submit(dev, s.X, s.y)
            sfm.drain()
            sfm.close()
            samples = get_telemetry().registry.get("fleet.device.samples")
            assert samples is not None
            assert samples.total == float(2 * self.N_TEST)
        finally:
            configure(enabled=False, sinks=[], reset=True)

    def test_disabled_hub_stays_empty(self, tmp_path):
        configure(enabled=False, sinks=[], reset=True)
        self.run_sharded(tmp_path, telemetry_every=1)
        assert get_telemetry().registry.get("fleet.device.samples") is None


class TestAggregateStats:
    def test_sums_across_shards(self, tmp_path):
        specs = {f"dev{i}": _spec(60 + i) for i in range(4)}
        streams = {dev: build_experiment(spec).test for dev, spec in specs.items()}
        with ShardedFleetManager(
            2, capacity=1, spool_dir=tmp_path / "spool"
        ) as sfm:
            for dev, spec in specs.items():
                sfm.add_device(dev, spec)
            for start in range(0, 120, 40):
                for dev, s in streams.items():
                    sfm.submit(dev, s.X[start : start + 40], s.y[start : start + 40])
            sfm.finish_all()
            per_shard = sfm.stats()
            total = sfm.aggregate_stats()
        assert isinstance(total, FleetStats)
        assert total.devices == 4
        assert total.samples == 4 * 120
        assert total.evictions == sum(s["evictions"] for s in per_shard)
        assert total.restores == sum(s["restores"] for s in per_shard)
        assert total.evictions > 0  # capacity 1 forces churn inside workers
        assert total.max_resident == max(s["max_resident"] for s in per_shard)
        assert set(total.device_samples) == set(specs)


class TestShardPool:
    def test_broadcast_and_call(self):
        with ShardPool(2, _host_factory, factory_args=(10,)) as pool:
            assert pool.broadcast("whoami") == [(0, 10), (1, 10)]
            assert pool.call(1, "add", 4) == 14

    def test_submit_collect_out_of_order(self):
        with ShardPool(2, _host_factory, factory_args=(0,)) as pool:
            t0 = pool.submit(0, "add", 1)
            t1 = pool.submit(1, "add", 2)
            assert pool.collect(t1) == 2
            assert pool.collect(t0) == 1

    def test_worker_exception_is_shard_error(self):
        with ShardPool(1, _host_factory, factory_args=(0,)) as pool:
            with pytest.raises(ShardError, match="boom"):
                pool.call(0, "explode")


class TestCollectAny:
    def test_returns_whichever_shard_answers_first(self):
        # Head-of-line fix: shard 0 is busy napping, shard 1's reply must
        # come back without waiting on shard 0's FIFO.
        with ShardPool(2, _host_factory, factory_args=(0,)) as pool:
            slow = pool.submit(0, "nap", 0.8)
            fast = pool.submit(1, "add", 2)
            t0 = time.perf_counter()
            ticket, payload = pool.collect_any({slow, fast})
            first_wait = time.perf_counter() - t0
            assert (ticket, payload) == (fast, 2)
            assert first_wait < 0.6  # did not serialize behind the nap
            ticket, payload = pool.collect_any({slow})
            assert (ticket, payload) == (slow, 0.8)

    def test_serves_buffered_replies_without_waiting(self):
        with ShardPool(1, _host_factory, factory_args=(5,)) as pool:
            a = pool.submit(0, "add", 1)
            b = pool.submit(0, "add", 2)
            # Strict collect of b buffers a's reply; collect_any must
            # hand the buffered one back immediately.
            assert pool.collect(b) == 7
            ticket, payload = pool.collect_any({a}, timeout=0.5)
            assert (ticket, payload) == (a, 6)

    def test_failed_ticket_raises_with_attribution(self):
        with ShardPool(1, _host_factory, factory_args=(0,)) as pool:
            ok = pool.submit(0, "add", 3)
            bad = pool.submit(0, "explode")
            collected = {}
            wanted = {ok, bad}
            while wanted:
                try:
                    ticket, payload = pool.collect_any(wanted)
                except ShardError as exc:
                    assert exc.ticket == bad
                    wanted.discard(exc.ticket)
                else:
                    collected[ticket] = payload
                    wanted.discard(ticket)
            assert collected == {ok: 3}

    def test_unknown_and_empty_ticket_sets_rejected(self):
        with ShardPool(1, _host_factory, factory_args=(0,)) as pool:
            with pytest.raises(ConfigurationError, match="unknown"):
                pool.collect_any({999})
            with pytest.raises(ConfigurationError, match="empty ticket set"):
                pool.collect_any(set())


class TestLiveStats:
    def test_folds_shard_deltas_while_running(self, tmp_path):
        specs = {f"dev{i}": _spec(60 + i) for i in range(4)}
        streams = {dev: build_experiment(spec).test for dev, spec in specs.items()}
        with ShardedFleetManager(
            2, capacity=1, spool_dir=tmp_path / "spool"
        ) as sfm:
            for dev, spec in specs.items():
                sfm.add_device(dev, spec)
            assert sfm.live_stats() == {}
            for dev, s in streams.items():
                sfm.submit(dev, s.X[:40], s.y[:40])
            sfm.drain()
            mid = sfm.live_stats()
            assert mid["samples"] == 4 * 40  # mid-run, before finish_all
            for dev, s in streams.items():
                sfm.submit(dev, s.X[40:], s.y[40:])
            sfm.drain()
            assert sfm.live_stats()["samples"] == 4 * 120
            sfm.finish_all()
            per_shard = sfm.stats()
            # stats() re-anchors the live fold to the collected snapshots.
            assert sfm.live_stats()["samples"] == sum(
                s["samples"] for s in per_shard
            )


class _Host:
    def __init__(self, shard_index, base):
        self.shard_index = shard_index
        self.base = base

    def whoami(self):
        return (self.shard_index, self.base)

    def add(self, x):
        return self.base + x

    def nap(self, seconds):
        time.sleep(seconds)
        return seconds

    def explode(self):
        raise ValueError("boom")

    def close(self):
        pass


def _host_factory(shard_index, base):
    return _Host(shard_index, base)
