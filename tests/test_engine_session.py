"""StreamSession: incremental drives must match whole-stream runs exactly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    ChunkScheduler,
    ExperimentSpec,
    GuardInterceptor,
    Interceptor,
    StreamSession,
    TelemetryInterceptor,
    build_experiment,
)
from repro.utils.exceptions import ConfigurationError

SPEC = ExperimentSpec(
    name="session-cell",
    pipeline="proposed",
    dataset="blobs",
    seed=11,
    model_seed=5,
    dataset_kwargs={"n_test": 300, "drift_at": 180},
)


def _stack(pipeline, chunk=64):
    return [
        TelemetryInterceptor(pipeline.telemetry),
        GuardInterceptor(),
        ChunkScheduler(chunk),
    ]


def _session_records(feed_sizes, *, spec=SPEC, chunk=64):
    exp = build_experiment(spec)
    session = StreamSession(exp.pipeline, _stack(exp.pipeline, chunk)).open()
    X, y = exp.test.X, exp.test.y
    pos = 0
    for size in feed_sizes:
        stop = min(pos + size, len(X))
        got = session.feed(X[pos:stop], y[pos:stop])
        assert len(got) == stop - pos
        pos = stop
    assert pos == len(X)
    return session.close()


def _assert_identical(a, b):
    assert len(a) == len(b)
    assert a == b
    sa = np.array([r.anomaly_score for r in a])
    sb = np.array([r.anomaly_score for r in b])
    assert sa.tobytes() == sb.tobytes()


class TestEquivalence:
    def test_one_feed_equals_run(self):
        solo = build_experiment(SPEC).run(chunk_size=64)
        fed = _session_records([300])
        _assert_identical(solo, fed)

    @pytest.mark.parametrize(
        "sizes",
        [
            [1] * 300,
            [7, 64, 13, 100, 300],  # ragged, last one clipped
            [150, 150],
            [299, 1],
        ],
    )
    def test_any_feed_interleaving_is_byte_identical(self, sizes):
        solo = build_experiment(SPEC).run(chunk_size=64)
        _assert_identical(solo, _session_records(sizes))

    def test_guarded_session_matches_guarded_run(self):
        spec = SPEC.replace(guard_policy="clip")
        solo = build_experiment(spec).run(chunk_size=64)
        _assert_identical(solo, _session_records([90, 90, 120], spec=spec))

    def test_feed_returns_only_new_records(self):
        exp = build_experiment(SPEC)
        session = StreamSession(exp.pipeline, _stack(exp.pipeline)).open()
        first = session.feed(exp.test.X[:50], exp.test.y[:50])
        second = session.feed(exp.test.X[50:80], exp.test.y[50:80])
        assert [r.index for r in first] == list(range(50))
        assert [r.index for r in second] == list(range(50, 80))
        assert session.records == first + second
        session.abort()


class TestLifecycle:
    def _open(self):
        exp = build_experiment(SPEC)
        return exp, StreamSession(exp.pipeline, _stack(exp.pipeline)).open()

    def test_feed_before_open_rejected(self):
        exp = build_experiment(SPEC)
        session = StreamSession(exp.pipeline, _stack(exp.pipeline))
        with pytest.raises(ConfigurationError, match="not open"):
            session.feed(exp.test.X[:10], exp.test.y[:10])

    def test_double_open_rejected(self):
        _, session = self._open()
        with pytest.raises(ConfigurationError, match="already open"):
            session.open()
        session.abort()

    def test_close_is_idempotent_and_reopen_rejected(self):
        exp, session = self._open()
        session.feed(exp.test.X[:10], exp.test.y[:10])
        records = session.close()
        assert session.close() == records
        assert not session.is_open
        with pytest.raises(ConfigurationError, match="finished"):
            session.open()

    def test_feed_after_close_rejected(self):
        exp, session = self._open()
        session.close()
        with pytest.raises(ConfigurationError, match="not open"):
            session.feed(exp.test.X[:10], exp.test.y[:10])

    def test_mismatched_chunk_lengths_rejected(self):
        exp, session = self._open()
        with pytest.raises(ConfigurationError, match="labels"):
            session.feed(exp.test.X[:10], exp.test.y[:9])
        session.abort()

    def test_empty_feed_is_a_noop(self):
        exp, session = self._open()
        assert session.feed(exp.test.X[:0], exp.test.y[:0]) == []
        assert session.position == 0
        session.abort()

    def test_consume_error_tears_the_session_down(self):
        aborts = []

        class Exploding(Interceptor):
            def wrap_consume(self, ctx, consume):
                def boom(Xc, yc):
                    raise RuntimeError("disk on fire")

                return boom

            def on_abort(self, ctx):
                aborts.append(ctx.position)

        exp = build_experiment(SPEC)
        session = StreamSession(
            exp.pipeline, [Exploding(), ChunkScheduler(64)]
        ).open()
        with pytest.raises(RuntimeError, match="disk on fire"):
            session.feed(exp.test.X[:10], exp.test.y[:10])
        assert not session.is_open
        assert aborts == [0]

    def test_start_offset_positions_the_session(self):
        exp = build_experiment(SPEC)
        prefix = exp.run(chunk_size=64)
        # A second build, fast-forwarded by state transfer to index 100.
        exp2 = build_experiment(SPEC)
        state = None
        # Replay the first 100 samples to produce the state organically.
        warm = StreamSession(exp2.pipeline, _stack(exp2.pipeline)).open()
        warm.feed(exp.test.X[:100], exp.test.y[:100])
        state = exp2.pipeline.get_state()
        warm.abort()
        exp3 = build_experiment(SPEC)
        exp3.pipeline.set_state(state)
        session = StreamSession(
            exp3.pipeline, _stack(exp3.pipeline), start=100, records=list(prefix[:100])
        ).open()
        assert session.position == 100
        session.feed(exp.test.X[100:], exp.test.y[100:])
        _assert_identical(prefix, session.close())
