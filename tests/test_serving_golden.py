"""Serving golden-equivalence: network arrivals must be byte-invisible.

The serving tier's promise extends the fleet golden suite one layer up:
chunks delivered over the wire — interleaved across devices, reordered
within the gap window, retried after refusals, cut into arrival windows
by the dispatcher — must produce records **byte-for-byte identical** to
each spec running alone. Pinned for every pipeline family through the
ingestion core, and end-to-end through the HTTP front-end.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.engine import ExperimentSpec, build_experiment
from repro.fleet import FleetManager
from repro.serving import IngestCore, ServingStack, run_load
from repro.telemetry import RingBufferSink, Telemetry, lint_prometheus

#: every pipeline family the registry knows, with small fast kwargs
PIPELINES = {
    "proposed": {"window_size": 60},
    "baseline": {},
    "onlad": {"forgetting_factor": 0.95},
    "quanttree": {"batch_size": 100, "n_bins": 8},
    "spll": {"batch_size": 100},
}

N_TEST = 120
FEED = 40  # three chunks per device


def _spec(pipeline: str, seed: int) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"{pipeline}-{seed}",
        pipeline=pipeline,
        dataset="blobs",
        seed=seed,
        model_seed=5,
        pipeline_kwargs=PIPELINES[pipeline],
        dataset_kwargs={"n_test": N_TEST, "drift_at": 60},
    )


def _assert_identical(a, b):
    assert len(a) == len(b)
    assert a == b
    sa = np.array([r.anomaly_score for r in a], dtype=np.float64)
    sb = np.array([r.anomaly_score for r in b], dtype=np.float64)
    assert sa.tobytes() == sb.tobytes()


def _fetch(url: str):
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode()


def _post(url: str, payload: dict):
    body = json.dumps(payload).encode()
    req = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode())


@pytest.mark.parametrize("pipeline", sorted(PIPELINES))
def test_served_records_match_standalone(pipeline, tmp_path):
    """Core-level: reordered loadgen traffic is byte-invisible per family."""
    specs = {f"dev{i}": _spec(pipeline, seed=70 + i) for i in range(2)}
    streams = {dev: build_experiment(spec).test for dev, spec in specs.items()}
    fm = FleetManager(
        capacity=1, spool_dir=tmp_path / "spool", batch_scoring=True
    )
    core = IngestCore(fm, gap_window=4)
    for dev, spec in specs.items():
        core.register(dev, spec)
    with core:
        report = run_load(
            core, streams, feed_chunk=FEED, seed=17, reorder=0.4,
            retry_scale=0.01,
        )
        per_device = core.finish_all()
    assert report.undelivered == 0
    assert report.admitted == report.chunks == report.completed
    assert report.errors == 0
    for dev, spec in specs.items():
        _assert_identical(build_experiment(spec).run(), per_device[dev])


def test_http_end_to_end_with_observability(tmp_path):
    """Wire-level: HTTP loadgen + /metrics + /health + /fleet + errors."""
    tel = Telemetry(enabled=True, sinks=[RingBufferSink()])
    specs = {f"dev{i}": _spec("proposed", seed=80 + i) for i in range(4)}
    streams = {dev: build_experiment(spec).test for dev, spec in specs.items()}
    stack = ServingStack(
        capacity=2, spool_dir=tmp_path / "spool", batch_scoring=True,
        gap_window=4, telemetry=tel,
    )
    for dev, spec in specs.items():
        stack.register(dev, spec)
    with stack:
        report = run_load(
            stack, streams, feed_chunk=FEED, seed=23, reorder=0.3,
            retry_scale=0.01,
        )
        assert report.undelivered == 0
        assert report.completed == report.admitted == report.chunks

        status, body = _fetch(stack.url + "/health")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["ingest"]["completed"] == report.completed

        status, body = _fetch(stack.url + "/fleet")
        assert status == 200
        fleet = json.loads(body)
        assert fleet["sharded"] is False
        assert fleet["devices"]["samples"] == report.samples

        status, body = _fetch(stack.url + "/metrics")
        assert status == 200
        assert lint_prometheus(body) == []
        assert "repro_fleet_ingest_chunks" in body
        assert "repro_fleet_ingest_latency_seconds" in body

        status, _ = _fetch(stack.url + "/v1/ingest")
        assert status == 200

        # Error mapping over the wire: duplicate seq 0 -> 409, a gap
        # beyond the window -> 422, unknown device -> 404, bad body -> 400.
        X0 = streams["dev0"].X[:FEED].tolist()
        y0 = streams["dev0"].y[:FEED].tolist()
        chunk_url = stack.url + "/v1/devices/dev0/chunks"
        status, reply = _post(chunk_url, {"seq": 0, "X": X0, "y": y0})
        assert (status, reply["status"]) == (409, "duplicate")
        status, reply = _post(chunk_url, {"seq": 99, "X": X0, "y": y0})
        assert (status, reply["status"]) == (422, "gap_overflow")
        status, reply = _post(
            stack.url + "/v1/devices/ghost/chunks", {"seq": 0, "X": X0, "y": y0}
        )
        assert (status, reply["status"]) == (404, "unknown_device")
        status, reply = _post(chunk_url, {"seq": 3})
        assert status == 400 and "malformed" in reply["error"]

        # Results were popped by the loadgen; a by-sequence read is empty.
        status, body = _fetch(stack.url + "/v1/devices/dev0/results?order=seq")
        assert status == 200 and json.loads(body)["count"] == 0

        per_device = stack.finish_all()
    for dev, spec in specs.items():
        _assert_identical(build_experiment(spec).run(), per_device[dev])


def test_sharded_stack_serves_byte_identical_records(tmp_path):
    """Sharded fleets behind the server: same bytes, live /fleet stats."""
    specs = {f"dev{i}": _spec("proposed", seed=90 + i) for i in range(4)}
    streams = {dev: build_experiment(spec).test for dev, spec in specs.items()}
    stack = ServingStack(
        capacity=1, spool_dir=tmp_path / "spool", n_shards=2,
        batch_scoring=True, gap_window=4,
    )
    for dev, spec in specs.items():
        stack.register(dev, spec)
    with stack:
        report = run_load(
            stack, streams, feed_chunk=FEED, seed=29, reorder=0.3,
            retry_scale=0.01,
        )
        assert report.undelivered == 0
        assert report.errors == 0
        # Sharded completions carry no per-chunk record counts.
        status, body = _fetch(stack.url + "/fleet")
        assert status == 200
        fleet = json.loads(body)
        assert fleet["sharded"] is True
        assert fleet["devices"].get("samples") == report.samples
        per_device = stack.finish_all()
    for dev, spec in specs.items():
        _assert_identical(build_experiment(spec).run(), per_device[dev])
