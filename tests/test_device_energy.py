"""Unit tests for the energy / battery-life model."""

from __future__ import annotations

import pytest

from repro.device import (
    PI4_POWER,
    PICO_POWER,
    PowerProfile,
    RASPBERRY_PI_PICO,
    StageCostModel,
    battery_life_hours,
    energy_per_sample_mj,
)
from repro.utils.exceptions import ConfigurationError


class TestPowerProfile:
    def test_constants_sane(self):
        assert PI4_POWER.active_watts > PICO_POWER.active_watts
        assert PICO_POWER.idle_watts < PICO_POWER.active_watts

    def test_invalid_profiles(self):
        with pytest.raises(ConfigurationError):
            PowerProfile(RASPBERRY_PI_PICO, active_watts=0.0, idle_watts=0.0)
        with pytest.raises(ConfigurationError):
            PowerProfile(RASPBERRY_PI_PICO, active_watts=1.0, idle_watts=2.0)


class TestEnergyPerSample:
    def test_active_only(self):
        # 0.1 s at 0.09 W = 9 mJ.
        assert energy_per_sample_mj(PICO_POWER, 0.1) == pytest.approx(9.0)

    def test_duty_cycled(self):
        # 0.1 s active + 0.9 s idle at 6 mW = 9 + 5.4 mJ.
        mj = energy_per_sample_mj(PICO_POWER, 0.1, sample_period_seconds=1.0)
        assert mj == pytest.approx(9.0 + 0.9 * 6.0, rel=1e-6)

    def test_compute_exceeding_period_rejected(self):
        with pytest.raises(ConfigurationError):
            energy_per_sample_mj(PICO_POWER, 2.0, sample_period_seconds=1.0)

    def test_zero_compute_ok(self):
        assert energy_per_sample_mj(PICO_POWER, 0.0) == 0.0

    def test_pico_wins_in_duty_cycled_deployment(self):
        """Per active-compute joule the boards are comparable (the Pico's
        ~100x slowdown eats most of its ~44x power advantage), but in the
        realistic duty-cycled deployment — one sample per second, idle in
        between — the Pico's 6 mW sleep beats the Pi 4's 2 W idle by two
        orders of magnitude. That is the paper's deployment argument,
        quantified."""
        model = StageCostModel(2, 511, 22)
        flops = model.label_prediction().flops
        pico_s = RASPBERRY_PI_PICO.seconds_for_flops(flops)
        from repro.device import RASPBERRY_PI_4

        pi4_s = RASPBERRY_PI_4.seconds_for_flops(flops)
        assert pico_s > pi4_s  # the Pico really is much slower
        pico_mj = energy_per_sample_mj(PICO_POWER, pico_s, sample_period_seconds=1.0)
        pi4_mj = energy_per_sample_mj(PI4_POWER, pi4_s, sample_period_seconds=1.0)
        assert pico_mj < pi4_mj / 50


class TestBatteryLife:
    def test_longer_period_longer_life(self):
        fast = battery_life_hours(PICO_POWER, 0.15, 1.0)
        slow = battery_life_hours(PICO_POWER, 0.15, 10.0)
        assert slow > fast

    def test_magnitude_reasonable(self):
        # 10 Wh battery, 1 Hz sampling, ~150 ms compute: weeks not minutes.
        hours = battery_life_hours(PICO_POWER, 0.15, 1.0, battery_wh=10.0)
        assert 100 < hours < 5000

    def test_invalid_battery(self):
        with pytest.raises(ConfigurationError):
            battery_life_hours(PICO_POWER, 0.1, 1.0, battery_wh=0.0)

    def test_consistent_with_energy_model(self):
        hours = battery_life_hours(PICO_POWER, 0.1, 2.0, battery_wh=1.0)
        mj = energy_per_sample_mj(PICO_POWER, 0.1, sample_period_seconds=2.0)
        watts = (mj / 1e3) / 2.0
        assert hours == pytest.approx(1.0 / watts, rel=1e-9)
