"""FleetManager unit behaviour: LRU policy, spool files, telemetry labels."""

from __future__ import annotations

import pytest

from repro.engine import ExperimentSpec, build_experiment
from repro.fleet import FleetManager
from repro.fleet.manager import SESSION_KIND
from repro.resilience import load_checkpoint
from repro.telemetry import Telemetry
from repro.utils.exceptions import ConfigurationError


def _spec(seed: int) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"cell-{seed}",
        pipeline="baseline",  # frozen model: cheapest family for unit tests
        dataset="blobs",
        seed=seed,
        model_seed=5,
        dataset_kwargs={"n_test": 120, "drift_at": 60},
    )


@pytest.fixture
def fleet(tmp_path):
    specs = {f"dev{i}": _spec(50 + i) for i in range(4)}
    streams = {dev: build_experiment(spec).test for dev, spec in specs.items()}
    fm = FleetManager(capacity=2, spool_dir=tmp_path / "spool")
    for dev, spec in specs.items():
        fm.add_device(dev, spec)
    yield fm, specs, streams
    fm.close()


def _feed(fm, streams, dev, start=0, stop=40):
    s = streams[dev]
    return fm.submit(dev, s.X[start:stop], s.y[start:stop])


class TestLRU:
    def test_capacity_bounds_resident_sessions(self, fleet):
        fm, specs, streams = fleet
        for dev in specs:
            _feed(fm, streams, dev)
        assert len(fm.resident) == 2
        assert fm.stats.max_resident == 2
        assert fm.stats.evictions == 2

    def test_least_recently_submitted_is_evicted_first(self, fleet):
        fm, specs, streams = fleet
        _feed(fm, streams, "dev0")
        _feed(fm, streams, "dev1")
        _feed(fm, streams, "dev0", 40, 80)  # dev1 is now coldest
        _feed(fm, streams, "dev2")
        assert fm.resident == ["dev0", "dev2"]

    def test_restore_brings_back_the_same_position(self, fleet):
        fm, specs, streams = fleet
        _feed(fm, streams, "dev0", 0, 40)
        _feed(fm, streams, "dev1")
        _feed(fm, streams, "dev2")  # dev0 spooled
        assert "dev0" not in fm.resident
        records = _feed(fm, streams, "dev0", 40, 80)  # lazily restored
        assert [r.index for r in records] == list(range(40, 80))
        assert fm.stats.restores == 1

    def test_spool_file_is_a_typed_checkpoint(self, fleet, tmp_path):
        fm, specs, streams = fleet
        for dev in ("dev0", "dev1", "dev2"):
            _feed(fm, streams, dev)
        path = tmp_path / "spool" / "dev0.fleetck"
        assert path.is_file()
        ck = load_checkpoint(path, expected_kind=SESSION_KIND)
        assert ck.meta["device"] == "dev0"
        assert ck.state["position"] == 40

    def test_eviction_without_spool_dir_is_an_error(self):
        fm = FleetManager(capacity=1, spool_dir=None)
        fm.add_device("a", _spec(1))
        fm.add_device("b", _spec(2))
        stream = build_experiment(_spec(1)).test
        fm.submit("a", stream.X[:40], stream.y[:40])
        with pytest.raises(ConfigurationError, match="spool_dir"):
            fm.submit("b", stream.X[:40], stream.y[:40])
        fm.close()


class TestLifecycle:
    def test_unknown_device_rejected(self, fleet):
        fm, _, streams = fleet
        with pytest.raises(ConfigurationError, match="unknown device"):
            fm.submit("ghost", streams["dev0"].X[:10], streams["dev0"].y[:10])

    def test_duplicate_registration_rejected(self, fleet):
        fm, specs, _ = fleet
        with pytest.raises(ConfigurationError, match="already registered"):
            fm.add_device("dev0", specs["dev0"])

    def test_finish_never_submitted_device_is_empty(self, fleet):
        fm, _, _ = fleet
        assert fm.finish("dev3") == []

    def test_finish_restores_evicted_device(self, fleet):
        fm, specs, streams = fleet
        _feed(fm, streams, "dev0")
        _feed(fm, streams, "dev1")
        _feed(fm, streams, "dev2")  # dev0 spooled
        records = fm.finish("dev0")
        assert len(records) == 40
        assert fm.finish("dev0") == records  # idempotent

    def test_submit_after_finish_rejected(self, fleet):
        fm, _, streams = fleet
        _feed(fm, streams, "dev0")
        fm.finish("dev0")
        with pytest.raises(ConfigurationError, match="finished"):
            _feed(fm, streams, "dev0", 40, 80)

    def test_closed_manager_rejects_everything(self, fleet):
        fm, specs, streams = fleet
        fm.close()
        with pytest.raises(ConfigurationError, match="closed"):
            _feed(fm, streams, "dev0")
        fm.close()  # idempotent

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            FleetManager(capacity=0)


class TestTelemetry:
    def test_per_device_labels_and_cache_metrics(self, fleet):
        fm, specs, streams = fleet
        tel = Telemetry(enabled=True)
        fm.telemetry = tel
        for dev in specs:
            _feed(fm, streams, dev)
        _feed(fm, streams, "dev0", 40, 80)  # restore + more labelled samples
        text = tel.registry.to_prometheus()
        assert 'repro_fleet_device_samples{device="dev0"} 80' in text
        assert 'repro_fleet_device_samples{device="dev3"} 40' in text
        assert "repro_fleet_evictions" in text
        assert "repro_fleet_restores" in text
        assert "repro_fleet_resident_sessions 2" in text

    def test_stats_track_without_telemetry(self, fleet):
        fm, specs, streams = fleet
        assert not fm.telemetry.enabled
        for dev in specs:
            _feed(fm, streams, dev)
        assert fm.stats.samples == 160
        assert fm.stats.device_samples["dev0"] == 40
        assert fm.stats.evict_seconds > 0
