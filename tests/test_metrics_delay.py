"""Unit tests for detection-delay metrics."""

from __future__ import annotations

import pytest

from repro.core.pipeline import StepRecord
from repro.metrics import delay_report, detection_delay, detection_indices
from repro.utils.exceptions import DataValidationError


def recs(n, detections):
    det = set(detections)
    return [
        StepRecord(i, 0, 0, True, 0.0, i in det, False, "predict") for i in range(n)
    ]


class TestDetectionIndices:
    def test_extracts_detection_positions(self):
        assert detection_indices(recs(10, [3, 7])) == [3, 7]

    def test_empty(self):
        assert detection_indices(recs(5, [])) == []


class TestDetectionDelay:
    def test_basic(self):
        assert detection_delay([120, 300], drift_point=100) == 20

    def test_detection_at_drift_point(self):
        assert detection_delay([100], drift_point=100) == 0

    def test_only_earlier_detections(self):
        assert detection_delay([50], drift_point=100) is None

    def test_no_detections(self):
        assert detection_delay([], drift_point=100) is None

    def test_negative_drift_point(self):
        with pytest.raises(DataValidationError):
            detection_delay([5], drift_point=-1)


class TestDelayReport:
    def test_single_drift(self):
        rep = delay_report(recs(1000, [450]), [400])
        assert rep.delays == (50,)
        assert rep.first_delay == 50
        assert rep.false_positives == ()

    def test_false_positive_separated(self):
        rep = delay_report(recs(1000, [100, 450]), [400])
        assert rep.false_positives == (100,)
        assert rep.delays == (50,)

    def test_missed_drift(self):
        rep = delay_report(recs(1000, []), [400])
        assert rep.delays == (None,)
        assert rep.first_delay is None

    def test_multiple_drifts_segmented(self):
        # Detections at 130 and 520 attribute to drifts at 100 and 500.
        rep = delay_report(recs(1000, [130, 520]), [100, 500])
        assert rep.delays == (30, 20)

    def test_detection_in_first_segment_only(self):
        rep = delay_report(recs(1000, [130]), [100, 500])
        assert rep.delays == (30, None)

    def test_detection_counts_only_first_in_segment(self):
        rep = delay_report(recs(1000, [130, 180, 520]), [100, 500])
        assert rep.delays == (30, 20)
        assert rep.detections == (130, 180, 520)

    def test_no_drift_points(self):
        rep = delay_report(recs(100, [50]), [])
        assert rep.delays == ()
        assert rep.false_positives == ()
