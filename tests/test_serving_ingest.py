"""Serving ingestion core: sequencing, backpressure, admission control.

The backpressure staircase is pinned with a gate-controlled stub
manager: while the dispatcher is blocked inside ``submit_many``, lanes
fill deterministically and the admission ladder must walk
queue-full → throttle → shed → reject, with every *admitted* chunk still
producing a completion ticket once the gate opens (no record loss).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.engine import ExperimentSpec, build_experiment
from repro.fleet import FleetManager
from repro.guard.ladder import DegradationLadder, GuardLevel
from repro.serving import (
    AdmissionController,
    IngestCore,
    OfferStatus,
    device_priority,
)
from repro.utils.exceptions import ConfigurationError

N_TEST = 120


def _spec(seed: int) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"serve-{seed}",
        pipeline="proposed",
        dataset="blobs",
        seed=seed,
        model_seed=5,
        pipeline_kwargs={"window_size": 40},
        dataset_kwargs={"n_test": N_TEST, "drift_at": 60},
    )


def _chunks(spec: ExperimentSpec, size: int = 40):
    stream = build_experiment(spec).test
    return [
        (stream.X[a : a + size], stream.y[a : a + size])
        for a in range(0, len(stream.X), size)
    ]


def _wait(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestSequencing:
    def _core(self, tmp_path, **kw) -> IngestCore:
        fm = FleetManager(capacity=2, spool_dir=tmp_path / "spool")
        return IngestCore(fm, **kw)

    def test_in_order_chunks_complete_with_record_counts(self, tmp_path):
        spec = _spec(1)
        core = self._core(tmp_path)
        core.register("dev0", spec)
        with core:
            for seq, (Xc, yc) in enumerate(_chunks(spec)):
                offer = core.offer("dev0", seq, Xc, yc)
                assert offer.status is OfferStatus.ACCEPTED
                assert offer.ticket is not None
            assert core.drain(timeout=30.0)
            results = core.results("dev0")
            per_device = core.finish_all()
        assert [r.seq for r in results] == [0, 1, 2]
        assert all(r.error is None for r in results)
        assert sum(r.records for r in results) == len(per_device["dev0"]) == N_TEST
        assert all(r.latency_seconds >= 0 for r in results)

    def test_out_of_order_buffers_then_drains_in_sequence(self, tmp_path):
        spec = _spec(2)
        chunks = _chunks(spec)
        core = self._core(tmp_path, gap_window=4)
        core.register("dev0", spec)
        with core:
            # 1 and 2 arrive before 0: both stash, nothing dispatches.
            assert core.offer("dev0", 1, *chunks[1]).status is OfferStatus.BUFFERED
            assert core.offer("dev0", 2, *chunks[2]).status is OfferStatus.BUFFERED
            assert core.gaps() == {"dev0": [1, 2]}
            assert core.offer("dev0", 0, *chunks[0]).status is OfferStatus.ACCEPTED
            assert core.gaps() == {}
            per_device = core.finish_all()
        # Released strictly in sequence -> byte-identical to a solo run.
        solo = build_experiment(spec).run()
        assert per_device["dev0"] == solo

    def test_duplicates_refused_for_seen_and_stashed_sequences(self, tmp_path):
        spec = _spec(3)
        chunks = _chunks(spec)
        core = self._core(tmp_path, gap_window=4)
        core.register("dev0", spec)
        with core:
            assert core.offer("dev0", 0, *chunks[0]).status is OfferStatus.ACCEPTED
            assert core.offer("dev0", 0, *chunks[0]).status is OfferStatus.DUPLICATE
            assert core.offer("dev0", 2, *chunks[2]).status is OfferStatus.BUFFERED
            dup = core.offer("dev0", 2, *chunks[2])
            assert dup.status is OfferStatus.DUPLICATE
            assert dup.ticket is None
            assert core.offer("dev0", 1, *chunks[1]).status is OfferStatus.ACCEPTED
            core.finish_all()

    def test_gap_overflow_and_unknown_device_and_malformed(self, tmp_path):
        spec = _spec(4)
        chunks = _chunks(spec)
        core = self._core(tmp_path, gap_window=2)
        core.register("dev0", spec)
        with core:
            far = core.offer("dev0", 3, *chunks[1])
            assert far.status is OfferStatus.GAP_OVERFLOW
            ghost = core.offer("ghost", 0, *chunks[0])
            assert ghost.status is OfferStatus.UNKNOWN_DEVICE
            bad = core.offer("dev0", 0, chunks[0][0], chunks[0][1][:-1])
            assert bad.status is OfferStatus.REJECTED
            assert "malformed" in bad.detail
            core.stop()

    def test_register_after_start_refused(self, tmp_path):
        core = self._core(tmp_path)
        core.register("dev0", _spec(5))
        with core:
            with pytest.raises(ConfigurationError, match="before start"):
                core.register("dev1", _spec(6))

    def test_finish_all_refuses_unfilled_gaps_unless_forced(self, tmp_path):
        spec = _spec(7)
        chunks = _chunks(spec)
        core = self._core(tmp_path, gap_window=4)
        core.register("dev0", spec)
        core.start()
        assert core.offer("dev0", 0, *chunks[0]).status is OfferStatus.ACCEPTED
        assert core.offer("dev0", 2, *chunks[2]).status is OfferStatus.BUFFERED
        with pytest.raises(ConfigurationError, match="gaps"):
            core.finish_all()
        core.start()  # the refused finish_all stopped the dispatcher
        per_device = core.finish_all(force_gaps=True)
        assert core.dispatch_failures == 1  # the discarded stash entry
        assert len(per_device["dev0"]) == 40  # only chunk 0 reached the engine

    def test_results_supports_seq_order_peek_and_limit(self, tmp_path):
        spec = _spec(8)
        chunks = _chunks(spec)
        core = self._core(tmp_path)
        core.register("dev0", spec)
        with core:
            for seq in range(3):
                core.offer("dev0", seq, *chunks[seq])
            assert core.drain(timeout=30.0)
            peek = core.results("dev0", order="seq", pop=False)
            assert [r.seq for r in peek] == [0, 1, 2]
            first = core.results("dev0", limit=1)
            assert len(first) == 1
            rest = core.results("dev0")
            assert {r.seq for r in rest} == {0, 1, 2} - {first[0].seq}
            assert core.results("dev0") == []
            with pytest.raises(ConfigurationError, match="order"):
                core.results("dev0", order="sideways")
            core.stop()


class _GateManager:
    """Stub manager whose submit_many blocks until the test opens a gate."""

    capacity = 8

    def __init__(self):
        self.gate = threading.Event()
        self.entered = threading.Event()
        self.shed_calls: list = []
        self.batches: list = []

    def add_device(self, device_id, spec):
        pass

    def submit_many(self, batch, *, contain_errors=False):
        self.entered.set()
        assert self.gate.wait(timeout=30.0)
        self.batches.append([dev for dev, _, _ in batch])
        return [[] for _ in batch]

    def shed(self, k):
        self.shed_calls.append(int(k))
        return int(k)

    def finish_all(self):
        return {}

    def close(self):
        pass


def _priority_split(prefix: str = "pdev", fraction: float = 0.25):
    """One device below the shed threshold and one above it."""
    low = high = None
    for i in range(200):
        name = f"{prefix}{i}"
        if device_priority(name) < fraction and low is None:
            low = name
        if device_priority(name) >= fraction and high is None:
            high = name
        if low and high:
            return low, high
    raise AssertionError("no priority split found")  # pragma: no cover


class TestBackpressureStaircase:
    def test_queue_full_throttle_shed_reject_without_record_loss(self):
        ladder = DegradationLadder(
            trip_faults=2, fault_window=64, freeze_trips=2,
            trip_window=256, cooldown=2,
        )
        admission = AdmissionController(ladder=ladder, retry_after=0.01)
        manager = _GateManager()
        low, high = _priority_split()
        X = np.zeros((4, 6))
        y = np.zeros(4, dtype=int)
        core = IngestCore(
            manager, queue_capacity=2, window_chunks=1, admission=admission
        )
        for dev in ("dev0", low, high):
            core.register(dev, _spec(9))
        admitted_tickets = []
        with core:
            # First chunk is grabbed by the dispatcher and blocks on the
            # gate; the next two fill dev0's lane to capacity.
            for seq in range(3):
                offer = core.offer("dev0", seq, X, y)
                assert offer.admitted
                admitted_tickets.append(offer.ticket)
                if seq == 0:
                    assert manager.entered.wait(timeout=10.0)
                    assert _wait(lambda: core.pending()["inflight"] == 1)
            # Lane full: two faults escalate HEALTHY -> SANITIZING.
            for seq in (3, 4):
                offer = core.offer("dev0", seq, X, y)
                assert offer.status is OfferStatus.QUEUE_FULL
                assert offer.retry_after is not None
            assert admission.level == GuardLevel.SANITIZING
            # Fresh-lane devices are throttled with a Retry-After hint.
            throttled = core.offer(high, 0, X, y)
            assert throttled.status is OfferStatus.THROTTLED
            assert throttled.retry_after is not None
            # A full lane *while throttling* is a trip -> PASSTHROUGH.
            assert core.offer("dev0", 5, X, y).status is OfferStatus.QUEUE_FULL
            assert admission.level == GuardLevel.PASSTHROUGH
            # PASSTHROUGH sheds the low-priority slice, keeps the rest.
            assert core.offer(low, 0, X, y).status is OfferStatus.SHED
            kept = core.offer(high, 0, X, y)
            assert kept.admitted
            admitted_tickets.append(kept.ticket)
            # Another full lane trips again -> FROZEN: reject everything.
            assert core.offer("dev0", 6, X, y).status is OfferStatus.QUEUE_FULL
            assert admission.level == GuardLevel.FROZEN
            assert core.offer(high, 1, X, y).status is OfferStatus.REJECTED
            # Open the gate: every admitted chunk must complete.
            manager.gate.set()
            assert core.drain(timeout=30.0)
            done = core.results("dev0") + core.results(low) + core.results(high)
            assert sorted(r.ticket for r in done) == sorted(admitted_tickets)
            assert all(r.error is None for r in done)
            # The PASSTHROUGH transition requested exactly one shed, and
            # the dispatcher (not the transition) executed it.
            assert manager.shed_calls == [
                max(1, int(manager.capacity * admission.shed_fraction))
            ]
            core.stop()

    def test_clean_dispatches_deescalate_the_ladder(self):
        ladder = DegradationLadder(
            trip_faults=1, fault_window=8, freeze_trips=4,
            trip_window=64, cooldown=1,
        )
        admission = AdmissionController(ladder=ladder, retry_after=0.01)
        manager = _GateManager()
        manager.gate.set()  # dispatch immediately
        core = IngestCore(manager, queue_capacity=4, admission=admission)
        core.register("dev0", _spec(10))
        with core:
            admission.note_queue_full()  # fault -> SANITIZING
            assert admission.level == GuardLevel.SANITIZING
            assert core.offer("dev0", 0, np.zeros((2, 6)), np.zeros(2)).status \
                is OfferStatus.THROTTLED
            # One clean dispatch satisfies cooldown=1 -> HEALTHY again.
            admission.note_dispatch(0.001, 4)
            assert admission.level == GuardLevel.HEALTHY
            offer = core.offer("dev0", 0, np.zeros((2, 6)), np.zeros(2))
            assert offer.admitted
            assert core.drain(timeout=10.0)
            core.stop()


class _FailingManager(_GateManager):
    def submit_many(self, batch, *, contain_errors=False):
        raise RuntimeError("engine exploded")


class _QuarantiningManager(_GateManager):
    def submit_many(self, batch, *, contain_errors=False):
        assert contain_errors
        return [None for _ in batch]  # every device quarantined


class TestDispatchFailures:
    def test_dispatch_error_trips_ladder_and_marks_results(self):
        admission = AdmissionController(retry_after=0.01)
        core = IngestCore(_FailingManager(), admission=admission)
        core.register("dev0", _spec(11))
        with core:
            offer = core.offer("dev0", 0, np.zeros((2, 6)), np.zeros(2))
            assert offer.admitted
            assert core.drain(timeout=10.0)
            (result,) = core.results("dev0")
            assert result.error is not None
            assert "engine exploded" in result.error
            assert result.records is None
            assert core.dispatch_failures == 1
            # A dispatch raise is a trip: straight past throttling.
            assert admission.level == GuardLevel.PASSTHROUGH
            core.stop()

    def test_contained_quarantine_reports_per_chunk_error(self):
        core = IngestCore(_QuarantiningManager())
        core.register("dev0", _spec(12))
        with core:
            core.offer("dev0", 0, np.zeros((2, 6)), np.zeros(2))
            assert core.drain(timeout=10.0)
            (result,) = core.results("dev0")
            assert result.error == "device quarantined"
            assert core.dispatch_failures == 0  # contained, not a failure
            core.stop()


class TestAdmissionController:
    def test_device_priority_stable_and_uniformish(self):
        values = [device_priority(f"dev{i:04d}") for i in range(256)]
        assert values == [device_priority(f"dev{i:04d}") for i in range(256)]
        assert all(0.0 <= v < 1.0 for v in values)
        below = sum(v < 0.25 for v in values)
        assert 32 <= below <= 96  # ~64 expected at fraction 0.25

    def test_retry_hint_scales_with_pressure(self):
        admission = AdmissionController(retry_after=0.5)
        base = admission.retry_hint()
        assert base == pytest.approx(0.5)
        admission.note_pressure(1.0)
        assert admission.retry_hint() == pytest.approx(4.0)  # 8x base
        admission.note_pressure(7.0)  # clamped
        assert admission.retry_hint() == pytest.approx(4.0)

    def test_decision_counters_accumulate(self):
        admission = AdmissionController()
        assert admission.admit("a").accepted
        admission.note_queue_full()
        assert admission.decisions["accept"] == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="shed_fraction"):
            AdmissionController(shed_fraction=0.0)
        with pytest.raises(ConfigurationError, match="retry_after"):
            AdmissionController(retry_after=-1.0)
        with pytest.raises(ConfigurationError, match="latency_slo"):
            AdmissionController(latency_slo=0.0)

    def test_latency_slo_violation_is_a_fault(self):
        ladder = DegradationLadder(
            trip_faults=1, fault_window=8, freeze_trips=4,
            trip_window=64, cooldown=4,
        )
        admission = AdmissionController(ladder=ladder, latency_slo=0.5)
        admission.note_dispatch(2.0, 100)
        assert admission.level == GuardLevel.SANITIZING

    def test_core_validation(self, tmp_path):
        fm = FleetManager(capacity=2)
        with pytest.raises(ConfigurationError, match="queue_capacity"):
            IngestCore(fm, queue_capacity=0)
        with pytest.raises(ConfigurationError, match="gap_window"):
            IngestCore(fm, gap_window=-1)
        with pytest.raises(ConfigurationError, match="window_chunks"):
            IngestCore(fm, window_chunks=0)
        core = IngestCore(fm)
        core.register("dev0", _spec(13))
        with pytest.raises(ConfigurationError, match="already registered"):
            core.register("dev0", _spec(13))
        fm.close()
