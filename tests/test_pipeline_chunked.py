"""Golden-equivalence tests for the chunked streaming fast path.

``StreamPipeline.run`` consumes streams in vectorized chunks by default;
these tests pin the contract that makes that safe: for every pipeline the
chunked run produces **bit-identical** ``StepRecord`` lists to the
per-sample reference loop (``chunk_size=1``), on a drifting NSL-KDD-like
stream that actually exercises detection, reconstruction, and refitting.
A timing test asserts the fast path is what it claims to be (≥3× on a
20 000-sample pure-predict stream).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import (
    CentroidSet,
    ErrorRatePipeline,
    ModelReconstructor,
    build_baseline,
    build_model,
    build_onlad,
    build_proposed,
    build_quanttree_pipeline,
    build_spll_pipeline,
)
from repro.datasets import (
    GaussianConcept,
    NSLKDDConfig,
    make_nslkdd_like,
    make_stationary_stream,
)
from repro.detectors import DDM

SEED = 3


def _ddm_pipeline(train):
    model = build_model(train.X, train.y, seed=SEED)
    cents = CentroidSet.from_labelled_data(train.X, train.y, train.n_classes)
    rec = ModelReconstructor(model, cents, n_total=120)
    return ErrorRatePipeline(model, DDM(), rec)


#: name -> (builder over the training stream, expects detections?)
MAKERS = {
    "baseline": (lambda tr: build_baseline(tr.X, tr.y, seed=SEED), False),
    "onlad": (lambda tr: build_onlad(tr.X, tr.y, forgetting_factor=0.95, seed=SEED), False),
    "proposed": (lambda tr: build_proposed(tr.X, tr.y, window_size=60, seed=SEED), True),
    "quanttree": (
        lambda tr: build_quanttree_pipeline(
            tr.X, tr.y, batch_size=250, n_bins=8, seed=SEED
        ),
        True,
    ),
    "spll": (
        lambda tr: build_spll_pipeline(tr.X, tr.y, batch_size=250, seed=SEED),
        True,
    ),
    "ddm": (_ddm_pipeline, True),
}


@pytest.fixture(scope="module")
def kdd_streams():
    """Reduced drifting NSL-KDD-like pair — every pipeline phase fires."""
    cfg = NSLKDDConfig(n_train=400, n_test=3000, drift_at=1000)
    return make_nslkdd_like(cfg, seed=0)


@pytest.mark.parametrize("method", sorted(MAKERS))
def test_chunked_records_bit_identical(method, kdd_streams):
    train, test = kdd_streams
    maker, expects_detections = MAKERS[method]

    reference = maker(train).run(test, chunk_size=1)
    assert len(reference) == len(test)
    if expects_detections:
        # the equivalence must cover the interesting paths, not just predict
        assert any(r.drift_detected for r in reference)

    for chunk_size in (7, 256, None):
        chunked = maker(train).run(test, chunk_size=chunk_size)
        assert chunked == reference, f"{method} diverges at chunk_size={chunk_size}"


def test_chunk_boundaries_do_not_matter(kdd_streams):
    train, test = kdd_streams
    maker, _ = MAKERS["proposed"]
    a = maker(train).run(test, chunk_size=64)
    b = maker(train).run(test, chunk_size=1024)
    assert a == b


def test_indices_and_detections_consistent(kdd_streams):
    train, test = kdd_streams
    maker, _ = MAKERS["quanttree"]
    pipe = maker(train)
    recs = pipe.run(test)
    assert [r.index for r in recs] == list(range(len(test)))
    assert pipe.detections == [r.index for r in recs if r.drift_detected]


@pytest.fixture(scope="module")
def big_stationary_stream():
    means = np.array(
        [
            [0.2, 0.2, 0.8, 0.8, 0.5, 0.1],
            [0.8, 0.8, 0.2, 0.2, 0.5, 0.9],
        ]
    )
    concept = GaussianConcept(means, 0.05)
    train = make_stationary_stream(concept, 240, seed=1, name="train")
    stream = make_stationary_stream(concept, 20_000, seed=5, name="big")
    return train, stream


#: Timing-test builders. The proposed pipeline's fast path only covers
#: idle-detector samples, so its speedup depends on the trigger rate; a
#: high ``error_z`` keeps the stationary stream pure-predict (the default
#: error_z=3 opens check windows on ~1 sample in 200 even without drift,
#: and every window forces ``window_size`` sequential samples).
TIMED_MAKERS = {
    "baseline": lambda tr: build_baseline(tr.X, tr.y, seed=SEED),
    "proposed": lambda tr: build_proposed(
        tr.X, tr.y, window_size=60, error_z=10.0, seed=SEED
    ),
}


@pytest.mark.parametrize("method", sorted(TIMED_MAKERS))
def test_chunked_at_least_3x_faster(method, big_stationary_stream):
    """The acceptance bar for the fast path: ≥3× on a 20k pure-predict
    stream (in practice it is >5×; 3× leaves slack for loaded hosts)."""
    train, stream = big_stationary_stream
    maker = TIMED_MAKERS[method]

    pipe = maker(train)
    t0 = time.perf_counter()
    reference = pipe.run(stream, chunk_size=1)
    t_seq = time.perf_counter() - t0

    pipe = maker(train)
    t0 = time.perf_counter()
    chunked = pipe.run(stream)
    t_chunked = time.perf_counter() - t0

    assert chunked == reference
    assert t_seq >= 3.0 * t_chunked, (
        f"{method}: sequential {t_seq:.3f}s vs chunked {t_chunked:.3f}s"
    )
