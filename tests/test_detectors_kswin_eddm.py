"""Unit tests for KSWIN and EDDM, plus the KS two-sample test itself."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors import EDDM, KSWIN, DriftState, ks_two_sample
from repro.utils.exceptions import ConfigurationError


class TestKSTwoSample:
    def test_identical_samples_d_zero(self):
        a = np.arange(50.0)
        d, p = ks_two_sample(a, a)
        assert d == pytest.approx(0.0)
        assert p > 0.99

    def test_same_distribution_high_p(self, rng):
        d, p = ks_two_sample(rng.normal(size=300), rng.normal(size=300))
        assert p > 0.01

    def test_shifted_distribution_low_p(self, rng):
        d, p = ks_two_sample(rng.normal(size=300), rng.normal(2.0, 1.0, 300))
        assert d > 0.5
        assert p < 1e-6

    def test_statistic_matches_scipy(self, rng):
        scipy_stats = pytest.importorskip("scipy.stats")
        a, b = rng.normal(size=80), rng.normal(0.5, 1.2, 120)
        d, p = ks_two_sample(a, b)
        ref = scipy_stats.ks_2samp(a, b)
        assert d == pytest.approx(ref.statistic, abs=1e-12)
        assert p == pytest.approx(ref.pvalue, abs=0.02)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ks_two_sample(np.array([]), np.array([1.0]))


class TestKSWIN:
    def test_detects_mean_shift(self, rng):
        kw = KSWIN(seed=0)
        det = []
        for i in range(3000):
            v = rng.normal(0.0 if i < 1500 else 1.5)
            if kw.update(v) is DriftState.DRIFT:
                det.append(i)
        post = [d for d in det if d >= 1500]
        assert post and post[0] < 1700

    def test_few_false_alarms_when_stationary(self, rng):
        kw = KSWIN(seed=0)
        fps = sum(
            kw.update(float(v)) is DriftState.DRIFT for v in rng.normal(size=5000)
        )
        assert fps <= 3

    def test_window_reset_on_detection(self, rng):
        kw = KSWIN(window_size=60, stat_size=20, alpha=0.01, seed=0)
        for i in range(200):
            v = rng.normal(0.0 if i < 150 else 4.0)
            state = kw.update(v)
            if state is DriftState.DRIFT:
                assert len(kw._window) == 20  # reset to the recent slice
                return
        pytest.fail("no detection")

    def test_no_test_before_window_full(self, rng):
        kw = KSWIN(window_size=100, stat_size=30, seed=0)
        for v in rng.normal(size=99):
            assert kw.update(float(v)) is DriftState.NORMAL
        assert kw.last_p_value is None

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            KSWIN(stat_size=100, window_size=100)
        with pytest.raises(Exception):
            KSWIN(alpha=2.0)

    def test_reset(self, rng):
        kw = KSWIN(seed=0)
        for v in rng.normal(size=200):
            kw.update(float(v))
        kw.reset()
        assert len(kw._window) == 0 and kw.n_samples_seen == 0

    def test_state_nbytes_bounded_by_window(self):
        assert KSWIN(window_size=100).state_nbytes() < 2000


class TestEDDM:
    def test_detects_error_bunching(self, rng):
        ed = EDDM()
        det = []
        for i in range(8000):
            err = rng.random() < (0.02 if i < 4000 else 0.4)
            if ed.update(err) is DriftState.DRIFT:
                det.append(i)
                ed.reset()
        post = [d for d in det if d >= 4000]
        assert post and post[0] < 4600

    def test_warning_level_exists(self, rng):
        ed = EDDM(min_errors=20)
        states = set()
        for i in range(8000):
            err = rng.random() < (0.02 if i < 4000 else 0.4)
            states.add(ed.update(err))
            if DriftState.DRIFT in states:
                break
        assert DriftState.WARNING in states

    def test_stationary_stream_quiet(self, rng):
        ed = EDDM()
        drifts = sum(
            ed.update(rng.random() < 0.1) is DriftState.DRIFT for _ in range(6000)
        )
        assert drifts <= 1

    def test_needs_min_errors(self):
        ed = EDDM(min_errors=30)
        # 20 consecutive errors: gaps recorded = 19 < 30 -> still NORMAL.
        for _ in range(20):
            assert ed.update(True) is DriftState.NORMAL

    def test_invalid_thresholds(self):
        with pytest.raises(ConfigurationError):
            EDDM(alpha=0.95, beta=0.90)
        with pytest.raises(ConfigurationError):
            EDDM(alpha=0.0, beta=0.95)

    def test_reset(self, rng):
        ed = EDDM()
        for _ in range(100):
            ed.update(rng.random() < 0.5)
        ed.reset()
        assert ed.n_samples_seen == 0
        assert ed._gaps.count == 0

    def test_improving_model_never_drifts(self):
        """Errors spread further apart over time — EDDM must stay quiet."""
        ed = EDDM()
        t, gap = 0, 2
        for _ in range(200):
            for _ in range(gap):
                assert ed.update(False) is not DriftState.DRIFT
                t += 1
            assert ed.update(True) is not DriftState.DRIFT
            gap += 1

    def test_state_nbytes_tiny(self):
        assert EDDM().state_nbytes() < 100
