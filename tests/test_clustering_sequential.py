"""Unit tests for sequential k-means and its update primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (
    SequentialKMeans,
    ewma_update,
    sequential_mean_update,
)
from repro.utils.exceptions import ConfigurationError, NotFittedError


class TestSequentialMeanUpdate:
    def test_equals_arithmetic_mean(self, rng):
        xs = rng.normal(size=(20, 3))
        c, n = np.zeros(3), 0
        for x in xs:
            c, n = sequential_mean_update(c, n, x)
        np.testing.assert_allclose(c, xs.mean(axis=0), atol=1e-12)
        assert n == 20

    def test_first_update_adopts_sample(self):
        c, n = sequential_mean_update(np.array([99.0]), 0, np.array([3.0]))
        assert c[0] == 3.0 and n == 1

    def test_paper_formula(self):
        # cor ← (cor·num + data) / (num + 1), the exact Algorithm 4 line 3.
        c, n = sequential_mean_update(np.array([2.0]), 4, np.array([7.0]))
        assert c[0] == pytest.approx((2.0 * 4 + 7.0) / 5)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            sequential_mean_update(np.zeros(2), -1, np.zeros(2))

    def test_returns_fresh_array(self):
        c0 = np.array([1.0])
        c1, _ = sequential_mean_update(c0, 1, np.array([2.0]))
        assert c1 is not c0


class TestEwmaUpdate:
    def test_formula(self):
        out = ewma_update(np.array([0.0]), np.array([10.0]), 0.3)
        assert out[0] == pytest.approx(3.0)

    def test_alpha_one_adopts_sample(self):
        out = ewma_update(np.array([5.0]), np.array([1.0]), 1.0)
        assert out[0] == 1.0

    def test_invalid_alpha(self):
        for alpha in (0.0, -0.1, 1.5):
            with pytest.raises(ConfigurationError):
                ewma_update(np.zeros(1), np.zeros(1), alpha)


class TestSequentialKMeans:
    def test_initialize_explicit(self):
        skm = SequentialKMeans(2).initialize(np.array([[0.0, 0.0], [5.0, 5.0]]))
        assert skm.is_fitted
        np.testing.assert_array_equal(skm.counts_, [1, 1])

    def test_initialize_wrong_count(self):
        with pytest.raises(ConfigurationError):
            SequentialKMeans(3).initialize(np.zeros((2, 2)))

    def test_tracks_two_blobs(self, rng):
        centers = np.array([[0.0, 0.0], [8.0, 8.0]])
        skm = SequentialKMeans(2).initialize(centers + 0.5)
        for _ in range(300):
            c = centers[rng.integers(2)]
            skm.partial_fit(c + rng.normal(0, 0.2, size=2))
        for tc in centers:
            assert np.abs(skm.cluster_centers_ - tc).sum(axis=1).min() < 0.3

    def test_partial_fit_returns_label(self):
        skm = SequentialKMeans(2).initialize(np.array([[0.0], [10.0]]))
        assert skm.partial_fit(np.array([1.0])) == 0
        assert skm.partial_fit(np.array([9.0])) == 1

    def test_counts_increment(self):
        skm = SequentialKMeans(2).initialize(np.array([[0.0], [10.0]]))
        skm.partial_fit(np.array([1.0]))
        np.testing.assert_array_equal(skm.counts_, [2, 1])

    def test_l1_metric_assignment(self):
        skm = SequentialKMeans(2, metric="l1").initialize(
            np.array([[0.0, 0.0], [4.0, 4.0]])
        )
        # Point closer in L1 to the second centroid.
        assert skm.predict_one(np.array([3.0, 3.0])) == 1

    def test_invalid_metric(self):
        with pytest.raises(ConfigurationError):
            SequentialKMeans(2, metric="cosine")

    def test_ewma_mode_moves_fast(self):
        exact = SequentialKMeans(1).initialize(np.array([[0.0]]), counts=np.array([100]))
        ew = SequentialKMeans(1, alpha=0.5).initialize(np.array([[0.0]]))
        for _ in range(5):
            exact.partial_fit(np.array([10.0]))
            ew.partial_fit(np.array([10.0]))
        assert ew.cluster_centers_[0, 0] > exact.cluster_centers_[0, 0]

    def test_fit_seeds_from_first_rows(self, rng):
        X = rng.normal(size=(30, 2))
        skm = SequentialKMeans(3).fit(X)
        assert skm.is_fitted
        assert skm.counts_.sum() == 30

    def test_fit_not_enough_samples(self):
        with pytest.raises(ConfigurationError):
            SequentialKMeans(5).fit(np.ones((3, 2)))

    def test_predict_batch_no_update(self, rng):
        skm = SequentialKMeans(2).initialize(np.array([[0.0, 0.0], [5.0, 5.0]]))
        before = skm.cluster_centers_.copy()
        labels = skm.predict(rng.normal(size=(10, 2)))
        assert labels.shape == (10,)
        np.testing.assert_array_equal(skm.cluster_centers_, before)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            SequentialKMeans(2).predict_one(np.zeros(2))

    def test_initialize_random(self, rng):
        X = rng.normal(size=(20, 2))
        skm = SequentialKMeans(4, seed=0).initialize_random(X)
        assert skm.cluster_centers_.shape == (4, 2)

    def test_counts_validation(self):
        with pytest.raises(ConfigurationError):
            SequentialKMeans(2).initialize(np.zeros((2, 2)), counts=np.array([-1, 1]))
