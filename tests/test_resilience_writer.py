"""AsyncCheckpointWriter: FIFO, drain, and per-scope error isolation."""

from __future__ import annotations

import threading

import pytest

from repro.resilience.writer import AsyncCheckpointWriter, shared_writer


class TestFifoAndDrain:
    def test_tasks_run_in_submission_order(self):
        ran = []
        with AsyncCheckpointWriter() as w:
            for i in range(20):
                w.submit(lambda i=i: ran.append(i))
            w.flush()
            assert ran == list(range(20))

    def test_flush_waits_for_slow_tasks(self):
        gate = threading.Event()
        done = []
        with AsyncCheckpointWriter() as w:
            w.submit(gate.wait)
            w.submit(lambda: done.append(1))
            gate.set()
            w.flush()
            assert done == [1]

    def test_submit_after_close_rejected(self):
        w = AsyncCheckpointWriter()
        w.close()
        with pytest.raises(RuntimeError, match="closed"):
            w.submit(lambda: None)


class TestScopedErrors:
    """Regression: two clients interleaved on one shared writer.

    Historically a failed task poisoned the *writer* — the error
    surfaced at whichever client called ``submit``/``flush`` next, so
    one run's disk-full could abort an unrelated healthy run. Errors are
    now tracked per ``scope``.
    """

    def test_one_scopes_failure_is_invisible_to_the_other(self):
        ok_ran = []
        with AsyncCheckpointWriter() as w:
            a, b = object(), object()
            # Interleaved submissions: b's tasks bracket a's failure.
            w.submit(lambda: ok_ran.append("b1"), scope=b)
            w.submit(lambda: 1 / 0, scope=a)
            w.submit(lambda: ok_ran.append("b2"), scope=b)
            w.flush(scope=b)  # healthy client: must NOT raise
            assert ok_ran == ["b1", "b2"]
            with pytest.raises(ZeroDivisionError):
                w.flush(scope=a)
            w.flush(scope=a)  # error was consumed: scope usable again

    def test_failing_scopes_backlog_is_skipped_but_other_scopes_run(self):
        ran = []
        release = threading.Event()
        with AsyncCheckpointWriter() as w:
            a, b = "scope-a", "scope-b"
            w.submit(release.wait, scope=b)  # hold the queue
            w.submit(lambda: 1 / 0, scope=a)
            w.submit(lambda: ran.append("a-later"), scope=a)  # must be skipped
            w.submit(lambda: ran.append("b-later"), scope=b)  # must run
            release.set()
            w.flush(scope=b)
            assert "b-later" in ran
            assert "a-later" not in ran
            with pytest.raises(ZeroDivisionError):
                w.submit(lambda: None, scope=a)

    def test_next_submit_on_failing_scope_raises_once(self):
        landed = threading.Event()
        with AsyncCheckpointWriter() as w:
            w.submit(lambda: 1 / 0, scope="s")
            w.submit(landed.set, scope="sync")  # FIFO: failure has run first
            landed.wait()
            with pytest.raises(ZeroDivisionError):
                w.submit(lambda: None, scope="s")
            w.submit(lambda: None, scope="s")  # consumed: usable again
            w.flush(scope="s")

    def test_bare_flush_raises_oldest_error_of_any_scope(self):
        w = AsyncCheckpointWriter()
        w.submit(lambda: 1 / 0, scope="first")
        w.flush(scope="first-barrier")  # no tasks: returns immediately
        w.submit(lambda: [][1], scope="second")
        with pytest.raises(ZeroDivisionError):
            w.flush()
        with pytest.raises(IndexError):
            w.flush()
        w.close()

    def test_close_surfaces_pending_error(self):
        w = AsyncCheckpointWriter()
        w.submit(lambda: 1 / 0, scope="s")
        with pytest.raises(ZeroDivisionError):
            w.close()

    def test_default_scope_is_shared(self):
        # Scope-less callers keep the historical single-client semantics.
        with AsyncCheckpointWriter() as w:
            w.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                w.flush()


class TestSharedWriter:
    def test_is_a_process_singleton(self):
        assert shared_writer() is shared_writer()

    def test_closed_singleton_is_replaced(self):
        first = shared_writer()
        first.close()
        second = shared_writer()
        assert second is not first
        second.submit(lambda: None)
        second.flush()
