"""Unit tests for OS-ELM — including the sequential ≡ batch equivalence.

The defining property of OS-ELM (Liang et al. 2006) is that the sequential
phase produces *exactly* the ridge-regression solution over all data seen
so far. Several tests pin this equivalence down for chunked and rank-1
updates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.oselm import OSELM
from repro.utils.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
)


def ridge_beta(model: OSELM, X: np.ndarray, T: np.ndarray) -> np.ndarray:
    """Closed-form ridge solution on the model's own hidden features."""
    H = model.layer.transform(X)
    A = H.T @ H + model.reg * np.eye(model.n_hidden)
    return np.linalg.solve(A, H.T @ T)


@pytest.fixture
def data(rng):
    X = rng.normal(size=(80, 5))
    W = rng.normal(size=(5, 2))
    T = X @ W + 0.01 * rng.normal(size=(80, 2))
    return X, T


class TestInitialPhase:
    def test_initial_matches_ridge(self, data):
        X, T = data
        m = OSELM(5, 10, 2, seed=0).fit_initial(X, T)
        np.testing.assert_allclose(m.beta, ridge_beta(m, X, T), atol=1e-8)

    def test_not_fitted_guards(self, data):
        X, T = data
        m = OSELM(5, 10, 2, seed=0)
        with pytest.raises(NotFittedError):
            m.predict(X)
        with pytest.raises(NotFittedError):
            m.partial_fit(X, T)
        with pytest.raises(NotFittedError):
            m.partial_fit_one(X[0], T[0])

    def test_small_initial_batch_ok_with_ridge(self, rng):
        # Fewer initial samples than hidden nodes still yields PD state.
        m = OSELM(5, 10, 1, reg=1e-2, seed=0)
        m.fit_initial(rng.normal(size=(4, 5)), rng.normal(size=(4, 1)))
        assert np.isfinite(m.beta).all()

    def test_refit_resets_count(self, data):
        X, T = data
        m = OSELM(5, 10, 2, seed=0).fit_initial(X, T)
        m.partial_fit(X[:5], T[:5])
        m.fit_initial(X, T)
        assert m.n_samples_seen == len(X)

    def test_1d_targets_single_output(self, rng):
        m = OSELM(3, 4, 1, seed=0)
        m.fit_initial(rng.normal(size=(10, 3)), rng.normal(size=10))
        assert m.beta.shape == (4, 1)


class TestSequentialEquivalence:
    def test_chunked_updates_match_full_batch(self, data):
        X, T = data
        m = OSELM(5, 10, 2, seed=0).fit_initial(X[:30], T[:30])
        m.partial_fit(X[30:55], T[30:55])
        m.partial_fit(X[55:], T[55:])
        np.testing.assert_allclose(m.beta, ridge_beta(m, X, T), atol=1e-6)

    def test_rank1_stream_matches_full_batch(self, data):
        X, T = data
        m = OSELM(5, 10, 2, seed=0).fit_initial(X[:30], T[:30])
        for i in range(30, len(X)):
            m.partial_fit_one(X[i], T[i])
        np.testing.assert_allclose(m.beta, ridge_beta(m, X, T), atol=1e-6)

    def test_single_row_chunk_uses_rank1_path(self, data):
        X, T = data
        a = OSELM(5, 10, 2, seed=0).fit_initial(X[:30], T[:30])
        b = OSELM(5, 10, 2, seed=0).fit_initial(X[:30], T[:30])
        a.partial_fit(X[30:31], T[30:31])
        b.partial_fit_one(X[30], T[30])
        np.testing.assert_allclose(a.beta, b.beta, atol=1e-10)

    def test_sample_counter(self, data):
        X, T = data
        m = OSELM(5, 10, 2, seed=0).fit_initial(X[:30], T[:30])
        m.partial_fit(X[30:40], T[30:40])
        m.partial_fit_one(X[40], T[40])
        assert m.n_samples_seen == 41

    def test_P_stays_symmetric_positive(self, data):
        X, T = data
        m = OSELM(5, 10, 2, seed=0).fit_initial(X[:30], T[:30])
        for i in range(30, len(X)):
            m.partial_fit_one(X[i], T[i])
        np.testing.assert_allclose(m.P, m.P.T, atol=1e-12)
        eig = np.linalg.eigvalsh(m.P)
        assert (eig > 0).all()


class TestPrediction:
    def test_fits_linear_map_well(self, data):
        X, T = data
        m = OSELM(5, 30, 2, seed=0).fit_initial(X, T)
        pred = m.predict(X)
        rel = np.linalg.norm(pred - T) / np.linalg.norm(T)
        assert rel < 0.15

    def test_predict_one_matches_batch(self, data):
        X, T = data
        m = OSELM(5, 10, 2, seed=0).fit_initial(X, T)
        np.testing.assert_allclose(m.predict_one(X[3]), m.predict(X[3:4])[0])

    def test_target_shape_mismatch(self, data):
        X, T = data
        m = OSELM(5, 10, 2, seed=0)
        with pytest.raises(ConfigurationError):
            m.fit_initial(X, T[:, :1])

    def test_nan_target_rejected(self, rng):
        # Bad *data* is a DataValidationError, not a configuration bug —
        # the guard layer relies on this classification to tell faulty
        # input apart from caller errors.
        m = OSELM(3, 4, 1, seed=0)
        with pytest.raises(DataValidationError):
            m.fit_initial(rng.normal(size=(5, 3)), np.full(5, np.nan))

    def test_state_nbytes(self, data):
        X, T = data
        m = OSELM(5, 10, 2, seed=0)
        assert m.state_nbytes() == 0
        m.fit_initial(X, T)
        assert m.state_nbytes() == m.beta.nbytes + m.P.nbytes


class TestLongStreamStability:
    def test_thousands_of_rank1_updates_stay_finite(self, rng):
        m = OSELM(4, 8, 4, seed=1)
        X0 = rng.normal(size=(20, 4))
        m.fit_initial(X0, X0 @ np.eye(4))
        for _ in range(3000):
            x = rng.normal(size=4)
            m.partial_fit_one(x, x)
        assert np.isfinite(m.beta).all()
        assert np.isfinite(m.P).all()
        np.testing.assert_allclose(m.P, m.P.T, atol=1e-9)
