"""Chaos soak: all five pipelines x both datasets under seeded fault storms.

Each soak splices a seeded random schedule of sensor faults (NaN bursts,
stuck-at, dropout, spike trains, dead features) into an ordinary
evaluation stream and runs it through a guarded pipeline. The acceptance
bar is the deployment one:

* **zero uncaught exceptions** — the run completes;
* **index-aligned records** — repaired/quarantined samples never shift
  the record stream against the input stream;
* **auditable recovery trail** — every fault handled and every ladder
  transition lands in telemetry with the exact stream index.

Under ``pytest --smoke`` the matrix shrinks to one dataset x one seed
(the CI smoke leg); the full matrix covers both synthesised paper
datasets and two schedule seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CentroidSet,
    ErrorRatePipeline,
    ModelReconstructor,
    build_baseline,
    build_model,
    build_onlad,
    build_proposed,
    build_quanttree_pipeline,
    build_spll_pipeline,
)
from repro.datasets import NSLKDDConfig, make_cooling_fan_like, make_nslkdd_like
from repro.detectors import DDM
from repro.guard import (
    FAULT_KINDS,
    RuntimeGuard,
    ScheduledFault,
    apply_fault_schedule,
    chaos_stream,
    make_fault_schedule,
)
from repro.telemetry import RingBufferSink, Telemetry
from repro.utils.exceptions import ConfigurationError

SEED = 3


def _ddm_pipeline(train):
    model = build_model(train.X, train.y, seed=SEED)
    cents = CentroidSet.from_labelled_data(train.X, train.y, train.n_classes)
    rec = ModelReconstructor(model, cents, n_total=120)
    return ErrorRatePipeline(model, DDM(), rec)


MAKERS = {
    "baseline": lambda tr: build_baseline(tr.X, tr.y, seed=SEED),
    "onlad": lambda tr: build_onlad(tr.X, tr.y, forgetting_factor=0.95, seed=SEED),
    "proposed": lambda tr: build_proposed(tr.X, tr.y, window_size=60, seed=SEED),
    "quanttree": lambda tr: build_quanttree_pipeline(
        tr.X, tr.y, batch_size=250, n_bins=8, seed=SEED
    ),
    "spll": lambda tr: build_spll_pipeline(tr.X, tr.y, batch_size=250, seed=SEED),
    "ddm": _ddm_pipeline,
}

#: module cache — the synthesised datasets are deterministic, build once
_STREAMS: dict = {}


def _streams(dataset: str):
    if dataset not in _STREAMS:
        if dataset == "fan":
            _STREAMS[dataset] = make_cooling_fan_like(
                "sudden", n_train=150, n_test=500, drift_at=150, seed=5, n_bins=64
            )
        else:
            cfg = NSLKDDConfig(n_train=300, n_test=900, drift_at=300)
            _STREAMS[dataset] = make_nslkdd_like(cfg, seed=5)
    return _STREAMS[dataset]


def pytest_generate_tests(metafunc: pytest.Metafunc) -> None:
    """Shrink the soak matrix under ``--smoke`` (the CI leg)."""
    smoke = metafunc.config.getoption("--smoke")
    if "dataset" in metafunc.fixturenames:
        metafunc.parametrize("dataset", ["nslkdd"] if smoke else ["fan", "nslkdd"])
    if "chaos_seed" in metafunc.fixturenames:
        metafunc.parametrize("chaos_seed", [7] if smoke else [7, 19])


class TestChaosSoak:
    def _soak(self, name, dataset, chaos_seed):
        train, test = _streams(dataset)
        schedule = make_fault_schedule(
            len(test),
            test.n_features,
            seed=chaos_seed,
            n_faults=8,
            max_length=15,
            protect_prefix=5,
        )
        stream = chaos_stream(test, schedule)
        pipe = MAKERS[name](train)
        tel = Telemetry(enabled=True, sinks=[RingBufferSink()])
        pipe.telemetry = tel
        guard = RuntimeGuard.from_init_data(train.X)
        pipe.attach_guard(guard)
        records = pipe.run(stream)
        return guard, tel.sinks[0], records, stream

    @pytest.mark.parametrize("name", sorted(MAKERS))
    def test_pipeline_survives_fault_storm(self, name, dataset, chaos_seed):
        guard, sink, records, stream = self._soak(name, dataset, chaos_seed)
        # Zero uncaught exceptions (we got here) and no dropped samples:
        assert len(records) == len(stream)
        assert [r.index for r in records] == list(range(len(stream)))
        # The storm actually hit something, and each handled fault left
        # a telemetry event carrying its exact stream index.
        assert guard.sanitizer.n_faults > 0
        faults = sink.events("guard_fault")
        assert len(faults) == guard.sanitizer.n_faults
        assert all(0 <= e.fields["index"] < len(stream) for e in faults)
        # Ladder history and the emitted trail agree, index for index.
        moves = sink.events("guard_level_changed")
        assert [(m.fields["index"], m.fields["to_level"]) for m in moves] == [
            (t.index, t.to_level.name) for t in guard.transitions
        ]
        # If the sentinel tripped, a recovery event must exist for it.
        if guard.sentinel.n_trips:
            assert sink.events("sentinel_tripped")
            assert sink.events("model_rolled_back") or sink.events(
                "model_reinitialized"
            )

    def test_protected_prefix_matches_golden(self, dataset, chaos_seed):
        """Records before the first fault are byte-identical to a clean run."""
        train, test = _streams(dataset)
        schedule = make_fault_schedule(
            len(test), test.n_features, seed=chaos_seed, protect_prefix=50
        )
        first_fault = min(f.start for f in schedule)
        assert first_fault >= 50
        golden = MAKERS["proposed"](train).run(test.slice(0, first_fault))
        pipe = MAKERS["proposed"](train)
        pipe.attach_guard(RuntimeGuard.from_init_data(train.X))
        records = pipe.run(chaos_stream(test, schedule))
        assert records[:first_fault] == golden


class TestFaultSchedule:
    def test_schedule_is_deterministic_in_seed(self):
        a = make_fault_schedule(500, 6, seed=11)
        b = make_fault_schedule(500, 6, seed=11)
        c = make_fault_schedule(500, 6, seed=12)
        assert a == b
        assert a != c

    def test_protect_prefix_respected(self):
        sched = make_fault_schedule(300, 4, seed=0, n_faults=20, protect_prefix=100)
        assert all(f.start >= 100 for f in sched)

    def test_columns_are_valid_and_sorted(self):
        for f in make_fault_schedule(200, 5, seed=1, n_faults=10):
            assert f.columns == tuple(sorted(f.columns))
            assert all(0 <= c < 5 for c in f.columns)
            assert f.kind in FAULT_KINDS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_fault_schedule(100, 3, seed=0, kinds=("nan_burst", "gamma_ray"))
        with pytest.raises(ConfigurationError):
            ScheduledFault("gamma_ray", 0, 1, (0,))

    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            make_fault_schedule(0, 3, seed=0)

    def test_apply_leaves_input_untouched(self, rng):
        X = rng.random((100, 4))
        before = X.copy()
        sched = make_fault_schedule(100, 4, seed=2, n_faults=5)
        out = apply_fault_schedule(X, sched)
        np.testing.assert_array_equal(X, before)
        assert out is not X

    def test_chaos_stream_carries_nan_unchecked(self, rng):
        from repro.datasets import DataStream

        X = rng.random((60, 4))
        stream = DataStream(X, np.zeros(60, dtype=int), name="clean")
        sched = (ScheduledFault("nan_burst", 10, 5, (1,)),)
        chaotic = chaos_stream(stream, sched)
        assert chaotic.name == "clean+chaos"
        assert np.isnan(chaotic.X[10:15, 1]).all()
        # Only the scheduled window differs from the original.
        mask = np.ones_like(X, dtype=bool)
        mask[10:15, 1] = False
        np.testing.assert_array_equal(chaotic.X[mask], X[mask])
