"""Unit tests for the voting detector ensemble."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors import DDM, DriftState, PageHinkley, VotingDetectorEnsemble
from repro.detectors.base import ErrorRateDriftDetector
from repro.utils.exceptions import ConfigurationError


class _Scripted(ErrorRateDriftDetector):
    """Fires DRIFT at pre-scripted sample indices (1-based)."""

    def __init__(self, fire_at):
        super().__init__()
        self.fire_at = set(fire_at)

    def update(self, error):
        self.n_samples_seen += 1
        self.state = (
            DriftState.DRIFT if self.n_samples_seen in self.fire_at else DriftState.NORMAL
        )
        return self.state


class TestConstruction:
    def test_empty_members_rejected(self):
        with pytest.raises(ConfigurationError):
            VotingDetectorEnsemble([])

    def test_invalid_policy(self):
        with pytest.raises(ConfigurationError):
            VotingDetectorEnsemble([DDM()], policy="quorum")

    def test_non_detector_member_rejected(self):
        with pytest.raises(ConfigurationError):
            VotingDetectorEnsemble([DDM(), "not a detector"])


class TestVoting:
    def feed(self, ens, n):
        return [ens.update(0) for _ in range(n)]

    def test_any_fires_with_first_member(self):
        ens = VotingDetectorEnsemble(
            [_Scripted({5}), _Scripted({20})], policy="any"
        )
        states = self.feed(ens, 10)
        assert states[4] is DriftState.DRIFT

    def test_majority_needs_two_of_three(self):
        ens = VotingDetectorEnsemble(
            [_Scripted({3}), _Scripted({7}), _Scripted({100})], policy="majority"
        )
        states = self.feed(ens, 10)
        assert states[2] is DriftState.WARNING  # one sticky vote pending
        assert states[6] is DriftState.DRIFT    # second vote arrives

    def test_all_needs_every_member(self):
        ens = VotingDetectorEnsemble(
            [_Scripted({2}), _Scripted({4}), _Scripted({6})], policy="all"
        )
        states = self.feed(ens, 8)
        assert DriftState.DRIFT not in states[:5]
        assert states[5] is DriftState.DRIFT

    def test_votes_cleared_after_firing(self):
        ens = VotingDetectorEnsemble(
            [_Scripted({2}), _Scripted({3})], policy="majority"
        )
        self.feed(ens, 4)
        assert ens._votes == [False, False]
        assert ens.n_detections == 1

    def test_non_sticky_votes_require_coincidence(self):
        ens = VotingDetectorEnsemble(
            [_Scripted({3}), _Scripted({7})], policy="majority", sticky_votes=False
        )
        states = self.feed(ens, 10)
        assert DriftState.DRIFT not in states  # votes never coincide

    def test_non_sticky_fires_on_coincidence(self):
        ens = VotingDetectorEnsemble(
            [_Scripted({5}), _Scripted({5})], policy="majority", sticky_votes=False
        )
        states = self.feed(ens, 6)
        assert states[4] is DriftState.DRIFT


class TestRealMembers:
    def test_detects_real_surge(self, rng):
        ens = VotingDetectorEnsemble(
            [DDM(), PageHinkley(threshold=20.0)], policy="majority"
        )
        det = []
        for i in range(4000):
            err = rng.random() < (0.05 if i < 2000 else 0.6)
            if ens.update(err) is DriftState.DRIFT:
                det.append(i)
                ens.reset()
        assert any(2000 <= d <= 2600 for d in det)

    def test_all_policy_reduces_false_alarms(self, rng):
        """On a stationary noisy stream the conservative policy fires no
        more often than the sensitive one."""

        def run(policy, seed):
            ens = VotingDetectorEnsemble(
                [DDM(), PageHinkley(threshold=15.0)], policy=policy
            )
            r = np.random.default_rng(seed)
            fires = 0
            for _ in range(4000):
                if ens.update(r.random() < 0.3) is DriftState.DRIFT:
                    fires += 1
                    ens.reset()
            return fires

        assert run("all", 7) <= run("any", 7)

    def test_reset_propagates(self, rng):
        ddm = DDM()
        ens = VotingDetectorEnsemble([ddm], policy="any")
        for _ in range(100):
            ens.update(rng.random() < 0.5)
        ens.reset()
        assert ddm.n_samples_seen == 0
        assert ens.n_samples_seen == 0

    def test_state_nbytes_sums_members(self):
        ens = VotingDetectorEnsemble([DDM(), PageHinkley()])
        assert ens.state_nbytes() >= DDM().state_nbytes() + PageHinkley().state_nbytes()
