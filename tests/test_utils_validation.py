"""Unit tests for repro.utils.validation — input coercion and guards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.exceptions import ConfigurationError, DataValidationError
from repro.utils.validation import (
    as_matrix,
    as_vector,
    check_consistent_length,
    check_in_range,
    check_labels,
    check_positive,
    check_probability,
)


class TestAsMatrix:
    def test_2d_passthrough(self):
        X = as_matrix([[1.0, 2.0], [3.0, 4.0]])
        assert X.shape == (2, 2) and X.dtype == np.float64

    def test_1d_becomes_row(self):
        assert as_matrix([1.0, 2.0, 3.0]).shape == (1, 3)

    def test_3d_rejected(self):
        with pytest.raises(DataValidationError):
            as_matrix(np.zeros((2, 2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(DataValidationError):
            as_matrix(np.zeros((0, 3)))

    def test_empty_allowed_when_flagged(self):
        assert as_matrix(np.zeros((0, 3)), allow_empty=True).shape == (0, 3)

    def test_zero_features_rejected(self):
        with pytest.raises(DataValidationError):
            as_matrix(np.zeros((3, 0)), allow_empty=True)

    def test_nan_rejected(self):
        with pytest.raises(DataValidationError):
            as_matrix([[1.0, float("nan")]])

    def test_inf_rejected(self):
        with pytest.raises(DataValidationError):
            as_matrix([[1.0, float("inf")]])

    def test_feature_count_enforced(self):
        with pytest.raises(DataValidationError):
            as_matrix([[1.0, 2.0]], n_features=3)

    def test_contiguous_output(self):
        X = np.asfortranarray(np.ones((4, 3)))
        assert as_matrix(X).flags["C_CONTIGUOUS"]

    def test_name_in_message(self):
        with pytest.raises(DataValidationError, match="spectra"):
            as_matrix(np.zeros((2, 2, 2)), name="spectra")

    def test_textual_input_is_data_error(self):
        # A CSV column parsed wrong: np.asarray raises a bare ValueError,
        # which must surface as the library's data-problem type.
        with pytest.raises(DataValidationError, match="coerced"):
            as_matrix([["1.0", "oops"]])

    def test_object_dtype_numbers_coerced(self):
        X = as_matrix(np.array([[1, 2.5]], dtype=object))
        assert X.dtype == np.float64 and X[0, 1] == 2.5

    def test_ensure_finite_false_admits_nan(self):
        X = as_matrix([[1.0, float("nan")]], ensure_finite=False)
        assert np.isnan(X[0, 1])

    def test_ensure_finite_false_still_checks_shape(self):
        with pytest.raises(DataValidationError):
            as_matrix(np.zeros((2, 2, 2)), ensure_finite=False)

    def test_dtype_override(self):
        assert as_matrix([[1.0, 2.0]], dtype=np.float32).dtype == np.float32


class TestAsVector:
    def test_1d(self):
        v = as_vector([1, 2, 3])
        assert v.shape == (3,) and v.dtype == np.float64

    def test_row_matrix_squeezed(self):
        assert as_vector(np.ones((1, 4))).shape == (4,)

    def test_2d_rejected(self):
        with pytest.raises(DataValidationError):
            as_vector(np.ones((2, 4)))

    def test_empty_rejected(self):
        with pytest.raises(DataValidationError):
            as_vector([])

    def test_nan_rejected(self):
        with pytest.raises(DataValidationError):
            as_vector([np.nan])

    def test_feature_count(self):
        with pytest.raises(DataValidationError):
            as_vector([1.0], n_features=2)

    def test_textual_input_is_data_error(self):
        with pytest.raises(DataValidationError, match="coerced"):
            as_vector(["not", "numbers"])

    def test_ensure_finite_false_admits_inf(self):
        v = as_vector([np.inf, 1.0], ensure_finite=False)
        assert np.isinf(v[0])

    def test_column_matrix_rejected(self):
        # (n, 1) is ambiguous — only an explicit row (1, n) squeezes.
        with pytest.raises(DataValidationError):
            as_vector(np.ones((4, 1)))


class TestScalarChecks:
    def test_positive_ok(self):
        assert check_positive(1.5, "x") == 1.5

    def test_positive_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            check_positive(0, "x")

    def test_nonneg_zero_ok(self):
        assert check_positive(0, "x", strict=False) == 0

    def test_nonneg_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            check_positive(-1, "x", strict=False)

    def test_in_range_inclusive(self):
        assert check_in_range(1.0, "x", low=0.0, high=1.0) == 1.0

    def test_in_range_exclusive(self):
        with pytest.raises(ConfigurationError):
            check_in_range(1.0, "x", low=0.0, high=1.0, inclusive=False)

    def test_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ConfigurationError):
            check_probability(1.5, "p")


class TestCheckLabels:
    def test_int_labels(self):
        y = check_labels([0, 1, 2])
        assert y.dtype == np.int64

    def test_integral_floats_accepted(self):
        assert check_labels(np.array([0.0, 1.0])).tolist() == [0, 1]

    def test_fractional_floats_rejected(self):
        with pytest.raises(DataValidationError):
            check_labels([0.5])

    def test_negative_rejected(self):
        with pytest.raises(DataValidationError):
            check_labels([-1, 0])

    def test_out_of_range_rejected(self):
        with pytest.raises(DataValidationError):
            check_labels([0, 3], n_classes=3)

    def test_2d_rejected(self):
        with pytest.raises(DataValidationError):
            check_labels([[0], [1]])


class TestConsistentLength:
    def test_ok(self):
        check_consistent_length(a=[1, 2], b=[3, 4])

    def test_mismatch(self):
        with pytest.raises(DataValidationError, match="a=2"):
            check_consistent_length(a=[1, 2], b=[3])
