"""Checkpoint container tests: atomicity, round-trip fidelity, corruption.

The on-disk contract: a checkpoint either exists complete (magic +
checksum verify) or effectively not at all; loading validates *everything*
before returning any state, so a damaged file can never leak partial
state into a live object; version skew is detected on intact files.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.resilience import (
    FORMAT_VERSION,
    MAGIC,
    atomic_write_bytes,
    corrupt_version,
    flip_bit,
    load_checkpoint,
    save_checkpoint,
    truncate_file,
)
from repro.resilience.state import (
    decode_records,
    encode_records,
    flatten_state,
    state_arrays_nbytes,
    unflatten_state,
)
from repro.utils.exceptions import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointVersionError,
    ReproError,
)


def _rich_state(rng):
    """A state tree exercising every supported leaf type."""
    return {
        "arr2d": rng.normal(size=(7, 3)),
        "ints": np.arange(5, dtype=np.int64),
        "bools": np.array([True, False, True]),
        "scalar_int": 42,
        "scalar_float": 0.1 + 0.2,  # not exactly representable: bit fidelity
        "inf": float("inf"),
        "none": None,
        "text": "label",
        "flag": True,
        "nested": {"deep": {"x": rng.normal(size=4), "t": ("a", 1, 2.5)}},
        "listed": [1.5, None, "s", np.array([9.0])],
        "empty_list": [],
        "tuple": (3, "b"),
    }


class TestStateTree:
    def test_flatten_unflatten_identity(self, rng):
        state = _rich_state(rng)
        tree, arrays = flatten_state(state)
        back = unflatten_state(tree, arrays)
        assert back["scalar_float"] == state["scalar_float"]
        assert back["inf"] == float("inf")
        assert back["none"] is None
        assert back["tuple"] == (3, "b")
        assert back["nested"]["deep"]["t"] == ("a", 1, 2.5)
        np.testing.assert_array_equal(back["arr2d"], state["arr2d"])
        assert back["arr2d"].dtype == state["arr2d"].dtype
        assert back["bools"].dtype == np.bool_

    def test_nbytes_counts_arrays(self, rng):
        state = {"a": rng.normal(size=(10, 4)), "b": {"c": np.arange(8)}}
        assert state_arrays_nbytes(state) == 10 * 4 * 8 + 8 * 8

    def test_reserved_key_collision_raises(self):
        with pytest.raises(ReproError):
            flatten_state({"bad": {"__ndarray__": "x"}})

    def test_records_round_trip_bit_exact(self, rng):
        from repro.core.pipeline import StepRecord

        records = [
            StepRecord(
                index=i,
                predicted=int(rng.integers(0, 3)),
                true_label=None if i % 5 == 0 else int(rng.integers(0, 3)),
                correct=None if i % 5 == 0 else bool(rng.integers(0, 2)),
                anomaly_score=float(rng.normal()),
                drift_detected=bool(i == 7),
                reconstructing=bool(3 <= i < 6),
                phase=("predict", "reconstruct", "drift")[i % 3],
            )
            for i in range(40)
        ]
        back = decode_records(encode_records(records))
        assert back == records
        a = np.array([r.anomaly_score for r in back])
        b = np.array([r.anomaly_score for r in records])
        assert a.tobytes() == b.tobytes()


class TestAtomicWriter:
    def test_writes_bytes(self, tmp_path):
        p = tmp_path / "f.bin"
        atomic_write_bytes(p, b"hello")
        assert p.read_bytes() == b"hello"

    def test_overwrites_atomically(self, tmp_path):
        p = tmp_path / "f.bin"
        p.write_bytes(b"old")
        atomic_write_bytes(p, b"new contents")
        assert p.read_bytes() == b"new contents"

    def test_leaves_no_temp_files(self, tmp_path):
        p = tmp_path / "f.bin"
        atomic_write_bytes(p, b"x" * 1024)
        assert os.listdir(tmp_path) == ["f.bin"]


class TestSaveLoad:
    def test_round_trip(self, tmp_path, rng):
        state = _rich_state(rng)
        path = save_checkpoint(tmp_path / "c.ckpt", state, kind="test", meta={"k": 1})
        ckpt = load_checkpoint(path)
        assert ckpt.kind == "test"
        assert ckpt.meta == {"k": 1}
        assert ckpt.format_version == FORMAT_VERSION
        np.testing.assert_array_equal(ckpt.state["arr2d"], state["arr2d"])
        assert ckpt.state["scalar_float"] == state["scalar_float"]
        assert ckpt.state["inf"] == float("inf")

    def test_file_starts_with_magic(self, tmp_path, rng):
        path = save_checkpoint(tmp_path / "c.ckpt", {"a": 1}, kind="test")
        assert path.read_bytes()[: len(MAGIC)] == MAGIC

    def test_expected_kind_enforced(self, tmp_path):
        path = save_checkpoint(tmp_path / "c.ckpt", {"a": 1}, kind="alpha")
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path, expected_kind="beta")

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.ckpt")


class TestCorruptionDetection:
    """Every damage mode must raise CheckpointCorruptError — never load."""

    def _saved(self, tmp_path, rng):
        return save_checkpoint(
            tmp_path / "c.ckpt", _rich_state(rng), kind="test"
        )

    def test_truncation(self, tmp_path, rng):
        path = self._saved(tmp_path, rng)
        truncate_file(path)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_truncated_to_tiny(self, tmp_path, rng):
        path = self._saved(tmp_path, rng)
        truncate_file(path, keep_bytes=5)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_bytes(b"")
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    @pytest.mark.parametrize("bit", [0, 63, 300, 4096])
    def test_bit_flip_anywhere(self, tmp_path, rng, bit):
        path = self._saved(tmp_path, rng)
        size_bits = path.stat().st_size * 8
        flip_bit(path, bit % size_bits)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_bad_magic(self, tmp_path, rng):
        path = self._saved(tmp_path, rng)
        data = bytearray(path.read_bytes())
        data[:4] = b"XXXX"
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_bytes(os.urandom(2048))
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_wrong_version_with_valid_checksum(self, tmp_path, rng):
        """Version skew is its own error class, distinct from damage —
        the file is intact, just written by an incompatible format."""
        path = self._saved(tmp_path, rng)
        corrupt_version(path, FORMAT_VERSION + 1)
        with pytest.raises(CheckpointVersionError):
            load_checkpoint(path)
        # and it still is a CheckpointCorruptError for blanket handlers
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)


class TestRefusalWithoutMutation:
    """A failed load must leave in-memory pipeline state untouched."""

    def test_pipeline_resume_refuses_corrupt_and_keeps_state(self, tmp_path):
        from repro.core import build_proposed
        from repro.datasets import NSLKDDConfig, make_nslkdd_like
        from repro.resilience import InjectedCrash, crash_at

        train, test = make_nslkdd_like(
            NSLKDDConfig(n_train=300, n_test=600, drift_at=200), seed=0
        )
        ckpt = tmp_path / "c.ckpt"
        victim = build_proposed(train.X, train.y, window_size=30, seed=1)
        with pytest.raises(InjectedCrash):
            with crash_at(victim, 100):
                victim.run(test, checkpoint_every=16, checkpoint_path=ckpt)
        flip_bit(ckpt, 2048)

        survivor = build_proposed(train.X, train.y, window_size=30, seed=1)
        before = flatten_state(survivor.get_state())
        with pytest.raises(CheckpointCorruptError):
            survivor.resume(test, ckpt)
        after = flatten_state(survivor.get_state())
        assert before[0] == after[0]
        assert sorted(before[1]) == sorted(after[1])
        for k in before[1]:
            np.testing.assert_array_equal(before[1][k], after[1][k])
        # the refused pipeline is still fully usable
        records = survivor.run(test)
        assert len(records) == len(test)


class TestIoPersistenceAtomicity:
    """Regression for the legacy save_pipeline: it used to write the
    archive non-atomically (np.savez straight to the target), so a crash
    mid-save left a torn, half-written .npz. It now goes through the
    atomic checksummed container."""

    @pytest.fixture()
    def fitted(self):
        from repro.core import build_proposed
        from repro.datasets import NSLKDDConfig, make_nslkdd_like

        train, test = make_nslkdd_like(
            NSLKDDConfig(n_train=300, n_test=400, drift_at=200), seed=0
        )
        pipe = build_proposed(train.X, train.y, window_size=30, seed=1)
        pipe.run(test.take(100))
        return pipe, test

    def test_no_temp_residue_and_single_file(self, tmp_path, fitted):
        from repro.io import save_pipeline

        pipe, _ = fitted
        save_pipeline(pipe, tmp_path / "deploy.npz")
        assert os.listdir(tmp_path) == ["deploy.npz"]

    def test_corrupted_archive_is_refused(self, tmp_path, fitted):
        from repro.io import load_pipeline, save_pipeline

        pipe, _ = fitted
        path = save_pipeline(pipe, tmp_path / "deploy.npz")
        truncate_file(path)
        with pytest.raises(CheckpointCorruptError):
            load_pipeline(path)

    def test_bit_flipped_archive_is_refused(self, tmp_path, fitted):
        from repro.io import load_pipeline, save_pipeline

        pipe, _ = fitted
        path = save_pipeline(pipe, tmp_path / "deploy.npz")
        flip_bit(path, 10_000)
        with pytest.raises(CheckpointCorruptError):
            load_pipeline(path)

    def test_mid_stream_save_restore_resumes_exactly(self, tmp_path, fitted):
        from repro.io import load_pipeline, save_pipeline

        pipe, test = fitted
        rest = test.slice(100)
        golden = [r for r in pipe.run(rest, chunk_size=1)]

        # restore the pre-run snapshot and replay: same records
        path = tmp_path / "deploy.npz"
        # (re-fit an identical pipeline to the 100-sample point)
        from repro.core import build_proposed
        from repro.datasets import NSLKDDConfig, make_nslkdd_like

        train, test2 = make_nslkdd_like(
            NSLKDDConfig(n_train=300, n_test=400, drift_at=200), seed=0
        )
        fresh = build_proposed(train.X, train.y, window_size=30, seed=1)
        fresh.run(test2.take(100))
        save_pipeline(fresh, path)
        restored = load_pipeline(path)
        replay = restored.run(rest, chunk_size=1)
        assert [r.predicted for r in replay] == [r.predicted for r in golden]
        a = np.array([r.anomaly_score for r in replay])
        b = np.array([r.anomaly_score for r in golden])
        assert a.tobytes() == b.tobytes()
