"""Unit tests for the forgetting-factor OS-ELM (ONLAD's learning rule)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.oselm import OSELM, ForgettingOSELM
from repro.utils.exceptions import ConfigurationError


class TestConstruction:
    def test_valid_factors(self):
        for a in (0.5, 0.97, 1.0):
            ForgettingOSELM(3, 4, 3, forgetting_factor=a, seed=0)

    def test_invalid_factors(self):
        for a in (0.0, -0.5, 1.5):
            with pytest.raises(ConfigurationError):
                ForgettingOSELM(3, 4, 3, forgetting_factor=a, seed=0)


class TestForgettingBehaviour:
    def test_factor_one_equals_plain_oselm(self, rng):
        X = rng.normal(size=(40, 3))
        plain = OSELM(3, 5, 3, seed=0).fit_initial(X[:20], X[:20])
        forget = ForgettingOSELM(3, 5, 3, forgetting_factor=1.0, seed=0).fit_initial(
            X[:20], X[:20]
        )
        for i in range(20, 40):
            plain.partial_fit_one(X[i], X[i])
            forget.partial_fit_one(X[i], X[i])
        np.testing.assert_allclose(plain.beta, forget.beta, atol=1e-10)

    def test_tracks_concept_change_faster_than_plain(self, rng):
        """After a target-function flip, the forgetting model's error on the
        new concept drops below the plain model's."""
        X = rng.normal(size=(600, 4))
        w_old = np.ones((4, 1))
        w_new = -np.ones((4, 1))
        plain = OSELM(4, 12, 1, seed=0).fit_initial(X[:100], X[:100] @ w_old)
        forget = ForgettingOSELM(4, 12, 1, forgetting_factor=0.95, seed=0).fit_initial(
            X[:100], X[:100] @ w_old
        )
        for i in range(100, 400):
            t = (X[i] @ w_new).reshape(1)
            plain.partial_fit_one(X[i], t)
            forget.partial_fit_one(X[i], t)
        Xq = rng.normal(size=(100, 4))
        err_plain = np.abs(plain.predict(Xq) - Xq @ w_new).mean()
        err_forget = np.abs(forget.predict(Xq) - Xq @ w_new).mean()
        assert err_forget < err_plain

    def test_effective_memory_shrinks_with_factor(self, rng):
        """A smaller factor forgets the old concept more completely."""
        X = rng.normal(size=(400, 3))
        w_old, w_new = np.ones((3, 1)), -np.ones((3, 1))
        errs = {}
        for a in (0.90, 0.999):
            m = ForgettingOSELM(3, 10, 1, forgetting_factor=a, seed=0).fit_initial(
                X[:100], X[:100] @ w_old
            )
            for i in range(100, 200):
                m.partial_fit_one(X[i], (X[i] @ w_new).reshape(1))
            Xq = rng.normal(size=(80, 3))
            errs[a] = np.abs(m.predict(Xq) - Xq @ w_new).mean()
        assert errs[0.90] < errs[0.999]

    def test_chunk_partial_fit_equals_rowwise(self, rng):
        X = rng.normal(size=(30, 3))
        a = ForgettingOSELM(3, 5, 3, forgetting_factor=0.95, seed=0).fit_initial(
            X[:10], X[:10]
        )
        b = ForgettingOSELM(3, 5, 3, forgetting_factor=0.95, seed=0).fit_initial(
            X[:10], X[:10]
        )
        a.partial_fit(X[10:], X[10:])
        for i in range(10, 30):
            b.partial_fit_one(X[i], X[i])
        np.testing.assert_allclose(a.beta, b.beta, atol=1e-10)

    def test_P_inflates_relative_to_plain(self, rng):
        """Forgetting divides P by α each step — its covariance stays larger
        (more plastic) than plain OS-ELM's after the same stream."""
        X = rng.normal(size=(200, 3))
        plain = OSELM(3, 6, 3, seed=0).fit_initial(X[:20], X[:20])
        forget = ForgettingOSELM(3, 6, 3, forgetting_factor=0.95, seed=0).fit_initial(
            X[:20], X[:20]
        )
        for i in range(20, 200):
            plain.partial_fit_one(X[i], X[i])
            forget.partial_fit_one(X[i], X[i])
        assert np.trace(forget.P) > np.trace(plain.P)

    def test_long_stream_stays_finite(self, rng):
        m = ForgettingOSELM(3, 6, 3, forgetting_factor=0.97, seed=0)
        X0 = rng.normal(size=(20, 3))
        m.fit_initial(X0, X0)
        for _ in range(2000):
            x = rng.normal(size=3)
            m.partial_fit_one(x, x)
        assert np.isfinite(m.beta).all() and np.isfinite(m.P).all()
