"""Unit tests for the tracemalloc-based live memory tracer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import measure_allocations
from repro.utils.exceptions import ConfigurationError


class TestMeasureAllocations:
    def test_returns_callable_result(self):
        rep = measure_allocations(lambda: 42)
        assert rep.result == 42

    def test_counts_retained_array(self):
        rep = measure_allocations(lambda: np.zeros(100_000))
        # 800 kB retained (plus small overheads).
        assert rep.current_bytes >= 800_000
        assert rep.current_kb >= 800.0

    def test_peak_counts_transients(self):
        def transient():
            big = np.zeros(200_000)  # 1.6 MB transient
            return float(big.sum())  # only a float survives

        rep = measure_allocations(transient)
        assert rep.peak_bytes >= 1_600_000
        assert rep.current_bytes < 100_000

    def test_peak_at_least_current(self):
        rep = measure_allocations(lambda: np.ones(50_000))
        assert rep.peak_bytes >= rep.current_bytes

    def test_non_callable_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_allocations(123)

    def test_tracing_stopped_after_use(self):
        import tracemalloc

        measure_allocations(lambda: None)
        assert not tracemalloc.is_tracing()

    def test_tracing_stopped_after_exception(self):
        import tracemalloc

        def boom():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            measure_allocations(boom)
        assert not tracemalloc.is_tracing()


class TestPaperMethodology:
    """Live counterpart of Table 4: the batch detector's resident state
    dwarfs the proposed detector's, measured with tracemalloc."""

    def test_live_memory_ordering(self, rng):
        from repro.core import CentroidSet
        from repro.detectors import QuantTree

        ref = rng.normal(size=(300, 128))

        def build_quanttree():
            qt = QuantTree(batch_size=200, n_bins=16, seed=0).fit_reference(ref)
            # Fill the streaming buffer to its worst case.
            for x in rng.normal(size=(199, 128)):
                qt.update_one(x)
            return qt

        def build_proposed_state():
            return CentroidSet.from_labelled_data(
                ref, rng.integers(0, 2, len(ref)), 2
            )

        qt_rep = measure_allocations(build_quanttree)
        prop_rep = measure_allocations(build_proposed_state)
        assert qt_rep.current_bytes > 5 * prop_rep.current_bytes
