"""Property-based tests (hypothesis) on the OS-ELM training/scoring core.

Three families of invariants back the fleet's batched scoring tentpole:

* **Sequential-update equivalence** — ``partial_fit`` on a chunk folds
  the same information as ``partial_fit_one`` row by row. The two paths
  are algebraically identical (block RLS vs m rank-1 steps) but round
  differently, so the comparison is ``allclose``, not bytes.
* **Batch-vs-scalar scoring identity** — ``predict_with_score_batch``
  (and the cross-model ``score_batch_many`` stacked GEMM) must be
  **byte-identical** to the per-sample ``predict_with_score`` loop; this
  is the contract the fleet's golden differential suite leans on.
* **State round-trips** — ``get_state``/``set_state`` reproduce the
  model exactly, even into a model built from a different seed (the
  fleet evict/restore path).

Seeds are drawn by hypothesis and expanded through ``default_rng`` so
inputs stay numerically tame while shrinking still works. The suite runs
under the deterministic profile registered in ``tests/conftest.py``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oselm import OSELM, MultiInstanceModel

seeds = st.integers(0, 2**31 - 1)


def _random_data(seed: int, n: int, d: int) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0.0, 1.0, size=(n, d))


def _fitted_pair(seed: int, d: int, h: int):
    """Two independently built but identically trained OSELM autoencoders."""
    X0 = _random_data(seed, max(2 * h, 12), d)
    models = []
    for _ in range(2):
        m = OSELM(d, h, d, seed=seed + 1)
        m.fit_initial(X0, X0)
        models.append(m)
    return models


class TestSequentialEquivalence:
    @given(seeds, st.integers(1, 3), st.integers(2, 6), st.integers(1, 12))
    @settings(max_examples=30, deadline=None)
    def test_partial_fit_chunk_equals_one_at_a_time(self, seed, d, h, n_extra):
        chunked, rowwise = _fitted_pair(seed, d, h)
        X = _random_data(seed + 2, n_extra, d)
        chunked.partial_fit(X, X)
        for row in X:
            rowwise.partial_fit_one(row, row)
        assert chunked.n_samples_seen == rowwise.n_samples_seen
        np.testing.assert_allclose(
            chunked.beta, rowwise.beta, rtol=1e-8, atol=1e-10
        )
        np.testing.assert_allclose(chunked.P, rowwise.P, rtol=1e-8, atol=1e-10)
        probe = _random_data(seed + 3, 5, d)
        np.testing.assert_allclose(
            chunked.predict(probe), rowwise.predict(probe), rtol=1e-8, atol=1e-12
        )

    @given(seeds, st.integers(1, 3), st.integers(2, 6), st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_chunk_split_invariance(self, seed, d, h, n_extra):
        """Folding one chunk vs two half-chunks lands on the same state."""
        whole, halves = _fitted_pair(seed, d, h)
        X = _random_data(seed + 2, n_extra, d)
        whole.partial_fit(X, X)
        cut = n_extra // 2
        halves.partial_fit(X[:cut], X[:cut])
        halves.partial_fit(X[cut:], X[cut:])
        np.testing.assert_allclose(whole.beta, halves.beta, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(whole.P, halves.P, rtol=1e-8, atol=1e-10)


class TestBatchScoringIdentity:
    @given(seeds, st.integers(1, 4), st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_batch_matches_scalar_bytes(self, seed, d, n):
        model = MultiInstanceModel(d, 4, 2, seed=seed)
        X0 = _random_data(seed, 24, d)
        model.fit_initial(X0, np.asarray([0, 1] * 12))
        X = _random_data(seed + 1, n, d)
        labels_b, scores_b = model.predict_with_score_batch(X)
        scalars = [model.predict_with_score(x) for x in X]
        assert labels_b.tolist() == [lab for lab, _ in scalars]
        assert (
            scores_b.tobytes()
            == np.array([s for _, s in scalars], dtype=np.float64).tobytes()
        )

    @given(seeds, st.integers(1, 3), st.integers(2, 4), st.integers(1, 16))
    @settings(max_examples=20, deadline=None)
    def test_score_batch_many_matches_per_model_bytes(self, seed, d, G, n):
        """The fleet's stacked cross-model GEMM == each owner's own batch."""
        rng = np.random.default_rng(seed)
        models = []
        for g in range(G):
            m = MultiInstanceModel(d, 4, 2, seed=seed)  # shared random layer
            X0 = _random_data(seed + g, 24, d)
            m.fit_initial(X0, np.asarray([0, 1] * 12))
            models.append(m)
        X = _random_data(seed + 7, n, d)
        owners = rng.integers(0, G, size=n)
        labels, scores = MultiInstanceModel.score_batch_many(models, X, owners)
        for i, (x, g) in enumerate(zip(X, owners)):
            lab, score = models[g].predict_with_score(x)
            assert labels[i] == lab
            assert scores[i].tobytes() == np.float64(score).tobytes()


class TestStateRoundTrip:
    @given(seeds, st.integers(1, 3), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_oselm_state_survives_foreign_model(self, seed, d, n_extra):
        src = OSELM(d, 4, d, seed=seed)
        X0 = _random_data(seed, 12, d)
        src.fit_initial(X0, X0)
        for row in _random_data(seed + 1, n_extra, d):
            src.partial_fit_one(row, row)
        dst = OSELM(d, 4, d, seed=seed + 99)  # different random layer
        dst.set_state(src.get_state())
        probe = _random_data(seed + 2, 6, d)
        assert dst.predict(probe).tobytes() == src.predict(probe).tobytes()
        assert dst.n_samples_seen == src.n_samples_seen

    @given(seeds, st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_multi_instance_state_round_trip_bytes(self, seed, d):
        src = MultiInstanceModel(d, 4, 2, seed=seed)
        X0 = _random_data(seed, 24, d)
        y0 = np.asarray([0, 1] * 12)
        src.fit_initial(X0, y0)
        src.partial_fit_one(_random_data(seed + 1, 1, d)[0], 1)
        dst = MultiInstanceModel(d, 4, 2, seed=seed + 7)
        dst.set_state(src.get_state())
        X = _random_data(seed + 2, 9, d)
        a = src.predict_with_score_batch(X)
        b = dst.predict_with_score_batch(X)
        assert a[0].tobytes() == b[0].tobytes()
        assert a[1].tobytes() == b[1].tobytes()

    @given(seeds, st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_set_state_idempotent(self, seed, d):
        m = OSELM(d, 3, d, seed=seed)
        X0 = _random_data(seed, 10, d)
        m.fit_initial(X0, X0)
        state = m.get_state()
        m.set_state(state)
        again = m.get_state()
        for key in ("weights", "biases", "beta", "P"):
            assert state[key].tobytes() == again[key].tobytes()
        assert state["n_samples_seen"] == again["n_samples_seen"]
