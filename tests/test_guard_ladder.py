"""Unit tests for the degradation ladder's hysteresis state machine."""

from __future__ import annotations

import pytest

from repro.guard import DegradationLadder, GuardLevel
from repro.utils.exceptions import ConfigurationError


def ladder(**kw) -> DegradationLadder:
    defaults = dict(trip_faults=3, fault_window=16, freeze_trips=2,
                    trip_window=100, cooldown=4)
    defaults.update(kw)
    return DegradationLadder(**defaults)


class TestEscalation:
    def test_starts_healthy(self):
        assert ladder().level == GuardLevel.HEALTHY

    def test_single_fault_does_not_escalate(self):
        lad = ladder()
        assert lad.record_fault(10) is None
        assert lad.level == GuardLevel.HEALTHY

    def test_fault_burst_escalates_to_sanitizing(self):
        lad = ladder()
        assert lad.record_fault(10) is None
        assert lad.record_fault(11) is None
        t = lad.record_fault(12)
        assert t is not None and t.to_level == GuardLevel.SANITIZING
        assert t.index == 12 and t.from_level == GuardLevel.HEALTHY
        assert lad.level == GuardLevel.SANITIZING

    def test_spread_out_faults_never_escalate(self):
        lad = ladder()
        for i in (0, 20, 40, 60, 80):  # always outside the 16-sample window
            assert lad.record_fault(i) is None
        assert lad.level == GuardLevel.HEALTHY

    def test_sentinel_trip_jumps_to_passthrough(self):
        lad = ladder()
        t = lad.record_trip(50, "beta diverged")
        assert t.to_level == GuardLevel.PASSTHROUGH
        assert "beta diverged" in t.reason

    def test_repeated_trips_freeze(self):
        lad = ladder()
        lad.record_trip(50)
        t = lad.record_trip(60)
        assert t is not None and t.to_level == GuardLevel.FROZEN

    def test_distant_trips_do_not_freeze(self):
        lad = ladder()
        lad.record_trip(50)
        assert lad.record_trip(50 + 200) is None  # outside trip_window
        assert lad.level == GuardLevel.PASSTHROUGH

    def test_frozen_is_terminal_for_trips(self):
        lad = ladder()
        lad.record_trip(1)
        lad.record_trip(2)
        assert lad.level == GuardLevel.FROZEN
        assert lad.record_trip(3) is None
        assert lad.level == GuardLevel.FROZEN


class TestDeescalation:
    def test_cooldown_steps_down_one_level(self):
        lad = ladder()
        for i in range(3):
            lad.record_fault(i)
        assert lad.level == GuardLevel.SANITIZING
        t = None
        for i in range(3, 3 + 4):
            t = lad.record_clean(i) or t
        assert t is not None and t.to_level == GuardLevel.HEALTHY

    def test_fault_resets_clean_streak(self):
        lad = ladder()
        for i in range(3):
            lad.record_fault(i)
        for i in range(3, 6):  # 3 clean < cooldown of 4
            assert lad.record_clean(i) is None
        lad.record_fault(6)  # streak restarts
        for i in range(7, 10):
            assert lad.record_clean(i) is None
        assert lad.level == GuardLevel.SANITIZING

    def test_higher_rung_needs_longer_streak(self):
        lad = ladder()
        lad.record_trip(0)
        assert lad.level == GuardLevel.PASSTHROUGH
        # PASSTHROUGH needs cooldown * 2 = 8 clean samples.
        for i in range(1, 8):
            assert lad.record_clean(i) is None
        t = lad.record_clean(8)
        assert t is not None and t.to_level == GuardLevel.SANITIZING
        # then 4 more to reach HEALTHY
        for i in range(9, 12):
            assert lad.record_clean(i) is None
        assert lad.record_clean(12).to_level == GuardLevel.HEALTHY

    def test_frozen_never_deescalates(self):
        lad = ladder()
        lad.record_trip(0)
        lad.record_trip(1)
        for i in range(2, 500):
            assert lad.record_clean(i) is None
        assert lad.level == GuardLevel.FROZEN

    def test_healthy_ignores_clean(self):
        assert ladder().record_clean(5) is None


class TestConfigAndState:
    @pytest.mark.parametrize(
        "field", ["trip_faults", "fault_window", "freeze_trips", "trip_window", "cooldown"]
    )
    def test_positive_parameters_enforced(self, field):
        with pytest.raises(ConfigurationError):
            ladder(**{field: 0})

    def test_state_roundtrip(self):
        lad = ladder()
        lad.record_fault(1)
        lad.record_fault(2)
        lad.record_trip(3)
        fresh = ladder()
        fresh.set_state(lad.get_state())
        assert fresh.level == lad.level
        assert fresh.get_state() == lad.get_state()

    def test_levels_are_ordered(self):
        assert (
            GuardLevel.HEALTHY
            < GuardLevel.SANITIZING
            < GuardLevel.PASSTHROUGH
            < GuardLevel.FROZEN
        )
