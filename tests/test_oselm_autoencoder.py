"""Unit tests for the OS-ELM autoencoder anomaly scorer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.oselm import OSELMAutoencoder
from repro.utils.exceptions import ConfigurationError, NotFittedError


@pytest.fixture
def normal_data(rng):
    # Data on a 2-D manifold embedded in 8-D: reconstructable through a
    # narrow bottleneck.
    latent = rng.normal(size=(200, 2))
    basis = rng.normal(size=(2, 8))
    return 0.3 * (latent @ basis) + 0.5


class TestLifecycle:
    def test_fit_and_score_shapes(self, normal_data):
        ae = OSELMAutoencoder(8, 4, seed=0).fit_initial(normal_data)
        s = ae.score(normal_data[:10])
        assert s.shape == (10,)
        assert (s >= 0).all()

    def test_not_fitted(self, normal_data):
        ae = OSELMAutoencoder(8, 4, seed=0)
        with pytest.raises(NotFittedError):
            ae.score(normal_data)

    def test_reconstruct_shape(self, normal_data):
        ae = OSELMAutoencoder(8, 4, seed=0).fit_initial(normal_data)
        assert ae.reconstruct(normal_data[:5]).shape == (5, 8)

    def test_invalid_metric(self):
        with pytest.raises(ConfigurationError):
            OSELMAutoencoder(8, 4, error_metric="rmse")

    def test_partial_fit_variants_count(self, normal_data):
        ae = OSELMAutoencoder(8, 4, seed=0).fit_initial(normal_data[:50])
        ae.partial_fit(normal_data[50:60])
        ae.partial_fit_one(normal_data[60])
        assert ae.n_samples_seen == 61


class TestAnomalyScoring:
    def test_inliers_score_below_outliers(self, normal_data, rng):
        ae = OSELMAutoencoder(8, 4, seed=0).fit_initial(normal_data)
        inlier_scores = ae.score(normal_data[:50])
        outliers = rng.normal(size=(50, 8)) * 2 + 5
        outlier_scores = ae.score(outliers)
        assert outlier_scores.mean() > 5 * inlier_scores.mean()

    def test_score_one_matches_batch(self, normal_data):
        ae = OSELMAutoencoder(8, 4, seed=0).fit_initial(normal_data)
        assert ae.score_one(normal_data[3]) == pytest.approx(
            float(ae.score(normal_data[3:4])[0])
        )

    def test_mae_metric(self, normal_data):
        ae = OSELMAutoencoder(8, 4, error_metric="mae", seed=0).fit_initial(normal_data)
        x = normal_data[0]
        r = ae.reconstruct(x.reshape(1, -1))[0]
        assert ae.score_one(x) == pytest.approx(float(np.abs(r - x).mean()))

    def test_mse_metric_definition(self, normal_data):
        ae = OSELMAutoencoder(8, 4, seed=0).fit_initial(normal_data)
        x = normal_data[0]
        r = ae.reconstruct(x.reshape(1, -1))[0]
        assert ae.score_one(x) == pytest.approx(float(((r - x) ** 2).mean()))

    def test_sequential_training_reduces_score_on_new_concept(self, normal_data, rng):
        ae = OSELMAutoencoder(8, 4, seed=0).fit_initial(normal_data)
        new_concept = normal_data + 1.5
        before = ae.score(new_concept).mean()
        for x in new_concept[:150]:
            ae.partial_fit_one(x)
        after = ae.score(new_concept[150:]).mean()
        assert after < before

    def test_forgetting_core_selected(self):
        ae = OSELMAutoencoder(8, 4, forgetting_factor=0.97, seed=0)
        from repro.oselm import ForgettingOSELM

        assert isinstance(ae.core, ForgettingOSELM)
        assert ae.core.forgetting_factor == 0.97

    def test_plain_core_by_default(self):
        from repro.oselm import ForgettingOSELM, OSELM

        ae = OSELMAutoencoder(8, 4, seed=0)
        assert type(ae.core) is OSELM

    def test_state_nbytes_delegates(self, normal_data):
        ae = OSELMAutoencoder(8, 4, seed=0).fit_initial(normal_data)
        assert ae.state_nbytes() == ae.core.state_nbytes() > 0
