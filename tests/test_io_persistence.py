"""Unit tests for pipeline persistence (save_pipeline / load_pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_proposed
from repro.datasets import NSLKDDConfig, make_nslkdd_like
from repro.io import load_pipeline, save_pipeline
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def small_streams():
    cfg = NSLKDDConfig(n_train=300, n_test=1200, drift_at=400)
    return make_nslkdd_like(cfg, seed=0)


@pytest.fixture
def pipeline(small_streams):
    train, _ = small_streams
    return build_proposed(
        train.X, train.y, window_size=30, reconstruction_samples=80, seed=1
    )


class TestRoundTrip:
    def test_predictions_identical(self, pipeline, small_streams, tmp_path):
        _, test = small_streams
        path = tmp_path / "pipe.npz"
        save_pipeline(pipeline, path)
        restored = load_pipeline(path)
        a = pipeline.run(test)
        b = restored.run(test)
        assert [r.predicted for r in a] == [r.predicted for r in b]
        assert [r.drift_detected for r in a] == [r.drift_detected for r in b]
        np.testing.assert_allclose(
            [r.anomaly_score for r in a], [r.anomaly_score for r in b]
        )

    def test_thresholds_preserved(self, pipeline, tmp_path):
        path = tmp_path / "pipe.npz"
        save_pipeline(pipeline, path)
        restored = load_pipeline(path)
        assert restored.detector.theta_drift == pipeline.detector.theta_drift
        assert restored.detector.theta_error == pipeline.detector.theta_error
        assert restored.detector.window_size == pipeline.detector.window_size

    def test_centroid_state_preserved(self, pipeline, tmp_path):
        # Mutate the recent centroids first so the round trip carries
        # mid-stream state, not just the initial condition.
        pipeline.detector.centroids.update(0, np.full(38, 0.5))
        path = tmp_path / "pipe.npz"
        save_pipeline(pipeline, path)
        restored = load_pipeline(path)
        np.testing.assert_array_equal(
            restored.detector.centroids.recent, pipeline.detector.centroids.recent
        )
        np.testing.assert_array_equal(
            restored.detector.centroids.counts, pipeline.detector.centroids.counts
        )
        assert restored.detector.centroids.max_count == pipeline.detector.centroids.max_count

    def test_reconstructor_config_preserved(self, pipeline, tmp_path):
        path = tmp_path / "pipe.npz"
        save_pipeline(pipeline, path)
        restored = load_pipeline(path)
        assert restored.reconstructor.n_total == pipeline.reconstructor.n_total
        assert restored.reconstructor.n_search == pipeline.reconstructor.n_search
        assert restored.reconstructor.n_update == pipeline.reconstructor.n_update

    def test_model_weights_bitexact(self, pipeline, tmp_path):
        path = tmp_path / "pipe.npz"
        save_pipeline(pipeline, path)
        restored = load_pipeline(path)
        for a, b in zip(pipeline.model.instances, restored.model.instances):
            np.testing.assert_array_equal(a.core.layer.weights, b.core.layer.weights)
            np.testing.assert_array_equal(a.core.beta, b.core.beta)
            np.testing.assert_array_equal(a.core.P, b.core.P)
            assert a.core.n_samples_seen == b.core.n_samples_seen

    def test_restored_pipeline_keeps_learning(self, pipeline, small_streams, tmp_path):
        _, test = small_streams
        path = tmp_path / "pipe.npz"
        save_pipeline(pipeline, path)
        restored = load_pipeline(path)
        records = restored.run(test)
        # The restored pipeline detects and reconstructs like a live one.
        assert any(r.drift_detected for r in records)


class TestValidation:
    def test_unfitted_rejected(self, small_streams):
        from repro.core import (
            CentroidSet,
            ModelReconstructor,
            ProposedPipeline,
            SequentialDriftDetector,
        )
        from repro.oselm import MultiInstanceModel

        train, _ = small_streams
        model = MultiInstanceModel(38, 22, 2, seed=0)  # not fitted
        cents = CentroidSet.from_labelled_data(train.X, train.y, 2)
        det = SequentialDriftDetector(cents, window_size=5, theta_error=1, theta_drift=1)
        rec = ModelReconstructor(model, cents)
        pipe = ProposedPipeline(model, det, rec)
        with pytest.raises(ConfigurationError):
            save_pipeline(pipe, "whatever.npz")

    def test_wrong_type_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_pipeline("not a pipeline", tmp_path / "x.npz")

    def test_archive_is_single_file(self, pipeline, tmp_path):
        path = tmp_path / "deploy.npz"
        save_pipeline(pipeline, path)
        assert path.exists()
        assert path.stat().st_size > 1000
