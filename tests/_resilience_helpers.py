"""Module-level helpers for crash-recovery tests.

``crashing_builder`` must be addressable as a ``"module:callable"``
method path in a :class:`repro.metrics.parallel.CellSpec` (worker
processes re-import it by name), so it lives in an importable module
rather than inside a test function.
"""

from __future__ import annotations

from pathlib import Path

from repro.core import build_proposed
from repro.resilience import crash_at


def crashing_builder(X, y, *, seed=0, crash_marker=None, crash_step=40, **kwargs):
    """Build a proposed pipeline armed to crash once at ``crash_step``.

    The first call (no marker file yet) arms the crash and drops the
    marker; every later call — i.e. the retry after the injected death —
    builds a normal pipeline. This makes a ParallelRunner cell die
    exactly once, deterministically.
    """
    pipe = build_proposed(X, y, seed=seed, **kwargs)
    if crash_marker is not None:
        marker = Path(crash_marker)
        if not marker.exists():
            marker.write_text("armed")
            crash_at(pipe, int(crash_step))  # armed for life; never disarmed
    return pipe


def tuple_kwarg_builder(X, y, *, seed=0, widths=(8,), **kwargs):
    """Builder with a tuple-valued kwarg (cache round-trip regression).

    ``widths`` only has to *exist*: a tuple in ``pipeline_kwargs`` turns
    into a JSON list inside the cache file, and the loader must not read
    that back as a spec mismatch.
    """
    assert isinstance(widths, tuple)
    return build_proposed(X, y, seed=seed, **kwargs)
