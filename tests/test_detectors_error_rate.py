"""Unit tests for the error-rate detectors: DDM, ADWIN, Page-Hinkley."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors import ADWIN, DDM, DriftState, PageHinkley
from repro.utils.exceptions import ConfigurationError


def bernoulli_stream(rng, n, p_before, p_after, change_at):
    for i in range(n):
        p = p_before if i < change_at else p_after
        yield rng.random() < p


class TestDDM:
    def test_detects_error_surge(self, rng):
        # Reset-and-continue usage: DDM is known to false-alarm on low
        # error rates, but a detection must land shortly after the surge.
        ddm = DDM()
        detections = []
        for i, err in enumerate(bernoulli_stream(rng, 3000, 0.05, 0.6, 1500)):
            if ddm.update(err) is DriftState.DRIFT:
                detections.append(i)
                ddm.reset()
        after = [d for d in detections if d >= 1500]
        assert after and after[0] <= 1700

    def test_warning_precedes_drift(self, rng):
        ddm = DDM(min_samples=30)
        states = []
        # Clean step change from zero-ish errors to heavy errors.
        for i in range(400):
            err = rng.random() < (0.02 if i < 200 else 0.8)
            states.append(ddm.update(err))
            if states[-1] is DriftState.DRIFT:
                break
        assert states[-1] is DriftState.DRIFT
        assert DriftState.WARNING in states
        assert states.index(DriftState.WARNING) < len(states) - 1

    def test_stationary_stream_mostly_normal(self, rng):
        ddm = DDM()
        drifts = sum(
            ddm.update(err) is DriftState.DRIFT
            for err in bernoulli_stream(rng, 2000, 0.2, 0.2, 2000)
        )
        assert drifts <= 2  # DDM has a known modest false-positive rate

    def test_grace_period(self):
        ddm = DDM(min_samples=30)
        for _ in range(29):
            assert ddm.update(True) is DriftState.NORMAL

    def test_reset(self, rng):
        ddm = DDM()
        for err in bernoulli_stream(rng, 500, 0.05, 0.05, 500):
            ddm.update(err)
        ddm.reset()
        assert ddm.n_samples_seen == 0
        assert ddm.error_rate == 0.0
        assert ddm.state is DriftState.NORMAL

    def test_invalid_levels(self):
        with pytest.raises(ConfigurationError):
            DDM(warning_level=3.0, drift_level=2.0)

    def test_error_rate_estimate(self):
        ddm = DDM()
        for v in [1, 0, 1, 0]:
            ddm.update(v)
        assert ddm.error_rate == pytest.approx(0.5)

    def test_state_nbytes_tiny(self):
        assert DDM().state_nbytes() < 100


class TestADWIN:
    def test_detects_mean_change(self, rng):
        ad = ADWIN()
        detections = []
        for i, err in enumerate(bernoulli_stream(rng, 4000, 0.1, 0.7, 2000)):
            if ad.update(float(err)) is DriftState.DRIFT:
                detections.append(i)
        assert detections and 2000 <= detections[0] <= 2300

    def test_window_shrinks_on_change(self, rng):
        ad = ADWIN()
        for i, err in enumerate(bernoulli_stream(rng, 3000, 0.1, 0.9, 1500)):
            ad.update(float(err))
        # After the change the window should have dropped the old regime.
        assert ad.width < 2500
        assert ad.estimation > 0.5

    def test_no_detection_when_stationary(self, rng):
        ad = ADWIN(delta=0.002)
        drifts = sum(
            ad.update(float(err)) is DriftState.DRIFT
            for err in bernoulli_stream(rng, 3000, 0.3, 0.3, 3000)
        )
        assert drifts == 0

    def test_width_grows_while_stationary(self, rng):
        ad = ADWIN()
        for err in bernoulli_stream(rng, 1000, 0.3, 0.3, 1000):
            ad.update(float(err))
        assert ad.width == 1000

    def test_memory_logarithmic(self, rng):
        ad = ADWIN(max_buckets=5)
        for err in bernoulli_stream(rng, 5000, 0.3, 0.3, 5000):
            ad.update(float(err))
        # Exponential histogram: buckets ~ max_buckets * log2(n).
        assert len(ad._buckets) < 5 * 14
        assert ad.state_nbytes() < 6000

    def test_estimation_tracks_mean(self, rng):
        ad = ADWIN()
        vals = rng.random(500)
        for v in vals:
            ad.update(float(v))
        assert ad.estimation == pytest.approx(vals.mean(), abs=0.05)

    def test_real_valued_inputs(self, rng):
        ad = ADWIN()
        fired = False
        for i in range(3000):
            v = rng.normal(0.0 if i < 1500 else 2.0, 0.5)
            fired |= ad.update(v) is DriftState.DRIFT
        assert fired

    def test_reset(self, rng):
        ad = ADWIN()
        for _ in range(100):
            ad.update(1.0)
        ad.reset()
        assert ad.width == 0 and ad.estimation == 0.0

    def test_invalid_delta(self):
        for d in (0.0, 1.0, -0.1):
            with pytest.raises(ConfigurationError):
                ADWIN(delta=d)


class TestPageHinkley:
    def test_detects_increase(self, rng):
        ph = PageHinkley(threshold=20.0)
        first = None
        for i, err in enumerate(bernoulli_stream(rng, 3000, 0.05, 0.6, 1500)):
            if ph.update(err) is DriftState.DRIFT:
                first = i
                break
        assert first is not None and first >= 1500

    def test_stationary_no_detection(self, rng):
        ph = PageHinkley(threshold=50.0, delta=0.01)
        fired = any(
            ph.update(err) is DriftState.DRIFT
            for err in bernoulli_stream(rng, 3000, 0.2, 0.2, 3000)
        )
        assert not fired

    def test_grace_period(self):
        ph = PageHinkley(threshold=0.001, min_samples=50)
        for _ in range(49):
            assert ph.update(1.0) is DriftState.NORMAL

    def test_reset(self, rng):
        ph = PageHinkley(threshold=5.0)
        for _ in range(100):
            ph.update(1.0)
        ph.reset()
        assert ph.n_samples_seen == 0

    def test_higher_threshold_slower(self, rng):
        def first_detection(threshold, seed):
            ph = PageHinkley(threshold=threshold)
            r = np.random.default_rng(seed)
            for i in range(4000):
                err = r.random() < (0.05 if i < 1000 else 0.6)
                if ph.update(err) is DriftState.DRIFT:
                    return i
            return 4000

        lo = first_detection(10.0, 3)
        hi = first_detection(60.0, 3)
        assert lo <= hi

    def test_state_nbytes_tiny(self):
        assert PageHinkley().state_nbytes() < 100
