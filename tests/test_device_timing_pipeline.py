"""Deeper tests for the timing layer: phase tallies from *real* pipeline
runs, batch-pipeline phases, and the end-to-end Table-5 estimate plumbing.
"""

from __future__ import annotations

import pytest

from repro.core import (
    build_baseline,
    build_onlad,
    build_proposed,
    build_quanttree_pipeline,
)
from repro.device import (
    RASPBERRY_PI_4,
    PhaseTally,
    StageCostModel,
    estimate_stream_seconds,
    quanttree_batch_ops,
)
from repro.metrics import evaluate_method


GEOM = StageCostModel(2, 6, 4)


class TestPhaseTallyFromRuns:
    def test_baseline_all_predict(self, train_stream, drift_stream):
        pipe = build_baseline(train_stream.X, train_stream.y, n_hidden=4, seed=0)
        res = evaluate_method(pipe, drift_stream)
        assert res.phase_tally.counts == {"predict": len(drift_stream)}

    def test_onlad_all_train(self, train_stream, drift_stream):
        pipe = build_onlad(train_stream.X, train_stream.y, n_hidden=4, seed=0)
        res = evaluate_method(pipe, drift_stream.take(100))
        assert res.phase_tally.counts == {"train": 100}

    def test_proposed_phase_budget_adds_up(self, train_stream, drift_stream):
        pipe = build_proposed(
            train_stream.X, train_stream.y, window_size=20, n_hidden=4,
            reconstruction_samples=60, seed=0,
        )
        res = evaluate_method(pipe, drift_stream)
        tally = res.phase_tally
        assert tally.total == len(drift_stream)
        # Reconstruction phases account for 60 samples per detection.
        recon = sum(
            tally.counts.get(p, 0)
            for p in ("search", "update", "train_centroid", "train_predict", "finish")
        )
        assert recon == 60 * len(res.delay.detections)

    def test_batch_pipeline_phases_include_refit(self, train_stream, drift_stream):
        pipe = build_quanttree_pipeline(
            train_stream.X, train_stream.y, batch_size=80, n_bins=8,
            n_hidden=4, reconstruction_samples=60, seed=0,
        )
        res = evaluate_method(pipe, drift_stream)
        if res.delay.detections:  # detection happened -> refit follows
            assert res.phase_tally.counts.get("refit", 0) == 80 * len(res.delay.detections)


class TestEstimatePlumbing:
    def test_estimate_monotone_in_stream_length(self, train_stream, drift_stream):
        pipe = build_baseline(train_stream.X, train_stream.y, n_hidden=4, seed=0)
        short = evaluate_method(pipe, drift_stream.take(100)).phase_tally
        long = PhaseTally.from_records(
            build_baseline(train_stream.X, train_stream.y, n_hidden=4, seed=0)
            .run(drift_stream)
        )
        a = estimate_stream_seconds(short, GEOM, RASPBERRY_PI_4)
        b = estimate_stream_seconds(long, GEOM, RASPBERRY_PI_4)
        assert b > a

    def test_reconstruction_costs_more_than_prediction(self, train_stream, drift_stream):
        prop = build_proposed(
            train_stream.X, train_stream.y, window_size=20, n_hidden=4,
            reconstruction_samples=60, seed=0,
        )
        res = evaluate_method(prop, drift_stream)
        with_recon = estimate_stream_seconds(res.phase_tally, GEOM, RASPBERRY_PI_4)
        all_predict = PhaseTally()
        all_predict.counts["predict"] = res.phase_tally.total
        baseline = estimate_stream_seconds(all_predict, GEOM, RASPBERRY_PI_4)
        assert with_recon > baseline

    def test_batch_term_scales_with_batches(self):
        tally = PhaseTally()
        tally.counts["predict"] = 100
        ops = quanttree_batch_ops(50, 8)
        one = estimate_stream_seconds(
            tally, GEOM, RASPBERRY_PI_4, per_batch_ops=ops, n_batches=1
        )
        five = estimate_stream_seconds(
            tally, GEOM, RASPBERRY_PI_4, per_batch_ops=ops, n_batches=5
        )
        base = estimate_stream_seconds(tally, GEOM, RASPBERRY_PI_4)
        assert five - base == pytest.approx(5 * (one - base), rel=1e-9)

    def test_zero_phase_tally_is_zero_seconds(self):
        assert estimate_stream_seconds(PhaseTally(), GEOM, RASPBERRY_PI_4) == 0.0
