"""Endpoint smoke for the live metrics server (stdlib HTTP, loopback)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.guard.ladder import DegradationLadder
from repro.telemetry import RingBufferSink, Telemetry, lint_prometheus
from repro.telemetry.httpd import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsServer,
    ladder_health,
)


def fetch(url: str):
    """GET → (status, content-type, body text); errors keep their body."""
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.headers.get("Content-Type"), resp.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.headers.get("Content-Type"), err.read().decode()


@pytest.fixture
def tel() -> Telemetry:
    tel = Telemetry(enabled=True, sinks=[RingBufferSink()])
    tel.counter("fleet.device.samples", "per device", labels=("device",)).inc(
        5, device="dev-000"
    )
    tel.counter("fleet.device.samples", labels=("device",)).inc(3, device="dev-001")
    tel.histogram("lat", "latency").observe(0.2)
    return tel


class TestMetricsEndpoint:
    def test_serves_lint_clean_prometheus_text(self, tel):
        with MetricsServer(0, telemetry=tel) as srv:
            status, ctype, body = fetch(srv.url + "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        assert lint_prometheus(body) == []
        assert 'repro_fleet_device_samples{device="dev-000"} 5' in body
        assert 'repro_fleet_device_samples{device="dev-001"} 3' in body

    def test_port_zero_binds_a_real_port(self, tel):
        with MetricsServer(0, telemetry=tel) as srv:
            assert srv.running and srv.port > 0
            assert srv.host == "127.0.0.1"

    def test_index_and_404(self, tel):
        with MetricsServer(0, telemetry=tel) as srv:
            status, _, body = fetch(srv.url + "/")
            assert status == 200 and "/metrics" in body
            status, _, _ = fetch(srv.url + "/nope")
            assert status == 404

    def test_scrapes_are_counted(self, tel):
        with MetricsServer(0, telemetry=tel) as srv:
            fetch(srv.url + "/metrics")
            fetch(srv.url + "/metrics")
        c = tel.registry.get("metrics_server.requests")
        assert c.value(path="/metrics") == 2.0


class TestHealthEndpoint:
    def test_404_until_configured(self, tel):
        with MetricsServer(0, telemetry=tel) as srv:
            status, _, _ = fetch(srv.url + "/health")
        assert status == 404

    def test_healthy_ladder_reports_200(self, tel):
        ladder = DegradationLadder()
        srv = MetricsServer(0, telemetry=tel, health_provider=ladder_health(ladder))
        with srv:
            status, _, body = fetch(srv.url + "/health")
        assert status == 200
        assert json.loads(body) == {
            "status": "ok", "level": "HEALTHY", "level_value": 0,
        }

    def test_degraded_ladder_reports_503(self, tel):
        ladder = DegradationLadder(trip_faults=3)
        for i in range(3):  # three faults in-window → SANITIZING
            ladder.record_fault(i)
        assert int(ladder.level) > 0
        srv = MetricsServer(0, telemetry=tel, health_provider=ladder_health(ladder))
        with srv:
            status, _, body = fetch(srv.url + "/health")
        assert status == 503
        assert json.loads(body)["status"] == "degraded"

    def test_provider_exception_reports_503_not_crash(self, tel):
        def broken() -> dict:
            raise RuntimeError("boom")

        with MetricsServer(0, telemetry=tel, health_provider=broken) as srv:
            status, _, body = fetch(srv.url + "/health")
            assert status == 503
            assert json.loads(body)["status"] == "error"
            # The server survives a broken provider.
            status, _, _ = fetch(srv.url + "/metrics")
            assert status == 200


class TestFleetEndpoint:
    def test_serves_fleet_provider_json(self, tel):
        stats = {"devices": 2, "evictions": 1, "device_samples": {"dev-000": 5}}
        srv = MetricsServer(0, telemetry=tel, fleet_provider=lambda: stats)
        with srv:
            status, ctype, body = fetch(srv.url + "/fleet")
        assert status == 200
        assert ctype == "application/json"
        assert json.loads(body) == stats


class TestLifecycle:
    def test_stop_is_idempotent_and_frees_the_port(self, tel):
        srv = MetricsServer(0, telemetry=tel).start()
        url = srv.url
        srv.stop()
        srv.stop()
        assert not srv.running
        with pytest.raises(urllib.error.URLError):
            fetch(url + "/metrics")
