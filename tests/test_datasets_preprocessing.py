"""Unit tests for the frozen-statistics scalers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import MinMaxScaler, StandardScaler
from repro.utils.exceptions import NotFittedError


class TestMinMaxScaler:
    def test_unit_box_on_training_data(self, rng):
        X = rng.normal(size=(50, 4)) * 3 + 1
        out = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(out.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.max(axis=0), 1.0, atol=1e-12)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.ones((2, 2)))

    def test_constant_feature_maps_to_zero(self):
        X = np.column_stack([np.ones(5), np.arange(5.0)])
        out = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(out[:, 0], 0.0)

    def test_statistics_frozen_after_fit(self, rng):
        sc = MinMaxScaler().fit(rng.random((20, 3)))
        before = sc.data_min_.copy()
        sc.transform(rng.random((10, 3)) * 100)
        np.testing.assert_array_equal(sc.data_min_, before)

    def test_out_of_range_unclipped_by_default(self, rng):
        sc = MinMaxScaler().fit(rng.random((20, 2)))
        out = sc.transform(np.full((1, 2), 10.0))
        assert (out > 1.0).all()

    def test_clip(self, rng):
        sc = MinMaxScaler(clip=True).fit(rng.random((20, 2)))
        out = sc.transform(np.full((1, 2), 10.0))
        np.testing.assert_allclose(out, 1.0)

    def test_roundtrip(self, rng):
        X = rng.normal(size=(30, 3))
        sc = MinMaxScaler().fit(X)
        np.testing.assert_allclose(sc.inverse_transform(sc.transform(X)), X, atol=1e-10)

    def test_feature_count_mismatch(self, rng):
        sc = MinMaxScaler().fit(rng.random((5, 3)))
        with pytest.raises(Exception):
            sc.transform(rng.random((5, 4)))


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        X = rng.normal(3.0, 2.0, size=(200, 4))
        out = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_constant_feature_no_nan(self):
        X = np.column_stack([np.full(5, 7.0), np.arange(5.0)])
        out = StandardScaler().fit_transform(X)
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out[:, 0], 0.0)

    def test_roundtrip(self, rng):
        X = rng.normal(size=(30, 3))
        sc = StandardScaler().fit(X)
        np.testing.assert_allclose(sc.inverse_transform(sc.transform(X)), X, atol=1e-10)

    def test_frozen_statistics(self, rng):
        sc = StandardScaler().fit(rng.random((20, 2)))
        before = sc.mean_.copy()
        sc.transform(rng.random((5, 2)) + 50)
        np.testing.assert_array_equal(sc.mean_, before)
