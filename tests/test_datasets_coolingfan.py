"""Unit tests for the synthetic cooling-fan spectrum generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    N_BINS,
    FanSpectrumModel,
    fan_condition,
    make_cooling_fan_like,
    make_fan_samples,
)
from repro.utils.exceptions import ConfigurationError


class TestSpectrumModel:
    def test_mean_spectrum_shape_and_positivity(self):
        spec = FanSpectrumModel().mean_spectrum()
        assert spec.shape == (N_BINS,)
        assert (spec >= 0).all()

    def test_fundamental_peak_present(self):
        m = FanSpectrumModel(rotation_hz=38.0)
        spec = m.mean_spectrum()
        local = spec[35:42]
        assert local.max() > 3 * np.median(spec)

    def test_blade_pass_peak_dominates(self):
        m = FanSpectrumModel(rotation_hz=38.0, n_blades=7)
        spec = m.mean_spectrum()
        bpf = 7 * 38
        assert spec[bpf - 2 : bpf + 2].max() == pytest.approx(spec.max(), rel=0.2)

    def test_unbalance_raises_fundamental(self):
        base = FanSpectrumModel(unbalance=0.1).mean_spectrum()
        dmg = FanSpectrumModel(unbalance=1.4).mean_spectrum()
        assert dmg[36:40].max() > base[36:40].max() + 0.5

    def test_sideband_energy(self):
        base = FanSpectrumModel(sideband=0.0).mean_spectrum()
        sb = FanSpectrumModel(sideband=0.8).mean_spectrum()
        lo = 7 * 38 - 38  # first lower sideband
        assert sb[lo - 2 : lo + 2].max() > base[lo - 2 : lo + 2].max() + 0.1

    def test_samples_nonnegative_and_shaped(self, rng):
        X = FanSpectrumModel().sample(20, rng)
        assert X.shape == (20, N_BINS)
        assert (X >= 0).all()

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            FanSpectrumModel(rotation_hz=0.0)
        with pytest.raises(ConfigurationError):
            FanSpectrumModel(n_blades=0)
        with pytest.raises(ConfigurationError):
            FanSpectrumModel(unbalance=-1.0)


class TestConditions:
    def test_all_conditions_constructible(self):
        for cond in ("normal", "holes", "chipped"):
            for env in ("silent", "noisy"):
                fan_condition(cond, env)

    def test_unknown_condition(self):
        with pytest.raises(ConfigurationError):
            fan_condition("melted")

    def test_unknown_environment(self):
        with pytest.raises(ConfigurationError):
            fan_condition("normal", "vacuum")

    def test_noisy_lifts_floor(self):
        silent = fan_condition("normal", "silent").mean_spectrum()
        noisy = fan_condition("normal", "noisy").mean_spectrum()
        assert np.median(noisy) > np.median(silent)

    def test_noisy_adds_interference_line(self):
        noisy = fan_condition("normal", "noisy").mean_spectrum()
        silent = fan_condition("normal", "silent").mean_spectrum()
        assert noisy[48:53].max() - silent[48:53].max() > 0.2

    def test_damage_modes_differ_from_normal(self, rng):
        normal = fan_condition("normal").mean_spectrum()
        for cond in ("holes", "chipped"):
            dmg = fan_condition(cond).mean_spectrum()
            assert np.abs(dmg - normal).sum() > 1.0

    def test_make_fan_samples(self):
        X = make_fan_samples("holes", "silent", 5, seed=0)
        assert X.shape == (5, N_BINS)


class TestScenarios:
    def test_sudden(self):
        train, test = make_cooling_fan_like("sudden", seed=0)
        assert train.X.shape == (120, N_BINS)
        assert test.X.shape == (700, N_BINS)
        assert test.drift_points == (120,)
        assert (test.y[:120] == 0).all() and (test.y[120:] == 1).all()

    def test_gradual_mixes(self):
        _, test = make_cooling_fan_like("gradual", seed=0)
        assert test.drift_points == (120,)
        mid = test.y[120:600]
        assert 0 < mid.mean() < 1  # both concepts appear
        assert (test.y[600:] == 1).all()
        # Damage probability rises across the transition.
        assert test.y[120:280].mean() < test.y[440:600].mean()

    def test_reoccurring(self):
        _, test = make_cooling_fan_like("reoccurring", seed=0)
        assert test.drift_points == (120, 170)
        assert (test.y[120:170] == 1).all()
        assert (test.y[170:] == 0).all()

    def test_unknown_scenario(self):
        with pytest.raises(ConfigurationError):
            make_cooling_fan_like("cyclic")

    def test_invalid_drift_at(self):
        with pytest.raises(ConfigurationError):
            make_cooling_fan_like("sudden", drift_at=700, n_test=700)

    def test_two_mode_training(self):
        train, _ = make_cooling_fan_like("sudden", n_modes=2, seed=0)
        assert set(np.unique(train.y)) == {0, 1}
        assert len(train) == 240
        # The two modes are spectrally distinct.
        m0 = train.X[train.y == 0].mean(axis=0)
        m1 = train.X[train.y == 1].mean(axis=0)
        assert np.abs(m0 - m1).sum() > 1.0

    def test_invalid_modes(self):
        with pytest.raises(ConfigurationError):
            make_cooling_fan_like("sudden", n_modes=3)

    def test_seed_reproducibility(self):
        a = make_cooling_fan_like("sudden", seed=4)[1]
        b = make_cooling_fan_like("sudden", seed=4)[1]
        np.testing.assert_array_equal(a.X, b.X)

    def test_damage_visible_in_spectrum(self):
        _, test = make_cooling_fan_like("sudden", seed=0)
        pre = test.X[:120].mean(axis=0)
        post = test.X[150:300].mean(axis=0)
        assert np.abs(pre - post).sum() > 1.0
