"""Integration: the proposed pipeline across all four Figure-1 drift types
and the determinism / metrics plumbing that the benches rely on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_proposed
from repro.datasets import (
    GaussianConcept,
    make_gradual_drift_stream,
    make_incremental_drift_stream,
    make_reoccurring_drift_stream,
    make_stationary_stream,
    make_sudden_drift_stream,
)
from repro.metrics import evaluate_detections, evaluate_method

OLD = GaussianConcept(np.array([[0.2] * 6, [0.8] * 6]), 0.05)
NEW = GaussianConcept(np.array([[0.2] * 6, [0.8] * 6]) + 0.5, 0.05)


def make_streams():
    return {
        "sudden": make_sudden_drift_stream(OLD, NEW, n_samples=1200, drift_at=400, seed=0),
        "gradual": make_gradual_drift_stream(
            OLD, NEW, n_samples=1200, drift_start=400, drift_end=900, seed=0
        ),
        "incremental": make_incremental_drift_stream(
            OLD, NEW, n_samples=1200, drift_start=400, drift_end=900, seed=0
        ),
        "reoccurring": make_reoccurring_drift_stream(
            OLD, NEW, n_samples=1200, drift_at=400, reoccur_at=700, seed=0
        ),
    }


@pytest.fixture(scope="module")
def pipeline_builder():
    train = make_stationary_stream(OLD, 300, seed=3)

    def build():
        return build_proposed(
            train.X, train.y, window_size=30, n_hidden=8,
            reconstruction_samples=120, seed=1,
        )

    return build


@pytest.mark.parametrize("kind", ["sudden", "gradual", "incremental", "reoccurring"])
class TestAllDriftTypes:
    def test_detects_after_true_drift(self, kind, pipeline_builder):
        stream = make_streams()[kind]
        res = evaluate_method(pipeline_builder(), stream)
        assert res.delay.detections
        assert res.delay.false_positives == ()
        assert min(res.delay.detections) >= 400

    def test_drift_eval_metrics_consistent(self, kind, pipeline_builder):
        stream = make_streams()[kind]
        res = evaluate_method(pipeline_builder(), stream)
        ev = evaluate_detections(
            res.delay.detections, stream.drift_points, len(stream), horizon=600
        )
        assert ev.recall > 0  # at least the first drift is caught
        assert ev.precision > 0.3

    def test_bit_reproducible(self, kind, pipeline_builder):
        stream = make_streams()[kind]
        a = evaluate_method(pipeline_builder(), stream)
        b = evaluate_method(pipeline_builder(), stream)
        assert a.delay.detections == b.delay.detections
        assert a.accuracy == b.accuracy
        np.testing.assert_array_equal(
            [r.anomaly_score for r in a.records],
            [r.anomaly_score for r in b.records],
        )


class TestStationaryControl:
    def test_no_detection_on_stationary_stream(self, pipeline_builder):
        stream = make_stationary_stream(OLD, 2000, seed=9)
        res = evaluate_method(pipeline_builder(), stream)
        assert res.delay.detections == ()

    def test_memory_constant_over_long_stream(self, pipeline_builder):
        stream = make_stationary_stream(OLD, 1500, seed=9)
        pipe = pipeline_builder()
        before = pipe.state_nbytes()
        pipe.run(stream)
        assert pipe.state_nbytes() == before
