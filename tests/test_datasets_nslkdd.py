"""Unit tests for the synthetic NSL-KDD-like generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import NSLKDDConfig, make_nslkdd_like, nslkdd_default_config
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def small_pair():
    cfg = NSLKDDConfig(n_train=400, n_test=2000, drift_at=800)
    return make_nslkdd_like(cfg, seed=3)


class TestConfig:
    def test_paper_defaults(self):
        cfg = nslkdd_default_config()
        assert cfg.n_features == 38
        assert cfg.n_train == 2522
        assert cfg.n_test == 22701
        assert cfg.drift_at == 8333

    def test_invalid_drift_at(self):
        with pytest.raises(ConfigurationError):
            NSLKDDConfig(n_test=100, drift_at=100)

    def test_invalid_attack_fraction(self):
        with pytest.raises(ConfigurationError):
            NSLKDDConfig(attack_fraction=0.0)

    def test_too_few_features(self):
        with pytest.raises(ConfigurationError):
            NSLKDDConfig(n_features=4)

    def test_invalid_ambiguous_fraction(self):
        with pytest.raises(ConfigurationError):
            NSLKDDConfig(ambiguous_fraction=1.0)


class TestGeneration:
    def test_shapes_and_drift(self, small_pair):
        train, test = small_pair
        assert train.X.shape == (400, 38)
        assert test.X.shape == (2000, 38)
        assert test.drift_points == (800,)
        assert train.drift_points == ()

    def test_paper_sizes_by_default(self):
        train, test = make_nslkdd_like(seed=0)
        assert len(train) == 2522 and len(test) == 22701
        assert test.drift_points == (8333,)

    def test_values_in_unit_box(self, small_pair):
        train, test = small_pair
        for s in (train, test):
            assert s.X.min() >= 0.0 and s.X.max() <= 1.0

    def test_two_classes_present(self, small_pair):
        train, test = small_pair
        assert set(np.unique(train.y)) == {0, 1}
        assert set(np.unique(test.y)) == {0, 1}

    def test_seed_reproducibility(self):
        cfg = NSLKDDConfig(n_train=100, n_test=300, drift_at=100)
        a = make_nslkdd_like(cfg, seed=9)
        b = make_nslkdd_like(cfg, seed=9)
        np.testing.assert_array_equal(a[1].X, b[1].X)
        assert not np.allclose(make_nslkdd_like(cfg, seed=10)[1].X, a[1].X)

    def test_distribution_actually_shifts(self, small_pair):
        _, test = small_pair
        pre = test.X[:800].mean(axis=0)
        post = test.X[800:].mean(axis=0)
        assert np.abs(pre - post).sum() > 1.0

    def test_train_matches_pre_drift_concept(self, small_pair):
        train, test = small_pair
        pre = test.X[:800].mean(axis=0)
        assert np.abs(train.X.mean(axis=0) - pre).sum() < 1.0

    def test_classes_separable_pre_drift(self, small_pair):
        train, _ = small_pair
        m0 = train.X[train.y == 0].mean(axis=0)
        m1 = train.X[train.y == 1].mean(axis=0)
        # Nearest-class-mean classification should be near-perfect pre-drift.
        d0 = np.abs(train.X - m0).sum(axis=1)
        d1 = np.abs(train.X - m1).sum(axis=1)
        pred = (d1 < d0).astype(int)
        assert (pred == train.y).mean() > 0.9

    def test_identity_preserved_post_drift(self):
        """Each post-drift class mean stays closer to its own pre-drift mean —
        the property unsupervised reconstruction depends on."""
        train, test = make_nslkdd_like(NSLKDDConfig(n_train=600, n_test=4000, drift_at=1000), seed=1)
        pre0 = train.X[train.y == 0].mean(axis=0)
        pre1 = train.X[train.y == 1].mean(axis=0)
        post = test.slice(1000)
        post0 = post.X[post.y == 0].mean(axis=0)
        post1 = post.X[post.y == 1].mean(axis=0)
        assert np.abs(post0 - pre0).sum() < np.abs(post0 - pre1).sum()
        assert np.abs(post1 - pre1).sum() < np.abs(post1 - pre0).sum()

    def test_zero_shift_is_stationary(self):
        cfg = NSLKDDConfig(n_train=200, n_test=1000, drift_at=400, drift_shift=0.0,
                           ambiguous_fraction=0.0)
        _, test = make_nslkdd_like(cfg, seed=2)
        pre = test.X[:400].mean(axis=0)
        post = test.X[400:].mean(axis=0)
        # Only finite-sample noise remains (no concept change).
        assert np.abs(pre - post).max() < 0.08
