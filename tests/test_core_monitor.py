"""Unit tests for the DriftMonitor event facade."""

from __future__ import annotations

import pytest

from repro.core import DriftEvent, DriftMonitor, build_proposed
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def pipeline(train_stream):
    return build_proposed(
        train_stream.X, train_stream.y, window_size=20, n_hidden=4,
        reconstruction_samples=60, seed=0,
    )


class TestConstruction:
    def test_requires_pipeline(self):
        with pytest.raises(ConfigurationError):
            DriftMonitor("not a pipeline")

    def test_unknown_event_kind(self, pipeline):
        mon = DriftMonitor(pipeline)
        with pytest.raises(ConfigurationError):
            mon.subscribe("explosion", lambda e: None)

    def test_non_callable_rejected(self, pipeline):
        mon = DriftMonitor(pipeline)
        with pytest.raises(ConfigurationError):
            mon.subscribe("drift", 42)


class TestEvents:
    def test_drift_and_reconstruction_events(self, pipeline, drift_stream):
        events = []
        mon = DriftMonitor(
            pipeline,
            on_drift=lambda e: events.append(e),
            on_reconstruction_end=lambda e: events.append(e),
        )
        mon.process_stream(drift_stream)
        kinds = [e.kind for e in events]
        assert "drift" in kinds
        assert "reconstruction_end" in kinds
        assert kinds.index("drift") < kinds.index("reconstruction_end")

    def test_drift_event_fields(self, pipeline, drift_stream):
        seen = []
        mon = DriftMonitor(pipeline, on_drift=seen.append)
        mon.process_stream(drift_stream)
        ev = seen[0]
        assert isinstance(ev, DriftEvent)
        assert ev.record.drift_detected
        assert ev.n_drifts_so_far == 1
        assert ev.record.index >= 400  # after the true drift

    def test_sample_events_every_sample(self, pipeline, drift_stream):
        count = [0]
        mon = DriftMonitor(pipeline, on_sample=lambda e: count.__setitem__(0, count[0] + 1))
        mon.process_stream(drift_stream.take(100))
        assert count[0] == 100
        assert mon.n_samples == 100

    def test_reconstruction_end_marks_phase_boundary(self, pipeline, drift_stream):
        ends = []
        mon = DriftMonitor(pipeline, on_reconstruction_end=ends.append)
        records = mon.process_stream(drift_stream)
        assert ends
        end_idx = ends[0].record.index
        assert not records[end_idx].reconstructing
        assert records[end_idx - 1].reconstructing

    def test_callback_exception_propagates(self, pipeline, drift_stream):
        def boom(event):
            raise RuntimeError("application bug")

        mon = DriftMonitor(pipeline, on_sample=boom)
        with pytest.raises(RuntimeError):
            mon.process(drift_stream.X[0], 0)

    def test_late_subscription(self, pipeline, drift_stream):
        mon = DriftMonitor(pipeline)
        hits = []
        mon.subscribe("drift", hits.append)
        mon.process_stream(drift_stream)
        assert hits


class TestStatus:
    def test_initial_idle(self, pipeline):
        assert DriftMonitor(pipeline).status == "idle"

    def test_status_transitions(self, pipeline, drift_stream):
        mon = DriftMonitor(pipeline)
        statuses = set()
        for x, y in drift_stream:
            mon.process(x, y)
            statuses.add(mon.status)
        assert {"idle", "reconstructing"} <= statuses

    def test_counts(self, pipeline, drift_stream):
        mon = DriftMonitor(pipeline)
        records = mon.process_stream(drift_stream)
        assert mon.n_drifts == sum(r.drift_detected for r in records)
        assert mon.n_samples == len(drift_stream)
