"""Fleet planning: deterministic device parameters and arrival schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import interleave_schedule, plan_fleet
from repro.utils.exceptions import ConfigurationError


class TestPlanFleet:
    def test_deterministic_in_seed(self):
        a = plan_fleet(50, seed=4, drift_fraction=0.3)
        b = plan_fleet(50, seed=4, drift_fraction=0.3)
        assert a == b
        c = plan_fleet(50, seed=5, drift_fraction=0.3)
        assert a != c

    def test_drift_fraction_and_correlation(self):
        plans = plan_fleet(40, seed=1, drift_fraction=0.25, drift_at=300, shift=0.5)
        drifting = [p for p in plans if p.drift_at is not None]
        stationary = [p for p in plans if p.drift_at is None]
        assert len(drifting) == 10
        # Correlated: every drifting device sees the same event position.
        assert {p.drift_at for p in drifting} == {300}
        assert all(p.shift == 0.5 for p in drifting)
        assert all(p.shift == 0.0 for p in stationary)

    def test_unique_ids_and_seeds(self):
        plans = plan_fleet(100, seed=2)
        assert len({p.device_id for p in plans}) == 100
        assert len({p.seed for p in plans}) == 100
        assert plans[0].device_id == "dev0000"

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="n_devices"):
            plan_fleet(0)
        with pytest.raises(ConfigurationError, match="drift_fraction"):
            plan_fleet(4, drift_fraction=1.5)


class TestInterleaveSchedule:
    def test_covers_every_sample_in_order_per_device(self):
        lengths = [10, 25, 7, 0, 13]
        seen = [[] for _ in lengths]
        for i, start, stop in interleave_schedule(lengths, 6, seed=3):
            assert stop - start <= 6
            seen[i].append((start, stop))
        for n, chunks in zip(lengths, seen):
            # Chunks arrive in order and tile [0, n) exactly.
            assert [a for a, _ in chunks] == list(
                range(0, n, 6)
            )
            assert all(b - a == 6 or b == n for a, b in chunks)
            assert (chunks[-1][1] if chunks else 0) == n

    def test_deterministic_in_seed(self):
        lengths = [30, 30, 30]
        a = list(interleave_schedule(lengths, 10, seed=7))
        assert a == list(interleave_schedule(lengths, 10, seed=7))
        assert a != list(interleave_schedule(lengths, 10, seed=8))

    def test_interleaves_rather_than_drains_one_device(self):
        order = [i for i, _, _ in interleave_schedule([20, 20], 5, seed=0)]
        # Round-based: the first two arrivals are the two devices, in
        # some order — never all of one device before the other starts.
        assert set(order[:2]) == {0, 1}

    def test_chunk_size_validated(self):
        with pytest.raises(ConfigurationError, match="chunk_size"):
            list(interleave_schedule([4], 0))
