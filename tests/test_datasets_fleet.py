"""Fleet planning: deterministic device parameters and arrival schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import interleave_schedule, plan_fleet
from repro.datasets.fleet import ReplayPace
from repro.utils.exceptions import ConfigurationError


class TestPlanFleet:
    def test_deterministic_in_seed(self):
        a = plan_fleet(50, seed=4, drift_fraction=0.3)
        b = plan_fleet(50, seed=4, drift_fraction=0.3)
        assert a == b
        c = plan_fleet(50, seed=5, drift_fraction=0.3)
        assert a != c

    def test_drift_fraction_and_correlation(self):
        plans = plan_fleet(40, seed=1, drift_fraction=0.25, drift_at=300, shift=0.5)
        drifting = [p for p in plans if p.drift_at is not None]
        stationary = [p for p in plans if p.drift_at is None]
        assert len(drifting) == 10
        # Correlated: every drifting device sees the same event position.
        assert {p.drift_at for p in drifting} == {300}
        assert all(p.shift == 0.5 for p in drifting)
        assert all(p.shift == 0.0 for p in stationary)

    def test_unique_ids_and_seeds(self):
        plans = plan_fleet(100, seed=2)
        assert len({p.device_id for p in plans}) == 100
        assert len({p.seed for p in plans}) == 100
        assert plans[0].device_id == "dev0000"

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="n_devices"):
            plan_fleet(0)
        with pytest.raises(ConfigurationError, match="drift_fraction"):
            plan_fleet(4, drift_fraction=1.5)


class TestInterleaveSchedule:
    def test_covers_every_sample_in_order_per_device(self):
        lengths = [10, 25, 7, 0, 13]
        seen = [[] for _ in lengths]
        for i, start, stop in interleave_schedule(lengths, 6, seed=3):
            assert stop - start <= 6
            seen[i].append((start, stop))
        for n, chunks in zip(lengths, seen):
            # Chunks arrive in order and tile [0, n) exactly.
            assert [a for a, _ in chunks] == list(
                range(0, n, 6)
            )
            assert all(b - a == 6 or b == n for a, b in chunks)
            assert (chunks[-1][1] if chunks else 0) == n

    def test_deterministic_in_seed(self):
        lengths = [30, 30, 30]
        a = list(interleave_schedule(lengths, 10, seed=7))
        assert a == list(interleave_schedule(lengths, 10, seed=7))
        assert a != list(interleave_schedule(lengths, 10, seed=8))

    def test_interleaves_rather_than_drains_one_device(self):
        order = [i for i, _, _ in interleave_schedule([20, 20], 5, seed=0)]
        # Round-based: the first two arrivals are the two devices, in
        # some order — never all of one device before the other starts.
        assert set(order[:2]) == {0, 1}

    def test_chunk_size_validated(self):
        with pytest.raises(ConfigurationError, match="chunk_size"):
            list(interleave_schedule([4], 0))


class TestReplayPace:
    LENGTHS = [30, 20, 25]

    def test_pacing_preserves_the_unpaced_chunk_sequence(self):
        # Jitter draws come from a dedicated RNG stream, so per-device
        # chunk order is identical to the unpaced schedule — the golden
        # byte-identity comparisons rely on exactly this.
        unpaced = list(interleave_schedule(self.LENGTHS, 10, seed=6))
        pace = ReplayPace(samples_per_sec=50.0, rate=2.0, jitter=0.4)
        paced = list(interleave_schedule(self.LENGTHS, 10, seed=6, pace=pace))
        per_dev_unpaced = [[c[1:] for c in unpaced if c[0] == i] for i in range(3)]
        per_dev_paced = [[c[2:] for c in paced if c[1] == i] for i in range(3)]
        assert per_dev_paced == per_dev_unpaced

    def test_timestamps_sorted_and_deterministic(self):
        pace = ReplayPace(samples_per_sec=100.0, jitter=0.3)
        a = list(interleave_schedule(self.LENGTHS, 10, seed=2, pace=pace))
        b = list(interleave_schedule(self.LENGTHS, 10, seed=2, pace=pace))
        assert a == b
        times = [t for t, _, _, _ in a]
        assert times == sorted(times)
        assert all(t > 0 for t in times)
        c = list(interleave_schedule(self.LENGTHS, 10, seed=3, pace=pace))
        assert a != c

    def test_rate_divides_arrival_times_exactly(self):
        slow = ReplayPace(samples_per_sec=100.0, rate=1.0)
        fast = ReplayPace(samples_per_sec=100.0, rate=4.0)
        a = list(interleave_schedule(self.LENGTHS, 10, seed=1, pace=slow))
        b = list(interleave_schedule(self.LENGTHS, 10, seed=1, pace=fast))
        assert [t / 4.0 for t, *_ in a] == pytest.approx([t for t, *_ in b])

    def test_per_device_clocks_advance_by_chunk_size(self):
        # No jitter: each 10-sample chunk lands 0.1s after its device's
        # previous chunk at 100 samples/s.
        pace = ReplayPace(samples_per_sec=100.0)
        events = list(interleave_schedule([30], 10, seed=0, pace=pace))
        assert [t for t, *_ in events] == pytest.approx([0.1, 0.2, 0.3])

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="samples_per_sec"):
            ReplayPace(samples_per_sec=0.0)
        with pytest.raises(ConfigurationError, match="rate"):
            ReplayPace(rate=-1.0)
        with pytest.raises(ConfigurationError, match="jitter"):
            ReplayPace(jitter=1.0)
