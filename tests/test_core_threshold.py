"""Unit tests for Eq. 1 threshold calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CentroidSet,
    calibrate_drift_threshold,
    calibrate_error_threshold,
    drift_threshold,
    training_distances,
)
from repro.utils.exceptions import ConfigurationError, DataValidationError


class TestTrainingDistances:
    def test_l1_distances(self):
        X = np.array([[1.0, 1.0], [5.0, 5.0]])
        cents = np.array([[0.0, 0.0], [4.0, 4.0]])
        d = training_distances(X, np.array([0, 1]), cents)
        np.testing.assert_allclose(d, [2.0, 2.0])

    def test_l2_metric(self):
        X = np.array([[3.0, 4.0]])
        cents = np.array([[0.0, 0.0]])
        d = training_distances(X, np.array([0]), cents, metric="l2")
        assert d[0] == pytest.approx(5.0)

    def test_unknown_metric(self):
        with pytest.raises(ConfigurationError):
            training_distances(
                np.ones((1, 2)), np.array([0]), np.zeros((1, 2)), metric="cosine"
            )

    def test_label_length_mismatch(self):
        with pytest.raises(DataValidationError):
            training_distances(np.ones((2, 2)), np.array([0]), np.zeros((1, 2)))

    def test_label_out_of_range(self):
        with pytest.raises(DataValidationError):
            training_distances(np.ones((1, 2)), np.array([3]), np.zeros((2, 2)))


class TestDriftThreshold:
    def test_equation_one(self):
        d = np.array([1.0, 2.0, 3.0, 4.0])
        # μ = 2.5, population σ = sqrt(1.25)
        assert drift_threshold(d, z=1.0) == pytest.approx(2.5 + np.sqrt(1.25))

    def test_z_zero_gives_mean(self):
        d = np.array([1.0, 3.0])
        assert drift_threshold(d, z=0.0) == pytest.approx(2.0)

    def test_z_scaling_monotone(self, rng):
        d = rng.random(100)
        assert drift_threshold(d, 0.5) < drift_threshold(d, 1.0) < drift_threshold(d, 2.0)

    def test_population_not_sample_std(self):
        d = np.array([0.0, 2.0])
        # population σ = 1 (1/N), sample σ = sqrt(2) (1/(N-1)).
        assert drift_threshold(d, z=1.0) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(DataValidationError):
            drift_threshold(np.array([]))

    def test_nan_rejected(self):
        with pytest.raises(DataValidationError):
            drift_threshold(np.array([1.0, np.nan]))


class TestCalibrateDriftThreshold:
    def test_accepts_centroid_set(self, rng):
        X = rng.random((50, 3))
        y = rng.integers(0, 2, size=50)
        y[:2] = [0, 1]
        cents = CentroidSet.from_labelled_data(X, y, 2)
        t1 = calibrate_drift_threshold(X, y, cents)
        t2 = calibrate_drift_threshold(X, y, cents.trained)
        assert t1 == pytest.approx(t2)
        assert t1 > 0

    def test_tight_clusters_give_small_threshold(self, rng):
        Xt = np.concatenate([rng.normal(0, 0.01, (30, 2)), rng.normal(5, 0.01, (30, 2))])
        Xl = np.concatenate([rng.normal(0, 1.0, (30, 2)), rng.normal(5, 1.0, (30, 2))])
        y = np.array([0] * 30 + [1] * 30)
        ct = CentroidSet.from_labelled_data(Xt, y, 2)
        cl = CentroidSet.from_labelled_data(Xl, y, 2)
        assert calibrate_drift_threshold(Xt, y, ct) < calibrate_drift_threshold(Xl, y, cl)


class TestCalibrateErrorThreshold:
    def test_mean_sigma(self, rng):
        s = rng.random(1000)
        t = calibrate_error_threshold(s, method="mean_sigma", z=2.0)
        assert t == pytest.approx(s.mean() + 2.0 * s.std())

    def test_quantile(self, rng):
        s = rng.random(1000)
        t = calibrate_error_threshold(s, method="quantile", q=0.9)
        assert t == pytest.approx(np.quantile(s, 0.9))

    def test_unknown_method(self, rng):
        with pytest.raises(ConfigurationError):
            calibrate_error_threshold(rng.random(10), method="gmm")

    def test_invalid_quantile(self, rng):
        with pytest.raises(ConfigurationError):
            calibrate_error_threshold(rng.random(10), method="quantile", q=0.0)

    def test_empty_rejected(self):
        with pytest.raises(DataValidationError):
            calibrate_error_threshold(np.array([]))
