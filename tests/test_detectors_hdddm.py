"""Unit tests for the Hellinger-distance drift detector (HDDDM)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors import HDDDM, hellinger_distance
from repro.utils.exceptions import ConfigurationError, NotFittedError


@pytest.fixture
def reference(rng):
    return rng.normal(size=(400, 4))


class TestHellingerDistance:
    def bounds(self, X):
        return X.min(axis=0), X.max(axis=0)

    def test_identical_sets_near_zero(self, rng):
        X = rng.normal(size=(500, 3))
        lo, hi = self.bounds(X)
        d = hellinger_distance(X, X, n_bins=10, lo=lo, hi=hi)
        assert d == pytest.approx(0.0, abs=1e-12)

    def test_same_distribution_small(self, rng):
        a, b = rng.normal(size=(500, 3)), rng.normal(size=(500, 3))
        lo, hi = self.bounds(a)
        assert hellinger_distance(a, b, n_bins=10, lo=lo, hi=hi) < 0.15

    def test_shifted_distribution_large(self, rng):
        a = rng.normal(size=(500, 3))
        b = rng.normal(size=(500, 3)) + 2.0
        lo, hi = self.bounds(a)
        d = hellinger_distance(a, b, n_bins=10, lo=lo, hi=hi)
        assert d > 0.4

    def test_bounded_by_one(self, rng):
        a = rng.normal(size=(200, 2))
        b = rng.normal(size=(200, 2)) + 100.0  # fully disjoint supports
        lo, hi = self.bounds(a)
        d = hellinger_distance(a, b, n_bins=8, lo=lo, hi=hi)
        assert d <= 1.0 + 1e-9

    def test_feature_mismatch(self, rng):
        with pytest.raises(ConfigurationError):
            hellinger_distance(
                rng.normal(size=(10, 2)), rng.normal(size=(10, 3)),
                n_bins=4, lo=np.zeros(2), hi=np.ones(2),
            )

    def test_constant_feature_skipped(self, rng):
        a = np.column_stack([np.ones(100), rng.normal(size=100)])
        b = np.column_stack([np.ones(100), rng.normal(size=100)])
        lo, hi = a.min(axis=0), a.max(axis=0)
        d = hellinger_distance(a, b, n_bins=8, lo=lo, hi=hi)
        assert np.isfinite(d)


class TestHDDDM:
    def test_no_detection_on_stationary(self, reference, rng):
        det = HDDDM(batch_size=100, z=3.0).fit_reference(reference)
        fired = [det.detect_batch(rng.normal(size=(100, 4))) for _ in range(12)]
        assert sum(fired) <= 1

    def test_detects_sudden_shift(self, reference, rng):
        det = HDDDM(batch_size=100, z=3.0).fit_reference(reference)
        for _ in range(6):  # build the change history on stationary batches
            det.detect_batch(rng.normal(size=(100, 4)))
        assert det.detect_batch(rng.normal(size=(100, 4)) + 1.5)

    def test_needs_history_before_firing(self, reference, rng):
        det = HDDDM(batch_size=100).fit_reference(reference)
        # First two batches can never fire (threshold is inf).
        assert not det.detect_batch(rng.normal(size=(100, 4)) + 5.0)
        assert not det.detect_batch(rng.normal(size=(100, 4)))

    def test_streaming_interface(self, reference, rng):
        det = HDDDM(batch_size=50).fit_reference(reference)
        for _ in range(4):
            for x in rng.normal(size=(50, 4)):
                det.update_one(x)
        fired = False
        for x in rng.normal(size=(50, 4)) + 2.0:
            fired |= det.update_one(x)
        assert fired

    def test_not_fitted(self, rng):
        with pytest.raises(NotFittedError):
            HDDDM(batch_size=10).detect_batch(rng.normal(size=(10, 2)))

    def test_default_bins_sqrt_rule(self, reference):
        det = HDDDM(batch_size=50).fit_reference(reference)
        assert det._bins == int(np.sqrt(400))

    def test_state_nbytes_counts_reference_and_buffer(self, reference):
        det = HDDDM(batch_size=50).fit_reference(reference)
        assert det.state_nbytes() >= reference.nbytes + 50 * 4 * 8

    def test_refit_resets_history(self, reference, rng):
        det = HDDDM(batch_size=100).fit_reference(reference)
        for _ in range(5):
            det.detect_batch(rng.normal(size=(100, 4)))
        det.fit_reference(reference)
        assert det._eps.count == 0
        assert det._prev_distance is None

    def test_invalid_params(self):
        with pytest.raises(Exception):
            HDDDM(batch_size=0)
        with pytest.raises(Exception):
            HDDDM(batch_size=10, z=-1.0)
