"""Unit tests for accuracy metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import StepRecord
from repro.metrics import (
    correctness_array,
    overall_accuracy,
    segment_accuracy,
    windowed_accuracy,
)
from repro.utils.exceptions import DataValidationError


def recs(pattern):
    """Build records whose correctness follows ``pattern`` (iterable of 0/1)."""
    return [
        StepRecord(i, 0, 0 if ok else 1, bool(ok), 0.0, False, False, "predict")
        for i, ok in enumerate(pattern)
    ]


class TestCorrectness:
    def test_array(self):
        c = correctness_array(recs([1, 0, 1]))
        np.testing.assert_array_equal(c, [1.0, 0.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(DataValidationError):
            correctness_array([])

    def test_unlabelled_rejected(self):
        bad = [StepRecord(0, 0, None, None, 0.0, False, False, "predict")]
        with pytest.raises(DataValidationError):
            correctness_array(bad)


class TestOverall:
    def test_mean(self):
        assert overall_accuracy(recs([1, 1, 0, 0])) == pytest.approx(0.5)

    def test_perfect(self):
        assert overall_accuracy(recs([1] * 10)) == 1.0


class TestWindowed:
    def test_positions_and_values(self):
        pattern = [1] * 10 + [0] * 10
        pos, acc = windowed_accuracy(recs(pattern), window=10)
        assert pos[0] == 9 and pos[-1] == 19
        assert acc[0] == pytest.approx(1.0)
        assert acc[-1] == pytest.approx(0.0)
        assert acc[5] == pytest.approx(0.5)  # half-window overlap

    def test_window_longer_than_stream(self):
        with pytest.raises(DataValidationError):
            windowed_accuracy(recs([1, 0]), window=10)

    def test_trailing_window_semantics(self):
        pos, acc = windowed_accuracy(recs([1, 0, 1, 0]), window=2)
        np.testing.assert_allclose(acc, [0.5, 0.5, 0.5])

    def test_invalid_window(self):
        with pytest.raises(Exception):
            windowed_accuracy(recs([1, 0]), window=0)


class TestSegments:
    def test_pre_post_split(self):
        pattern = [1] * 10 + [0] * 10
        pre, post = segment_accuracy(recs(pattern), [10])
        assert pre == 1.0 and post == 0.0

    def test_multiple_boundaries(self):
        pattern = [1] * 4 + [0] * 4 + [1] * 4
        a, b, c = segment_accuracy(recs(pattern), [4, 8])
        assert (a, b, c) == (1.0, 0.0, 1.0)

    def test_empty_segment_nan(self):
        out = segment_accuracy(recs([1, 1]), [0])
        assert np.isnan(out[0]) and out[1] == 1.0
