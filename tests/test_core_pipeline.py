"""Unit tests for the five streaming pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BatchDetectorPipeline,
    CentroidSet,
    ErrorRatePipeline,
    ModelReconstructor,
    NoDetectionPipeline,
    ONLADPipeline,
    ProposedPipeline,
    SequentialDriftDetector,
    build_proposed,
)
from repro.core import ReconstructionStep
from repro.detectors import DDM, DriftState, ErrorRateDriftDetector, QuantTree
from repro.oselm import MultiInstanceModel
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def model(train_stream):
    return MultiInstanceModel(6, 4, 2, seed=0).fit_initial(train_stream.X, train_stream.y)


def make_proposed(model, train_stream, window=20):
    return build_proposed(
        train_stream.X, train_stream.y, window_size=window,
        n_hidden=4, reconstruction_samples=60, seed=0,
    )


class TestNoDetectionPipeline:
    def test_record_fields(self, model, drift_stream):
        pipe = NoDetectionPipeline(model)
        rec = pipe.process_one(drift_stream.X[0], int(drift_stream.y[0]))
        assert rec.index == 0
        assert rec.phase == "predict"
        assert rec.correct in (True, False)
        assert not rec.drift_detected and not rec.reconstructing

    def test_never_detects(self, model, drift_stream):
        pipe = NoDetectionPipeline(model)
        recs = pipe.run(drift_stream)
        assert not any(r.drift_detected for r in recs)
        assert pipe.detections == []

    def test_model_frozen(self, model, drift_stream):
        pipe = NoDetectionPipeline(model)
        seen = sum(i.n_samples_seen for i in model.instances)
        pipe.run(drift_stream.take(50))
        assert sum(i.n_samples_seen for i in model.instances) == seen

    def test_accuracy_degrades_after_drift(self, model, drift_stream):
        recs = NoDetectionPipeline(model).run(drift_stream)
        pre = np.mean([r.correct for r in recs[:400]])
        post = np.mean([r.correct for r in recs[400:]])
        assert pre > 0.95 and post < pre

    def test_unlabelled_stream_ok(self, model, drift_stream):
        pipe = NoDetectionPipeline(model)
        rec = pipe.process_one(drift_stream.X[0], None)
        assert rec.correct is None and rec.true_label is None

    def test_requires_multi_instance_model(self):
        with pytest.raises(ConfigurationError):
            NoDetectionPipeline("not a model")


class TestONLADPipeline:
    def test_trains_every_sample(self, train_stream, drift_stream):
        m = MultiInstanceModel(6, 4, 2, forgetting_factor=0.97, seed=0)
        m.fit_initial(train_stream.X, train_stream.y)
        pipe = ONLADPipeline(m)
        seen = sum(i.n_samples_seen for i in m.instances)
        pipe.run(drift_stream.take(50))
        assert sum(i.n_samples_seen for i in m.instances) == seen + 50

    def test_adapts_after_drift(self, train_stream, drift_stream):
        m = MultiInstanceModel(6, 4, 2, forgetting_factor=0.95, seed=0)
        m.fit_initial(train_stream.X, train_stream.y)
        recs = ONLADPipeline(m).run(drift_stream)
        # Passive adaptation: the score spike right at the drift decays as
        # the forgetting model absorbs the new concept.
        scores = np.array([r.anomaly_score for r in recs])
        assert scores[400:408].mean() > 2 * scores[1100:].mean()

    def test_phase_label(self, model, drift_stream):
        rec = ONLADPipeline(model).process_one(drift_stream.X[0], 0)
        assert rec.phase == "train"


class TestProposedPipeline:
    def test_detects_and_reconstructs(self, train_stream, drift_stream, model):
        pipe = make_proposed(model, train_stream)
        recs = pipe.run(drift_stream)
        det = [r.index for r in recs if r.drift_detected]
        assert det and det[0] >= 400
        recon = [r.index for r in recs if r.reconstructing]
        assert len(recon) >= 60
        assert recon[0] == det[0]

    def test_accuracy_recovers(self, train_stream, drift_stream, model):
        pipe = make_proposed(model, train_stream)
        recs = pipe.run(drift_stream)
        recon_idx = [r.index for r in recs if r.reconstructing]
        after = [r.correct for r in recs if r.index > recon_idx[-1]]
        assert np.mean(after) > 0.9

    def test_beats_frozen_baseline(self, train_stream, drift_stream):
        frozen_model = MultiInstanceModel(6, 4, 2, seed=0).fit_initial(
            train_stream.X, train_stream.y
        )
        frozen = NoDetectionPipeline(frozen_model).run(drift_stream)
        adaptive = make_proposed(None, train_stream).run(drift_stream)
        acc_frozen = np.mean([r.correct for r in frozen])
        acc_adaptive = np.mean([r.correct for r in adaptive])
        assert acc_adaptive > acc_frozen

    def test_shared_state_validation(self, train_stream, model):
        cents_a = CentroidSet.from_labelled_data(train_stream.X, train_stream.y, 2)
        cents_b = CentroidSet.from_labelled_data(train_stream.X, train_stream.y, 2)
        det = SequentialDriftDetector(cents_a, window_size=5, theta_error=1, theta_drift=1)
        rec = ModelReconstructor(model, cents_b, n_total=40)
        with pytest.raises(ConfigurationError):
            ProposedPipeline(model, det, rec)

    def test_model_identity_validation(self, train_stream, model):
        cents = CentroidSet.from_labelled_data(train_stream.X, train_stream.y, 2)
        det = SequentialDriftDetector(cents, window_size=5, theta_error=1, theta_drift=1)
        other = MultiInstanceModel(6, 4, 2, seed=1).fit_initial(train_stream.X, train_stream.y)
        rec = ModelReconstructor(other, cents, n_total=40)
        with pytest.raises(ConfigurationError):
            ProposedPipeline(model, det, rec)

    def test_state_nbytes_is_detector_footprint(self, train_stream):
        pipe = make_proposed(None, train_stream)
        assert pipe.state_nbytes() == pipe.detector.state_nbytes()


class TestBatchDetectorPipeline:
    def test_quanttree_detects_and_adapts(self, train_stream, drift_stream, model):
        qt = QuantTree(batch_size=80, n_bins=8, seed=0).fit_reference(train_stream.X)
        cents = CentroidSet.from_labelled_data(train_stream.X, train_stream.y, 2)
        rec = ModelReconstructor(model, cents, n_total=60, n_search=6, n_update=20)
        pipe = BatchDetectorPipeline(model, qt, rec)
        recs = pipe.run(drift_stream)
        det = [r.index for r in recs if r.drift_detected]
        assert det and 400 <= det[0] <= 600
        after = [r.correct for r in recs if r.index > det[0] + 60 + 80]
        assert np.mean(after) > 0.85

    def test_refit_phase_present(self, train_stream, drift_stream, model):
        qt = QuantTree(batch_size=80, n_bins=8, seed=0).fit_reference(train_stream.X)
        cents = CentroidSet.from_labelled_data(train_stream.X, train_stream.y, 2)
        rec = ModelReconstructor(model, cents, n_total=60, n_search=6, n_update=20)
        pipe = BatchDetectorPipeline(model, qt, rec)
        recs = pipe.run(drift_stream)
        phases = {r.phase for r in recs}
        assert "refit" in phases

    def test_no_refit_when_disabled(self, train_stream, drift_stream, model):
        qt = QuantTree(batch_size=80, n_bins=8, seed=0).fit_reference(train_stream.X)
        cents = CentroidSet.from_labelled_data(train_stream.X, train_stream.y, 2)
        rec = ModelReconstructor(model, cents, n_total=60, n_search=6, n_update=20)
        pipe = BatchDetectorPipeline(model, qt, rec, refit_reference=False)
        recs = pipe.run(drift_stream)
        assert "refit" not in {r.phase for r in recs}

    def test_name_defaults_to_detector(self, train_stream, model):
        qt = QuantTree(batch_size=80, n_bins=8, seed=0).fit_reference(train_stream.X)
        cents = CentroidSet.from_labelled_data(train_stream.X, train_stream.y, 2)
        rec = ModelReconstructor(model, cents, n_total=60, n_search=6, n_update=20)
        assert BatchDetectorPipeline(model, qt, rec).name == "quanttree"

    def test_state_nbytes_counts_refit_buffer(self, train_stream, drift_stream, model):
        qt = QuantTree(batch_size=80, n_bins=8, seed=0).fit_reference(train_stream.X)
        cents = CentroidSet.from_labelled_data(train_stream.X, train_stream.y, 2)
        rec = ModelReconstructor(model, cents, n_total=60, n_search=6, n_update=20)
        pipe = BatchDetectorPipeline(model, qt, rec)
        base = pipe.state_nbytes()
        pipe._refitting = True  # reference window is being rebuilt
        for j in range(3):
            assert pipe.process_one(drift_stream.X[j], 0).phase == "refit"
        d = drift_stream.n_features
        assert pipe.state_nbytes() == base + 3 * d * 8


class TestErrorRatePipeline:
    def test_requires_labels(self, train_stream, drift_stream, model):
        cents = CentroidSet.from_labelled_data(train_stream.X, train_stream.y, 2)
        rec = ModelReconstructor(model, cents, n_total=60, n_search=6, n_update=20)
        pipe = ErrorRatePipeline(model, DDM(), rec)
        with pytest.raises(ConfigurationError):
            pipe.process_one(drift_stream.X[0], None)

    def test_ddm_pipeline_adapts(self, train_stream, drift_stream, model):
        cents = CentroidSet.from_labelled_data(train_stream.X, train_stream.y, 2)
        rec = ModelReconstructor(model, cents, n_total=60, n_search=6, n_update=20)
        pipe = ErrorRatePipeline(model, DDM(), rec)
        recs = pipe.run(drift_stream)
        det = [r.index for r in recs if r.drift_detected]
        assert det  # supervised detection fires somewhere after the drift
        after = [r.correct for r in recs if r.index > det[0] + 60]
        assert np.mean(after) > 0.8

    def test_one_shot_reconstruction_resets_detector(self, drift_stream, model):
        """Regression: when reconstruction completes within the detection
        sample itself, the detector must be reset exactly like on the
        multi-step path — otherwise stale error statistics re-fire."""

        class FireAt(ErrorRateDriftDetector):
            def __init__(self, at: int) -> None:
                super().__init__()
                self.fire_at = at

            def update(self, error):
                self.n_samples_seen += 1
                fire = self.n_samples_seen == self.fire_at
                self.state = DriftState.DRIFT if fire else DriftState.NORMAL
                return self.state

        class OneShotReconstructor:
            def process(self, x):
                return ReconstructionStep(
                    still_reconstructing=False, phase="finish", label=-1, count=1
                )

        det = FireAt(5)
        pipe = ErrorRatePipeline(model, det, OneShotReconstructor())
        recs = [
            pipe.process_one(drift_stream.X[i], int(drift_stream.y[i]))
            for i in range(8)
        ]
        assert recs[4].drift_detected and recs[4].reconstructing
        assert not pipe._reconstructing  # one-shot: already finished
        # The reset happened inside sample 4, so only the three samples
        # after it have been counted since.
        assert det.n_samples_seen == 3
        assert not any(r.reconstructing for r in recs[5:])
