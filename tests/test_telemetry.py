"""Unit tests for the telemetry hub, metrics, sinks, and exporters."""

from __future__ import annotations

import copy
import io
import json
import pickle

import numpy as np
import pytest

from repro.telemetry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Event,
    Gauge,
    Histogram,
    JsonlSink,
    MetricsRegistry,
    RingBufferSink,
    StderrSink,
    Telemetry,
    configure,
    get_telemetry,
    render_summary,
)
from repro.telemetry.events import jsonable_fields
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def tel() -> Telemetry:
    """A private enabled hub with a ring sink (does not touch the default)."""
    return Telemetry(enabled=True, sinks=[RingBufferSink()])


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("hits")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5
        assert c.total == 3.5

    def test_label_series_are_independent(self):
        c = Counter("hits", labels=("kind",))
        c.inc(kind="a")
        c.inc(3, kind="b")
        assert c.value(kind="a") == 1.0
        assert c.value(kind="b") == 3.0
        assert c.total == 4.0
        assert c.samples() == [
            {"labels": {"kind": "a"}, "value": 1.0},
            {"labels": {"kind": "b"}, "value": 3.0},
        ]

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("hits").inc(-1)

    def test_unexpected_and_missing_labels_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("plain").inc(kind="a")
        with pytest.raises(ConfigurationError):
            Counter("labelled", labels=("kind",)).inc()


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("level")
        g.set(10)
        g.inc(2)
        g.dec(7)
        assert g.value() == 5.0

    def test_labelled(self):
        g = Gauge("level", labels=("node",))
        g.set(1.5, node="x")
        assert g.value(node="x") == 1.5
        assert g.value(node="y") == 0.0


class TestHistogram:
    def test_bucketing_and_overflow(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 4.0, 100.0):
            h.observe(v)
        # le=1: {0.5, 1.0}; le=2: {1.5}; le=5: {4.0}; +Inf: {100.0}
        assert h.bucket_counts() == [2, 1, 1, 1]
        assert h.count() == 5
        assert h.sum() == pytest.approx(107.0)
        assert h.mean() == pytest.approx(107.0 / 5)

    def test_edges_must_strictly_increase(self):
        with pytest.raises(ConfigurationError):
            Histogram("bad", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ConfigurationError):
            Histogram("bad", buckets=())
        Histogram("fine", buckets=DEFAULT_TIME_BUCKETS)  # the default is valid

    def test_empty_series_reads_as_zero(self):
        h = Histogram("lat", buckets=(1.0,))
        assert h.count() == 0
        assert h.mean() == 0.0
        assert h.bucket_counts() == [0, 0]


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("x", "help")
        b = reg.counter("x")
        assert a is b
        assert len(reg) == 1

    def test_kind_mismatch_fails_loudly(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_label_mismatch_fails_loudly(self):
        reg = MetricsRegistry()
        reg.counter("x", labels=("a",))
        with pytest.raises(ConfigurationError):
            reg.counter("x", labels=("b",))

    def test_reset_empties_registry(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert len(reg) == 0


class TestExporters:
    def make_registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("hits", "hits by kind", labels=("kind",)).inc(2, kind="a")
        reg.gauge("level").set(1.25)
        h = reg.histogram("lat", "latency", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(10.0)
        return reg

    def test_as_dict_round_trips_json(self):
        reg = self.make_registry()
        snapshot = json.loads(reg.to_json())
        assert snapshot == reg.as_dict()
        assert snapshot["hits"]["kind"] == "counter"
        assert snapshot["hits"]["samples"] == [
            {"labels": {"kind": "a"}, "value": 2.0}
        ]
        assert snapshot["lat"]["samples"][0]["count"] == 2

    def test_prometheus_text_format(self):
        text = self.make_registry().to_prometheus()
        assert '# TYPE repro_hits counter' in text
        assert 'repro_hits{kind="a"} 2' in text
        assert "# TYPE repro_level gauge" in text
        assert "repro_level 1.25" in text
        # histogram: cumulative buckets + +Inf + sum/count
        assert 'repro_lat_bucket{le="1.0"} 1' in text
        assert 'repro_lat_bucket{le="2.0"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 2' in text
        assert "repro_lat_sum 10.5" in text
        assert "repro_lat_count 2" in text

    def test_prometheus_name_sanitised(self):
        reg = MetricsRegistry()
        reg.counter("span.pipeline.run.seconds").inc()
        assert "repro_span_pipeline_run_seconds 1" in reg.to_prometheus()


class TestEvents:
    def test_to_json_flattens_fields(self):
        e = Event(name="drift_detected", seq=3, t=1.5, fields={"index": 7})
        assert e.to_json() == {
            "event": "drift_detected", "seq": 3, "t": 1.5, "index": 7
        }

    def test_numpy_scalars_coerced(self):
        out = jsonable_fields({
            "i": np.int64(3), "f": np.float32(0.5), "b": np.bool_(True),
            "s": "x", "n": None, "arr": np.array([1, 2]),
        })
        assert out["i"] == 3 and isinstance(out["i"], int)
        assert out["f"] == 0.5 and isinstance(out["f"], float)
        assert out["b"] is True
        assert out["s"] == "x" and out["n"] is None
        assert isinstance(out["arr"], str)  # repr fallback
        json.dumps(out)  # everything serialisable


class TestSinks:
    def test_ring_buffer_bounded_and_filterable(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.handle(Event(name="a" if i % 2 else "b", seq=i, t=0.0))
        assert len(sink) == 3
        assert [e.seq for e in sink.events()] == [2, 3, 4]
        assert [e.seq for e in sink.events("a")] == [3]
        sink.clear()
        assert len(sink) == 0

    def test_jsonl_sink_writes_one_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.handle(Event(name="x", seq=1, t=0.25, fields={"k": 1}))
            sink.handle(Event(name="y", seq=2, t=0.50))
            assert sink.n_written == 2
        lines = path.read_text().splitlines()
        assert [json.loads(ln)["event"] for ln in lines] == ["x", "y"]
        assert json.loads(lines[0])["k"] == 1

    def test_jsonl_sink_closed_rejects_events(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ConfigurationError):
            sink.handle(Event(name="x", seq=1, t=0.0))

    def test_stderr_sink_renders_one_line(self):
        buf = io.StringIO()
        StderrSink(buf).handle(Event(name="x", seq=1, t=0.5, fields={"a": 2}))
        line = buf.getvalue()
        assert line.endswith("\n") and line.count("\n") == 1
        assert "x" in line and "a=2" in line


class TestHub:
    def test_disabled_emit_is_noop(self):
        sink = RingBufferSink()
        tel = Telemetry(enabled=False, sinks=[sink])
        assert tel.emit("x") is None
        assert len(sink) == 0
        assert len(tel.registry) == 0

    def test_emit_routes_to_all_sinks_and_counts(self, tel):
        other = RingBufferSink()
        tel.add_sink(other)
        event = tel.emit("drift_detected", index=4)
        assert event is not None and event.seq == 1
        (ring,) = [s for s in tel.sinks if s is not other]
        assert [e.name for e in ring.events()] == ["drift_detected"]
        assert [e.name for e in other.events()] == ["drift_detected"]
        assert tel.counter("telemetry.events", labels=("name",)).value(
            name="drift_detected"
        ) == 1

    def test_emit_allows_name_field(self, tel):
        event = tel.emit("cell_started", name="Proposed @ blobs")
        assert event.fields["name"] == "Proposed @ blobs"

    def test_span_times_into_histogram_and_event(self, tel):
        with tel.span("work", tag="t") as span:
            pass
        assert span.seconds is not None and span.seconds >= 0.0
        h = tel.registry.get("span.work.seconds")
        assert h.count() == 1
        (event,) = tel.sinks[0].events("span")
        assert event.fields["span"] == "work"
        assert event.fields["ok"] is True
        assert event.fields["tag"] == "t"

    def test_span_records_failure_and_propagates(self, tel):
        with pytest.raises(ValueError):
            with tel.span("work"):
                raise ValueError("boom")
        (event,) = tel.sinks[0].events("span")
        assert event.fields["ok"] is False

    def test_disabled_span_is_shared_noop(self):
        tel = Telemetry()
        a = tel.span("x")
        b = tel.span("y")
        assert a is b  # the singleton null span
        with a:
            pass
        assert len(tel.registry) == 0

    def test_reset_clears_metrics_and_sequence(self, tel):
        tel.emit("x")
        tel.reset()
        assert len(tel.registry) == 0
        assert tel.emit("y").seq == 1

    def test_deepcopy_and_copy_return_self(self, tel):
        assert copy.deepcopy(tel) is tel
        assert copy.copy(tel) is tel

    def test_pickle_reattaches_to_default_hub(self, tel):
        assert pickle.loads(pickle.dumps(tel)) is get_telemetry()


class TestDefaultHub:
    def test_default_starts_disabled(self):
        assert get_telemetry().enabled is False

    def test_configure_mutates_in_place(self):
        hub = get_telemetry()
        sink = RingBufferSink()
        try:
            assert configure(enabled=True, sinks=[sink]) is hub
            assert hub.enabled and hub.sinks == [sink]
            hub.emit("x")
            assert len(sink) == 1
        finally:
            configure(enabled=False, sinks=[], reset=True)
        assert not hub.enabled and hub.sinks == []
        assert len(hub.registry) == 0


class TestRenderSummary:
    def test_empty_hub_renders_placeholder(self):
        assert "no metrics or events" in render_summary(Telemetry())

    def test_sections_present(self, tel):
        tel.emit("drift_detected", index=1)
        with tel.span("pipeline.run", pipeline="proposed"):
            pass
        tel.counter(
            "pipeline.samples", labels=("pipeline", "phase")
        ).inc(40, pipeline="proposed", phase="predict")
        tel.counter("detector.drifts").inc(2)
        tel.gauge("detector.distance").set(1.75)
        text = render_summary(tel)
        assert "drift_detected" in text
        assert "pipeline.run" in text
        assert "proposed/predict" in text
        assert "detector.drifts" in text
        assert "detector.distance" in text
