"""Unit tests for repro.guard.sanitizer — bounds learning and policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.guard import FeatureBounds, InputSanitizer, POLICIES
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def bounds(rng) -> FeatureBounds:
    return FeatureBounds.from_data(rng.normal(0.5, 0.1, size=(100, 4)))


def make_sanitizer(bounds, policy, **kw) -> InputSanitizer:
    return InputSanitizer(bounds.n_features, policy=policy, bounds=bounds, **kw)


class TestFeatureBounds:
    def test_from_data_covers_training_data(self, rng):
        X = rng.normal(size=(200, 5))
        b = FeatureBounds.from_data(X)
        assert b.contains_all(X)
        assert not b.violations(X[0]).any()

    def test_margin_zero_is_exact_min_max(self, rng):
        X = rng.normal(size=(50, 3))
        b = FeatureBounds.from_data(X, margin=0.0)
        np.testing.assert_array_equal(b.lo, X.min(axis=0))
        np.testing.assert_array_equal(b.hi, X.max(axis=0))

    def test_drift_scale_shift_stays_inside(self, rng):
        # A feature quiet in training may legitimately swing across the
        # data's global scale after drift — that must not look faulty.
        X = rng.normal(0.0, 0.01, size=(100, 4))
        X[:, 2] += 0.5  # one feature defines the global scale
        b = FeatureBounds.from_data(X)
        drifted = np.array([0.5, 0.5, 0.0, 0.5])  # peak moved to new bins
        assert not b.violations(drifted).any()

    def test_spike_still_caught(self, rng):
        X = rng.normal(0.5, 0.1, size=(100, 4))
        b = FeatureBounds.from_data(X)
        spiked = np.array([0.5, 1e3, 0.5, 0.5])
        assert list(np.flatnonzero(b.violations(spiked))) == [1]

    def test_nan_counts_as_violation(self, bounds):
        assert bounds.violations(np.array([np.nan, 0.5, 0.5, 0.5]))[0]

    def test_constant_data_gets_nonzero_pad(self):
        b = FeatureBounds.from_data(np.full((10, 3), 2.0))
        assert (b.hi > 2.0).all() and (b.lo < 2.0).all()

    def test_midpoint(self):
        b = FeatureBounds(np.array([0.0, -2.0]), np.array([1.0, 2.0]))
        np.testing.assert_array_equal(b.midpoint, [0.5, 0.0])

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ConfigurationError):
            FeatureBounds(np.zeros(3), np.zeros(2))

    def test_rejects_inverted_interval(self):
        with pytest.raises(ConfigurationError):
            FeatureBounds(np.array([1.0]), np.array([0.0]))

    def test_rejects_non_finite_bounds(self):
        with pytest.raises(ConfigurationError):
            FeatureBounds(np.array([0.0]), np.array([np.inf]))

    def test_rejects_negative_margin(self, rng):
        with pytest.raises(ConfigurationError):
            FeatureBounds.from_data(rng.normal(size=(10, 2)), margin=-1.0)


class TestSanitizerCleanPath:
    def test_clean_sample_returned_by_reference(self, bounds):
        s = make_sanitizer(bounds, "reject")
        x = np.full(4, 0.5)
        out = s.sanitize(x)
        assert out.action == "ok" and out.x is x and out.bad_features == ()
        assert s.counts["ok"] == 1 and s.n_faults == 0

    def test_all_clean_vectorized_matches_per_sample(self, bounds, rng):
        s = make_sanitizer(bounds, "reject")
        X = rng.normal(0.5, 0.1, size=(32, 4))
        assert s.all_clean(X)
        X[5, 2] = np.nan
        assert not s.all_clean(X)

    def test_all_clean_rejects_wrong_width(self, bounds, rng):
        s = make_sanitizer(bounds, "reject")
        assert not s.all_clean(rng.normal(0.5, 0.1, size=(8, 3)))

    def test_all_clean_without_bounds_only_checks_finiteness(self):
        s = InputSanitizer(2, policy="clip")
        assert s.all_clean(np.array([[1e9, -1e9]]))
        assert not s.all_clean(np.array([[1.0, np.inf]]))


class TestPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            InputSanitizer(3, policy="panic")

    def test_policy_tuple_is_stable_api(self):
        assert POLICIES == ("reject", "clip", "impute_last_good", "quarantine")

    def test_reject_returns_none_sample(self, bounds):
        s = make_sanitizer(bounds, "reject")
        out = s.sanitize(np.array([np.nan, 0.5, 0.5, 0.5]))
        assert out.action == "rejected" and out.x is None
        assert out.bad_features == (0,)
        assert s.counts["rejected"] == 1

    def test_clip_clamps_into_bounds(self, bounds):
        s = make_sanitizer(bounds, "clip")
        out = s.sanitize(np.array([1e6, 0.5, -1e6, 0.5]))
        assert out.action == "clipped"
        assert out.x[0] == bounds.hi[0] and out.x[2] == bounds.lo[2]
        assert out.x[1] == 0.5

    def test_clip_repairs_nan_from_last_good(self, bounds):
        s = make_sanitizer(bounds, "clip")
        s.sanitize(np.array([0.4, 0.5, 0.6, 0.5]))  # establishes last-good
        out = s.sanitize(np.array([np.nan, 0.5, 0.5, 0.5]))
        assert out.action == "clipped" and out.x[0] == 0.4

    def test_impute_uses_last_good_reading(self, bounds):
        s = make_sanitizer(bounds, "impute_last_good")
        s.sanitize(np.array([0.41, 0.52, 0.63, 0.54]))
        out = s.sanitize(np.array([np.nan, 0.5, 1e7, 0.5]))
        assert out.action == "imputed"
        assert out.x[0] == 0.41 and out.x[2] == 0.63
        assert out.bad_features == (0, 2)

    def test_impute_before_any_clean_uses_midpoint(self, bounds):
        s = make_sanitizer(bounds, "impute_last_good")
        out = s.sanitize(np.array([np.nan, 0.5, 0.5, 0.5]))
        assert out.x[0] == bounds.midpoint[0]

    def test_impute_without_bounds_or_history_uses_zero(self):
        s = InputSanitizer(2, policy="impute_last_good")
        out = s.sanitize(np.array([np.nan, 1.0]))
        assert out.x[0] == 0.0

    def test_quarantine_withholds_and_buffers(self, bounds):
        s = make_sanitizer(bounds, "quarantine", quarantine_capacity=2)
        for k in range(3):
            out = s.sanitize(np.array([np.nan, 0.5, 0.5, float(k)]))
            assert out.action == "quarantined" and out.x is None
        assert len(s.quarantined) == 2  # bounded buffer keeps the newest
        assert s.quarantined[-1][3] == 2.0

    def test_wrong_width_row_degrades_to_quarantine(self, bounds):
        # A truncated row cannot be repaired feature-wise, even under a
        # repairing policy.
        s = make_sanitizer(bounds, "impute_last_good")
        out = s.sanitize(np.array([0.5, 0.5]))
        assert out.action == "quarantined"
        assert out.bad_features == (0, 1, 2, 3)

    def test_fault_tally(self, bounds):
        s = make_sanitizer(bounds, "clip")
        s.sanitize(np.full(4, 0.5))
        s.sanitize(np.array([np.nan, 0.5, 0.5, 0.5]))
        s.sanitize(np.array([1e9, 0.5, 0.5, 0.5]))
        assert s.n_faults == 2 and s.counts["ok"] == 1

    def test_bounds_feature_mismatch_rejected(self, bounds):
        with pytest.raises(ConfigurationError):
            InputSanitizer(7, policy="clip", bounds=bounds)
