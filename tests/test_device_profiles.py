"""Unit tests for device profiles (Table 1)."""

from __future__ import annotations

import pytest

from repro.device import RASPBERRY_PI_4, RASPBERRY_PI_PICO, DeviceProfile
from repro.utils.exceptions import ConfigurationError


class TestConstants:
    def test_table1_specs(self):
        assert RASPBERRY_PI_4.clock_hz == 1.5e9
        assert RASPBERRY_PI_4.ram_bytes == 4 * 1024**3
        assert RASPBERRY_PI_4.has_fpu
        assert RASPBERRY_PI_PICO.clock_hz == 133e6
        assert RASPBERRY_PI_PICO.ram_bytes == 264 * 1024
        assert not RASPBERRY_PI_PICO.has_fpu

    def test_pico_much_slower_per_flop(self):
        # Soft-float M0+ vs NEON A72: orders of magnitude apart.
        pico_t = RASPBERRY_PI_PICO.seconds_for_flops(1e6)
        pi4_t = RASPBERRY_PI_4.seconds_for_flops(1e6)
        assert pico_t > 50 * pi4_t


class TestProfile:
    def test_seconds_linear_in_flops(self):
        t1 = RASPBERRY_PI_4.seconds_for_flops(1e6)
        t2 = RASPBERRY_PI_4.seconds_for_flops(2e6)
        assert t2 == pytest.approx(2 * t1)

    def test_ms_conversion(self):
        assert RASPBERRY_PI_4.ms_for_flops(1e6) == pytest.approx(
            1e3 * RASPBERRY_PI_4.seconds_for_flops(1e6)
        )

    def test_zero_flops(self):
        assert RASPBERRY_PI_PICO.seconds_for_flops(0) == 0.0

    def test_negative_flops_rejected(self):
        with pytest.raises(ConfigurationError):
            RASPBERRY_PI_4.seconds_for_flops(-1)

    def test_fits(self):
        assert RASPBERRY_PI_PICO.fits(100 * 1024)
        assert not RASPBERRY_PI_PICO.fits(300 * 1024)

    def test_invalid_profile(self):
        with pytest.raises(ConfigurationError):
            DeviceProfile("x", "cpu", 0.0, 1.0, 10, True)
        with pytest.raises(ConfigurationError):
            DeviceProfile("x", "cpu", 1.0, -1.0, 10, True)
