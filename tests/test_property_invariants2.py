"""Second round of property-based tests (hypothesis) — newer subsystems.

Pins invariants of the components added on top of the core reproduction:
the KS test, Hellinger distance, detection-quality matching, the ascii
sparkline, quantisation, GMM densities, and the OS-ELM classifier's
ridge equivalence.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.detectors import hellinger_distance, ks_two_sample
from repro.device.quantize import quantize_array
from repro.metrics import evaluate_detections, sparkline
from repro.oselm import OSELMClassifier

finite = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, width=64)


class TestKSProperties:
    @given(
        arrays(np.float64, st.integers(5, 80), elements=finite),
        arrays(np.float64, st.integers(5, 80), elements=finite),
    )
    @settings(max_examples=60, deadline=None)
    def test_statistic_in_unit_interval(self, a, b):
        d, p = ks_two_sample(a, b)
        assert 0.0 <= d <= 1.0
        assert 0.0 <= p <= 1.0

    @given(arrays(np.float64, st.integers(5, 80), elements=finite))
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, a):
        b = a[::-1] + 1.0
        d1, p1 = ks_two_sample(a, b)
        d2, p2 = ks_two_sample(b, a)
        assert d1 == pytest.approx(d2, abs=1e-12)
        assert p1 == pytest.approx(p2, abs=1e-12)

    @given(arrays(np.float64, st.integers(5, 60), elements=finite))
    @settings(max_examples=40, deadline=None)
    def test_self_distance_zero(self, a):
        d, p = ks_two_sample(a, a)
        assert d == 0.0 and p == 1.0


class TestHellingerProperties:
    @given(st.integers(0, 2**31 - 1), st.integers(1, 4), st.integers(2, 12))
    @settings(max_examples=40, deadline=None)
    def test_bounded_and_zero_on_self(self, seed, dims, bins):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, dims))
        lo, hi = X.min(axis=0), X.max(axis=0)
        assert hellinger_distance(X, X, n_bins=bins, lo=lo, hi=hi) == pytest.approx(0.0)
        Y = rng.normal(size=(60, dims)) + 1.0
        d = hellinger_distance(X, Y, n_bins=bins, lo=lo, hi=hi)
        assert 0.0 <= d <= 1.0 + 1e-9


class TestEvaluateDetectionsProperties:
    @given(
        st.lists(st.integers(0, 999), max_size=12),
        st.lists(st.integers(0, 999), max_size=5),
        st.integers(50, 2000),
    )
    @settings(max_examples=80, deadline=None)
    def test_conservation(self, dets, drifts, horizon):
        ev = evaluate_detections(dets, drifts, 1000, horizon=horizon)
        # Every detection is matched exactly once or a false alarm.
        assert ev.n_detected + len(ev.false_alarms) == len(dets)
        # One delay slot per true drift.
        assert len(ev.matched_delays) == len(set(drifts))
        for d in ev.matched_delays:
            assert d is None or 0 <= d < horizon

    @given(st.lists(st.integers(0, 999), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_perfect_detections_full_recall(self, drifts):
        ev = evaluate_detections(sorted(set(drifts)), sorted(set(drifts)), 1000)
        assert ev.recall == 1.0
        assert all(d == 0 for d in ev.matched_delays)


class TestSparklineProperties:
    @given(arrays(np.float64, st.integers(1, 200), elements=finite),
           st.integers(1, 80))
    @settings(max_examples=60, deadline=None)
    def test_length_and_alphabet(self, values, width):
        s = sparkline(values, width=width)
        assert len(s) == min(width, len(values))
        assert set(s) <= set("▁▂▃▄▅▆▇█")


class TestQuantizeProperties:
    @given(arrays(np.float64, st.integers(1, 100),
                  elements=st.floats(-1e4, 1e4, allow_nan=False, width=64)))
    @settings(max_examples=60, deadline=None)
    def test_float32_roundtrip_relative_error(self, a):
        out = quantize_array(a, "float32")
        np.testing.assert_allclose(out, a, rtol=1e-6, atol=1e-30)

    @given(arrays(np.float64, st.integers(1, 100),
                  elements=st.floats(-100.0, 100.0, allow_nan=False, width=64)))
    @settings(max_examples=40, deadline=None)
    def test_idempotent(self, a):
        once = quantize_array(a, "float16")
        twice = quantize_array(once, "float16")
        np.testing.assert_array_equal(once, twice)


class TestClassifierRidgeEquivalence:
    @given(st.integers(0, 2**31 - 1), st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_sequential_equals_batch(self, seed, n_extra):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30 + n_extra, 3))
        y = (X[:, 0] > 0).astype(np.int64)
        batch = OSELMClassifier(3, 6, 2, seed=1).fit_initial(X, y)
        seq = OSELMClassifier(3, 6, 2, seed=1).fit_initial(X[:30], y[:30])
        for i in range(30, len(X)):
            seq.partial_fit_one(X[i], int(y[i]))
        np.testing.assert_allclose(seq.core.beta, batch.core.beta, atol=1e-6)
