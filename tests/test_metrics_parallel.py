"""Unit tests for the ParallelRunner experiment grid."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_baseline, build_proposed
from repro.metrics import (
    CellSpec,
    ParallelExecutionError,
    ParallelRunner,
    compare_methods,
    make_grid,
    run_cell,
)
from repro.metrics.parallel import METHOD_BUILDERS, STREAM_FACTORIES
from repro.utils.exceptions import ConfigurationError

#: One small, fast grid reused across tests (stream seed pinned so the
#: cell seed only drives the models).
BLOBS_KWARGS = {"seed": 3, "n_test": 400, "drift_at": 150}
METHODS = {
    "Proposed": ("proposed", {"window_size": 30}),
    "Baseline": ("baseline", {}),
}
STREAMS = {"blobs": ("blobs", dict(BLOBS_KWARGS))}


def small_cells(seeds=(1,)):
    return make_grid(METHODS, STREAMS, seeds=list(seeds))


class TestCellSpec:
    def test_hash_ignores_display_name(self):
        a = CellSpec(name="A", method="baseline", stream="blobs", seed=1)
        b = CellSpec(name="B", method="baseline", stream="blobs", seed=1)
        assert a.config_hash() == b.config_hash()

    def test_hash_sensitive_to_config(self):
        base = CellSpec(name="x", method="baseline", stream="blobs", seed=1)
        variants = [
            CellSpec(name="x", method="proposed", stream="blobs", seed=1),
            CellSpec(name="x", method="baseline", stream="blobs", seed=2),
            CellSpec(name="x", method="baseline", stream="blobs", seed=1,
                     method_kwargs={"n_hidden": 8}),
            CellSpec(name="x", method="baseline", stream="blobs", seed=1, n_test=99),
            CellSpec(name="x", method="baseline", stream="blobs", seed=1, chunk_size=1),
        ]
        hashes = {v.config_hash() for v in variants}
        assert base.config_hash() not in hashes
        assert len(hashes) == len(variants)

    def test_make_grid_shape_and_names(self):
        cells = make_grid(METHODS, STREAMS, seeds=[1, 2])
        assert len(cells) == 4
        assert {c.name for c in cells} == {"Proposed", "Baseline"}  # one stream
        two = make_grid(METHODS, {**STREAMS, "b2": ("blobs", {"seed": 9})}, seeds=[1])
        assert "Proposed @ b2" in {c.name for c in two}

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            run_cell(CellSpec(name="x", method="nope", stream="blobs", seed=1))
        with pytest.raises(ConfigurationError):
            run_cell(CellSpec(name="x", method="baseline", stream="nope", seed=1))


class TestEquivalence:
    def test_reproduces_compare_methods_cell_for_cell(self):
        """Acceptance: same seeds → the grid runner returns exactly what a
        serial compare_methods run produces, record for record."""
        train, test = STREAM_FACTORIES["blobs"](**BLOBS_KWARGS)
        builders = {
            "Proposed": lambda: build_proposed(train.X, train.y, window_size=30, seed=1),
            "Baseline": lambda: build_baseline(train.X, train.y, seed=1),
        }
        direct = compare_methods(builders, test)

        runner = ParallelRunner(max_workers=1, keep_records=True)
        for res in runner.run(small_cells(seeds=[1])):
            ref = direct[res.name]
            assert res.accuracy == ref.accuracy
            assert tuple(res.detections) == ref.delay.detections
            assert tuple(res.delays) == ref.delay.delays
            assert res.to_method_result().records == ref.records

    def test_deterministic_across_max_workers(self):
        cells = small_cells(seeds=[1, 2])
        inline = ParallelRunner(max_workers=1, keep_records=True).run(cells)
        pooled = ParallelRunner(max_workers=2, keep_records=True, timeout=300).run(cells)
        for a, b in zip(inline, pooled):
            assert a.accuracy == b.accuracy
            assert a.delays == b.delays
            assert a.records == b.records


class TestCache:
    def test_second_invocation_served_from_cache(self, tmp_path):
        cells = small_cells()
        runner = ParallelRunner(cache_dir=tmp_path, max_workers=1, keep_records=True)
        first = runner.run(cells)
        assert all(not r.from_cache for r in first)
        second = runner.run(cells)
        assert all(r.from_cache for r in second)
        for a, b in zip(first, second):
            assert a.accuracy == b.accuracy
            assert a.records == b.records
            assert a.to_method_result().records == b.to_method_result().records

    def test_changed_config_misses_cache(self, tmp_path):
        runner = ParallelRunner(cache_dir=tmp_path, max_workers=1)
        runner.run(small_cells(seeds=[1]))
        fresh = runner.run(small_cells(seeds=[2]))
        assert all(not r.from_cache for r in fresh)

    def test_records_requested_but_not_cached_recomputes(self, tmp_path):
        cells = small_cells()
        ParallelRunner(cache_dir=tmp_path, max_workers=1, keep_records=False).run(cells)
        upgraded = ParallelRunner(
            cache_dir=tmp_path, max_workers=1, keep_records=True
        ).run(cells)
        assert all(not r.from_cache for r in upgraded)
        assert all(r.records is not None for r in upgraded)

    def test_no_records_means_no_method_result(self):
        (res,) = ParallelRunner(max_workers=1).run(small_cells(seeds=[1]))[:1]
        assert res.records is None
        with pytest.raises(ConfigurationError):
            res.to_method_result()


class TestCacheVersionStamp:
    def test_cache_files_carry_package_version(self, tmp_path):
        import json

        import repro

        ParallelRunner(cache_dir=tmp_path, max_workers=1).run(small_cells())
        payloads = [json.loads(p.read_text()) for p in tmp_path.glob("*.json")]
        assert payloads
        assert all(p["repro_version"] == repro.__version__ for p in payloads)

    def test_version_mismatch_is_cache_miss(self, tmp_path, monkeypatch):
        runner = ParallelRunner(cache_dir=tmp_path, max_workers=1)
        runner.run(small_cells())
        monkeypatch.setattr("repro.__version__", "0.0.0-stale")
        rerun = runner.run(small_cells())
        assert all(not r.from_cache for r in rerun)  # stale stamp ignored
        third = runner.run(small_cells())  # re-stamped on the re-run
        assert all(r.from_cache for r in third)


class TestRetry:
    def test_transient_failure_is_retried(self, monkeypatch):
        calls = {"n": 0}

        def flaky(X, y, *, seed=None, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient worker failure")
            return build_baseline(X, y, seed=seed)

        monkeypatch.setitem(METHOD_BUILDERS, "flaky", flaky)
        cells = [
            CellSpec(name="flaky", method="flaky", stream="blobs", seed=1,
                     stream_kwargs=dict(BLOBS_KWARGS))
        ]
        (res,) = ParallelRunner(max_workers=1, retries=1).run(cells)
        assert res.attempts == 2
        assert calls["n"] == 2

    def test_persistent_failure_raises_after_retries(self, monkeypatch):
        def broken(X, y, *, seed=None, **kwargs):
            raise RuntimeError("always broken")

        monkeypatch.setitem(METHOD_BUILDERS, "broken", broken)
        cells = [
            CellSpec(name="broken", method="broken", stream="blobs", seed=1,
                     stream_kwargs=dict(BLOBS_KWARGS))
        ]
        with pytest.raises(ParallelExecutionError, match="always broken"):
            ParallelRunner(max_workers=1, retries=2).run(cells)

    def test_failures_do_not_poison_other_cells(self, monkeypatch):
        def broken(X, y, *, seed=None, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setitem(METHOD_BUILDERS, "broken", broken)
        good = small_cells(seeds=[1])
        bad = CellSpec(name="broken", method="broken", stream="blobs", seed=1,
                       stream_kwargs=dict(BLOBS_KWARGS))
        with pytest.raises(ParallelExecutionError) as excinfo:
            ParallelRunner(max_workers=1, retries=0).run([*good, bad])
        assert "broken" in str(excinfo.value)
        assert "Proposed" not in str(excinfo.value)  # the good cells ran


class TestRunGrid:
    def test_keys_are_method_stream_seed(self):
        runner = ParallelRunner(max_workers=1)
        out = runner.run_grid(METHODS, STREAMS, seeds=[1, 2])
        assert set(out) == {
            (m, "blobs", s) for m in METHODS for s in (1, 2)
        }
        for (method, _stream, _seed), res in out.items():
            assert res.name == method

    def test_cell_seed_changes_results(self):
        runner = ParallelRunner(max_workers=1)
        out = runner.run_grid(
            {"Baseline": ("baseline", {})},
            # no stream seed pinned: the cell seed drives data + model
            {"blobs": ("blobs", {"n_test": 400, "drift_at": 150})},
            seeds=[1, 2],
        )
        a = out[("Baseline", "blobs", 1)]
        b = out[("Baseline", "blobs", 2)]
        assert a.accuracy != b.accuracy


class TestJsonRoundTrip:
    def test_float_scores_survive_cache_bitwise(self, tmp_path):
        cells = small_cells()
        runner = ParallelRunner(cache_dir=tmp_path, max_workers=1, keep_records=True)
        live = runner.run(cells)
        cached = runner.run(cells)
        for a, b in zip(live, cached):
            sa = np.array(a.records["anomaly_score"])
            sb = np.array(b.records["anomaly_score"])
            np.testing.assert_array_equal(sa, sb)  # exact, not approx


class TestCacheIntegrity:
    """The cache key must cover every result-affecting spec field, and
    store/load must agree on both the path and the spec comparison."""

    def test_distinct_paths_for_each_identity_field(self, tmp_path):
        from repro.engine import ExperimentSpec

        runner = ParallelRunner(cache_dir=tmp_path, max_workers=1)
        base = ExperimentSpec(name="x", pipeline="baseline", dataset="blobs", seed=1)
        variants = [
            base.replace(model_seed=9),
            base.replace(chunk_size=32),
            base.replace(n_test=50),
            base.replace(guard_policy="clip"),
            base.replace(dataset_kwargs={"n_test": 80}),
            base.replace(pipeline_kwargs={"n_hidden": 8}),
        ]
        paths = {runner._cache_path(v) for v in [base, *variants]}
        assert len(paths) == len(variants) + 1

    def test_store_lands_exactly_where_load_looks(self, tmp_path):
        runner = ParallelRunner(cache_dir=tmp_path, max_workers=1)
        (cell,) = small_cells(seeds=[1])[:1]
        runner.run([cell])
        assert runner._cache_path(cell).is_file()
        assert runner._cache_load(cell) is not None

    def test_tuple_valued_kwargs_hit_cache_on_rerun(self, tmp_path):
        # Regression: the stored spec goes through a JSON round trip
        # (tuple -> list), so the loader's equality check used to report
        # a permanent mismatch and silently recompute every run.
        from repro.engine import ExperimentSpec

        spec = ExperimentSpec(
            name="tuple-cell",
            pipeline="tests._resilience_helpers:tuple_kwarg_builder",
            dataset="blobs",
            seed=1,
            pipeline_kwargs={"widths": (8, 4), "window_size": 30},
            dataset_kwargs=dict(BLOBS_KWARGS),
        )
        runner = ParallelRunner(cache_dir=tmp_path, max_workers=1)
        (first,) = runner.run([spec])
        assert not first.from_cache
        (second,) = runner.run([spec])
        assert second.from_cache

    def test_display_name_change_still_hits(self, tmp_path):
        (cell,) = small_cells(seeds=[1])[:1]
        runner = ParallelRunner(cache_dir=tmp_path, max_workers=1)
        runner.run([cell])
        (renamed,) = runner.run([cell.replace(name="Renamed Cell")])
        assert renamed.from_cache
        assert renamed.name == "Renamed Cell"


class TestCellTelemetry:
    """Worker-hub metrics ride back with each cell and merge losslessly."""

    def with_hub(self, fn):
        from repro.telemetry import RingBufferSink, configure, get_telemetry

        configure(enabled=True, sinks=[RingBufferSink()], reset=True)
        try:
            return fn(get_telemetry())
        finally:
            configure(enabled=False, sinks=[], reset=True)

    def test_pooled_workers_metrics_land_in_parent_hub(self):
        def go(tel):
            ParallelRunner(max_workers=2, timeout=300).run(small_cells(seeds=[1]))
            c = tel.registry.get("pipeline.samples")
            assert c is not None
            # Two cells x 400 test samples, every one counted exactly once.
            assert c.total == float(2 * BLOBS_KWARGS["n_test"])
            assert tel.registry.get("parallel.cells_run").total == 2.0

        self.with_hub(go)

    def test_pooled_totals_equal_inline_totals(self):
        def inline(tel):
            ParallelRunner(max_workers=1).run(small_cells(seeds=[1]))
            return tel.registry.get("pipeline.samples").total

        def pooled(tel):
            ParallelRunner(max_workers=2, timeout=300).run(small_cells(seeds=[1]))
            return tel.registry.get("pipeline.samples").total

        assert self.with_hub(inline) == self.with_hub(pooled)

    def test_cached_cells_do_not_replay_worker_metrics(self, tmp_path):
        def go(tel):
            runner = ParallelRunner(cache_dir=tmp_path, max_workers=2, timeout=300)
            runner.run(small_cells(seeds=[1]))
            before = tel.registry.get("pipeline.samples").total
            again = runner.run(small_cells(seeds=[1]))
            assert all(r.from_cache for r in again)
            assert tel.registry.get("pipeline.samples").total == before

        self.with_hub(go)

    def test_disabled_hub_attaches_no_cell_telemetry(self):
        results = ParallelRunner(max_workers=2, timeout=300).run(
            small_cells(seeds=[1])
        )
        assert all(r.telemetry is None for r in results)
