"""Unit tests for the Quant Tree batch drift detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors import (
    QuantTree,
    QuantTreePartition,
    pearson_statistic,
    quanttree_threshold,
)
from repro.utils.exceptions import ConfigurationError, NotFittedError


@pytest.fixture
def reference(rng):
    return rng.normal(size=(640, 4))


class TestPartition:
    def test_equal_probability_bins(self, reference):
        part = QuantTreePartition(16, seed=0).fit(reference)
        np.testing.assert_allclose(part.probabilities, 1.0 / 16, atol=0.01)
        assert part.probabilities.sum() == pytest.approx(1.0)

    def test_assignment_covers_all_bins(self, reference):
        part = QuantTreePartition(8, seed=0).fit(reference)
        bins = part.assign(reference)
        assert set(np.unique(bins)) == set(range(8))

    def test_counts_sum_to_batch(self, reference, rng):
        part = QuantTreePartition(8, seed=0).fit(reference)
        batch = rng.normal(size=(100, 4))
        counts = part.counts(batch)
        assert counts.sum() == 100

    def test_split_count(self, reference):
        part = QuantTreePartition(8, seed=0).fit(reference)
        assert len(part.splits) == 7

    def test_too_few_samples(self):
        with pytest.raises(ConfigurationError):
            QuantTreePartition(8, seed=0).fit(np.ones((4, 2)))

    def test_min_bins(self):
        with pytest.raises(ConfigurationError):
            QuantTreePartition(1)

    def test_dimension_independence_of_size(self, rng):
        """The partition's memory does not grow with dimensionality."""
        lo = QuantTreePartition(8, seed=0).fit(rng.normal(size=(100, 2)))
        hi = QuantTreePartition(8, seed=0).fit(rng.normal(size=(100, 200)))
        assert len(lo.splits) == len(hi.splits)

    def test_reference_count_recorded(self, reference):
        part = QuantTreePartition(8, seed=0).fit(reference)
        assert part.n_reference == len(reference)


class TestPearson:
    def test_zero_when_exact(self):
        probs = np.full(4, 0.25)
        counts = np.full(4, 25.0)
        assert pearson_statistic(counts, probs, 100) == pytest.approx(0.0)

    def test_grows_with_imbalance(self):
        probs = np.full(4, 0.25)
        mild = pearson_statistic(np.array([30, 20, 25, 25.0]), probs, 100)
        harsh = pearson_statistic(np.array([70, 10, 10, 10.0]), probs, 100)
        assert 0 < mild < harsh


class TestThreshold:
    def test_threshold_positive_and_cached(self):
        t1 = quanttree_threshold(200, 8, 50, 0.05, 500)
        t2 = quanttree_threshold(200, 8, 50, 0.05, 500)
        assert t1 == t2 > 0

    def test_smaller_alpha_larger_threshold(self):
        lo = quanttree_threshold(200, 8, 50, 0.10, 800)
        hi = quanttree_threshold(200, 8, 50, 0.01, 800)
        assert hi > lo

    def test_false_positive_rate_respected(self, rng):
        """Stationary batches should rarely exceed the MC threshold."""
        thr = quanttree_threshold(400, 8, 60, 0.05, 1500)
        part = QuantTreePartition(8, seed=1).fit(rng.normal(size=(400, 3)))
        hits = 0
        trials = 200
        for _ in range(trials):
            batch = rng.normal(size=(60, 3))
            stat = pearson_statistic(part.counts(batch), part.probabilities, 60)
            hits += stat >= thr
        assert hits / trials < 0.15  # nominal 0.05 with MC slack


class TestQuantTreeDetector:
    def test_detects_mean_shift(self, reference, rng):
        qt = QuantTree(batch_size=100, n_bins=16, seed=0).fit_reference(reference)
        assert not qt.detect_batch(rng.normal(size=(100, 4)))
        assert qt.detect_batch(rng.normal(size=(100, 4)) + 1.5)

    def test_detects_variance_change(self, reference, rng):
        qt = QuantTree(batch_size=100, n_bins=16, seed=0).fit_reference(reference)
        assert qt.detect_batch(rng.normal(size=(100, 4)) * 3.0)

    def test_streaming_update_one(self, reference, rng):
        qt = QuantTree(batch_size=50, n_bins=8, seed=0).fit_reference(reference)
        fired = [qt.update_one(x) for x in rng.normal(size=(49, 4))]
        assert not any(fired)
        assert qt.buffered_samples == 49
        qt.update_one(rng.normal(size=4))  # completes the batch
        assert qt.buffered_samples == 0

    def test_streaming_detects_shift(self, reference, rng):
        qt = QuantTree(batch_size=50, n_bins=8, seed=0).fit_reference(reference)
        fired = [qt.update_one(x) for x in rng.normal(size=(50, 4)) + 2.0]
        assert fired[-1]

    def test_not_fitted(self, rng):
        qt = QuantTree(batch_size=10)
        with pytest.raises(NotFittedError):
            qt.detect_batch(rng.normal(size=(10, 2)))
        with pytest.raises(NotFittedError):
            qt.update_one(rng.normal(size=2))

    def test_feature_mismatch(self, reference, rng):
        qt = QuantTree(batch_size=10, n_bins=8, seed=0).fit_reference(reference)
        with pytest.raises(Exception):
            qt.detect_batch(rng.normal(size=(10, 5)))

    def test_state_nbytes_dominated_by_buffer(self, reference):
        qt = QuantTree(batch_size=100, n_bins=16, seed=0).fit_reference(reference)
        assert qt.state_nbytes() > 100 * 4 * 8  # at least the buffer

    def test_statistic_recorded(self, reference, rng):
        qt = QuantTree(batch_size=100, n_bins=16, seed=0).fit_reference(reference)
        qt.detect_batch(rng.normal(size=(100, 4)))
        assert qt.last_statistic is not None
        assert qt.n_tests == 1

    def test_refit_clears_stream_state(self, reference, rng):
        qt = QuantTree(batch_size=50, n_bins=8, seed=0).fit_reference(reference)
        qt.update_one(rng.normal(size=4))
        qt.fit_reference(reference)
        assert qt.buffered_samples == 0 and qt.n_tests == 0

    def test_invalid_params(self):
        with pytest.raises(Exception):
            QuantTree(batch_size=0)
        with pytest.raises(Exception):
            QuantTree(batch_size=10, alpha=2.0)
