"""Unit tests for the fixed random hidden layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.oselm import ACTIVATIONS, RandomLayer
from repro.utils.exceptions import ConfigurationError


class TestConstruction:
    def test_shapes(self):
        layer = RandomLayer(5, 3, seed=0)
        assert layer.weights.shape == (5, 3)
        assert layer.biases.shape == (3,)

    def test_weights_in_scale(self):
        layer = RandomLayer(100, 50, weight_scale=0.5, seed=0)
        assert np.abs(layer.weights).max() <= 0.5
        assert np.abs(layer.biases).max() <= 0.5

    def test_immutable(self):
        layer = RandomLayer(3, 2, seed=0)
        with pytest.raises(ValueError):
            layer.weights[0, 0] = 1.0

    def test_seed_reproducible(self):
        a, b = RandomLayer(4, 4, seed=7), RandomLayer(4, 4, seed=7)
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_unknown_activation(self):
        with pytest.raises(ConfigurationError):
            RandomLayer(3, 2, activation="swish")

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            RandomLayer(0, 2)
        with pytest.raises(ConfigurationError):
            RandomLayer(2, 0)


class TestTransform:
    def test_output_shape(self, rng):
        layer = RandomLayer(6, 4, seed=0)
        assert layer.transform(rng.normal(size=(10, 6))).shape == (10, 4)

    def test_transform_one_matches_batch(self, rng):
        layer = RandomLayer(6, 4, seed=0)
        x = rng.normal(size=6)
        np.testing.assert_allclose(
            layer.transform_one(x)[0], layer.transform(x.reshape(1, -1))[0]
        )

    def test_sigmoid_range(self, rng):
        layer = RandomLayer(6, 4, activation="sigmoid", seed=0)
        H = layer.transform(rng.normal(size=(30, 6)) * 10)
        assert (H > 0).all() and (H < 1).all()

    def test_tanh_range(self, rng):
        layer = RandomLayer(6, 4, activation="tanh", seed=0)
        H = layer.transform(rng.normal(size=(30, 6)) * 10)
        assert (H >= -1).all() and (H <= 1).all()  # saturates to ±1 in float

    def test_relu_nonnegative(self, rng):
        layer = RandomLayer(6, 4, activation="relu", seed=0)
        assert (layer.transform(rng.normal(size=(30, 6))) >= 0).all()

    def test_linear_is_affine(self, rng):
        layer = RandomLayer(3, 2, activation="linear", seed=0)
        X = rng.normal(size=(5, 3))
        np.testing.assert_allclose(
            layer.transform(X), X @ layer.weights + layer.biases
        )

    def test_wrong_dim_rejected(self, rng):
        layer = RandomLayer(6, 4, seed=0)
        with pytest.raises(Exception):
            layer.transform(rng.normal(size=(5, 7)))
        with pytest.raises(Exception):
            layer.transform_one(rng.normal(size=7))

    def test_nan_sample_rejected(self):
        layer = RandomLayer(3, 2, seed=0)
        with pytest.raises(Exception):
            layer.transform_one(np.array([1.0, np.nan, 0.0]))

    def test_deterministic_transform(self, rng):
        layer = RandomLayer(6, 4, seed=3)
        X = rng.normal(size=(5, 6))
        np.testing.assert_array_equal(layer.transform(X), layer.transform(X))

    def test_all_activations_registered(self):
        assert set(ACTIVATIONS) == {"sigmoid", "tanh", "relu", "linear"}
