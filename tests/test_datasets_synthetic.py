"""Unit tests for the Figure-1 drift-type generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    GaussianConcept,
    make_gradual_drift_stream,
    make_incremental_drift_stream,
    make_reoccurring_drift_stream,
    make_stationary_stream,
    make_sudden_drift_stream,
)
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def concept_a():
    return GaussianConcept(np.array([[0.0, 0.0], [4.0, 4.0]]), 0.1)


@pytest.fixture
def concept_b():
    return GaussianConcept(np.array([[10.0, 10.0], [14.0, 14.0]]), 0.1)


class TestGaussianConcept:
    def test_shapes(self, concept_a, rng):
        X, y = concept_a.sample(50, rng)
        assert X.shape == (50, 2) and y.shape == (50,)

    def test_class_probs_respected(self, rng):
        c = GaussianConcept(np.zeros((2, 1)), 1.0, class_probs=np.array([1.0, 0.0]))
        _, y = c.sample(100, rng)
        assert (y == 0).all()

    def test_invalid_probs(self):
        with pytest.raises(ConfigurationError):
            GaussianConcept(np.zeros((2, 1)), 1.0, class_probs=np.array([0.7, 0.7]))

    def test_std_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            GaussianConcept(np.zeros((2, 3)), np.ones((2, 2)))

    def test_negative_std(self):
        with pytest.raises(ConfigurationError):
            GaussianConcept(np.zeros((1, 2)), -1.0)

    def test_shifted(self, concept_a):
        moved = concept_a.shifted(1.0)
        np.testing.assert_allclose(moved.means, concept_a.means + 1.0)

    def test_interpolate_endpoints(self, concept_a, concept_b):
        np.testing.assert_allclose(
            concept_a.interpolate(concept_b, 0.0).means, concept_a.means
        )
        np.testing.assert_allclose(
            concept_a.interpolate(concept_b, 1.0).means, concept_b.means
        )

    def test_samples_near_means(self, concept_a, rng):
        X, y = concept_a.sample(500, rng)
        for c in (0, 1):
            np.testing.assert_allclose(
                X[y == c].mean(axis=0), concept_a.means[c], atol=0.05
            )


class TestStationary:
    def test_no_drift_points(self, concept_a):
        s = make_stationary_stream(concept_a, 30, seed=0)
        assert s.drift_points == () and len(s) == 30

    def test_seed_reproducible(self, concept_a):
        a = make_stationary_stream(concept_a, 30, seed=5)
        b = make_stationary_stream(concept_a, 30, seed=5)
        np.testing.assert_array_equal(a.X, b.X)


class TestSudden:
    def test_distribution_switch(self, concept_a, concept_b):
        s = make_sudden_drift_stream(concept_a, concept_b, n_samples=400, drift_at=200, seed=0)
        assert s.drift_points == (200,)
        # Means are far apart, so segment means identify the concepts.
        assert s.X[:200].mean() < 5 < s.X[200:].mean()

    def test_invalid_drift_at(self, concept_a, concept_b):
        with pytest.raises(ConfigurationError):
            make_sudden_drift_stream(concept_a, concept_b, n_samples=10, drift_at=10)

    def test_concept_shape_mismatch(self, concept_a):
        other = GaussianConcept(np.zeros((3, 2)), 0.1)
        with pytest.raises(ConfigurationError):
            make_sudden_drift_stream(concept_a, other, n_samples=10, drift_at=5)


class TestGradual:
    def test_mixing_fraction_rises(self, concept_a, concept_b):
        s = make_gradual_drift_stream(
            concept_a, concept_b, n_samples=1200, drift_start=200, drift_end=1000, seed=0
        )
        new = s.X.mean(axis=1) > 5  # crude concept classifier
        assert new[:200].mean() == 0.0
        early = new[200:500].mean()
        late = new[700:1000].mean()
        assert early < 0.5 < late
        assert new[1000:].mean() == 1.0

    def test_both_concepts_present_in_transition(self, concept_a, concept_b):
        s = make_gradual_drift_stream(
            concept_a, concept_b, n_samples=600, drift_start=100, drift_end=500, seed=1
        )
        mid = s.X[250:350].mean(axis=1) > 5
        assert 0 < mid.mean() < 1

    def test_invalid_bounds(self, concept_a, concept_b):
        with pytest.raises(ConfigurationError):
            make_gradual_drift_stream(
                concept_a, concept_b, n_samples=100, drift_start=50, drift_end=40
            )


class TestIncremental:
    def test_mean_slides_monotonically(self, concept_a, concept_b):
        s = make_incremental_drift_stream(
            concept_a, concept_b, n_samples=900, drift_start=100, drift_end=800, seed=0
        )
        seg_means = [s.X[i : i + 100].mean() for i in range(100, 800, 100)]
        assert all(a < b for a, b in zip(seg_means, seg_means[1:]))

    def test_intermediate_distributions_visited(self, concept_a, concept_b):
        s = make_incremental_drift_stream(
            concept_a, concept_b, n_samples=600, drift_start=100, drift_end=500, seed=0
        )
        mid = s.X[290:310].mean()
        # Halfway through, samples come from a genuinely intermediate concept
        # (not a mixture of the two extremes).
        assert 4 < mid < 10


class TestReoccurring:
    def test_old_concept_returns(self, concept_a, concept_b):
        s = make_reoccurring_drift_stream(
            concept_a, concept_b, n_samples=600, drift_at=200, reoccur_at=300, seed=0
        )
        assert s.drift_points == (200, 300)
        assert s.X[:200].mean() < 5
        assert s.X[200:300].mean() > 5
        assert s.X[300:].mean() < 5

    def test_invalid_ordering(self, concept_a, concept_b):
        with pytest.raises(ConfigurationError):
            make_reoccurring_drift_stream(
                concept_a, concept_b, n_samples=600, drift_at=300, reoccur_at=200
            )
