"""Unit tests for the §4.2 method factories."""

from __future__ import annotations

from repro.core import (
    build_baseline,
    build_model,
    build_onlad,
    build_proposed,
    build_quanttree_pipeline,
    build_spll_pipeline,
)
from repro.core.pipeline import (
    BatchDetectorPipeline,
    NoDetectionPipeline,
    ONLADPipeline,
    ProposedPipeline,
)
from repro.detectors import SPLL, QuantTree


class TestBuildModel:
    def test_geometry(self, train_stream):
        m = build_model(train_stream.X, train_stream.y, n_hidden=4, seed=0)
        assert m.n_features == 6 and m.n_hidden == 4 and m.n_labels == 2
        assert m.is_fitted

    def test_forgetting_passthrough(self, train_stream):
        m = build_model(train_stream.X, train_stream.y, forgetting_factor=0.9, seed=0)
        assert m.forgetting_factor == 0.9


class TestBuildProposed:
    def test_wiring(self, train_stream):
        p = build_proposed(train_stream.X, train_stream.y, n_hidden=4, seed=0)
        assert isinstance(p, ProposedPipeline)
        assert p.reconstructor.model is p.model
        assert p.reconstructor.centroids is p.detector.centroids

    def test_thresholds_calibrated(self, train_stream):
        p = build_proposed(train_stream.X, train_stream.y, n_hidden=4, seed=0)
        assert p.detector.theta_drift > 0
        assert p.detector.theta_error > 0

    def test_z_raises_threshold(self, train_stream):
        lo = build_proposed(train_stream.X, train_stream.y, n_hidden=4, z=0.5, seed=0)
        hi = build_proposed(train_stream.X, train_stream.y, n_hidden=4, z=2.0, seed=0)
        assert hi.detector.theta_drift > lo.detector.theta_drift

    def test_window_size_setting(self, train_stream):
        p = build_proposed(train_stream.X, train_stream.y, window_size=77, n_hidden=4, seed=0)
        assert p.detector.window_size == 77

    def test_max_count_default_and_override(self, train_stream):
        default = build_proposed(train_stream.X, train_stream.y, n_hidden=4, seed=0)
        assert default.detector.centroids.max_count == 500
        exact = build_proposed(
            train_stream.X, train_stream.y, n_hidden=4, max_count=None, seed=0
        )
        assert exact.detector.centroids.max_count is None

    def test_seed_reproducibility(self, train_stream, drift_stream):
        a = build_proposed(train_stream.X, train_stream.y, n_hidden=4, seed=3)
        b = build_proposed(train_stream.X, train_stream.y, n_hidden=4, seed=3)
        ra = a.run(drift_stream.take(300))
        rb = b.run(drift_stream.take(300))
        assert [r.predicted for r in ra] == [r.predicted for r in rb]


class TestOtherFactories:
    def test_baseline_type(self, train_stream):
        assert isinstance(
            build_baseline(train_stream.X, train_stream.y, n_hidden=4, seed=0),
            NoDetectionPipeline,
        )

    def test_onlad_forgetting_default(self, train_stream):
        p = build_onlad(train_stream.X, train_stream.y, n_hidden=4, seed=0)
        assert isinstance(p, ONLADPipeline)
        assert p.model.forgetting_factor == 0.97

    def test_quanttree_pipeline(self, train_stream):
        p = build_quanttree_pipeline(
            train_stream.X, train_stream.y, batch_size=60, n_bins=8, n_hidden=4, seed=0
        )
        assert isinstance(p, BatchDetectorPipeline)
        assert isinstance(p.detector, QuantTree)
        assert p.detector.is_fitted
        assert p.detector.batch_size == 60
        assert p.name == "quanttree"

    def test_spll_pipeline(self, train_stream):
        p = build_spll_pipeline(
            train_stream.X, train_stream.y, batch_size=60, n_hidden=4, seed=0
        )
        assert isinstance(p.detector, SPLL)
        assert p.detector.is_fitted
        assert p.name == "spll"
