"""Unit tests for the multi-instance discriminative model (paper §3.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.oselm import MultiInstanceModel
from repro.utils.exceptions import ConfigurationError, NotFittedError


class TestTraining:
    def test_fit_initial_per_label(self, train_stream):
        m = MultiInstanceModel(6, 4, 2, seed=0).fit_initial(train_stream.X, train_stream.y)
        assert m.is_fitted
        for inst in m.instances:
            assert inst.is_fitted

    def test_missing_label_rejected(self, rng):
        X = rng.random((20, 6))
        y = np.zeros(20, dtype=int)  # label 1 absent
        with pytest.raises(ConfigurationError):
            MultiInstanceModel(6, 4, 2, seed=0).fit_initial(X, y)

    def test_length_mismatch(self, rng):
        with pytest.raises(ConfigurationError):
            MultiInstanceModel(6, 4, 2, seed=0).fit_initial(
                rng.random((10, 6)), np.zeros(9, dtype=int)
            )

    def test_label_out_of_range(self, rng):
        X = rng.random((10, 6))
        y = np.array([0, 1, 2, 0, 1, 0, 1, 0, 1, 0])
        with pytest.raises(Exception):
            MultiInstanceModel(6, 4, 2, seed=0).fit_initial(X, y)

    def test_instances_have_independent_layers(self):
        m = MultiInstanceModel(6, 4, 3, seed=0)
        w = [inst.core.layer.weights for inst in m.instances]
        assert not np.allclose(w[0], w[1])
        assert not np.allclose(w[1], w[2])

    def test_seed_reproducibility(self):
        a = MultiInstanceModel(6, 4, 2, seed=5)
        b = MultiInstanceModel(6, 4, 2, seed=5)
        np.testing.assert_array_equal(
            a.instances[1].core.layer.weights, b.instances[1].core.layer.weights
        )


class TestPrediction:
    def test_classifies_separable_blobs(self, trained_model, train_stream):
        pred = trained_model.predict(train_stream.X)
        assert (pred == train_stream.y).mean() > 0.95

    def test_predict_one_matches_batch(self, trained_model, train_stream):
        x = train_stream.X[5]
        assert trained_model.predict_one(x) == trained_model.predict(x.reshape(1, -1))[0]

    def test_predict_with_score_is_argmin(self, trained_model, train_stream):
        x = train_stream.X[0]
        label, score = trained_model.predict_with_score(x)
        scores = trained_model.scores_one(x)
        assert label == scores.argmin()
        assert score == pytest.approx(scores.min())

    def test_scores_shape(self, trained_model, train_stream):
        S = trained_model.scores(train_stream.X[:7])
        assert S.shape == (7, 2)
        assert (S >= 0).all()

    def test_not_fitted(self):
        m = MultiInstanceModel(6, 4, 2, seed=0)
        with pytest.raises(NotFittedError):
            m.predict_one(np.zeros(6))


class TestSequentialTraining:
    def test_self_labelled_trains_closest(self, trained_model, train_stream):
        x = train_stream.X[0]
        expected = trained_model.predict_one(x)
        before = [inst.n_samples_seen for inst in trained_model.instances]
        trained = trained_model.partial_fit_one(x)
        assert trained == expected
        after = [inst.n_samples_seen for inst in trained_model.instances]
        assert after[trained] == before[trained] + 1
        other = 1 - trained
        assert after[other] == before[other]

    def test_explicit_label_trains_that_instance(self, trained_model, train_stream):
        x = train_stream.X[0]
        before = trained_model.instances[1].n_samples_seen
        assert trained_model.partial_fit_one(x, label=1) == 1
        assert trained_model.instances[1].n_samples_seen == before + 1

    def test_invalid_label(self, trained_model, train_stream):
        with pytest.raises(ConfigurationError):
            trained_model.partial_fit_one(train_stream.X[0], label=5)

    def test_adapts_to_shifted_concept(self, trained_model, drift_stream):
        """Sequentially training on shifted samples lowers their scores."""
        post = drift_stream.X[400:700]
        before = trained_model.scores(post).min(axis=1).mean()
        for x in post[:200]:
            trained_model.partial_fit_one(x)
        after = trained_model.scores(drift_stream.X[700:900]).min(axis=1).mean()
        assert after < before

    def test_state_nbytes_sums_instances(self, trained_model):
        total = sum(inst.state_nbytes() for inst in trained_model.instances)
        assert trained_model.state_nbytes() == total > 0


class TestONLADConfiguration:
    def test_forgetting_propagates(self):
        m = MultiInstanceModel(6, 4, 2, forgetting_factor=0.97, seed=0)
        for inst in m.instances:
            assert inst.forgetting_factor == 0.97

    def test_invalid_n_labels(self):
        with pytest.raises(ConfigurationError):
            MultiInstanceModel(6, 4, 0, seed=0)


class TestBatchScoring:
    """The vectorized fast path must be *bit-identical* to per-sample
    scoring — the chunked pipeline equivalence rests on this."""

    def test_scores_rowwise_bitwise_equal(self, trained_model, drift_stream):
        X = drift_stream.X[:64]
        S = trained_model.scores_rowwise(X)
        assert S.shape == (64, 2)
        for i in range(len(X)):
            np.testing.assert_array_equal(S[i], trained_model.scores_one(X[i]))

    def test_predict_with_score_batch_matches_per_sample(
        self, trained_model, drift_stream
    ):
        X = drift_stream.X[:200]
        labels, scores = trained_model.predict_with_score_batch(X)
        for i in range(len(X)):
            c, err = trained_model.predict_with_score(X[i])
            assert int(labels[i]) == c
            assert float(scores[i]) == err  # exact, not approx

    def test_batch_is_argmin_of_rowwise_scores(self, trained_model, drift_stream):
        X = drift_stream.X[:50]
        labels, scores = trained_model.predict_with_score_batch(X)
        S = trained_model.scores_rowwise(X)
        np.testing.assert_array_equal(labels, S.argmin(axis=1))
        np.testing.assert_array_equal(scores, S.min(axis=1))

    def test_not_fitted(self):
        m = MultiInstanceModel(6, 4, 2, seed=0)
        with pytest.raises(NotFittedError):
            m.predict_with_score_batch(np.zeros((3, 6)))
