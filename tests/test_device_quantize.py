"""Unit tests for the precision-reduction (quantisation) simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_proposed
from repro.device.quantize import (
    quantize_array,
    quantize_model,
    quantize_pipeline,
    state_bytes_at,
)
from repro.utils.exceptions import ConfigurationError


class TestQuantizeArray:
    def test_float64_is_identity(self, rng):
        a = rng.normal(size=100)
        np.testing.assert_array_equal(quantize_array(a, "float64"), a)

    def test_float32_rounds(self, rng):
        a = rng.normal(size=100)
        out = quantize_array(a, "float32")
        assert out.dtype == np.float64
        np.testing.assert_allclose(out, a, rtol=1e-6)
        assert not np.array_equal(out, a)  # some precision was lost

    def test_float16_rounds_more(self, rng):
        a = rng.normal(size=1000)
        err32 = np.abs(quantize_array(a, "float32") - a).max()
        err16 = np.abs(quantize_array(a, "float16") - a).max()
        assert err16 > err32

    def test_float16_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            quantize_array(np.array([1e6]), "float16")

    def test_unknown_dtype(self):
        with pytest.raises(ConfigurationError):
            quantize_array(np.ones(3), "bfloat16")


class TestQuantizeModel:
    @pytest.fixture
    def pipeline(self, train_stream):
        return build_proposed(
            train_stream.X, train_stream.y, window_size=20, n_hidden=4,
            reconstruction_samples=60, seed=0,
        )

    def test_original_untouched(self, pipeline):
        before = pipeline.model.instances[0].core.beta.copy()
        quantize_model(pipeline.model, "float16")
        np.testing.assert_array_equal(pipeline.model.instances[0].core.beta, before)

    def test_float32_predictions_nearly_identical(self, pipeline, drift_stream):
        q = quantize_model(pipeline.model, "float32")
        orig = pipeline.model.predict(drift_stream.X[:300])
        quant = q.predict(drift_stream.X[:300])
        assert (orig == quant).mean() > 0.99

    def test_float16_still_functional(self, pipeline, train_stream):
        q = quantize_model(pipeline.model, "float16")
        acc = (q.predict(train_stream.X) == train_stream.y).mean()
        assert acc > 0.9

    def test_quantized_model_can_keep_training(self, pipeline, drift_stream):
        q = quantize_model(pipeline.model, "float32")
        q.partial_fit_one(drift_stream.X[0])
        assert np.isfinite(q.instances[0].core.P).all()


class TestQuantizePipeline:
    @pytest.fixture
    def pipeline(self, train_stream):
        return build_proposed(
            train_stream.X, train_stream.y, window_size=20, n_hidden=4,
            reconstruction_samples=60, seed=0,
        )

    def test_float32_detection_behaviour_preserved(self, pipeline, drift_stream):
        q = quantize_pipeline(pipeline, "float32")
        a = [r.drift_detected for r in pipeline.run(drift_stream)]
        b = [r.drift_detected for r in q.run(drift_stream)]
        # Same detections (thresholds and scores barely move at f32).
        assert a == b

    def test_thresholds_quantized(self, pipeline):
        q = quantize_pipeline(pipeline, "float16")
        assert q.detector.theta_drift == np.float64(
            np.float16(pipeline.detector.theta_drift)
        )

    def test_centroids_quantized_and_locked(self, pipeline):
        q = quantize_pipeline(pipeline, "float32")
        with pytest.raises(ValueError):
            q.detector.centroids.trained[0, 0] = 1.0

    def test_float16_pipeline_still_detects(self, pipeline, drift_stream):
        q = quantize_pipeline(pipeline, "float16")
        records = q.run(drift_stream)
        det = [r.index for r in records if r.drift_detected]
        assert det and det[0] >= 400


class TestStateBytes:
    def test_sizes(self):
        assert state_bytes_at(1000, "float64") == 8000
        assert state_bytes_at(1000, "float32") == 4000
        assert state_bytes_at(1000, "float16") == 2000

    def test_pico_table4_at_float32(self):
        """At float32 the proposed method's footprint halves again —
        the deployment headroom story."""
        from repro.device import proposed_memory

        f64 = proposed_memory(2, 511).total_bytes
        n_values = f64 // 8
        assert state_bytes_at(n_values, "float32") == f64 // 2

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            state_bytes_at(-1, "float32")
