"""Shared fixtures: small, fast streams and pre-trained models.

Everything here is deliberately miniature (tens of dimensions, hundreds of
samples) so the full unit suite runs in seconds; the integration tests
scale up selectively.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.datasets import DataStream, GaussianConcept
from repro.oselm import MultiInstanceModel

# Property-based tests must be as reproducible as the pipelines they
# check: derandomize pins every hypothesis run to the same example
# sequence, so a CI failure replays locally without fishing for the
# seed banner. Bump examples locally with HYPOTHESIS_PROFILE=dev.
settings.register_profile("repro", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None, max_examples=200)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run the reduced chaos-soak matrix (the CI smoke leg)",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def two_blob_concept() -> GaussianConcept:
    """Two well-separated Gaussian classes in 6 dimensions."""
    means = np.array(
        [
            [0.2, 0.2, 0.8, 0.8, 0.5, 0.1],
            [0.8, 0.8, 0.2, 0.2, 0.5, 0.9],
        ]
    )
    return GaussianConcept(means, 0.05)


@pytest.fixture
def shifted_concept(two_blob_concept: GaussianConcept) -> GaussianConcept:
    """A confusing covariate drift: class 0 moves 45 % of the way toward
    class 1 (degrading a frozen model) while each new mean stays closer to
    its own old mean (so unsupervised reconstruction keeps identities)."""
    means = two_blob_concept.means.copy()
    gap = means[1] - means[0]
    means[0] = means[0] + 0.45 * gap
    means[1] = means[1] + np.array([0.1, -0.1, 0.1, -0.1, 0.2, 0.0])
    return GaussianConcept(means, 0.08)


@pytest.fixture
def train_stream(two_blob_concept: GaussianConcept) -> DataStream:
    from repro.datasets import make_stationary_stream

    return make_stationary_stream(two_blob_concept, 240, seed=1, name="train")


@pytest.fixture
def drift_stream(
    two_blob_concept: GaussianConcept, shifted_concept: GaussianConcept
) -> DataStream:
    from repro.datasets import make_sudden_drift_stream

    return make_sudden_drift_stream(
        two_blob_concept, shifted_concept, n_samples=1200, drift_at=400, seed=2
    )


@pytest.fixture
def trained_model(train_stream: DataStream) -> MultiInstanceModel:
    model = MultiInstanceModel(6, 4, 2, seed=7)
    return model.fit_initial(train_stream.X, train_stream.y)
