"""Differential golden suite: batched fleet == sequential fleet, in bytes.

The batched scoring path (``FleetManager(batch_scoring=True)`` +
``submit_many``) promises records **byte-identical** to the sequential
path for every pipeline family — whether a session actually batches,
falls back, or flips between the two mid-stream. This suite runs the
same small fleet twice, sequentially and batched, across all five
pipeline families × both paper datasets × guard on/off, with capacity
below the device count so every case also crosses an LRU evict/restore
mid-soak (an eviction pickles the pipeline while primed rows may have
just been consumed; a restore rebuilds it unprimed).

The per-sample floats are compared via ``tobytes`` — "close" is not a
pass. ``tests/test_fleet_batching.py`` covers the planner/kernel units;
the big churn soak (1000 devices) runs in ``benchmarks/bench_fleet.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ExperimentSpec, build_experiment
from repro.fleet import FleetManager

#: every registered pipeline family, with small fast kwargs
PIPELINES = {
    "proposed": {"window_size": 60},
    "baseline": {},
    "onlad": {"forgetting_factor": 0.95},
    "quanttree": {"batch_size": 100, "n_bins": 8},
    "spll": {"batch_size": 100},
}

#: the paper's two evaluation datasets, shrunk to unit-test size
DATASETS = {
    "nslkdd": {"n_train": 120, "n_test": 160, "drift_at": 100},
    "coolingfan": {"n_train": 120, "n_test": 160, "drift_at": 100},
}

N_TEST = 160
FEED = 40  # four interleaved arrival rounds per device
N_DEVICES = 3
CAPACITY = 2  # < N_DEVICES: every round crosses an evict + restore


def _specs(pipeline: str, dataset: str, guard: bool) -> dict:
    return {
        f"dev{i}": ExperimentSpec(
            name=f"{pipeline}-{dataset}-{i}",
            pipeline=pipeline,
            dataset=dataset,
            seed=40 + i,
            model_seed=5,  # one firmware image: shared random layer
            pipeline_kwargs=PIPELINES[pipeline],
            dataset_kwargs=dict(DATASETS[dataset]),
            guard_policy="impute_last_good" if guard else None,
        )
        for i in range(N_DEVICES)
    }


def _run_fleet(specs: dict, spool, *, batch_scoring: bool):
    streams = {dev: build_experiment(spec).test for dev, spec in specs.items()}
    with FleetManager(
        capacity=CAPACITY, spool_dir=spool, batch_scoring=batch_scoring
    ) as fm:
        for dev, spec in specs.items():
            fm.add_device(dev, spec)
        for start in range(0, N_TEST, FEED):
            fm.submit_many(
                [
                    (
                        dev,
                        streams[dev].X[start : start + FEED],
                        streams[dev].y[start : start + FEED],
                    )
                    for dev in specs
                ]
            )
        records = fm.finish_all()
        return records, fm.stats


def _assert_identical(a: list, b: list) -> None:
    assert len(a) == len(b)
    assert a == b
    scores_a = np.array([r.anomaly_score for r in a], dtype=np.float64)
    scores_b = np.array([r.anomaly_score for r in b], dtype=np.float64)
    assert scores_a.tobytes() == scores_b.tobytes()


@pytest.mark.parametrize("dataset", sorted(DATASETS))
@pytest.mark.parametrize("pipeline", sorted(PIPELINES))
@pytest.mark.parametrize("guard", [False, True], ids=["noguard", "guard"])
def test_batched_soak_matches_sequential(pipeline, dataset, guard, tmp_path):
    specs = _specs(pipeline, dataset, guard)
    sequential, _ = _run_fleet(specs, tmp_path / "seq", batch_scoring=False)
    batched, stats = _run_fleet(specs, tmp_path / "bat", batch_scoring=True)
    for dev in specs:
        _assert_identical(sequential[dev], batched[dev])
    # The churn axis really exercised the LRU mid-soak.
    assert stats.evictions > 0 and stats.restores > 0
    if guard or pipeline == "onlad":
        # Guarded sessions and per-sample trainers must stay sequential.
        assert stats.batched_samples == 0
        assert stats.fallback_samples == N_DEVICES * N_TEST
    else:
        # Everyone else shares stacked GEMMs for the bulk of the stream.
        assert stats.batched_samples > 0
