"""The perf-trajectory gate: history parsing, gating rules, CLI contract."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def _load(name: str, path: Path):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


gate = _load("check_bench_regression", REPO / "tools" / "check_bench_regression.py")
history = _load("bench_history", REPO / "benchmarks" / "bench_history.py")


def entry(value: float, *, bench="fleet", mode="smoke", host="ci") -> dict:
    return {
        "bench": bench,
        "mode": mode,
        "host": host,
        "git_sha": "0000000",
        "ts": 0.0,
        "metrics": {"samples_per_sec": value},
    }


def write_history(path: Path, entries: list) -> Path:
    path.write_text("".join(json.dumps(e) + "\n" for e in entries))
    return path


FLAT = [1000.0, 1020.0, 990.0, 1010.0, 1005.0]


class TestCheckGroup:
    def kwargs(self, **over):
        base = dict(
            metric="samples_per_sec",
            threshold=0.20,
            window=10,
            min_history=3,
            same_host=True,
        )
        base.update(over)
        return base

    def test_flat_trajectory_passes(self):
        ok, _ = gate.check_group([entry(v) for v in FLAT], **self.kwargs())
        assert ok

    def test_25pct_drop_fails(self):
        entries = [entry(v) for v in FLAT[:-1]] + [entry(750.0)]
        ok, message = gate.check_group(entries, **self.kwargs())
        assert not ok and "REGRESSION" in message

    def test_drop_just_inside_threshold_passes(self):
        entries = [entry(1000.0)] * 4 + [entry(810.0)]  # -19%
        ok, _ = gate.check_group(entries, **self.kwargs())
        assert ok

    def test_improvement_passes(self):
        entries = [entry(v) for v in FLAT[:-1]] + [entry(5000.0)]
        ok, _ = gate.check_group(entries, **self.kwargs())
        assert ok

    def test_short_history_passes_with_note(self):
        ok, message = gate.check_group([entry(1000.0)], **self.kwargs())
        assert ok and "too short" in message

    def test_window_limits_the_baseline(self):
        # Ancient fast runs outside the window must not dominate.
        entries = [entry(10_000.0)] * 5 + [entry(1000.0)] * 5 + [entry(900.0)]
        ok, _ = gate.check_group(entries, **self.kwargs(window=5))
        assert ok

    def test_other_hosts_excluded_by_default(self):
        entries = [entry(10_000.0, host="beefy")] * 4 + [entry(1000.0)] * 3 + [
            entry(950.0)
        ]
        ok, _ = gate.check_group(entries, **self.kwargs())
        assert ok
        ok, _ = gate.check_group(entries, **self.kwargs(same_host=False))
        assert not ok

    def test_missing_metric_skipped(self):
        entries = [entry(v) for v in FLAT]
        entries[-1] = {**entries[-1], "metrics": {"something_else": 1.0}}
        ok, message = gate.check_group(entries, **self.kwargs())
        assert ok and "skipped" in message

    def test_nonfinite_latest_fails(self):
        entries = [entry(v) for v in FLAT[:-1]] + [entry(float("nan"))]
        ok, _ = gate.check_group(entries, **self.kwargs())
        assert not ok


class TestMainCli:
    def test_smoke_self_test_passes(self, capsys):
        assert gate.main(["--smoke"]) == 0

    def test_missing_history_passes(self, tmp_path):
        assert gate.main(["--history", str(tmp_path / "none.jsonl")]) == 0

    def test_real_drop_fails_end_to_end(self, tmp_path):
        path = write_history(
            tmp_path / "h.jsonl",
            [entry(v) for v in FLAT] + [entry(700.0)],
        )
        assert gate.main(["--history", str(path)]) == 1

    def test_flat_file_passes_end_to_end(self, tmp_path):
        path = write_history(tmp_path / "h.jsonl", [entry(v) for v in FLAT])
        assert gate.main(["--history", str(path)]) == 0

    def test_groups_gate_independently(self, tmp_path):
        entries = [entry(v) for v in FLAT] + [
            entry(v, bench="telemetry_overhead") for v in FLAT[:-1]
        ] + [entry(700.0, bench="telemetry_overhead")]
        path = write_history(tmp_path / "h.jsonl", entries)
        assert gate.main(["--history", str(path)]) == 1
        assert gate.main(["--history", str(path), "--bench", "fleet"]) == 0

    def test_torn_line_skipped(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(
            "".join(json.dumps(entry(v)) + "\n" for v in FLAT) + '{"bench": "fl'
        )
        assert gate.main(["--history", str(path)]) == 0

    def test_host_change_passes_unless_any_host(self, tmp_path):
        # A new CI runner must not fail against the old runner's medians —
        # unless --any-host explicitly asks for cross-host comparison.
        entries = [entry(v, host="old-runner") for v in FLAT] + [
            entry(700.0, host="new-runner")
        ]
        path = write_history(tmp_path / "h.jsonl", entries)
        assert gate.main(["--history", str(path)]) == 0
        assert gate.main(["--history", str(path), "--any-host"]) == 1

    def test_batched_mode_gates_independently(self, tmp_path):
        # bench_fleet --batch-scoring appends under mode "smoke-batched";
        # a drop there must fail even while plain "smoke" stays flat, and
        # vice versa — the (bench, mode) grouping keeps them separate.
        batched_drop = (
            [entry(v) for v in FLAT]
            + [entry(v * 3, mode="smoke-batched") for v in FLAT[:-1]]
            + [entry(2000.0, mode="smoke-batched")]  # -33% vs ~3000 median
        )
        path = write_history(tmp_path / "h.jsonl", batched_drop)
        assert gate.main(["--history", str(path)]) == 1
        flat_both = [entry(v) for v in FLAT] + [
            entry(v * 3, mode="smoke-batched") for v in FLAT
        ]
        path = write_history(tmp_path / "h2.jsonl", flat_both)
        assert gate.main(["--history", str(path)]) == 0


class TestAppendHistory:
    def test_appends_schema_complete_records(self, tmp_path):
        path = tmp_path / "h.jsonl"
        rec = history.append_history(path, "fleet", "smoke", {"samples_per_sec": 10})
        history.append_history(path, "fleet", "smoke", {"samples_per_sec": 11.5})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert rec == json.loads(lines[0])
        parsed = json.loads(lines[1])
        assert set(parsed) == {"bench", "mode", "git_sha", "host", "ts", "metrics"}
        assert parsed["metrics"]["samples_per_sec"] == 11.5

    def test_gate_reads_what_benches_write(self, tmp_path):
        path = tmp_path / "h.jsonl"
        for v in (1000.0, 1010.0, 990.0, 1005.0):
            history.append_history(path, "fleet", "smoke", {"samples_per_sec": v})
        assert gate.main(["--history", str(path)]) == 0
        history.append_history(path, "fleet", "smoke", {"samples_per_sec": 600.0})
        assert gate.main(["--history", str(path)]) == 1

    def test_nonnumeric_metric_rejected(self, tmp_path):
        with pytest.raises((TypeError, ValueError)):
            history.append_history(
                tmp_path / "h.jsonl", "fleet", "smoke", {"samples_per_sec": "fast"}
            )
