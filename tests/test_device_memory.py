"""Unit tests for the Table-4 memory models."""

from __future__ import annotations

import pytest

from repro.device import (
    RASPBERRY_PI_4,
    RASPBERRY_PI_PICO,
    discriminative_model_memory,
    fits_on,
    proposed_memory,
    quanttree_memory,
    spll_memory,
)
from repro.utils.exceptions import ConfigurationError

# The paper's fan configuration: D=511, batch 235, K=16 bins, C=2.
FAN = dict(batch_size=235, n_features=511)


class TestAnalyticModels:
    def test_spll_holds_two_windows(self):
        rep = spll_memory(235, 511, 3)
        assert rep.components["reference_window"] == 235 * 511 * 8
        assert rep.components["batch_buffer"] == 235 * 511 * 8
        # Paper Table 4: SPLL = 1933 kB ≈ two 961 kB windows.
        assert rep.total_kb == pytest.approx(1933, rel=0.05)

    def test_quanttree_buffer_dominates(self):
        rep = quanttree_memory(235, 511, 16)
        assert rep.components["batch_buffer"] == 235 * 511 * 8
        assert rep.components["batch_buffer"] > 100 * (
            rep.components["splits"] + rep.components["bin_probabilities"]
        )

    def test_quanttree_histogram_size_independent_of_dims(self):
        lo = quanttree_memory(10, 2, 16)
        hi = quanttree_memory(10, 2000, 16)
        assert lo.components["splits"] == hi.components["splits"]

    def test_proposed_tiny(self):
        rep = proposed_memory(2, 511)
        assert rep.components["trained_centroids"] == 2 * 511 * 8
        assert rep.total_kb < 20

    def test_paper_ordering(self):
        proposed = proposed_memory(2, 511).total_bytes
        qt = quanttree_memory(235, 511, 16).total_bytes
        spll = spll_memory(235, 511, 3).total_bytes
        assert proposed < qt < spll
        # Paper: proposed saves >=88.9% vs QuantTree, >=96.4% vs SPLL.
        assert 1 - proposed / qt > 0.889
        assert 1 - proposed / spll > 0.964

    def test_spll_full_covariance_larger(self):
        diag = spll_memory(235, 511, 3, covariance="diag").total_bytes
        full = spll_memory(235, 511, 3, covariance="full").total_bytes
        assert full > diag

    def test_spll_invalid_covariance(self):
        with pytest.raises(ConfigurationError):
            spll_memory(10, 5, 2, covariance="banded")

    def test_model_memory_per_instance(self):
        rep = discriminative_model_memory(2, 511, 22)
        per = 511 * 22 * 8 + 22 * 8 + 22 * 511 * 8 + 22 * 22 * 8
        assert rep.total_bytes == 2 * per

    def test_alpha_in_flash_excluded_from_ram(self):
        ram = discriminative_model_memory(2, 511, 22, alpha_in_flash=True)
        full = discriminative_model_memory(2, 511, 22)
        assert ram.total_bytes == full.total_bytes - 2 * (511 * 22 * 8 + 22 * 8)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            quanttree_memory(0, 5, 4)
        with pytest.raises(ConfigurationError):
            proposed_memory(2, 0)


class TestPicoFeasibility:
    """Paper §5.3: 'the batch-based Quant Tree and SPLL methods cannot
    operate on Raspberry Pi Pico' (264 kB) while the proposed method can."""

    def test_batch_methods_do_not_fit_pico(self):
        assert not fits_on(quanttree_memory(**FAN, n_bins=16), RASPBERRY_PI_PICO)
        assert not fits_on(spll_memory(**FAN, n_clusters=3), RASPBERRY_PI_PICO)

    def test_proposed_fits_pico_with_model(self):
        # The constant random weights execute from flash on the Pico;
        # only mutable state (beta, P, centroids) occupies the 264 kB RAM.
        det = proposed_memory(2, 511)
        model = discriminative_model_memory(2, 511, 22, alpha_in_flash=True)
        assert fits_on(det, RASPBERRY_PI_PICO, model=model)

    def test_everything_fits_pi4(self):
        for rep in (
            quanttree_memory(**FAN, n_bins=16),
            spll_memory(**FAN, n_clusters=3),
            proposed_memory(2, 511),
        ):
            assert fits_on(rep, RASPBERRY_PI_4)


class TestLiveAgreement:
    """The analytic model must agree with the implementations' own
    state_nbytes() on the dominant terms."""

    def test_quanttree_live_vs_analytic(self, rng):
        from repro.detectors import QuantTree

        qt = QuantTree(batch_size=50, n_bins=8, seed=0).fit_reference(
            rng.normal(size=(200, 12))
        )
        analytic = quanttree_memory(50, 12, 8).total_bytes
        assert qt.state_nbytes() == pytest.approx(analytic, rel=0.1)

    def test_proposed_live_vs_analytic(self, rng):
        from repro.core import CentroidSet

        cents = CentroidSet.from_labelled_data(
            rng.normal(size=(40, 12)), rng.integers(0, 2, 40), 2
        )
        analytic = proposed_memory(2, 12).total_bytes
        assert cents.state_nbytes() == pytest.approx(analytic, rel=0.15)
