"""Cross-process aggregation: snapshots, deltas, merge, and thread safety."""

from __future__ import annotations

import json
import pickle
import threading

import pytest

from repro.telemetry import (
    MetricsRegistry,
    RingBufferSink,
    Telemetry,
    TelemetrySnapshot,
    lint_prometheus,
)
from repro.utils.exceptions import ConfigurationError


def make_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("hits", "requests", labels=("kind",)).inc(2, kind="a")
    reg.counter("hits", labels=("kind",)).inc(3, kind="b")
    reg.gauge("resident", "sessions").set(7)
    h = reg.histogram("lat", "latency", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(2.0)
    return reg


class TestSnapshot:
    def test_round_trips_json_and_pickle(self):
        snap = make_registry().snapshot()
        again = TelemetrySnapshot.from_json(json.loads(json.dumps(snap.to_json())))
        assert again.metrics == snap.metrics
        assert pickle.loads(pickle.dumps(snap)).metrics == snap.metrics

    def test_empty_registry_snapshot_is_empty(self):
        assert MetricsRegistry().snapshot().is_empty()
        assert not make_registry().snapshot().is_empty()

    def test_diff_counters_ship_only_growth(self):
        reg = make_registry()
        base = reg.snapshot()
        reg.counter("hits", labels=("kind",)).inc(5, kind="a")
        delta = reg.snapshot().diff(base)
        series = {
            s["labels"]["kind"]: s["value"] for s in delta.metrics["hits"]["series"]
        }
        assert series == {"a": 5.0}  # unchanged "b" series dropped

    def test_diff_drops_untouched_metrics(self):
        reg = make_registry()
        base = reg.snapshot()
        reg.counter("hits", labels=("kind",)).inc(kind="a")
        delta = reg.snapshot().diff(base)
        assert set(delta.metrics) == {"hits"}

    def test_diff_histogram_is_bucketwise(self):
        reg = make_registry()
        base = reg.snapshot()
        reg.get("lat").observe(0.5)
        delta = reg.snapshot().diff(base)
        (series,) = delta.metrics["lat"]["series"]
        assert series["counts"] == [0, 1, 0]
        assert series["count"] == 1

    def test_counter_reset_ships_whole_value(self):
        # A worker that restarted reports less than the baseline; the
        # delta must ship the full new value, not a negative.
        reg = MetricsRegistry()
        reg.counter("hits").inc(10)
        base = reg.snapshot()
        reg.get("hits").clear()
        reg.counter("hits").inc(2)
        delta = reg.snapshot().diff(base)
        assert delta.metrics["hits"]["series"][0]["value"] == 2.0


class TestMerge:
    def test_counters_sum_and_gauges_take_last_write(self):
        a, b = make_registry(), make_registry()
        b.gauge("resident").set(3)
        a.merge(b.snapshot())
        assert a.counter("hits", labels=("kind",)).value(kind="a") == 4.0
        assert a.gauge("resident").value() == 3.0

    def test_histograms_add_bucketwise(self):
        a, b = make_registry(), make_registry()
        a.merge(b.snapshot())
        assert a.get("lat").count() == 4
        assert a.get("lat").bucket_counts() == [2, 0, 2]

    def test_merge_into_empty_registry_recreates_metrics(self):
        a = MetricsRegistry()
        a.merge(make_registry().snapshot())
        assert set(a.names()) == {"hits", "resident", "lat"}
        assert a.counter("hits", labels=("kind",)).total == 5.0

    def test_extra_labels_graft_shard_dimension(self):
        parent = MetricsRegistry()
        parent.counter("hits", labels=("kind",)).inc(kind="a")
        for shard in ("0", "1"):
            worker = MetricsRegistry()
            worker.counter("hits", "requests", labels=("kind",)).inc(2, kind="a")
            parent.merge(worker.snapshot(), extra_labels={"shard": shard})
        hits = parent.get("hits")
        assert hits.label_names == ("kind", "shard")
        assert hits.total == 5.0
        assert hits.value(kind="a", shard="0") == 2.0
        # The pre-merge local series lives on under the empty shard label.
        assert hits.value(kind="a", shard="") == 1.0
        # Local writers keep their original signature after the graft.
        parent.counter("hits", labels=("kind",)).inc(kind="a")
        assert hits.value(kind="a", shard="") == 2.0

    def test_merged_output_still_lints(self):
        parent = make_registry()
        parent.merge(make_registry().snapshot(), extra_labels={"shard": "3"})
        assert lint_prometheus(parent.to_prometheus()) == []

    def test_kind_mismatch_rejected(self):
        a = MetricsRegistry()
        a.counter("x").inc()
        b = MetricsRegistry()
        b.gauge("x").set(1)
        with pytest.raises(ConfigurationError):
            a.merge(b.snapshot())

    def test_histogram_bucket_mismatch_rejected(self):
        a = MetricsRegistry()
        a.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("lat", buckets=(0.2, 2.0)).observe(0.5)
        with pytest.raises(ConfigurationError):
            a.merge(b.snapshot())


class TestHubDelta:
    def test_snapshot_delta_is_incremental(self):
        tel = Telemetry(enabled=True, sinks=[RingBufferSink()])
        tel.counter("c").inc(4)
        first = tel.snapshot_delta()
        assert first.metrics["c"]["series"][0]["value"] == 4.0
        tel.counter("c").inc(1)
        second = tel.snapshot_delta()
        assert second.metrics["c"]["series"][0]["value"] == 1.0
        assert tel.snapshot_delta().is_empty()

    def test_hub_merge_lands_in_registry(self):
        src = Telemetry(enabled=True)
        src.counter("c").inc(2)
        dst = Telemetry(enabled=True)
        dst.merge(src.snapshot(), extra_labels={"shard": "0"})
        assert dst.registry.get("c").value(shard="0") == 2.0

    def test_reset_clears_delta_baseline(self):
        tel = Telemetry(enabled=True)
        tel.counter("c").inc(4)
        tel.snapshot_delta()
        tel.reset()
        tel.counter("c").inc(2)
        assert tel.snapshot_delta().metrics["c"]["series"][0]["value"] == 2.0


class TestThreadSafety:
    N_THREADS = 8
    N_INCS = 2000

    def test_concurrent_increments_lose_nothing(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", labels=("worker",))

        def pound(i: int) -> None:
            for _ in range(self.N_INCS):
                c.inc(worker=str(i % 2))

        threads = [
            threading.Thread(target=pound, args=(i,)) for i in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.total == float(self.N_THREADS * self.N_INCS)

    def test_snapshot_under_concurrent_writes_is_consistent(self):
        # Counters only grow; a torn snapshot would show a later total for
        # one series than a containing scrape — assert monotone totals.
        reg = MetricsRegistry()
        c = reg.counter("hits")
        stop = threading.Event()

        def pound() -> None:
            while not stop.is_set():
                c.inc()

        writers = [threading.Thread(target=pound) for _ in range(4)]
        for t in writers:
            t.start()
        try:
            last = 0.0
            for _ in range(200):
                snap = reg.snapshot()
                total = sum(
                    s["value"] for s in snap.metrics["hits"]["series"]
                )
                assert total >= last
                last = total
        finally:
            stop.set()
            for t in writers:
                t.join()

    def test_concurrent_merges_sum_exactly(self):
        src = MetricsRegistry()
        src.counter("hits").inc(3)
        snap = src.snapshot()
        dst = MetricsRegistry()

        def merge_many(shard: int) -> None:
            for _ in range(50):
                dst.merge(snap, extra_labels={"shard": str(shard)})

        threads = [
            threading.Thread(target=merge_many, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert dst.get("hits").total == 4 * 50 * 3.0
