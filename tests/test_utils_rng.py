"""Unit tests for repro.utils.rng — seeding and child-generator spawning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a, b = ensure_rng(42), ensure_rng(42)
        assert a.random() == b.random()

    def test_different_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_generator_passthrough_shares_state(self):
        g = np.random.default_rng(0)
        same = ensure_rng(g)
        assert same is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        a = ensure_rng(ss)
        assert isinstance(a, np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        kids = spawn_rngs(0, 3)
        draws = [k.random(100) for k in kids]
        # No two children produce identical streams.
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_reproducible_from_int_seed(self):
        a = [g.random() for g in spawn_rngs(99, 3)]
        b = [g.random() for g in spawn_rngs(99, 3)]
        assert a == b

    def test_spawn_from_generator(self):
        g = np.random.default_rng(5)
        kids = spawn_rngs(g, 2)
        assert len(kids) == 2
        assert kids[0].random() != kids[1].random()

    def test_spawn_from_generator_deterministic(self):
        a = [g.random() for g in spawn_rngs(np.random.default_rng(5), 2)]
        b = [g.random() for g in spawn_rngs(np.random.default_rng(5), 2)]
        assert a == b
