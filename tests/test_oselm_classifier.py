"""Unit tests for the supervised OS-ELM classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.oselm import ForgettingOSELM, OSELM, OSELMClassifier
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def linear_data(rng):
    X = rng.normal(size=(400, 5))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(np.int64)
    return X, y


@pytest.fixture
def three_class_data(rng):
    centers = np.array([[0, 0], [4, 0], [0, 4]], dtype=float)
    X = np.concatenate([c + rng.normal(0, 0.5, (100, 2)) for c in centers])
    y = np.repeat([0, 1, 2], 100)
    return X, y


class TestConstruction:
    def test_min_classes(self):
        with pytest.raises(ConfigurationError):
            OSELMClassifier(5, 10, 1)

    def test_plain_core_default(self):
        clf = OSELMClassifier(5, 10, 2, seed=0)
        assert type(clf.core) is OSELM

    def test_forgetting_core(self):
        clf = OSELMClassifier(5, 10, 2, forgetting_factor=0.95, seed=0)
        assert isinstance(clf.core, ForgettingOSELM)


class TestTraining:
    def test_binary_accuracy(self, linear_data):
        X, y = linear_data
        clf = OSELMClassifier(5, 30, 2, seed=0).fit_initial(X[:300], y[:300])
        assert clf.score(X[300:], y[300:]) > 0.9

    def test_three_class_accuracy(self, three_class_data):
        X, y = three_class_data
        idx = np.random.default_rng(0).permutation(len(X))
        X, y = X[idx], y[idx]
        clf = OSELMClassifier(2, 20, 3, seed=0).fit_initial(X[:200], y[:200])
        assert clf.score(X[200:], y[200:]) > 0.9

    def test_sequential_matches_batch(self, linear_data):
        X, y = linear_data
        batch = OSELMClassifier(5, 15, 2, seed=0).fit_initial(X, y)
        seq = OSELMClassifier(5, 15, 2, seed=0).fit_initial(X[:100], y[:100])
        for i in range(100, len(X)):
            seq.partial_fit_one(X[i], int(y[i]))
        np.testing.assert_allclose(seq.core.beta, batch.core.beta, atol=1e-6)

    def test_chunk_partial_fit(self, linear_data):
        X, y = linear_data
        clf = OSELMClassifier(5, 15, 2, seed=0).fit_initial(X[:100], y[:100])
        clf.partial_fit(X[100:200], y[100:200])
        assert clf.core.n_samples_seen == 200

    def test_label_validation(self, linear_data):
        X, y = linear_data
        clf = OSELMClassifier(5, 15, 2, seed=0).fit_initial(X[:50], y[:50])
        with pytest.raises(ConfigurationError):
            clf.partial_fit_one(X[0], 5)
        with pytest.raises(Exception):
            clf.fit_initial(X, np.full(len(X), 3))

    def test_length_mismatch(self, linear_data):
        X, y = linear_data
        with pytest.raises(ConfigurationError):
            OSELMClassifier(5, 15, 2, seed=0).fit_initial(X, y[:-1])


class TestInference:
    def test_decision_function_shape(self, linear_data):
        X, y = linear_data
        clf = OSELMClassifier(5, 15, 2, seed=0).fit_initial(X, y)
        assert clf.decision_function(X[:7]).shape == (7, 2)

    def test_predict_one_matches_batch(self, linear_data):
        X, y = linear_data
        clf = OSELMClassifier(5, 15, 2, seed=0).fit_initial(X, y)
        assert clf.predict_one(X[3]) == clf.predict(X[3:4])[0]

    def test_forgetting_variant_tracks_flip(self, rng):
        """After the label rule flips, the forgetting classifier recovers
        faster than the plain one."""
        X = rng.normal(size=(1200, 4))
        y_old = (X[:, 0] > 0).astype(np.int64)
        y_new = 1 - y_old
        # Long old-concept history (400), short adaptation burst (150):
        # the plain model is still outvoted by its history while the
        # forgetting model has already discarded it.
        plain = OSELMClassifier(4, 20, 2, seed=0).fit_initial(X[:400], y_old[:400])
        forget = OSELMClassifier(4, 20, 2, forgetting_factor=0.95, seed=0).fit_initial(
            X[:400], y_old[:400]
        )
        for i in range(400, 550):
            plain.partial_fit_one(X[i], int(y_new[i]))
            forget.partial_fit_one(X[i], int(y_new[i]))
        assert forget.score(X[800:], y_new[800:]) > plain.score(X[800:], y_new[800:])

    def test_state_nbytes(self, linear_data):
        X, y = linear_data
        clf = OSELMClassifier(5, 15, 2, seed=0)
        assert clf.state_nbytes() == 0
        clf.fit_initial(X, y)
        assert clf.state_nbytes() > 0
