"""Integration tests: Table 3's window-size × drift-type matrix on the
cooling-fan streams, plus the device-feasibility story.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_proposed
from repro.datasets import make_cooling_fan_like
from repro.device import (
    RASPBERRY_PI_PICO,
    discriminative_model_memory,
    fits_on,
    proposed_memory,
    quanttree_memory,
    spll_memory,
)
from repro.metrics import evaluate_method


def run_fan(scenario, window, seed=1):
    train, test = make_cooling_fan_like(scenario, seed=0)
    pipe = build_proposed(train.X, train.y, window_size=window, seed=seed)
    return evaluate_method(pipe, test)


@pytest.fixture(scope="module")
def delays():
    """Delay vs the *first* drift (index 120), matching Table 3's semantics:
    in the reoccurring scenario the paper counts a detection landing after
    the reversion (its W=50 delay of 62 > the 50-sample blip) against the
    original drift point."""
    from repro.metrics import detection_delay

    out = {}
    for scenario in ("sudden", "gradual", "reoccurring"):
        for W in (10, 50, 150):
            res = run_fan(scenario, W)
            out[(scenario, W)] = detection_delay(res.delay.detections, 120)
    return out


class TestTable3Shape:
    def test_sudden_detected_at_all_windows(self, delays):
        for W in (10, 50, 150):
            assert delays[("sudden", W)] is not None

    def test_sudden_delay_grows_with_window(self, delays):
        assert delays[("sudden", 10)] <= delays[("sudden", 50)] <= delays[("sudden", 150)]

    def test_gradual_detected_but_slower_than_sudden(self, delays):
        for W in (10, 50, 150):
            assert delays[("gradual", W)] is not None
            assert delays[("gradual", W)] > delays[("sudden", W)]

    def test_reoccurring_detected_at_small_windows(self, delays):
        """Paper Table 3: W=10 and W=50 catch the 50-sample blip."""
        assert delays[("reoccurring", 10)] is not None
        assert delays[("reoccurring", 50)] is not None

    def test_reoccurring_missed_at_large_window(self, delays):
        """Paper Table 3: W=150 smooths over the reoccurring blip ('-')."""
        assert delays[("reoccurring", 150)] is None

    def test_sudden_delay_magnitude(self, delays):
        """Same order of magnitude as the paper's 53-160 samples."""
        for W in (10, 50, 150):
            assert delays[("sudden", W)] < 400


class TestAnomalySignal:
    def test_damage_raises_scores(self):
        train, test = make_cooling_fan_like("sudden", seed=0)
        pipe = build_proposed(train.X, train.y, window_size=50, seed=1)
        recs = pipe.run(test)
        scores = np.array([r.anomaly_score for r in recs])
        assert scores[130:160].mean() > 3 * scores[:110].mean()

    def test_no_false_positive_before_drift(self):
        res = run_fan("sudden", 50)
        assert res.delay.false_positives == ()


class TestDeviceFeasibility:
    """Paper §5.3's deployment claim, via the analytic memory models."""

    def test_fan_configuration_on_pico(self):
        det = proposed_memory(2, 511)
        model = discriminative_model_memory(2, 511, 22, alpha_in_flash=True)
        assert fits_on(det, RASPBERRY_PI_PICO, model=model)
        assert not fits_on(quanttree_memory(235, 511, 16), RASPBERRY_PI_PICO)
        assert not fits_on(spll_memory(235, 511, 3), RASPBERRY_PI_PICO)

    def test_live_detector_footprint_matches_analytic(self):
        train, test = make_cooling_fan_like("sudden", seed=0)
        pipe = build_proposed(train.X, train.y, window_size=50, seed=1)
        live = pipe.state_nbytes()
        analytic = proposed_memory(1, 511).total_bytes
        assert live == pytest.approx(analytic, rel=0.15)
