"""Golden-equivalence resume tests: kill → resume == uninterrupted run.

The crash-safety contract of ``StreamPipeline.run(checkpoint_every=...)``
is that a run killed at *any* step and resumed from its last checkpoint
produces a record list **byte-for-byte identical** to an uninterrupted
run — same predictions, same float64 anomaly scores down to the last
bit, same detections. These tests enforce that for every pipeline family
× two stream shapes (NSL-KDD-like, cooling-fan-like), with kills placed
at awkward positions: right after the first checkpoint, mid pure-predict
cruise, and one sample either side of the true drift point (i.e. with
detector windows / batch buffers / reconstruction mid-flight).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CentroidSet,
    ErrorRatePipeline,
    ModelReconstructor,
    build_baseline,
    build_model,
    build_onlad,
    build_proposed,
    build_quanttree_pipeline,
    build_spll_pipeline,
)
from repro.datasets import NSLKDDConfig, make_cooling_fan_like, make_nslkdd_like
from repro.detectors import DDM
from repro.resilience import InjectedCrash, crash_at

SEED = 3
EVERY = 5  # tight cadence so even the earliest kill has a checkpoint behind it


def _ddm_pipeline(train):
    model = build_model(train.X, train.y, seed=SEED)
    cents = CentroidSet.from_labelled_data(train.X, train.y, train.n_classes)
    rec = ModelReconstructor(model, cents, n_total=120)
    return ErrorRatePipeline(model, DDM(), rec)


#: every pipeline family: NoDetection, ONLAD, proposed, batch (×2), error-rate
MAKERS = {
    "baseline": lambda tr: build_baseline(tr.X, tr.y, seed=SEED),
    "onlad": lambda tr: build_onlad(tr.X, tr.y, forgetting_factor=0.95, seed=SEED),
    "proposed": lambda tr: build_proposed(tr.X, tr.y, window_size=60, seed=SEED),
    "quanttree": lambda tr: build_quanttree_pipeline(
        tr.X, tr.y, batch_size=250, n_bins=8, seed=SEED
    ),
    "spll": lambda tr: build_spll_pipeline(tr.X, tr.y, batch_size=250, seed=SEED),
    "ddm": _ddm_pipeline,
}

#: stream label -> (factory, true drift position)
STREAMS = {
    "nslkdd": (
        lambda: make_nslkdd_like(
            NSLKDDConfig(n_train=400, n_test=900, drift_at=300), seed=0
        ),
        300,
    ),
    "coolingfan": (
        lambda: make_cooling_fan_like("sudden", n_test=300, seed=0),
        120,
    ),
}

_stream_cache: dict = {}
_golden_cache: dict = {}


def _streams(label):
    if label not in _stream_cache:
        _stream_cache[label] = STREAMS[label][0]()
    return _stream_cache[label]


def _golden(method, label):
    key = (method, label)
    if key not in _golden_cache:
        train, test = _streams(label)
        _golden_cache[key] = MAKERS[method](train).run(test)
    return _golden_cache[key]


def _assert_byte_identical(resumed, golden):
    assert len(resumed) == len(golden)
    assert resumed == golden
    # StepRecord equality compares floats with ==; go one step further and
    # require the float64 *bit patterns* to match.
    a = np.array([r.anomaly_score for r in resumed], dtype=np.float64)
    b = np.array([r.anomaly_score for r in golden], dtype=np.float64)
    assert a.tobytes() == b.tobytes()


def _kill_points(label):
    drift = STREAMS[label][1]
    return (7, 64, drift - 1, drift + 1)


@pytest.mark.parametrize("label", sorted(STREAMS))
@pytest.mark.parametrize("method", sorted(MAKERS))
def test_kill_resume_byte_identical(method, label, tmp_path):
    train, test = _streams(label)
    golden = _golden(method, label)

    for kill in _kill_points(label):
        ckpt = tmp_path / f"{method}-{label}-{kill}.ckpt"
        victim = MAKERS[method](train)
        with pytest.raises(InjectedCrash):
            with crash_at(victim, kill):
                victim.run(test, checkpoint_every=EVERY, checkpoint_path=ckpt)
        assert ckpt.exists(), f"no checkpoint written before kill at {kill}"

        survivor = MAKERS[method](train)
        resumed = survivor.resume(test, ckpt)
        assert 0 < survivor.last_resumed_at <= kill
        _assert_byte_identical(resumed, golden)


@pytest.mark.parametrize("method", ["proposed", "quanttree"])
def test_double_kill_resume(method, tmp_path):
    """Crash, resume, crash again later, resume again — still golden."""
    train, test = _streams("nslkdd")
    golden = _golden(method, "nslkdd")
    ckpt = tmp_path / "double.ckpt"

    victim = MAKERS[method](train)
    with pytest.raises(InjectedCrash):
        with crash_at(victim, 64):
            victim.run(test, checkpoint_every=EVERY, checkpoint_path=ckpt)

    second = MAKERS[method](train)
    with pytest.raises(InjectedCrash):
        with crash_at(second, 500):
            second.resume(test, ckpt)

    survivor = MAKERS[method](train)
    resumed = survivor.resume(test, ckpt)
    assert survivor.last_resumed_at >= 495
    _assert_byte_identical(resumed, golden)


def test_checkpointed_run_without_crash_matches_golden(tmp_path):
    """Checkpointing itself must not perturb the records."""
    train, test = _streams("nslkdd")
    golden = _golden("proposed", "nslkdd")
    pipe = MAKERS["proposed"](train)
    recs = pipe.run(test, checkpoint_every=EVERY, checkpoint_path=tmp_path / "c.ckpt")
    _assert_byte_identical(recs, golden)


def test_resume_refuses_wrong_stream(tmp_path):
    train, test = _streams("nslkdd")
    ckpt = tmp_path / "c.ckpt"
    victim = MAKERS["baseline"](train)
    with pytest.raises(InjectedCrash):
        with crash_at(victim, 64):
            victim.run(test, checkpoint_every=EVERY, checkpoint_path=ckpt)

    from repro.utils.exceptions import ConfigurationError

    other = test.take(200)  # different data ⇒ different fingerprint
    with pytest.raises(ConfigurationError):
        MAKERS["baseline"](train).resume(other, ckpt)


def test_resume_refuses_wrong_pipeline_class(tmp_path):
    train, test = _streams("nslkdd")
    ckpt = tmp_path / "c.ckpt"
    victim = MAKERS["proposed"](train)
    with pytest.raises(InjectedCrash):
        with crash_at(victim, 64):
            victim.run(test, checkpoint_every=EVERY, checkpoint_path=ckpt)

    from repro.utils.exceptions import ConfigurationError

    with pytest.raises(ConfigurationError):
        MAKERS["quanttree"](train).resume(test, ckpt)


class TestDerivedStreamResume:
    """Derived streams (slice/take/with_noise) must resume byte-identically.

    ``take`` used to drop a drift annotation sitting exactly at the cut,
    which silently changed the derived stream's identity (fingerprint)
    and its delay bookkeeping between the crashed and resumed runs.
    """

    def test_end_drift_survives_take(self):
        _, test = _streams("coolingfan")
        assert 120 in test.drift_points
        assert test.take(120).drift_points == (120,)

    def test_sliced_stream_resume_byte_identical(self, tmp_path):
        train, test = _streams("coolingfan")
        sub = test.take(120)  # the true drift sits exactly on the cut
        golden = MAKERS["proposed"](train).run(sub)

        ckpt = tmp_path / "sliced.ckpt"
        victim = MAKERS["proposed"](train)
        with pytest.raises(InjectedCrash):
            with crash_at(victim, 64):
                victim.run(sub, checkpoint_every=EVERY, checkpoint_path=ckpt)
        survivor = MAKERS["proposed"](train)
        resumed = survivor.resume(sub, ckpt)
        _assert_byte_identical(resumed, golden)

    def test_noisy_stream_resume_byte_identical(self, tmp_path):
        train, test = _streams("coolingfan")
        noisy = test.with_noise(0.01, np.random.default_rng(5))
        golden = MAKERS["quanttree"](train).run(noisy)

        ckpt = tmp_path / "noisy.ckpt"
        victim = MAKERS["quanttree"](train)
        with pytest.raises(InjectedCrash):
            with crash_at(victim, 64):
                victim.run(noisy, checkpoint_every=EVERY, checkpoint_path=ckpt)
        survivor = MAKERS["quanttree"](train)
        # Rebuild the derived stream exactly as a restarted process would.
        noisy_again = test.with_noise(0.01, np.random.default_rng(5))
        resumed = survivor.resume(noisy_again, ckpt)
        _assert_byte_identical(resumed, golden)
