"""Unit tests for the drift-detection quality metrics (MDR/MTD/MTFA)."""

from __future__ import annotations

import math

import pytest

from repro.metrics import evaluate_detections
from repro.utils.exceptions import DataValidationError


class TestMatching:
    def test_perfect_run(self):
        ev = evaluate_detections([450, 950], [400, 900], 2000, horizon=200)
        assert ev.matched_delays == (50, 50)
        assert ev.recall == 1.0 and ev.precision == 1.0
        assert ev.missed_detection_rate == 0.0
        assert ev.mean_time_to_detection == 50.0
        assert ev.false_alarms == ()
        assert ev.mean_time_between_false_alarms is None

    def test_missed_drift(self):
        ev = evaluate_detections([], [400], 1000)
        assert ev.matched_delays == (None,)
        assert ev.recall == 0.0
        assert ev.missed_detection_rate == 1.0
        assert ev.mean_time_to_detection is None

    def test_detection_outside_horizon_is_false_alarm(self):
        ev = evaluate_detections([900], [400], 2000, horizon=100)
        assert ev.matched_delays == (None,)
        assert ev.false_alarms == (900,)
        assert ev.precision == 0.0

    def test_false_alarm_before_any_drift(self):
        ev = evaluate_detections([100, 450], [400], 1000, horizon=200)
        assert ev.matched_delays == (50,)
        assert ev.false_alarms == (100,)
        assert ev.precision == 0.5

    def test_each_detection_used_once(self):
        # One detection cannot satisfy two drifts.
        ev = evaluate_detections([450], [400, 440], 1000, horizon=200)
        assert ev.matched_delays in ((None, 10), (50, None))
        assert ev.n_detected == 1

    def test_detection_clipped_at_next_drift(self):
        # A detection after the second drift cannot match the first even
        # inside the first's horizon.
        ev = evaluate_detections([850], [400, 800], 2000, horizon=1000)
        assert ev.matched_delays == (None, 50)

    def test_extra_detections_in_same_segment(self):
        ev = evaluate_detections([450, 500, 550], [400], 1000, horizon=300)
        assert ev.matched_delays == (50,)
        assert ev.false_alarms == (500, 550)

    def test_mtfa(self):
        ev = evaluate_detections([100, 200], [], 1000)
        assert ev.mean_time_between_false_alarms == 500.0

    def test_no_drifts_nan_rates(self):
        ev = evaluate_detections([], [], 1000)
        assert math.isnan(ev.recall)
        assert math.isnan(ev.precision)

    def test_out_of_range_rejected(self):
        with pytest.raises(DataValidationError):
            evaluate_detections([2000], [400], 1000)
        with pytest.raises(DataValidationError):
            evaluate_detections([100], [1500], 1000)

    def test_unsorted_inputs_handled(self):
        ev = evaluate_detections([950, 450], [900, 400], 2000, horizon=200)
        assert ev.matched_delays == (50, 50)
