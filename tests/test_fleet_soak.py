"""The seeded soak harness end to end (miniature fleet; CI smoke leg)."""

from __future__ import annotations

from repro.fleet import make_fleet_specs, run_fleet_soak


class TestMakeFleetSpecs:
    def test_one_spec_per_device_with_shared_model_seed(self):
        specs = make_fleet_specs(12, seed=2, drift_fraction=0.5, n_test=150)
        assert len(specs) == 12
        assert {s.model_seed for s in specs.values()} == {7}
        assert len({s.seed for s in specs.values()}) == 12
        shifts = {s.dataset_kwargs["shift"] for s in specs.values()}
        assert shifts == {0.0, 0.45}
        # Correlated drift: one drift_at across the drifting devices.
        drift_ats = {
            s.dataset_kwargs["drift_at"]
            for s in specs.values()
            if s.dataset_kwargs["shift"] > 0
        }
        assert len(drift_ats) == 1

    def test_specs_are_deterministic(self):
        assert make_fleet_specs(6, seed=9) == make_fleet_specs(6, seed=9)


class TestSoak:
    def test_mini_soak_verifies_byte_identity(self, tmp_path):
        report = run_fleet_soak(
            10,
            3,
            spool_dir=tmp_path / "spool",
            seed=4,
            n_test=120,
            feed_chunk=40,
            verify=10,
        )
        assert report.samples == 10 * 120
        assert report.max_resident == 3
        assert report.evictions > 0
        assert report.restores > 0
        assert report.byte_identical is True
        assert report.mismatches == []
        data = report.to_json()
        assert data["sessions_per_sec"] > 0
        assert data["restore_ms_mean"] > 0

    def test_verify_zero_skips_comparison(self, tmp_path):
        report = run_fleet_soak(
            4, 2, spool_dir=tmp_path / "spool", seed=1, n_test=80, feed_chunk=40
        )
        assert report.byte_identical is None
        assert "byte_identical" not in report.to_json()
