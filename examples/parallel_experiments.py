#!/usr/bin/env python
"""Seed-replicated experiment grids with the ParallelRunner.

The paper's tables are single-seed runs; a faithful reproduction should
also report how stable those numbers are across seeds. This example fans
a (method × seed) grid over worker processes with `ParallelRunner`,
caches every cell on disk (re-running the script is nearly free), and
prints mean ± spread per method.

Run:
    python examples/parallel_experiments.py
    REPRO_EX_WORKERS=4 python examples/parallel_experiments.py   # wider pool
"""

from __future__ import annotations

import os
import statistics
import tempfile

from repro.metrics import ParallelRunner, format_table, make_grid

#: Reduced NSL-KDD-like stream so the example runs in seconds; drop the
#: stream kwargs for the paper-sized grid (2 522 / 22 701, drift @8 333).
STREAMS = {
    "nslkdd": ("nslkdd", {"seed": 0, "n_train": 600, "n_test": 4000, "drift_at": 1200})
}
METHODS = {
    "Proposed (W=100)": ("proposed", {"window_size": 100}),
    "Quant Tree": ("quanttree", {"batch_size": 480, "n_bins": 32}),
    "Baseline (frozen)": ("baseline", {}),
}
SEEDS = [1, 2, 3]


def main() -> None:
    cache_dir = os.environ.get(
        "REPRO_EX_CACHE", os.path.join(tempfile.gettempdir(), "repro_grid_cache")
    )
    runner = ParallelRunner(
        cache_dir=cache_dir,
        max_workers=int(os.environ.get("REPRO_EX_WORKERS", "0")) or None,
        timeout=600,
        retries=1,
    )
    cells = make_grid(METHODS, STREAMS, seeds=SEEDS)
    results = runner.run(cells)
    cached = sum(r.from_cache for r in results)
    print(
        f"ran {len(results)} cells ({cached} from cache at {cache_dir}); "
        "second runs are served entirely from disk\n"
    )

    rows = []
    for name in METHODS:
        cell_results = [r for r in results if r.name == name]
        accs = [100.0 * r.accuracy for r in cell_results]
        delays = [r.first_delay for r in cell_results if r.first_delay is not None]
        rows.append([
            name,
            f"{statistics.mean(accs):.1f}",
            f"{statistics.stdev(accs):.2f}" if len(accs) > 1 else "-",
            f"{statistics.mean(delays):.0f}" if delays else "-",
            f"{len(delays)}/{len(cell_results)}",
        ])
    print(format_table(
        ["method", "acc % (mean)", "acc sd", "delay (mean)", "detected"],
        rows,
        title=f"Seed-replicated comparison over seeds {SEEDS}",
    ))


if __name__ == "__main__":
    main()
