#!/usr/bin/env python
"""Centroid geometry of the proposed detector — the paper's Figure 3.

Renders (as ASCII scatter plots) the four panels of Figure 3 on a 2-D
three-class stream:

  (a) initial labelled samples,
  (b) trained centroids,
  (c) recent test centroids before any drift (they sit on the trained ones),
  (d) recent test centroids after a drift (one centroid dragged toward the
      new distribution — the displacement *is* the drift rate).

Run:
    python examples/drift_geometry.py
"""

from __future__ import annotations

import numpy as np

from repro.core import CentroidSet
from repro.datasets import GaussianConcept, make_stationary_stream
from repro.metrics import ascii_scatter
from repro.utils.rng import ensure_rng


def scatter(points_by_glyph: dict[str, np.ndarray], title: str) -> None:
    """Render one Figure-3 panel with the shared ascii_scatter helper."""
    print(f"\n{title}")
    print(ascii_scatter(points_by_glyph, width=64, height=20))


def main() -> None:
    rng = ensure_rng(0)
    means = np.array([[0.2, 0.25], [0.5, 0.75], [0.8, 0.3]])
    concept = GaussianConcept(means, 0.05)
    train = make_stationary_stream(concept, 120, seed=1)

    # (a) initial samples, one glyph per label
    glyphs = {".": train.X[train.y == 0], "o": train.X[train.y == 1],
              "x": train.X[train.y == 2]}
    scatter(glyphs, "(a) initial samples  (.=label0 o=label1 x=label2)")

    # (b) trained centroids
    cents = CentroidSet.from_labelled_data(train.X, train.y, 3)
    scatter({**glyphs, "0": cents.trained[0], "1": cents.trained[1],
             "2": cents.trained[2]},
            "(b) trained centroids (digits)")

    # (c) recent centroids before drift: update with stationary samples —
    # they stay glued to the trained ones.
    pre, _ = concept.sample(100, rng)
    for x in pre:
        cents.update_coord(x)
    scatter({"0": cents.trained[0], "1": cents.trained[1], "2": cents.trained[2],
             "R": cents.recent},
            f"(c) recent centroids before drift (R)   drift rate = {cents.drift_distance():.3f}")

    # (d) the label-1 cluster moves (new data distribution = yellow circles
    # in the paper's figure). Its recent centroid follows; the drift rate
    # grows.
    drifted = GaussianConcept(np.array([[0.2, 0.25], [0.75, 0.85], [0.8, 0.3]]), 0.04)
    post, _ = drifted.sample(150, rng)
    for x in post:
        cents.update_coord(x)
    scatter({"*": post[-60:], "0": cents.trained[0], "1": cents.trained[1],
             "2": cents.trained[2], "R": cents.recent},
            f"(d) after drift: new samples (*) drag R away   drift rate = {cents.drift_distance():.3f}")

    print("\nThe drift rate (sum of L1 distances between trained and recent")
    print("centroids) is the quantity Algorithm 1 compares against θ_drift.")


if __name__ == "__main__":
    main()
