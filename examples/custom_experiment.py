#!/usr/bin/env python
"""Register a custom pipeline + dataset and run them from a JSON spec.

The declarative layer (``repro.engine``) resolves pipelines and datasets
by string key, so plugging your own method into the whole toolchain —
``ExperimentSpec``, the parallel grid runner, the ``python -m repro spec``
command — takes one decorator:

1. register a builder under a name (``@register_pipeline("tuned")``),
2. describe the experiment as a JSON-round-trippable ``ExperimentSpec``,
3. build + run it (or hand the JSON to ``python -m repro spec``).

Run:
    python examples/custom_experiment.py
"""

from __future__ import annotations

import json

from repro.core import build_proposed
from repro.engine import ExperimentSpec, build_experiment, register_pipeline
from repro.metrics import evaluate_method


# -- 1. a custom pipeline builder -------------------------------------------
#
# Builders take the training split plus keyword parameters and return a
# trained StreamPipeline. Registering one makes it addressable by name
# from any spec — including spec *files* run via `python -m repro spec`.

@register_pipeline("proposed-tuned")
def build_proposed_tuned(X, y, *, seed=None, window_size=80, **kwargs):
    """The paper's proposed pipeline with a tighter drift threshold."""
    return build_proposed(
        X, y,
        window_size=window_size,
        z=0.5,                  # more sensitive than the paper's z=1
        n_hidden=16,
        **kwargs,
        seed=seed,
    )


# -- 2. a declarative experiment -------------------------------------------
#
# Everything that affects the numbers lives in the spec: pipeline key,
# its kwargs, the dataset key + kwargs, and the seeds. `to_json()` /
# `from_json()` round-trip losslessly, so specs can live in files and
# version control; `config_hash()` is what the parallel runner caches on.

SPEC_JSON = json.dumps({
    "name": "Tuned proposed on drifting blobs",
    "pipeline": "proposed-tuned",
    "dataset": "blobs",                      # built-in small 2-blob stream
    "seed": 0,                               # dataset seed
    "model_seed": 1,                         # builder seed (paper-style fixed)
    "pipeline_kwargs": {"window_size": 60},
    "dataset_kwargs": {"n_test": 1200, "drift_at": 400},
})


def main() -> None:
    spec = ExperimentSpec.from_json(json.loads(SPEC_JSON))
    print(f"spec: {spec.name!r}  (cache key {spec.config_hash()})")

    # -- 3. materialise and run ---------------------------------------------
    experiment = build_experiment(spec)     # streams synthesised, model trained
    result = evaluate_method(
        experiment.pipeline, experiment.test, name=spec.name
    )
    print(f"accuracy        : {100 * result.accuracy:.1f}%")
    print(f"drift @ {experiment.test.drift_points}, "
          f"first detection delay: {result.first_delay}")

    # The same spec is runnable from the shell — write it to a file and:
    #   python -m repro spec my_experiment.json
    # Determinism: building the spec twice yields byte-identical records.
    rerun = evaluate_method(
        build_experiment(spec).pipeline, build_experiment(spec).test,
        name=spec.name,
    )
    assert rerun.records == result.records
    print("re-built from the same spec: records are identical ✓")


if __name__ == "__main__":
    main()
