#!/usr/bin/env python
"""Edge-deployment feasibility study — the paper's Tables 4-6.

Uses the analytic device models in :mod:`repro.device` to answer the
paper's deployment questions for the cooling-fan configuration
(D=511 features, 22 hidden nodes, 2 labels, batch size 235):

1. How much RAM does each detection method need resident? (Table 4)
2. Which methods fit on a 264 kB Raspberry Pi Pico? (§5.3)
3. What is the per-sample latency breakdown on the Pico? (Table 6)
4. How long does the 700-sample fan stream take on a Raspberry Pi 4,
   per method? (Table 5 — estimated from phase tallies × the cost model,
   alongside the measured host wall-clock.)

Run (~5 s):
    python examples/edge_deployment.py
"""

from __future__ import annotations

from repro.core import (
    build_baseline,
    build_proposed,
    build_quanttree_pipeline,
    build_spll_pipeline,
)
from repro.datasets import make_cooling_fan_like
from repro.device import (
    RASPBERRY_PI_4,
    RASPBERRY_PI_PICO,
    StageCostModel,
    discriminative_model_memory,
    estimate_stream_seconds,
    fits_on,
    proposed_memory,
    quanttree_batch_ops,
    quanttree_memory,
    spll_batch_ops,
    spll_memory,
    stage_latency_table,
)
from repro.metrics import evaluate_method, format_table

GEOMETRY = StageCostModel(n_labels=2, n_features=511, n_hidden=22)


def table4() -> None:
    reports = {
        "Quant Tree": quanttree_memory(235, 511, 16),
        "SPLL": spll_memory(235, 511, 3),
        "Proposed method": proposed_memory(2, 511),
    }
    paper = {"Quant Tree": 619, "SPLL": 1933, "Proposed method": 69}
    rows = []
    for name, rep in reports.items():
        fits = fits_on(rep, RASPBERRY_PI_PICO)
        rows.append([name, round(rep.total_kb, 1), paper[name],
                     "yes" if fits else "NO"])
    print(format_table(
        ["method", "reproduced kB", "paper kB", "fits 264kB Pico?"],
        rows,
        title="Table 4: detector memory utilisation",
    ))
    model = discriminative_model_memory(2, 511, 22, alpha_in_flash=True)
    print(f"\nShared OS-ELM model state (beta+P, alpha in flash): "
          f"{model.total_kb:.0f} kB -> proposed method + model "
          f"{'fits' if fits_on(proposed_memory(2, 511), RASPBERRY_PI_PICO, model=model) else 'does NOT fit'} "
          f"on the Pico.")


def table6() -> None:
    paper = {
        "Label prediction": 148.87,
        "Distance computation": 10.58,
        "Model retraining without label prediction": 25.42,
        "Model retraining with label prediction": 166.65,
        "Label coordinates initialization": 25.59,
        "Label coordinates update": 6.05,
    }
    ours = stage_latency_table(GEOMETRY, RASPBERRY_PI_PICO)
    rows = [[k, round(ours[k], 2), v] for k, v in paper.items()]
    print(format_table(
        ["stage", "reproduced ms", "paper ms"],
        rows,
        title="\nTable 6: per-sample latency breakdown on Raspberry Pi Pico",
    ))


def table5() -> None:
    train, test = make_cooling_fan_like("sudden", n_modes=2, seed=0)
    methods = {
        "Quant Tree": (
            lambda: build_quanttree_pipeline(train.X, train.y, batch_size=235, n_bins=16, seed=1),
            quanttree_batch_ops(235, 16),
        ),
        "SPLL": (
            lambda: build_spll_pipeline(train.X, train.y, batch_size=235, seed=1),
            spll_batch_ops(235, 511, 3),
        ),
        "Baseline": (lambda: build_baseline(train.X, train.y, seed=1), None),
        "Proposed method": (
            lambda: build_proposed(train.X, train.y, window_size=50, seed=1),
            None,
        ),
    }
    paper = {"Quant Tree": 1.52, "SPLL": 9.28, "Baseline": 1.05, "Proposed method": 1.50}
    rows = []
    for name, (build, batch_ops) in methods.items():
        res = evaluate_method(build(), test)
        est = estimate_stream_seconds(
            res.phase_tally, GEOMETRY, RASPBERRY_PI_4,
            per_batch_ops=batch_ops,
            n_batches=(len(test) // 235) if batch_ops is not None else 0,
        )
        rows.append([name, round(est, 2), paper[name], round(res.wall_seconds, 2)])
    print(format_table(
        ["method", "estimated Pi4 s", "paper s", "host wall s"],
        rows,
        title="\nTable 5: execution time for the 700-sample fan stream",
    ))


def main() -> None:
    print(f"Devices: {RASPBERRY_PI_4.name} ({RASPBERRY_PI_4.cpu}) | "
          f"{RASPBERRY_PI_PICO.name} ({RASPBERRY_PI_PICO.cpu})\n")
    table4()
    table6()
    table5()


if __name__ == "__main__":
    main()
