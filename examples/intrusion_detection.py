#!/usr/bin/env python
"""Network-intrusion drift experiment — the paper's Figure 4 / Table 2 at
reduced scale.

Compares all five evaluated method combinations on the NSL-KDD-like
stream (normal vs. neptune traffic, drift when the network's traffic mix
changes) and prints a Table-2-style summary plus coarse accuracy curves.

Run (≈30 s):
    python examples/intrusion_detection.py            # reduced scale
    python examples/intrusion_detection.py --full     # paper-sized stream
"""

from __future__ import annotations

import argparse


from repro.core import (
    build_baseline,
    build_onlad,
    build_proposed,
    build_quanttree_pipeline,
    build_spll_pipeline,
)
from repro.datasets import NSLKDDConfig, make_nslkdd_like
from repro.metrics import compare_methods, format_table, sparkline


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--full", action="store_true", help="paper-sized stream (22 701 samples)")
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args()

    if args.full:
        cfg = NSLKDDConfig()
        qt_batch = spll_batch = 480
    else:
        cfg = NSLKDDConfig(n_train=800, n_test=6000, drift_at=2000)
        qt_batch = spll_batch = 300
    train, test = make_nslkdd_like(cfg, seed=args.seed)
    print(f"stream: {len(test)} samples, {test.n_features} features, "
          f"drift at {cfg.drift_at}\n")

    builders = {
        "Quant Tree": lambda: build_quanttree_pipeline(
            train.X, train.y, batch_size=qt_batch, n_bins=32, seed=1
        ),
        "SPLL": lambda: build_spll_pipeline(
            train.X, train.y, batch_size=spll_batch, seed=1
        ),
        "Baseline (no detection)": lambda: build_baseline(train.X, train.y, seed=1),
        "ONLAD": lambda: build_onlad(
            train.X, train.y, forgetting_factor=0.97, seed=1
        ),
        "Proposed (W=100)": lambda: build_proposed(
            train.X, train.y, window_size=100, seed=1
        ),
        "Proposed (W=250)": lambda: build_proposed(
            train.X, train.y, window_size=250, seed=1
        ),
    }
    results = compare_methods(builders, test)

    rows = []
    for name, res in results.items():
        rows.append([
            name,
            round(100 * res.accuracy, 1),
            res.first_delay,
            len(res.delay.false_positives),
            round(res.wall_seconds, 2),
        ])
    print(format_table(
        ["method", "accuracy %", "delay", "false pos.", "host seconds"],
        rows,
        title="Table-2-style summary (reproduction)",
    ))

    print("\nAccuracy curves (moving window):")
    for name, res in results.items():
        _, acc = res.accuracy_curve(window=max(200, len(test) // 40))
        print(f"  {name:25s} {sparkline(acc, lo=0.4, hi=1.0)}  ({acc[-1]:.0%} final)")

    print("\nPaper reference (full-size real NSL-KDD): Quant Tree 96.8 / 296, "
          "SPLL 96.3 / 296,\nBaseline 83.5, ONLAD 65.7, Proposed 96.0 / 843 (W=100).")


if __name__ == "__main__":
    main()
