#!/usr/bin/env python
"""Multi-window detector ensemble — the paper's future-work extension.

Table 3 shows the window-size dilemma: W=10 catches a reoccurring blip in
22 samples but risks chasing noise; W=150 is robust but misses the blip
entirely. The paper proposes (as future work) "a combination of multiple
detection models with different window sizes". This example runs that
extension — implemented in :class:`repro.core.MultiWindowDetector` — on
the sudden and reoccurring fan scenarios under the three voting policies.

Run (~10 s):
    python examples/multi_window_ensemble.py
"""

from __future__ import annotations

from repro.core import MultiWindowDetector, build_model, CentroidSet
from repro.core.threshold import calibrate_drift_threshold, calibrate_error_threshold
from repro.datasets import make_cooling_fan_like
from repro.metrics import format_table

WINDOWS = (10, 50, 150)


def run_ensemble(scenario: str, policy: str, seed: int = 1):
    train, test = make_cooling_fan_like(scenario, seed=0)
    model = build_model(train.X, train.y, seed=seed)
    cents = CentroidSet.from_labelled_data(train.X, train.y, max_count=500)
    theta_drift = calibrate_drift_threshold(train.X, train.y, cents)
    scores = model.scores(train.X)[range(len(train.X)), train.y]
    theta_error = calibrate_error_threshold(scores, z=3.0)
    ens = MultiWindowDetector(
        cents, WINDOWS, theta_error=theta_error, theta_drift=theta_drift,
        policy=policy,
    )
    detections = []
    for i, (x, _) in enumerate(test):
        c, err = model.predict_with_score(x)
        step = ens.update(x, c, err)
        if step.drift_detected:
            detections.append(i)
            ens.end_drift()  # treat each firing as handled, keep monitoring
    return detections


def main() -> None:
    rows = []
    for scenario in ("sudden", "reoccurring"):
        for policy in ("any", "majority", "all"):
            det = run_ensemble(scenario, policy)
            first = next((d for d in det if d >= 120), None)
            rows.append([
                scenario,
                policy,
                first - 120 if first is not None else None,
                len(det),
            ])
    print(format_table(
        ["scenario", "policy", "delay vs drift@120", "total firings"],
        rows,
        title="Multi-window ensemble (W = 10/50/150) under three voting policies",
    ))
    print(
        "\nReading: 'any' inherits the smallest window's speed (and its\n"
        "sensitivity to transients); 'all' only fires when even W=150 agrees\n"
        "— it ignores the reoccurring blip entirely, like the paper's W=150\n"
        "row; 'majority' sits between, detecting sudden faults quickly while\n"
        "needing two windows to agree on transients."
    )


if __name__ == "__main__":
    main()
