#!/usr/bin/env python
"""Gateway-to-edge deployment workflow with state persistence.

The realistic on-device story: a gateway (or lab machine) performs the
initial OS-ELM training and threshold calibration on collected data, the
resulting pipeline state is serialised to a single ``.npz`` archive, the
edge device restores it and runs the fully-sequential loop — and the
restored pipeline behaves *identically* to the original. Then the part
that matters in the field: the device is killed mid-stream (watchdog
reset), reboots, and *resumes* from its periodic checkpoint — producing
records byte-identical to a run that was never interrupted.

Run:
    python examples/deploy_and_restore.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import build_proposed
from repro.datasets import NSLKDDConfig, make_nslkdd_like
from repro.device import RASPBERRY_PI_PICO, discriminative_model_memory, proposed_memory
from repro.io import load_pipeline, save_pipeline
from repro.metrics import evaluate_method
from repro.resilience import InjectedCrash, crash_at

CFG = NSLKDDConfig(n_train=800, n_test=5000, drift_at=1600)


def main() -> None:
    train, test = make_nslkdd_like(CFG, seed=0)

    # --- gateway side: train + calibrate ---------------------------------
    pipeline = build_proposed(train.X, train.y, window_size=100, seed=1)
    print("gateway: trained OS-ELM ensemble "
          f"({pipeline.model.n_features}-{pipeline.model.n_hidden}-"
          f"{pipeline.model.n_features} x {pipeline.model.n_labels} instances)")
    print(f"gateway: calibrated theta_drift={pipeline.detector.theta_drift:.3f}, "
          f"theta_error={pipeline.detector.theta_error:.5f}")

    with tempfile.TemporaryDirectory() as td:
        archive = Path(td) / "edge_state.npz"
        save_pipeline(pipeline, archive)
        kb = archive.stat().st_size / 1000
        print(f"gateway: serialised full pipeline state -> {archive.name} "
              f"({kb:.0f} kB compressed)")

        # --- edge side: restore and stream -------------------------------
        restored = load_pipeline(archive)
        print("edge:    restored pipeline; streaming "
              f"{len(test)} samples (drift injected at {CFG.drift_at})")
        res = evaluate_method(restored, test)
        print(f"edge:    accuracy {res.accuracy:.1%}, detections at "
              f"{list(res.delay.detections)}, delay {res.first_delay}")

        # --- prove behavioural identity ----------------------------------
        original = evaluate_method(pipeline, test)
        identical = [r.predicted for r in original.records] == [
            r.predicted for r in res.records
        ]
        print(f"check:   original and restored runs identical: {identical}")

        # --- crash mid-stream, reboot, resume -----------------------------
        # The device checkpoints every 256 samples; a watchdog reset kills
        # it at sample 2500 (after the drift and the refit).
        ckpt = Path(td) / "run.ckpt"
        victim = load_pipeline(archive)
        try:
            with crash_at(victim, 2500):
                victim.run(test, checkpoint_every=256, checkpoint_path=ckpt)
        except InjectedCrash:
            print("edge:    killed at sample 2500 (watchdog reset)")

        # Reboot: restore the deployed model, then resume the stream from
        # the last checkpoint on disk.
        rebooted = load_pipeline(archive)
        resumed = rebooted.resume(test, ckpt)
        print(f"edge:    resumed from sample {rebooted.last_resumed_at}, "
              f"finished remaining {len(test) - rebooted.last_resumed_at} samples")
        byte_identical = resumed == res.records
        print(f"check:   resumed records byte-identical to uninterrupted run: "
              f"{byte_identical}")

    # --- RAM budget on the target board -----------------------------------
    det = proposed_memory(pipeline.model.n_labels, pipeline.model.n_features)
    model = discriminative_model_memory(
        pipeline.model.n_labels, pipeline.model.n_features,
        pipeline.model.n_hidden, alpha_in_flash=True,
    )
    total_kb = (det.total_bytes + model.total_bytes) / 1000
    print(f"\nPico budget: detector {det.total_kb:.1f} kB + mutable model "
          f"{model.total_kb:.1f} kB = {total_kb:.1f} kB of "
          f"{RASPBERRY_PI_PICO.ram_bytes / 1000:.0f} kB RAM "
          f"({'fits' if (det.total_bytes + model.total_bytes) < RASPBERRY_PI_PICO.ram_bytes else 'does NOT fit'})")


if __name__ == "__main__":
    main()
