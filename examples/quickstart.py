#!/usr/bin/env python
"""Quickstart: detect a concept drift and watch the model recover.

Builds the paper's proposed pipeline (OS-ELM autoencoder ensemble +
fully-sequential centroid drift detector) on a small synthetic two-class
stream, injects a sudden covariate drift, and prints what happens.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import build_proposed
from repro.datasets import (
    GaussianConcept,
    make_stationary_stream,
    make_sudden_drift_stream,
)
from repro.metrics import evaluate_method, segment_accuracy

DRIFT_AT = 600


def main() -> None:
    # 1. Two well-separated classes in 8 dimensions.
    means = np.zeros((2, 8))
    means[0, :4] = 0.8
    means[1, 4:] = 0.8
    concept = GaussianConcept(means, 0.08)

    # A confusing drift: class 0 slides 42% of the way toward class 1 and
    # the within-class spread grows, so a frozen model starts to
    # misclassify while each new cluster still sits closest to its own
    # old centroid (which unsupervised reconstruction relies on).
    drifted_means = means.copy()
    drifted_means[0] += 0.42 * (means[1] - means[0])
    drifted = GaussianConcept(drifted_means, 0.14)

    train = make_stationary_stream(concept, 300, seed=1, name="train")
    test = make_sudden_drift_stream(
        concept, drifted, n_samples=2000, drift_at=DRIFT_AT, seed=2, name="test"
    )

    # 2. Build the proposed pipeline: initial OS-ELM training, trained
    #    centroids, Eq.1 threshold calibration — one call.
    pipeline = build_proposed(
        train.X,
        train.y,
        window_size=50,
        n_hidden=8,
        reconstruction_samples=200,
        seed=0,
    )
    print(f"theta_drift = {pipeline.detector.theta_drift:.3f} "
          f"(Eq. 1, z=1 over training distances)")
    print(f"theta_error = {pipeline.detector.theta_error:.4f} "
          f"(anomaly-score trigger)")

    # 3. Stream the test data through the pipeline.
    result = evaluate_method(pipeline, test)

    print(f"\nTrue drift injected at sample {DRIFT_AT}")
    print(f"Detections at: {list(result.delay.detections)}")
    print(f"Detection delay: {result.first_delay} samples")

    det = result.delay.detections[0]
    pre, dip, post = segment_accuracy(result.records, [DRIFT_AT, det + 220])
    print(f"\nAccuracy before drift:          {pre:6.1%}")
    print(f"Accuracy drift→reconstruction:  {dip:6.1%}   (frozen-model damage)")
    print(f"Accuracy after reconstruction:  {post:6.1%}   (recovered)")
    print(f"Overall accuracy:               {result.accuracy:6.1%}")
    print(f"\nDetector resident memory: {result.detector_nbytes} bytes "
          f"(two centroid matrices — no stored samples)")


if __name__ == "__main__":
    main()
