#!/usr/bin/env python
"""A device fleet multiplexed through one engine, with LRU eviction.

The paper's pipeline watches one device; a backend watches thousands.
This example registers a small fleet of drift-monitoring devices (a few
of which experience the same correlated drift event), streams their
samples in an interleaved arrival order through a `FleetManager` whose
LRU capacity is far below the fleet size — so sessions constantly spill
to spool checkpoints and restore — and then proves the multiplexing was
invisible: a sampled device's records are byte-identical to running its
spec alone. Per-device telemetry is printed at the end.

Run:
    python examples/fleet_simulation.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.datasets import interleave_schedule
from repro.engine import build_experiment
from repro.fleet import FleetManager, make_fleet_specs
from repro.metrics import format_table
from repro.telemetry import Telemetry

N_DEVICES = 30
CAPACITY = 6        # resident sessions; the other 24 live as spool files
SAMPLES = 600       # per-device stream length
ARRIVAL = 100       # samples per batch a device "uploads"
SHIFT = 2.0         # drift magnitude on the drifting devices


def main() -> None:
    specs = make_fleet_specs(
        N_DEVICES, seed=0, drift_fraction=0.3, n_test=SAMPLES, shift=SHIFT,
        guard_policy="clip",
    )
    streams = {dev: build_experiment(spec).test for dev, spec in specs.items()}
    devices = list(specs)

    tel = Telemetry(enabled=True)
    with tempfile.TemporaryDirectory(prefix="fleet-spool-") as spool:
        fm = FleetManager(capacity=CAPACITY, spool_dir=spool, telemetry=tel)
        for dev, spec in specs.items():
            fm.add_device(dev, spec)

        lengths = [len(streams[d].X) for d in devices]
        for i, start, stop in interleave_schedule(lengths, ARRIVAL, seed=0):
            dev = devices[i]
            fm.submit(dev, streams[dev].X[start:stop], streams[dev].y[start:stop])

        per_device = fm.finish_all()
        stats = fm.stats
        fm.close()

    drifted = {d for d, s in specs.items() if s.dataset_kwargs["shift"] > 0}
    rows = []
    for dev in devices[:10]:
        detections = [r.index for r in per_device[dev] if r.drift_detected]
        rows.append([
            dev,
            "drift" if dev in drifted else "steady",
            stats.device_samples[dev],
            len(detections),
            detections[0] if detections else "-",
        ])
    print(format_table(
        ["device", "stream", "samples", "detections", "first @"],
        rows,
        title=f"First 10 of {N_DEVICES} devices (capacity {CAPACITY})",
    ))

    print(
        f"\nLRU churn: {stats.evictions} evictions, {stats.restores} restores, "
        f"max {stats.max_resident} resident "
        f"(mean restore {1000 * stats.restore_seconds / max(1, stats.restores):.1f} ms)"
    )

    # The punchline: multiplexing + evict/restore never changed a byte.
    probe = devices[0]
    solo = build_experiment(specs[probe]).run()
    fleet_scores = np.array([r.anomaly_score for r in per_device[probe]])
    solo_scores = np.array([r.anomaly_score for r in solo])
    identical = (
        per_device[probe] == solo
        and fleet_scores.tobytes() == solo_scores.tobytes()
    )
    print(f"{probe} fleet records == standalone run, bit for bit: {identical}")

    print("\nPer-device telemetry (first lines):")
    lines = tel.registry.to_prometheus().splitlines()
    for line in [l for l in lines if "fleet" in l][:8]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
