#!/usr/bin/env python
"""Cooling-fan condition monitoring — the paper's Table 3 experiment.

A fan's vibration spectrum (511 frequency bins) is monitored by the
proposed sequential detector. Three fault scenarios are streamed —
sudden (holes drilled in a blade), gradual (chipped blade mixing in),
and reoccurring (a transient fault that disappears) — across three
detector window sizes, reproducing the paper's window-size trade-off:

* small windows react fastest to sudden faults,
* large windows smooth over gradual mixing,
* the reoccurring blip is only caught by small windows.

Run (~10 s):
    python examples/fan_condition_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro.core import build_proposed
from repro.datasets import make_cooling_fan_like
from repro.metrics import detection_delay, evaluate_method, format_table

WINDOWS = (10, 50, 150)
SCENARIOS = ("sudden", "gradual", "reoccurring")
DRIFT_AT = 120

PAPER_TABLE3 = {
    ("sudden", 10): 53, ("sudden", 50): 60, ("sudden", 150): 160,
    ("gradual", 10): 161, ("gradual", 50): 157, ("gradual", 150): 257,
    ("reoccurring", 10): 22, ("reoccurring", 50): 62, ("reoccurring", 150): None,
}


def main() -> None:
    rows = []
    for W in WINDOWS:
        row: list[object] = [f"Window size = {W}"]
        for scenario in SCENARIOS:
            train, test = make_cooling_fan_like(scenario, seed=0)
            pipe = build_proposed(train.X, train.y, window_size=W, seed=1)
            res = evaluate_method(pipe, test)
            # Table 3 counts delays against the first drift point even in
            # the reoccurring case (paper's W=50 delay of 62 > the blip).
            delay = detection_delay(res.delay.detections, DRIFT_AT)
            paper = PAPER_TABLE3[(scenario, W)]
            row.append(f"{delay if delay is not None else '-'} (paper {paper if paper is not None else '-'})")
        rows.append(row)

    print(format_table(
        ["", "Sudden", "Gradual", "Reoccurring"],
        rows,
        title="Table 3: detection delay vs window size, reproduced (paper)",
    ))

    # Show what the detector actually sees: the anomaly-score trace.
    train, test = make_cooling_fan_like("reoccurring", seed=0)
    pipe = build_proposed(train.X, train.y, window_size=10, seed=1)
    recs = pipe.run(test)
    scores = np.array([r.anomaly_score for r in recs])
    print("\nReoccurring scenario anomaly scores (mean per 20-sample block):")
    peak = scores[:300].max()
    for start in range(0, 300, 20):
        block = scores[start:start + 20].mean()
        bar = "#" * int(60 * block / peak)
        marker = " <- fault active" if 120 <= start < 170 else ""
        print(f"  [{start:3d}-{start+19:3d}] {bar}{marker}")
    det = [r.index for r in recs if r.drift_detected]
    print(f"\nDetections at: {det} (fault spans samples 120-169)")


if __name__ == "__main__":
    main()
