"""Drift provenance: load and summarise ``drift_audit`` event streams.

The engine's :class:`~repro.engine.interceptors.TelemetryInterceptor`
emits one structured ``drift_audit`` event per drift detection — device
id, stream index, window distance vs. the detector threshold, guard
ladder level, reconstruction latency, recovery span — and a
:class:`~repro.telemetry.sinks.JsonlSink` persists those lines alongside
every other event. This module is the read side: ``python -m repro audit
trace.jsonl`` loads the file, keeps the ``drift_audit`` records, and
reports the fleet's drift hot-spots and recovery-time percentiles.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..utils.exceptions import DataValidationError

__all__ = ["load_audit", "audit_report", "render_audit", "percentile"]


def load_audit(path: Union[str, Path]) -> List[dict]:
    """Parse a telemetry JSONL trace; return only ``drift_audit`` records.

    Lines that are not valid JSON objects raise
    :class:`DataValidationError` (a truncated tail line — the writer was
    killed mid-record — is tolerated and dropped, matching the record-log
    trust rule elsewhere in the repo).
    """
    path = Path(path)
    lines = path.read_text().splitlines()
    out: List[dict] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn tail write
            raise DataValidationError(
                f"{path}: line {i + 1} is not valid JSON."
            ) from None
        if isinstance(record, dict) and record.get("event") == "drift_audit":
            out.append(record)
    return out


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sequence."""
    if not values:
        raise DataValidationError("percentile of an empty sequence.")
    ordered = sorted(values)
    rank = max(1, int(-(-q * len(ordered) // 100)))  # ceil without floats
    return ordered[min(rank, len(ordered)) - 1]


def audit_report(records: List[dict], *, top: int = 10) -> dict:
    """Aggregate ``drift_audit`` records into the operator's summary.

    Returns plain builtins: total drift count, recovered/unrecovered
    split, the ``top`` most drift-prone devices (standalone runs fall
    under device ``"-"``), and nearest-rank p50/p90/p99 of both recovery
    span (samples) and reconstruction latency (seconds) over recovered
    drifts.
    """
    devices: Dict[str, dict] = {}
    spans: List[float] = []
    latencies: List[float] = []
    ladder_levels: Dict[str, int] = {}
    for rec in records:
        device = str(rec.get("device") or "-")
        entry = devices.setdefault(
            device, {"device": device, "drifts": 0, "recovered": 0, "unrecovered": 0}
        )
        entry["drifts"] += 1
        if rec.get("recovered"):
            entry["recovered"] += 1
            if rec.get("recovery_samples") is not None:
                spans.append(float(rec["recovery_samples"]))
            if rec.get("recon_seconds") is not None:
                latencies.append(float(rec["recon_seconds"]))
        else:
            entry["unrecovered"] += 1
        level = rec.get("ladder_level")
        if level:
            ladder_levels[str(level)] = ladder_levels.get(str(level), 0) + 1
    ranked = sorted(devices.values(), key=lambda d: (-d["drifts"], d["device"]))

    def pct(values: List[float]) -> Optional[dict]:
        if not values:
            return None
        return {
            "p50": percentile(values, 50),
            "p90": percentile(values, 90),
            "p99": percentile(values, 99),
            "max": max(values),
        }

    return {
        "drifts": len(records),
        "devices": len(devices),
        "recovered": sum(d["recovered"] for d in devices.values()),
        "unrecovered": sum(d["unrecovered"] for d in devices.values()),
        "top_devices": ranked[: int(top)],
        "recovery_samples": pct(spans),
        "recon_seconds": pct(latencies),
        "ladder_levels": dict(sorted(ladder_levels.items())),
    }


def render_audit(report: dict) -> str:
    """ASCII rendering of :func:`audit_report` for the CLI."""
    lines = [
        "drift audit",
        "===========",
        f"drifts            : {report['drifts']}",
        f"devices           : {report['devices']}",
        f"recovered         : {report['recovered']}",
        f"unrecovered       : {report['unrecovered']}",
    ]
    if report["ladder_levels"]:
        levels = ", ".join(
            f"{k}={v}" for k, v in report["ladder_levels"].items()
        )
        lines.append(f"ladder levels     : {levels}")
    for key, label, fmt in (
        ("recovery_samples", "recovery (samples)", "{:.0f}"),
        ("recon_seconds", "recon latency (s) ", "{:.4f}"),
    ):
        stats = report.get(key)
        if stats:
            lines.append(
                f"{label}: p50={fmt.format(stats['p50'])} "
                f"p90={fmt.format(stats['p90'])} "
                f"p99={fmt.format(stats['p99'])} "
                f"max={fmt.format(stats['max'])}"
            )
    if report["top_devices"]:
        lines.append("")
        lines.append("top drifting devices")
        lines.append("--------------------")
        width = max(len(d["device"]) for d in report["top_devices"])
        for d in report["top_devices"]:
            lines.append(
                f"  {d['device']:<{width}}  drifts={d['drifts']} "
                f"recovered={d['recovered']} unrecovered={d['unrecovered']}"
            )
    return "\n".join(lines)
