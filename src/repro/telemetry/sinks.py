"""Event sinks — where emitted telemetry events go.

Three built-ins, all sharing the one-method :class:`EventSink` protocol:

* :class:`RingBufferSink` — bounded in-memory buffer, the default for
  tests and interactive inspection (zero I/O);
* :class:`JsonlSink` — one JSON object per line, the machine-readable
  trace format (``--telemetry PATH.jsonl`` on the CLI);
* :class:`StderrSink` — human-readable one-liners for watching a run live.

Custom sinks only need a ``handle(event)`` method; exceptions they raise
propagate (telemetry is opt-in, so a broken sink should fail fast, not rot
silently).
"""

from __future__ import annotations

import json
import sys
from collections import deque
from pathlib import Path
from typing import IO, Iterator, List, Optional, Union

from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_positive
from .events import Event

__all__ = ["EventSink", "RingBufferSink", "JsonlSink", "StderrSink"]


class EventSink:
    """Protocol-ish base class; subclasses override :meth:`handle`."""

    def handle(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; idempotent. Default: nothing to release."""


class RingBufferSink(EventSink):
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        check_positive(capacity, "capacity")
        self.capacity = int(capacity)
        self._buffer: deque[Event] = deque(maxlen=self.capacity)

    def handle(self, event: Event) -> None:
        self._buffer.append(event)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._buffer)

    def events(self, name: Optional[str] = None) -> List[Event]:
        """Buffered events, optionally filtered by event name."""
        if name is None:
            return list(self._buffer)
        return [e for e in self._buffer if e.name == name]

    def clear(self) -> None:
        self._buffer.clear()


class JsonlSink(EventSink):
    """Append events to ``path`` as JSON Lines.

    The file opens eagerly (so a bad path fails at configuration time,
    not mid-run) and is buffered; call :meth:`flush` to force bytes out or
    :meth:`close` when done — both are safe to call repeatedly. Usable as
    a context manager.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: Optional[IO[str]] = self.path.open("w", encoding="utf-8")
        self.n_written = 0

    def handle(self, event: Event) -> None:
        if self._fh is None:
            raise ConfigurationError(f"JsonlSink({self.path}) is closed.")
        self._fh.write(json.dumps(event.to_json()) + "\n")
        self.n_written += 1

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class StderrSink(EventSink):
    """Render events as single human-readable lines (default: stderr)."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream

    def handle(self, event: Event) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        fields = " ".join(f"{k}={v}" for k, v in event.to_json().items()
                          if k not in ("event", "seq", "t"))
        stream.write(f"[telemetry +{event.t:9.4f}s] {event.name} {fields}".rstrip() + "\n")
