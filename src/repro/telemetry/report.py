"""Human-readable digest of a telemetry hub — the ``--telemetry-summary``
renderer.

Builds a per-phase timing / event digest from whatever the hub's registry
accumulated, reusing the repo's ASCII plotting helpers
(:mod:`repro.metrics.ascii_plots`) and table renderer so the output slots
next to the reproduced paper tables.

This module intentionally lives *behind* a lazy import in
``repro.telemetry.__getattr__``: it pulls in :mod:`repro.metrics`, which
itself imports telemetry, and deferring the import breaks that cycle.
"""

from __future__ import annotations

from typing import List, Optional

from ..metrics.ascii_plots import hbar_chart
from ..metrics.tables import format_table
from .hub import Telemetry, get_telemetry
from .metrics import Counter, Gauge, Histogram

__all__ = ["render_summary"]


def _labels_str(labels: dict) -> str:
    return ",".join(f"{k}={v}" for k, v in labels.items()) or "-"


def render_summary(tel: Optional[Telemetry] = None) -> str:
    """Render counters, gauges, span timings, and event tallies as text.

    ``tel`` defaults to the process-wide hub. Sections with no data are
    omitted; an untouched hub renders a single placeholder line.
    """
    tel = tel if tel is not None else get_telemetry()
    sections: List[str] = []

    # -- event tallies (maintained by Telemetry.emit) -------------------------
    events = tel.registry.get("telemetry.events")
    if isinstance(events, Counter) and events.samples():
        rows = [
            [s["labels"]["name"], int(s["value"])]
            for s in sorted(events.samples(), key=lambda s: -s["value"])
        ]
        sections.append(format_table(["event", "count"], rows, title="Events"))

    # -- span timing digest ---------------------------------------------------
    span_rows = []
    span_totals = {}
    for metric in tel.registry:
        if isinstance(metric, Histogram) and metric.name.startswith("span."):
            name = metric.name[len("span."):-len(".seconds")]
            for s in metric.samples():
                count, total = s["count"], s["sum"]
                if count:
                    span_rows.append(
                        [name, count, round(total, 4), round(1e3 * total / count, 3)]
                    )
                    span_totals[name] = span_totals.get(name, 0.0) + total
    if span_rows:
        sections.append(
            format_table(
                ["span", "count", "total s", "mean ms"],
                sorted(span_rows, key=lambda r: -r[2]),
                title="Span timings (monotonic)",
            )
        )
        sections.append(hbar_chart(span_totals, unit="s"))

    # -- per-phase sample digest (pipeline.samples counter) -------------------
    phases = tel.registry.get("pipeline.samples")
    if isinstance(phases, Counter) and phases.samples():
        by_phase: dict = {}
        for s in phases.samples():
            key = f"{s['labels'].get('pipeline', '?')}/{s['labels'].get('phase', '?')}"
            by_phase[key] = by_phase.get(key, 0) + s["value"]
        sections.append(
            "Samples by pipeline/phase\n" + hbar_chart(by_phase, unit=" samples")
        )

    # -- remaining counters and gauges ----------------------------------------
    skip = {"telemetry.events", "pipeline.samples"}
    counter_rows = [
        [m.name, _labels_str(s["labels"]), f"{s['value']:g}"]
        for m in tel.registry
        if isinstance(m, Counter) and m.name not in skip
        for s in m.samples()
    ]
    if counter_rows:
        sections.append(
            format_table(["counter", "labels", "value"], counter_rows, title="Counters")
        )
    gauge_rows = [
        [m.name, _labels_str(s["labels"]), f"{s['value']:g}"]
        for m in tel.registry
        if isinstance(m, Gauge)
        for s in m.samples()
    ]
    if gauge_rows:
        sections.append(
            format_table(["gauge", "labels", "value"], gauge_rows, title="Gauges")
        )

    if not sections:
        return "Telemetry summary: no metrics or events recorded."
    return "Telemetry summary\n=================\n\n" + "\n\n".join(sections)
