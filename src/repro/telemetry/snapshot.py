"""Serializable point-in-time captures of a :class:`MetricsRegistry`.

A :class:`TelemetrySnapshot` is plain data — nested builtins only — so it
pickles across process boundaries (``ShardPool`` workers, ``ParallelRunner``
cells) and round-trips through JSON unchanged. The registry produces one
via :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot` and consumes
one via :meth:`~repro.telemetry.metrics.MetricsRegistry.merge`; the
:meth:`diff` method turns two successive captures into a *delta* snapshot
so workers can ship only what changed since their last flush.

Per-metric payload shape (the ``metrics`` mapping)::

    {
        "kind": "counter" | "gauge" | "histogram",
        "help": str,
        "labels": [...],          # full label names, in key order
        "explicit": [...],        # labels declared at registration time
        "buckets": [...],         # histograms only: fixed upper edges
        "series": [
            {"labels": {...}, "value": float},                 # counter/gauge
            {"labels": {...}, "counts": [...], "sum": float,
             "count": int},                                    # histogram
        ],
    }
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["TelemetrySnapshot"]


def _series_key(labels: Dict[str, str]):
    return tuple(sorted(labels.items()))


def _indexed(series: List[dict]) -> Dict[tuple, dict]:
    return {_series_key(s["labels"]): s for s in series}


@dataclass
class TelemetrySnapshot:
    """A picklable, JSON-round-trippable capture of every metric series."""

    metrics: Dict[str, dict] = field(default_factory=dict)

    def is_empty(self) -> bool:
        """True when no metric carries any series (nothing to merge)."""
        return not any(m.get("series") for m in self.metrics.values())

    # -- (de)serialisation -----------------------------------------------------

    def to_json(self) -> dict:
        return {"metrics": self.metrics}

    @classmethod
    def from_json(cls, data: dict) -> "TelemetrySnapshot":
        return cls(metrics=dict(data.get("metrics", {})))

    # -- deltas ----------------------------------------------------------------

    def diff(self, baseline: Optional["TelemetrySnapshot"]) -> "TelemetrySnapshot":
        """What changed since ``baseline`` (an earlier capture).

        Counters and histogram series subtract bucket-wise; a counter that
        went *backwards* (registry reset between captures) is treated as a
        fresh start and shipped whole, mirroring Prometheus counter-reset
        semantics. Gauges are last-write-wins, so a gauge series is kept
        only when its value differs from the baseline's. Metrics left with
        no changed series are dropped entirely.
        """
        if baseline is None:
            return TelemetrySnapshot(metrics=self.metrics)
        out: Dict[str, dict] = {}
        for name, data in self.metrics.items():
            base = baseline.metrics.get(name)
            base_series = _indexed(base["series"]) if base else {}
            kind = data["kind"]
            changed: List[dict] = []
            for s in data["series"]:
                prev = base_series.get(_series_key(s["labels"]))
                if kind == "counter":
                    prev_v = prev["value"] if prev else 0.0
                    delta = (
                        s["value"] if s["value"] < prev_v else s["value"] - prev_v
                    )
                    if delta != 0.0:
                        changed.append({"labels": dict(s["labels"]), "value": delta})
                elif kind == "gauge":
                    if prev is None or prev["value"] != s["value"]:
                        changed.append(
                            {"labels": dict(s["labels"]), "value": s["value"]}
                        )
                else:  # histogram
                    prev_counts = prev["counts"] if prev else [0] * len(s["counts"])
                    if prev and s["count"] < prev["count"]:
                        prev_counts = [0] * len(s["counts"])
                        prev = None
                    counts = [c - p for c, p in zip(s["counts"], prev_counts)]
                    count = s["count"] - (prev["count"] if prev else 0)
                    if count:
                        changed.append(
                            {
                                "labels": dict(s["labels"]),
                                "counts": counts,
                                "sum": s["sum"] - (prev["sum"] if prev else 0.0),
                                "count": count,
                            }
                        )
            if changed:
                entry = {k: v for k, v in data.items() if k != "series"}
                entry["series"] = changed
                out[name] = entry
        return TelemetrySnapshot(metrics=out)
