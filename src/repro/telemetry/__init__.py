"""Structured telemetry: event tracing, metrics, and live instrumentation.

The paper's contribution is fundamentally about *when* things happen on a
constrained device — detection delay, reconstruction windows, per-phase
execution time (Tables 2/3/5) — and this subpackage gives the reproduction
runtime visibility into exactly that:

* :class:`Telemetry` — a hub holding a :class:`MetricsRegistry` (counters,
  gauges, fixed-bucket histograms) and a span tracer, fanned out to
  pluggable sinks (:class:`RingBufferSink`, :class:`JsonlSink`,
  :class:`StderrSink`);
* a process-wide **no-op default** (:func:`get_telemetry`) that every
  pipeline, detector, reconstructor, model, and runner adopts at
  construction — a single ``enabled`` check keeps disabled-instrumentation
  overhead under 5 % (``benchmarks/bench_telemetry_overhead.py``);
* :func:`configure` — flip the default hub on/off and attach sinks,
  affecting components that already exist;
* exporters — ``registry.as_dict()`` / ``to_json()`` / ``to_prometheus()``
  (text exposition format) — and :func:`render_summary` (lazy import, see
  :mod:`repro.telemetry.report`) for a terminal digest;
* cross-process aggregation — :class:`TelemetrySnapshot` captures of a
  registry (``snapshot()`` / ``snapshot_delta()``) merged back via
  ``merge()``, so worker-process metrics land in the parent hub;
* :class:`MetricsServer` (:mod:`repro.telemetry.httpd`) — a stdlib HTTP
  daemon thread serving ``/metrics`` (Prometheus text), ``/health``, and
  ``/fleet`` from a live hub;
* drift provenance — the ``drift_audit`` event stream summarised by
  :func:`audit_report` / :func:`render_audit`
  (:mod:`repro.telemetry.audit`).

See ``docs/telemetry.md`` for the event schema and instrumentation map.
"""

from .audit import audit_report, load_audit, render_audit
from .events import Event
from .hub import Span, Telemetry, configure, get_telemetry
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .promlint import lint_prometheus
from .sinks import EventSink, JsonlSink, RingBufferSink, StderrSink
from .snapshot import TelemetrySnapshot

__all__ = [
    "Telemetry",
    "Span",
    "get_telemetry",
    "configure",
    "Event",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TelemetrySnapshot",
    "MetricsServer",
    "DEFAULT_TIME_BUCKETS",
    "EventSink",
    "RingBufferSink",
    "JsonlSink",
    "StderrSink",
    "render_summary",
    "lint_prometheus",
    "load_audit",
    "audit_report",
    "render_audit",
]


def __getattr__(name: str):
    # ``report`` imports repro.metrics (tables, ascii plots), which imports
    # this package back — deferring the import until first use breaks the
    # cycle while keeping ``repro.telemetry.render_summary`` addressable.
    if name == "render_summary":
        from .report import render_summary

        return render_summary
    if name == "MetricsServer":
        # ``httpd`` pulls in ``http.server``; keep import-time cost off the
        # hot path for processes that never serve metrics.
        from .httpd import MetricsServer

        return MetricsServer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
