"""Structured telemetry: event tracing, metrics, and live instrumentation.

The paper's contribution is fundamentally about *when* things happen on a
constrained device — detection delay, reconstruction windows, per-phase
execution time (Tables 2/3/5) — and this subpackage gives the reproduction
runtime visibility into exactly that:

* :class:`Telemetry` — a hub holding a :class:`MetricsRegistry` (counters,
  gauges, fixed-bucket histograms) and a span tracer, fanned out to
  pluggable sinks (:class:`RingBufferSink`, :class:`JsonlSink`,
  :class:`StderrSink`);
* a process-wide **no-op default** (:func:`get_telemetry`) that every
  pipeline, detector, reconstructor, model, and runner adopts at
  construction — a single ``enabled`` check keeps disabled-instrumentation
  overhead under 5 % (``benchmarks/bench_telemetry_overhead.py``);
* :func:`configure` — flip the default hub on/off and attach sinks,
  affecting components that already exist;
* exporters — ``registry.as_dict()`` / ``to_json()`` / ``to_prometheus()``
  (text exposition format) — and :func:`render_summary` (lazy import, see
  :mod:`repro.telemetry.report`) for a terminal digest.

See ``docs/telemetry.md`` for the event schema and instrumentation map.
"""

from .events import Event
from .hub import Span, Telemetry, configure, get_telemetry
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .sinks import EventSink, JsonlSink, RingBufferSink, StderrSink

__all__ = [
    "Telemetry",
    "Span",
    "get_telemetry",
    "configure",
    "Event",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "EventSink",
    "RingBufferSink",
    "JsonlSink",
    "StderrSink",
    "render_summary",
]


def __getattr__(name: str):
    # ``report`` imports repro.metrics (tables, ascii plots), which imports
    # this package back — deferring the import until first use breaks the
    # cycle while keeping ``repro.telemetry.render_summary`` addressable.
    if name == "render_summary":
        from .report import render_summary

        return render_summary
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
