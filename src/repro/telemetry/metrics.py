"""Metric primitives and the registry they live in.

Three metric kinds, mirroring the Prometheus data model the
``stream_pipeline`` reference instrumentation uses, but with zero external
dependencies and deliberately *deterministic* values:

* :class:`Counter` — monotone event tallies (samples processed, drifts
  flagged, cache hits);
* :class:`Gauge` — last-written level (current centroid drift distance);
* :class:`Histogram` — observations bucketed over **fixed edges** chosen at
  registration time (span durations).

No metric value ever depends on the wall clock: counters and gauges hold
whatever the instrumented code fed them, and the only time source anywhere
in :mod:`repro.telemetry` is the *monotonic* ``time.perf_counter`` used for
span durations. Re-running a deterministic experiment therefore reproduces
every counter and gauge bit-for-bit (histograms of durations are the one
machine-dependent signal, and they are clearly labelled as such).

Metrics may declare label names; each distinct label-value combination is
an independent series, exactly as in Prometheus exposition. Metric and
label names are validated at registration time so the text exporter can
never emit series that ``promtool check metrics`` would reject.

Cross-process aggregation: :meth:`MetricsRegistry.snapshot` captures every
series as plain data (:class:`~repro.telemetry.snapshot.TelemetrySnapshot`)
and :meth:`MetricsRegistry.merge` folds such a capture back in — counters
sum, gauges take the last write, histograms add bucket-wise. ``merge`` may
attach extra labels (e.g. ``shard="3"``); the receiving metric's label set
is then extended *implicitly*: existing series get ``""`` for the new
label (exactly how Prometheus treats an absent label) and local writers
keep calling with their original label signature.

All mutation goes through a re-entrant lock shared registry-wide, so a
scrape thread (the ``/metrics`` endpoint) can snapshot while pipeline
threads write without lost updates or torn series.
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..utils.exceptions import ConfigurationError
from .snapshot import TelemetrySnapshot

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
]

#: Fixed duration-histogram edges (seconds): 10 µs … 30 s, roughly log-spaced.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0
)

_LabelKey = Tuple[str, ...]

#: Internal metric names: word chars plus ``.``/``:`` separators; the dot
#: becomes ``_`` in exposition, so anything matching here sanitises to a
#: valid Prometheus name.
_METRIC_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.:]*$")
_LABEL_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _validate_label_names(metric: str, labels: Sequence[str]) -> None:
    for label in labels:
        if not _LABEL_NAME_RE.match(label) or label.startswith("__"):
            raise ConfigurationError(
                f"metric {metric!r}: invalid label name {label!r} "
                "(want [A-Za-z_][A-Za-z0-9_]*, no __ prefix)."
            )


class _Metric:
    """Shared plumbing: name, help text, label handling, series storage."""

    kind = "metric"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        if not name:
            raise ConfigurationError("metric name must be non-empty.")
        if not _METRIC_NAME_RE.match(str(name)):
            raise ConfigurationError(
                f"invalid metric name {name!r} "
                "(want [A-Za-z_][A-Za-z0-9_.:]*)."
            )
        self.name = str(name)
        self.help = str(help)
        self.label_names: Tuple[str, ...] = tuple(labels)
        _validate_label_names(self.name, self.label_names)
        if len(set(self.label_names)) != len(self.label_names):
            raise ConfigurationError(
                f"metric {self.name!r} has duplicate label names."
            )
        #: Labels declared at registration time (callers must supply these).
        self._explicit: Tuple[str, ...] = self.label_names
        #: Labels grafted on by ``merge(extra_labels=...)``; absent values
        #: default to ``""`` like an unset Prometheus label.
        self._implicit: set = set()
        self._lock = threading.RLock()

    def _series_map(self) -> Dict[_LabelKey, object]:
        raise NotImplementedError

    def _extend_labels(self, extras: Sequence[str]) -> None:
        """Graft implicit label names on; re-key existing series with ``""``."""
        new = [e for e in extras if e not in self.label_names]
        if not new:
            return
        _validate_label_names(self.name, new)
        with self._lock:
            pad = ("",) * len(new)
            self.label_names = (*self.label_names, *new)
            self._implicit.update(new)
            store = self._series_map()
            old = dict(store)
            store.clear()
            for key, value in old.items():
                store[(*key, *pad)] = value

    def _key(self, labels: Mapping[str, object]) -> _LabelKey:
        if not self.label_names:
            if labels:
                raise ConfigurationError(
                    f"metric {self.name!r} takes no labels, got {sorted(labels)}."
                )
            return ()
        unknown = [k for k in labels if k not in self.label_names]
        if unknown:
            raise ConfigurationError(
                f"metric {self.name!r} has no label(s) {sorted(unknown)}; "
                f"declared: {list(self.label_names)}."
            )
        key = []
        for name in self.label_names:
            if name in labels:
                key.append(str(labels[name]))
            elif name in self._implicit:
                key.append("")
            else:
                raise ConfigurationError(
                    f"metric {self.name!r} requires labels {list(self._explicit)}."
                )
        return tuple(key)

    def _label_dict(self, key: _LabelKey) -> Dict[str, str]:
        return dict(zip(self.label_names, key))


class Counter(_Metric):
    """Monotonically increasing tally, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[_LabelKey, float] = {}

    def _series_map(self) -> Dict[_LabelKey, object]:
        return self._values

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (must be >= 0) to this series."""
        if amount < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease.")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current tally of one series (0 if never incremented)."""
        return self._values.get(self._key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def samples(self) -> List[dict]:
        with self._lock:
            return [
                {"labels": self._label_dict(k), "value": v}
                for k, v in sorted(self._values.items())
            ]

    def clear(self) -> None:
        with self._lock:
            self._values.clear()


class Gauge(_Metric):
    """Last-written level; supports set/inc/dec."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[_LabelKey, float] = {}

    def _series_map(self) -> Dict[_LabelKey, object]:
        return self._values

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    def samples(self) -> List[dict]:
        with self._lock:
            return [
                {"labels": self._label_dict(k), "value": v}
                for k, v in sorted(self._values.items())
            ]

    def clear(self) -> None:
        with self._lock:
            self._values.clear()


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Observations over fixed, strictly increasing bucket edges.

    An observation lands in the first bucket whose upper edge is >= the
    value; values above the last edge land in the implicit ``+Inf``
    overflow bucket. Edges are immutable after registration — summaries
    therefore never shift retroactively.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        edges = tuple(float(b) for b in buckets)
        if not edges or any(nxt <= prev for nxt, prev in zip(edges[1:], edges)):
            raise ConfigurationError(
                f"histogram {self.name!r} needs strictly increasing bucket edges."
            )
        self.buckets: Tuple[float, ...] = edges
        self._series: Dict[_LabelKey, _HistogramSeries] = {}

    def _series_map(self) -> Dict[_LabelKey, object]:
        return self._series

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets) + 1)
            # bisect_left ⇒ a value equal to an edge lands in that edge's
            # bucket (Prometheus ``le`` is an inclusive upper bound).
            series.counts[bisect_left(self.buckets, value)] += 1
            series.sum += value
            series.count += 1

    def _get(self, labels: Mapping[str, object]) -> Optional[_HistogramSeries]:
        return self._series.get(self._key(labels))

    def count(self, **labels: object) -> int:
        s = self._get(labels)
        return s.count if s else 0

    def sum(self, **labels: object) -> float:
        s = self._get(labels)
        return s.sum if s else 0.0

    def mean(self, **labels: object) -> float:
        s = self._get(labels)
        return s.sum / s.count if s and s.count else 0.0

    def bucket_counts(self, **labels: object) -> List[int]:
        """Per-bucket (non-cumulative) counts; last entry is the overflow."""
        s = self._get(labels)
        return list(s.counts) if s else [0] * (len(self.buckets) + 1)

    def samples(self) -> List[dict]:
        with self._lock:
            return [
                {
                    "labels": self._label_dict(k),
                    "buckets": list(self.buckets),
                    "counts": list(s.counts),
                    "sum": s.sum,
                    "count": s.count,
                }
                for k, s in sorted(self._series.items())
            ]

    def clear(self) -> None:
        with self._lock:
            self._series.clear()


def _prometheus_name(name: str) -> str:
    sanitized = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{sanitized}"


def _escape_label_value(value: str) -> str:
    """Exposition-format escaping: backslash, double quote, newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """HELP lines escape backslash and newline (quotes are legal there)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _prometheus_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


_METRIC_CLASSES = {}  # kind -> class, filled below


class MetricsRegistry:
    """Name → metric map with get-or-create accessors and exporters.

    Re-registering an existing name returns the existing metric, provided
    kind and label names match (a mismatch is a configuration error — two
    call sites disagreeing about a metric is a bug worth failing loudly on).
    Label names a metric gained *implicitly* through :meth:`merge` are
    exempt from that equality check: call sites keep registering with the
    original signature.

    Every metric created here shares the registry's re-entrant lock, so
    :meth:`snapshot`, :meth:`merge`, and the exporters see a consistent
    view even while other threads write.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.RLock()

    # -- registration ---------------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, labels: Sequence[str], **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, labels, **kwargs)
                metric._lock = self._lock  # registry-wide consistency
                self._metrics[name] = metric
                return metric
            requested = tuple(labels)
            if not isinstance(metric, cls) or (
                requested != metric.label_names and requested != metric._explicit
            ):
                raise ConfigurationError(
                    f"metric {name!r} already registered as {metric.kind} "
                    f"with labels {list(metric.label_names)}."
                )
            return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    # -- access ---------------------------------------------------------------

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def __iter__(self) -> Iterator[_Metric]:
        with self._lock:
            return iter([self._metrics[n] for n in sorted(self._metrics)])

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Drop every registered metric (a fresh registry)."""
        with self._lock:
            self._metrics.clear()

    # -- cross-process aggregation --------------------------------------------

    def snapshot(self) -> TelemetrySnapshot:
        """Capture every metric series as plain picklable data."""
        with self._lock:
            metrics: Dict[str, dict] = {}
            for m in self:
                entry: Dict[str, object] = {
                    "kind": m.kind,
                    "help": m.help,
                    "labels": list(m.label_names),
                    "explicit": list(m._explicit),
                }
                if isinstance(m, Histogram):
                    entry["buckets"] = list(m.buckets)
                    entry["series"] = [
                        {k: v for k, v in s.items() if k != "buckets"}
                        for s in m.samples()
                    ]
                else:
                    entry["series"] = m.samples()
                metrics[m.name] = entry
            return TelemetrySnapshot(metrics=metrics)

    def merge(
        self,
        snapshot,
        *,
        extra_labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Fold a :class:`TelemetrySnapshot` (or its dict form) into this
        registry: counters sum, gauges last-write, histograms add
        bucket-wise (edges must match).

        ``extra_labels`` (e.g. ``{"shard": "3"}``) are grafted onto every
        merged series as *implicit* labels — pre-existing local series read
        as ``""`` for them, and local writers keep their original label
        signature.
        """
        if isinstance(snapshot, TelemetrySnapshot):
            payload = snapshot.metrics
        elif isinstance(snapshot, Mapping):
            payload = snapshot.get("metrics", snapshot)
        else:
            raise ConfigurationError(
                f"cannot merge {type(snapshot).__name__!r}; want a "
                "TelemetrySnapshot or its dict form."
            )
        extra = {str(k): str(v) for k, v in dict(extra_labels or {}).items()}
        with self._lock:
            for name, data in payload.items():
                self._merge_metric(name, data, extra)

    def _merge_metric(self, name: str, data: Mapping, extra: Dict[str, str]) -> None:
        kind = data["kind"]
        cls = _METRIC_CLASSES.get(kind)
        if cls is None:
            raise ConfigurationError(f"metric {name!r}: unknown kind {kind!r}.")
        explicit = tuple(data.get("explicit", data.get("labels", ())))
        metric = self._metrics.get(name)
        if metric is None:
            kwargs = {"buckets": data["buckets"]} if kind == "histogram" else {}
            metric = self._get_or_create(
                cls, name, str(data.get("help", "")), explicit, **kwargs
            )
        elif not isinstance(metric, cls):
            raise ConfigurationError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"cannot merge {kind} series into it."
            )
        elif kind == "histogram" and tuple(data["buckets"]) != metric.buckets:
            raise ConfigurationError(
                f"histogram {name!r}: bucket edges differ between processes; "
                "refusing a lossy merge."
            )
        implicit = [label for label in data.get("labels", ()) if label not in explicit]
        metric._extend_labels((*implicit, *extra))
        for s in data.get("series", ()):
            labels = dict(s["labels"])
            labels.update(extra)
            key = metric._key(labels)
            if kind == "counter":
                value = float(s["value"])
                if value < 0:
                    raise ConfigurationError(
                        f"counter {name!r}: refusing to merge negative "
                        f"delta {value!r}."
                    )
                metric._values[key] = metric._values.get(key, 0.0) + value
            elif kind == "gauge":
                metric._values[key] = float(s["value"])
            else:
                series = metric._series.get(key)
                if series is None:
                    series = metric._series[key] = _HistogramSeries(
                        len(metric.buckets) + 1
                    )
                counts = s["counts"]
                if len(counts) != len(series.counts):
                    raise ConfigurationError(
                        f"histogram {name!r}: bucket count mismatch on merge."
                    )
                for i, c in enumerate(counts):
                    series.counts[i] += int(c)
                series.sum += float(s["sum"])
                series.count += int(s["count"])

    # -- exporters ------------------------------------------------------------

    def as_dict(self) -> dict:
        """Plain-builtin snapshot: ``{name: {kind, help, samples}}``."""
        with self._lock:
            return {
                m.name: {"kind": m.kind, "help": m.help, "samples": m.samples()}
                for m in self
            }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every metric."""
        with self._lock:
            lines: List[str] = []
            for metric in self:
                pname = _prometheus_name(metric.name)
                if metric.help:
                    lines.append(f"# HELP {pname} {_escape_help(metric.help)}")
                lines.append(f"# TYPE {pname} {metric.kind}")
                if isinstance(metric, Histogram):
                    for s in metric.samples():
                        cumulative = 0
                        for edge, n in zip(
                            [*metric.buckets, float("inf")], s["counts"]
                        ):
                            cumulative += n
                            le = "+Inf" if edge == float("inf") else repr(edge)
                            labelled = _prometheus_labels(s["labels"], 'le="%s"' % le)
                            lines.append(f"{pname}_bucket{labelled} {cumulative}")
                        lines.append(
                            f"{pname}_sum{_prometheus_labels(s['labels'])} {s['sum']!r}"
                        )
                        lines.append(
                            f"{pname}_count{_prometheus_labels(s['labels'])} "
                            f"{s['count']}"
                        )
                else:
                    for s in metric.samples():
                        lines.append(
                            f"{pname}{_prometheus_labels(s['labels'])} {s['value']:g}"
                        )
            return "\n".join(lines) + ("\n" if lines else "")


_METRIC_CLASSES.update(counter=Counter, gauge=Gauge, histogram=Histogram)
