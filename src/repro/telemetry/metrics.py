"""Metric primitives and the registry they live in.

Three metric kinds, mirroring the Prometheus data model the
``stream_pipeline`` reference instrumentation uses, but with zero external
dependencies and deliberately *deterministic* values:

* :class:`Counter` — monotone event tallies (samples processed, drifts
  flagged, cache hits);
* :class:`Gauge` — last-written level (current centroid drift distance);
* :class:`Histogram` — observations bucketed over **fixed edges** chosen at
  registration time (span durations).

No metric value ever depends on the wall clock: counters and gauges hold
whatever the instrumented code fed them, and the only time source anywhere
in :mod:`repro.telemetry` is the *monotonic* ``time.perf_counter`` used for
span durations. Re-running a deterministic experiment therefore reproduces
every counter and gauge bit-for-bit (histograms of durations are the one
machine-dependent signal, and they are clearly labelled as such).

Metrics may declare label names; each distinct label-value combination is
an independent series, exactly as in Prometheus exposition.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..utils.exceptions import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
]

#: Fixed duration-histogram edges (seconds): 10 µs … 30 s, roughly log-spaced.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0
)

_LabelKey = Tuple[str, ...]


class _Metric:
    """Shared plumbing: name, help text, label handling, series storage."""

    kind = "metric"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        if not name:
            raise ConfigurationError("metric name must be non-empty.")
        self.name = str(name)
        self.help = str(help)
        self.label_names: Tuple[str, ...] = tuple(labels)

    def _key(self, labels: Mapping[str, object]) -> _LabelKey:
        if not self.label_names:
            if labels:
                raise ConfigurationError(
                    f"metric {self.name!r} takes no labels, got {sorted(labels)}."
                )
            return ()
        try:
            return tuple(str(labels[k]) for k in self.label_names)
        except KeyError as exc:
            raise ConfigurationError(
                f"metric {self.name!r} requires labels {list(self.label_names)}."
            ) from exc

    def _label_dict(self, key: _LabelKey) -> Dict[str, str]:
        return dict(zip(self.label_names, key))


class Counter(_Metric):
    """Monotonically increasing tally, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (must be >= 0) to this series."""
        if amount < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease.")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current tally of one series (0 if never incremented)."""
        return self._values.get(self._key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    def samples(self) -> List[dict]:
        return [
            {"labels": self._label_dict(k), "value": v}
            for k, v in sorted(self._values.items())
        ]

    def clear(self) -> None:
        self._values.clear()


class Gauge(_Metric):
    """Last-written level; supports set/inc/dec."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    def samples(self) -> List[dict]:
        return [
            {"labels": self._label_dict(k), "value": v}
            for k, v in sorted(self._values.items())
        ]

    def clear(self) -> None:
        self._values.clear()


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Observations over fixed, strictly increasing bucket edges.

    An observation lands in the first bucket whose upper edge is >= the
    value; values above the last edge land in the implicit ``+Inf``
    overflow bucket. Edges are immutable after registration — summaries
    therefore never shift retroactively.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        edges = tuple(float(b) for b in buckets)
        if not edges or any(nxt <= prev for nxt, prev in zip(edges[1:], edges)):
            raise ConfigurationError(
                f"histogram {self.name!r} needs strictly increasing bucket edges."
            )
        self.buckets: Tuple[float, ...] = edges
        self._series: Dict[_LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets) + 1)
        # bisect_left ⇒ a value equal to an edge lands in that edge's
        # bucket (Prometheus ``le`` is an inclusive upper bound).
        series.counts[bisect_left(self.buckets, value)] += 1
        series.sum += value
        series.count += 1

    def _get(self, labels: Mapping[str, object]) -> Optional[_HistogramSeries]:
        return self._series.get(self._key(labels))

    def count(self, **labels: object) -> int:
        s = self._get(labels)
        return s.count if s else 0

    def sum(self, **labels: object) -> float:
        s = self._get(labels)
        return s.sum if s else 0.0

    def mean(self, **labels: object) -> float:
        s = self._get(labels)
        return s.sum / s.count if s and s.count else 0.0

    def bucket_counts(self, **labels: object) -> List[int]:
        """Per-bucket (non-cumulative) counts; last entry is the overflow."""
        s = self._get(labels)
        return list(s.counts) if s else [0] * (len(self.buckets) + 1)

    def samples(self) -> List[dict]:
        return [
            {
                "labels": self._label_dict(k),
                "buckets": list(self.buckets),
                "counts": list(s.counts),
                "sum": s.sum,
                "count": s.count,
            }
            for k, s in sorted(self._series.items())
        ]

    def clear(self) -> None:
        self._series.clear()


def _prometheus_name(name: str) -> str:
    sanitized = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{sanitized}"


def _prometheus_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class MetricsRegistry:
    """Name → metric map with get-or-create accessors and exporters.

    Re-registering an existing name returns the existing metric, provided
    kind and label names match (a mismatch is a configuration error — two
    call sites disagreeing about a metric is a bug worth failing loudly on).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    # -- registration ---------------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, labels: Sequence[str], **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls) or metric.label_names != tuple(labels):
            raise ConfigurationError(
                f"metric {name!r} already registered as {metric.kind} "
                f"with labels {list(metric.label_names)}."
            )
        return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    # -- access ---------------------------------------------------------------

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __iter__(self) -> Iterator[_Metric]:
        return iter([self._metrics[n] for n in self.names()])

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Drop every registered metric (a fresh registry)."""
        self._metrics.clear()

    # -- exporters ------------------------------------------------------------

    def as_dict(self) -> dict:
        """Plain-builtin snapshot: ``{name: {kind, help, samples}}``."""
        return {
            m.name: {"kind": m.kind, "help": m.help, "samples": m.samples()}
            for m in self
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every metric."""
        lines: List[str] = []
        for metric in self:
            pname = _prometheus_name(metric.name)
            if metric.help:
                lines.append(f"# HELP {pname} {metric.help}")
            lines.append(f"# TYPE {pname} {metric.kind}")
            if isinstance(metric, Histogram):
                for s in metric.samples():
                    cumulative = 0
                    for edge, n in zip(
                        [*metric.buckets, float("inf")], s["counts"]
                    ):
                        cumulative += n
                        le = "+Inf" if edge == float("inf") else repr(edge)
                        labelled = _prometheus_labels(s["labels"], 'le="%s"' % le)
                        lines.append(f"{pname}_bucket{labelled} {cumulative}")
                    lines.append(
                        f"{pname}_sum{_prometheus_labels(s['labels'])} {s['sum']!r}"
                    )
                    lines.append(
                        f"{pname}_count{_prometheus_labels(s['labels'])} {s['count']}"
                    )
            else:
                for s in metric.samples():
                    lines.append(
                        f"{pname}{_prometheus_labels(s['labels'])} {s['value']:g}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")
