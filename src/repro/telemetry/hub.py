"""The :class:`Telemetry` hub and the process-wide default instance.

A hub bundles a :class:`~repro.telemetry.metrics.MetricsRegistry`, a list
of event sinks, and a span tracer behind **one** ``enabled`` flag. Every
instrumented hot path in the library guards its work with a single
``tel.enabled`` check, so with telemetry off (the default) instrumentation
costs one attribute load and a branch — the overhead benchmark
(``benchmarks/bench_telemetry_overhead.py``) holds this under 5 % on a
pure-predict stream.

Components pick up the **module-level default hub** at construction time
(:func:`get_telemetry`); :func:`configure` mutates that default *in
place*, so enabling telemetry affects pipelines that already exist. A
component's ``telemetry`` attribute can also be reassigned to a private
:class:`Telemetry` instance for isolated capture.

Typical session::

    from repro.telemetry import configure, get_telemetry
    from repro.telemetry.sinks import JsonlSink

    configure(enabled=True, sinks=[JsonlSink("trace.jsonl")])
    ...  # run experiments; events/metrics accumulate on the default hub
    print(get_telemetry().registry.to_prometheus())
    configure(enabled=False, sinks=[], reset=True)   # back to no-op
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, List, Mapping, Optional, Sequence

from .events import Event
from .metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry
from .sinks import EventSink
from .snapshot import TelemetrySnapshot

__all__ = ["Telemetry", "Span", "get_telemetry", "configure"]


class _NullSpan:
    """Zero-cost context manager returned by ``span()`` when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """Timed region: duration goes to ``span.<name>.seconds`` + one event.

    Durations come from ``time.perf_counter`` (monotonic); the recorded
    event carries the duration and any fields given at entry. Nested and
    concurrent spans are independent objects, so they compose freely.
    """

    __slots__ = ("_tel", "name", "fields", "seconds", "_t0")

    def __init__(self, tel: "Telemetry", name: str, fields: dict) -> None:
        self._tel = tel
        self.name = name
        self.fields = fields
        self.seconds: Optional[float] = None
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, *exc: object) -> bool:
        self.seconds = time.perf_counter() - self._t0
        tel = self._tel
        tel.registry.histogram(
            f"span.{self.name}.seconds",
            "span durations (monotonic seconds)",
            buckets=DEFAULT_TIME_BUCKETS,
        ).observe(self.seconds)
        tel.emit(
            "span",
            span=self.name,
            seconds=self.seconds,
            ok=exc_type is None,
            **self.fields,
        )
        return False


class Telemetry:
    """Metrics registry + event tracer + sinks behind one ``enabled`` flag.

    Parameters
    ----------
    enabled:
        Start enabled. The default hub starts disabled (no-op).
    sinks:
        Initial event sinks (see :mod:`repro.telemetry.sinks`).

    Notes
    -----
    Instrumented call sites **must** guard with ``if tel.enabled:`` before
    touching the registry so the disabled path stays branch-cheap;
    :meth:`emit` and :meth:`span` additionally self-guard, so they are
    safe to call unguarded from cold paths.
    """

    def __init__(self, *, enabled: bool = False, sinks: Iterable[EventSink] = ()) -> None:
        self.enabled = bool(enabled)
        self.registry = MetricsRegistry()
        self._sinks: List[EventSink] = list(sinks)
        self._seq = 0
        self._t0 = time.perf_counter()
        self._emit_lock = threading.Lock()
        self._delta_baseline: Optional[TelemetrySnapshot] = None

    # -- hubs are shared infrastructure, never cloned with their owners ------

    def __deepcopy__(self, memo: dict) -> "Telemetry":
        return self

    def __copy__(self) -> "Telemetry":
        return self

    def __reduce__(self):
        # Pickling a component (e.g. shipping a pipeline to a worker
        # process) must not drag file-handle sinks along: the unpickled
        # side re-attaches to *its* process-wide default hub.
        return (get_telemetry, ())

    # -- sinks ----------------------------------------------------------------

    @property
    def sinks(self) -> List[EventSink]:
        return list(self._sinks)

    def add_sink(self, sink: EventSink) -> EventSink:
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: EventSink) -> None:
        self._sinks.remove(sink)

    # -- events ---------------------------------------------------------------

    def emit(self, name: str, /, **fields: object) -> Optional[Event]:
        """Record one named event; no-op (returns None) when disabled.

        ``name`` is positional-only so a field may itself be called
        ``name`` (e.g. ``emit("cell_started", name=spec.name)``).
        """
        if not self.enabled:
            return None
        with self._emit_lock:
            self._seq += 1
            event = Event(
                name=name,
                seq=self._seq,
                t=time.perf_counter() - self._t0,
                fields=fields,
            )
            self.registry.counter(
                "telemetry.events", "events emitted by name", labels=("name",)
            ).inc(name=name)
            for sink in self._sinks:
                sink.handle(event)
        return event

    # -- spans ----------------------------------------------------------------

    def span(self, name: str, **fields: object):
        """Context manager timing a region; a shared no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, fields)

    # -- metric accessors (registry passthrough) ------------------------------

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return self.registry.counter(name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return self.registry.gauge(name, help, labels)

    def histogram(self, name: str, help: str = "", labels: Sequence[str] = (), **kw):
        return self.registry.histogram(name, help, labels, **kw)

    # -- cross-process aggregation --------------------------------------------

    def snapshot(self) -> TelemetrySnapshot:
        """Plain-data capture of every metric series (picklable)."""
        return self.registry.snapshot()

    def snapshot_delta(self) -> TelemetrySnapshot:
        """What changed since the previous :meth:`snapshot_delta` call.

        The first call returns everything accumulated so far; workers call
        this once per flush so the parent only ever receives each
        increment once (merging all deltas reconstructs the totals).
        """
        snap = self.registry.snapshot()
        base, self._delta_baseline = self._delta_baseline, snap
        return snap.diff(base)

    def merge(
        self,
        snapshot,
        *,
        extra_labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Fold a snapshot from another process/hub into this registry."""
        self.registry.merge(snapshot, extra_labels=extra_labels)

    # -- lifecycle ------------------------------------------------------------

    def enable(self) -> "Telemetry":
        self.enabled = True
        return self

    def disable(self) -> "Telemetry":
        self.enabled = False
        return self

    def reset(self) -> "Telemetry":
        """Drop all metrics and restart the event clock (sinks are kept)."""
        self.registry.reset()
        self._seq = 0
        self._t0 = time.perf_counter()
        self._delta_baseline = None
        return self

    def close(self) -> None:
        """Close every sink (JSONL files etc.); the hub stays usable."""
        for sink in self._sinks:
            sink.close()


#: The process-wide default hub every component adopts at construction.
_DEFAULT = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-wide default hub (disabled until :func:`configure`)."""
    return _DEFAULT


def configure(
    *,
    enabled: Optional[bool] = None,
    sinks: Optional[Iterable[EventSink]] = None,
    reset: bool = False,
) -> Telemetry:
    """Mutate the default hub in place; returns it.

    ``enabled``/``sinks`` replace the respective setting when given
    (``sinks`` replaces the whole list; existing sinks are *not* closed —
    close them via ``get_telemetry().close()`` first if they own files).
    ``reset=True`` clears accumulated metrics and restarts the clock.
    Already-constructed pipelines, detectors, and runners observe the
    change immediately because they hold a reference to this hub.
    """
    if reset:
        _DEFAULT.reset()
    if sinks is not None:
        _DEFAULT._sinks = list(sinks)
    if enabled is not None:
        _DEFAULT.enabled = bool(enabled)
    return _DEFAULT
