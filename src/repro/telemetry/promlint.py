"""A promtool-style lint pass over Prometheus text exposition.

``promtool check metrics`` is the reference gate for exposition output,
but it is a Go binary we cannot assume on CI. This module re-implements
the structural checks that matter for *correctness* of the text format
(version 0.0.4), so the test suite can assert that every metric the
codebase registers serialises to something a real Prometheus server would
scrape without complaint:

* metric names match ``[a-zA-Z_:][a-zA-Z0-9_:]*``;
* label names match ``[a-zA-Z_][a-zA-Z0-9_]*`` and never start ``__``;
* label values are properly quoted/escaped (no raw newline or quote);
* ``# TYPE`` appears before the first sample of its metric and at most
  once per metric;
* sample values parse as floats (``+Inf``/``-Inf``/``NaN`` allowed);
* no duplicate series (same name + identical label set);
* histograms: ``le`` buckets are cumulative (non-decreasing), include a
  ``+Inf`` bucket equal to ``_count``, and carry ``_sum``/``_count``.

:func:`lint_prometheus` returns a list of human-readable problem strings
— empty means the exposition passed.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

__all__ = ["lint_prometheus"]

_METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One label pair: name="value" with \\ \" \n escapes allowed inside.
_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\[\\"n])*)"')
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)(?:\s+(-?\d+))?$"
)


def _parse_labels(raw: str, line_no: int, problems: List[str]) -> Optional[Dict[str, str]]:
    body = raw[1:-1]
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(body):
        match = _PAIR_RE.match(body, pos)
        if match is None:
            problems.append(f"line {line_no}: malformed label set {raw!r}")
            return None
        name, value = match.group(1), match.group(2)
        if name.startswith("__"):
            problems.append(f"line {line_no}: reserved label name {name!r}")
        if name in labels:
            problems.append(f"line {line_no}: duplicate label name {name!r}")
        labels[name] = value
        pos = match.end()
        if pos < len(body):
            if body[pos] != ",":
                problems.append(f"line {line_no}: malformed label set {raw!r}")
                return None
            pos += 1
    return labels


def _parse_value(raw: str) -> Optional[float]:
    try:
        return float(raw)
    except ValueError:
        return None


def _base_name(name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


class _HistogramSeriesCheck:
    def __init__(self) -> None:
        self.buckets: List[Tuple[float, float]] = []  # (le, cumulative)
        self.sum: Optional[float] = None
        self.count: Optional[float] = None


def lint_prometheus(text: str) -> List[str]:
    """Lint exposition ``text``; return a list of problems (empty = clean)."""
    problems: List[str] = []
    types: Dict[str, str] = {}
    sampled: set = set()  # metric base names that already emitted samples
    seen_series: set = set()
    histograms: Dict[Tuple[str, tuple], _HistogramSeriesCheck] = {}

    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("TYPE", "HELP"):
                if len(parts) < 3:
                    problems.append(f"line {line_no}: malformed {parts[1]} line")
                    continue
                name = parts[2]
                if not _METRIC_RE.match(name):
                    problems.append(
                        f"line {line_no}: invalid metric name {name!r} in {parts[1]}"
                    )
                if parts[1] == "TYPE":
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                        problems.append(
                            f"line {line_no}: unknown TYPE {kind!r} for {name}"
                        )
                    if name in types:
                        problems.append(f"line {line_no}: duplicate TYPE for {name}")
                    if name in sampled:
                        problems.append(
                            f"line {line_no}: TYPE for {name} after its samples"
                        )
                    types[name] = kind
            continue

        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {line_no}: unparseable sample line {line!r}")
            continue
        name, raw_labels, raw_value = match.group(1), match.group(2), match.group(3)
        labels = (
            _parse_labels(raw_labels, line_no, problems)
            if raw_labels
            else {}
        )
        if labels is None:
            continue
        value = _parse_value(raw_value)
        if value is None:
            problems.append(f"line {line_no}: unparseable value {raw_value!r}")
            continue

        base = _base_name(name)
        kind = types.get(base) if types.get(base) == "histogram" else types.get(name)
        if types.get(base) == "histogram":
            sampled.add(base)
        else:
            base = name
            sampled.add(name)

        series_id = (name, tuple(sorted(labels.items())))
        if series_id in seen_series:
            problems.append(f"line {line_no}: duplicate series {line!r}")
        seen_series.add(series_id)

        if types.get(base) == "histogram":
            key_labels = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            check = histograms.setdefault(
                (base, key_labels), _HistogramSeriesCheck()
            )
            if name == f"{base}_bucket":
                if "le" not in labels:
                    problems.append(f"line {line_no}: bucket without le label")
                else:
                    le = _parse_value(labels["le"])
                    if le is None:
                        problems.append(
                            f"line {line_no}: unparseable le {labels['le']!r}"
                        )
                    else:
                        check.buckets.append((le, value))
            elif name == f"{base}_sum":
                check.sum = value
            elif name == f"{base}_count":
                check.count = value
        elif kind is None:
            problems.append(f"line {line_no}: sample {name!r} has no TYPE")

    for (base, key_labels), check in histograms.items():
        where = f"histogram {base}{dict(key_labels) if key_labels else ''}"
        if not check.buckets:
            problems.append(f"{where}: no buckets")
            continue
        les = [le for le, _ in check.buckets]
        if sorted(les) != les:
            problems.append(f"{where}: le edges out of order")
        counts = [c for _, c in check.buckets]
        if any(b < a for a, b in zip(counts, counts[1:])):
            problems.append(f"{where}: bucket counts not cumulative")
        if not math.isinf(les[-1]):
            problems.append(f"{where}: missing +Inf bucket")
        if check.count is None:
            problems.append(f"{where}: missing _count")
        elif math.isinf(les[-1]) and counts[-1] != check.count:
            problems.append(f"{where}: +Inf bucket != _count")
        if check.sum is None:
            problems.append(f"{where}: missing _sum")
    return problems
