"""Live metrics endpoint: stdlib ``http.server``, zero new dependencies.

:class:`MetricsServer` serves the process-wide telemetry hub over HTTP
from a daemon thread, so a running fleet (``python -m repro fleet
--serve-metrics PORT``) can be scraped while it works:

* ``GET /metrics`` — Prometheus text exposition (version 0.0.4) of every
  registered metric, straight from ``registry.to_prometheus()``;
* ``GET /health``  — JSON from the configured ``health_provider`` (see
  :func:`ladder_health` for the guard-ladder flavour); 200 while healthy,
  503 once degraded;
* ``GET /fleet``   — JSON from the configured ``fleet_provider``
  (per-device :class:`~repro.fleet.manager.FleetStats`).

The server binds ``127.0.0.1`` by default and uses a
``ThreadingHTTPServer`` so a slow scraper cannot wedge the fleet; the
telemetry registry's internal lock makes concurrent scrapes safe against
in-flight metric writes. Port ``0`` asks the OS for a free port (the
bound port is on :attr:`MetricsServer.port` after :meth:`start`).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Tuple

from .hub import Telemetry, get_telemetry

__all__ = ["EndpointSuite", "MetricsServer", "ladder_health"]

#: Content type mandated by Prometheus text exposition 0.0.4.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_TEXT = "text/plain; charset=utf-8"
_JSON = "application/json"


def ladder_health(ladder, sentinel=None) -> Callable[[], dict]:
    """Health provider reading a guard :class:`DegradationLadder`.

    Reports the ladder's current level by name and number plus (when a
    ``NumericHealthSentinel`` is given) the sentinel's trip count; the
    endpoint returns 503 whenever the ladder has left HEALTHY, which maps
    directly onto container liveness probes.
    """

    def provider() -> dict:
        level = ladder.level
        body = {
            "status": "ok" if int(level) == 0 else "degraded",
            "level": getattr(level, "name", str(level)),
            "level_value": int(level),
        }
        if sentinel is not None:
            body["sentinel_trips"] = int(getattr(sentinel, "n_trips", 0))
        return body

    return provider


class EndpointSuite:
    """Render the observability GET endpoints to ``(status, ctype, body)``.

    The routing/rendering core shared by :class:`MetricsServer` (thread
    per request) and the serving front-end's asyncio loop
    (:class:`repro.serving.server.IngestServer`) — both answer
    ``/metrics``, ``/health``, ``/fleet`` and ``/`` identically because
    both delegate here. Providers run on whatever thread calls
    :meth:`handle`; hand them thread-safe state only.
    """

    def __init__(
        self,
        telemetry: Optional[Telemetry] = None,
        *,
        health_provider: Optional[Callable[[], dict]] = None,
        fleet_provider: Optional[Callable[[], dict]] = None,
        index_text: str = "repro metrics endpoint: /metrics /health /fleet\n",
    ) -> None:
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.health_provider = health_provider
        self.fleet_provider = fleet_provider
        self.index_text = index_text

    def handle(self, raw_path: str) -> Tuple[int, str, str]:
        """Route one GET path; returns ``(status, content_type, body)``."""
        path = raw_path.split("?", 1)[0].rstrip("/") or "/"
        tel = self.telemetry
        if tel.enabled:
            tel.counter(
                "metrics_server.requests", "scrapes served by path", labels=("path",)
            ).inc(path=path)
        if path == "/metrics":
            return 200, PROMETHEUS_CONTENT_TYPE, tel.registry.to_prometheus()
        if path == "/health":
            return self._render_json(self.health_provider, healthy_key="status")
        if path == "/fleet":
            return self._render_json(self.fleet_provider)
        if path == "/":
            return 200, _TEXT, self.index_text
        return 404, _TEXT, "not found\n"

    def _render_json(
        self, provider, *, healthy_key: Optional[str] = None
    ) -> Tuple[int, str, str]:
        if provider is None:
            return 404, _TEXT, "not configured\n"
        try:
            body = provider()
        except Exception as exc:  # provider must never take the server down
            return 503, _JSON, json.dumps({"status": "error", "error": str(exc)}) + "\n"
        status = 200
        if healthy_key is not None and body.get(healthy_key) not in (None, "ok"):
            status = 503
        return status, _JSON, json.dumps(body, sort_keys=True) + "\n"


class _Handler(BaseHTTPRequestHandler):
    # Set per-server via the factory in MetricsServer._make_handler.
    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        srv: "MetricsServer" = self.server.metrics_server  # type: ignore[attr-defined]
        status, ctype, body = srv.endpoints.handle(self.path)
        self._reply(status, body, ctype)

    def _reply(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: object) -> None:
        # Scrapes are periodic; stderr chatter would drown the CLI output.
        pass


class MetricsServer:
    """Daemon-thread HTTP server over a :class:`Telemetry` hub.

    Parameters
    ----------
    port:
        TCP port to bind; ``0`` picks a free one (see :attr:`port`).
    host:
        Bind address, loopback by default — a fleet box exposing metrics
        beyond localhost should make that an explicit decision.
    telemetry:
        Hub to serve; defaults to the process-wide hub.
    health_provider / fleet_provider:
        Zero-arg callables returning JSON-able dicts for ``/health`` and
        ``/fleet``; endpoints answer 404 until configured. Providers run
        on the *server* thread — hand them thread-safe state only (the
        in-process :class:`FleetManager` stats are; a
        :class:`ShardedFleetManager`'s worker pipes are not, so sharded
        fleets serve the last aggregated stats instead).

    Usable as a context manager (``with MetricsServer(0) as srv:``).
    """

    def __init__(
        self,
        port: int = 0,
        *,
        host: str = "127.0.0.1",
        telemetry: Optional[Telemetry] = None,
        health_provider: Optional[Callable[[], dict]] = None,
        fleet_provider: Optional[Callable[[], dict]] = None,
    ) -> None:
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.endpoints = EndpointSuite(
            self.telemetry,
            health_provider=health_provider,
            fleet_provider=fleet_provider,
        )
        self._requested = (host, int(port))
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def health_provider(self) -> Optional[Callable[[], dict]]:
        return self.endpoints.health_provider

    @health_provider.setter
    def health_provider(self, provider: Optional[Callable[[], dict]]) -> None:
        self.endpoints.health_provider = provider

    @property
    def fleet_provider(self) -> Optional[Callable[[], dict]]:
        return self.endpoints.fleet_provider

    @fleet_provider.setter
    def fleet_provider(self, provider: Optional[Callable[[], dict]]) -> None:
        self.endpoints.fleet_provider = provider

    # -- lifecycle ------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0] if self._httpd else self._requested[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1] if self._httpd else self._requested[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer(self._requested, _Handler)
        httpd.daemon_threads = True
        httpd.metrics_server = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
