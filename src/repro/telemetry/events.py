"""Structured telemetry events.

An :class:`Event` is one timestamped, named occurrence with arbitrary
key-value fields — ``drift_detected(index=843)``, ``cell_finished
(name="Proposed", attempt=1)``. Events are ordered by a per-hub sequence
number; the ``t`` field is *monotonic* seconds since the hub was created
(never wall-clock, so traces are diffable across runs and immune to clock
adjustments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np

__all__ = ["Event"]


def jsonable_fields(fields: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce field values to JSON-safe builtins (numpy scalars included)."""
    out: Dict[str, Any] = {}
    for k, v in fields.items():
        if isinstance(v, (np.bool_,)):
            out[k] = bool(v)
        elif isinstance(v, np.integer):
            out[k] = int(v)
        elif isinstance(v, np.floating):
            out[k] = float(v)
        elif isinstance(v, (bool, int, float, str)) or v is None:
            out[k] = v
        else:
            out[k] = repr(v)
    return out


@dataclass(frozen=True)
class Event:
    """One telemetry occurrence.

    Attributes
    ----------
    name:
        Event type (``drift_detected``, ``window_opened``, ``span`` …).
    seq:
        Per-hub monotone sequence number (1-based).
    t:
        Monotonic seconds since the emitting hub was created.
    fields:
        Free-form payload; values should be scalars (they are coerced to
        JSON-safe builtins on serialisation).
    """

    name: str
    seq: int
    t: float
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        """Flat JSON-safe dict (field keys merged next to the envelope)."""
        return {
            "event": self.name,
            "seq": self.seq,
            "t": round(self.t, 9),
            **jsonable_fields(self.fields),
        }
