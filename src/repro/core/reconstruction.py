"""Model reconstruction — Algorithm 2 with Algorithms 3/4 as sub-steps.

When Algorithm 1 raises the drift flag, every subsequent sample is fed to
``Reconstruct_Model`` until it reports completion. Reconstruction runs four
phases over a budget of ``N`` samples:

1. ``count < n_search`` — **coordinate search**: Init_Coord (Algorithm 3)
   greedily adopts incoming samples as label coordinates so they spread
   out over the *new* distribution (k-means++-style seeding);
2. ``count < n_update`` — **coordinate refinement**: Update_Coord
   (Algorithm 4) runs sequential k-means steps ("since there is a
   possibility that initial coordinates selected by Init_Coord() are
   outliers, the centroids are further refined");
3. ``count < N/2`` — **centroid-labelled retraining**: the sample's label
   is the L1-nearest coordinate; the corresponding OS-ELM instance trains
   sequentially (Algorithm 2 lines 8-9 — "model retraining *without*
   label prediction" in Table 6);
4. ``count < N`` — **self-labelled retraining**: the label comes from the
   (partially retrained) discriminative model's own argmin-score
   prediction (lines 11-12 — "model retraining *with* label prediction").

Phase layout note: as printed, Algorithm 2 uses independent ``if`` s, so a
sample with ``count < N/2`` would train the model twice (once per labelling
rule). Table 6 however prices the two retraining modes as *separate*
per-sample costs, which implies disjoint phases; we therefore run phase 4
only for ``count ≥ N/2`` (and phases 1-2 as printed: they do overlap with
phase 3 by construction, since ``n_search < n_update ≤ N/2``). The
overlapping-literal behaviour is available via ``literal_overlap=True``.

On entry the reconstructor resets per-label counts to 1 (otherwise
Update_Coord could not move coordinates that carry thousands of training
samples of inertia) and — by default — resets each OS-ELM instance's ``P``
matrix to its ridge prior so sequential retraining adapts at initial-phase
speed (covariance resetting, standard for RLS tracking). On completion the
recent coordinates are promoted to the new trained centroids so the drift
rate re-anchors at zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..oselm.ensemble import MultiInstanceModel
from ..utils.exceptions import ConfigurationError
from ..utils.hooks import default_telemetry
from ..utils.validation import check_positive
from .coords import CentroidSet

if TYPE_CHECKING:  # type-only: core has no runtime telemetry dependency
    from ..telemetry import Telemetry

__all__ = ["ReconstructionStep", "ModelReconstructor"]


@dataclass(frozen=True)
class ReconstructionStep:
    """Outcome of feeding one sample to the reconstructor.

    ``still_reconstructing`` mirrors Algorithm 2's return value (True while
    the drift flag should stay raised). ``phase`` ∈ {"search", "update",
    "train_centroid", "train_predict", "finish"} names the dominant phase
    this step. ``label`` is the label used for training this sample (-1
    when the sample trained nothing, e.g. the final "finish" step).
    """

    still_reconstructing: bool
    phase: str
    label: int
    count: int


class ModelReconstructor:
    """Stateful Reconstruct_Model (Algorithm 2).

    Parameters
    ----------
    model:
        The multi-instance OS-ELM discriminative model to retrain.
    centroids:
        Shared coordinate state (the same object Algorithm 1 updates).
    n_total:
        ``N`` — samples consumed per reconstruction.
    n_search:
        ``N_search`` — Init_Coord budget (must be < ``n_update``).
    n_update:
        ``N_update`` — Update_Coord budget (must be ≤ ``N/2``).
    reset_covariance:
        Reset each instance's ``P`` to the ridge prior at reconstruction
        start (fast re-adaptation; see module docstring).
    literal_overlap:
        Run Algorithm 2's training blocks with the printed overlapping
        ``if`` semantics instead of disjoint phases.
    """

    def __init__(
        self,
        model: MultiInstanceModel,
        centroids: CentroidSet,
        *,
        n_total: int = 400,
        n_search: Optional[int] = None,
        n_update: Optional[int] = None,
        reset_covariance: bool = True,
        literal_overlap: bool = False,
    ) -> None:
        check_positive(n_total, "n_total")
        if n_total < 4:
            raise ConfigurationError("n_total must be >= 4.")
        self.model = model
        self.centroids = centroids
        self.n_total = int(n_total)
        self.n_search = int(n_search) if n_search is not None else max(
            2 * centroids.n_labels, self.n_total // 10
        )
        self.n_update = (
            int(n_update) if n_update is not None else (3 * self.n_total) // 8
        )
        if not 0 < self.n_search < self.n_update <= self.n_total // 2:
            raise ConfigurationError(
                f"need 0 < n_search ({self.n_search}) < n_update ({self.n_update})"
                f" <= n_total/2 ({self.n_total // 2})."
            )
        self.reset_covariance = bool(reset_covariance)
        self.literal_overlap = bool(literal_overlap)
        self.count = 0
        self.n_reconstructions = 0
        self._active = False
        #: telemetry hub (the process default; reassign for private capture)
        self.telemetry: Telemetry = default_telemetry()

    @property
    def is_active(self) -> bool:
        """True between the first sample of a reconstruction and its end."""
        return self._active

    # -- lifecycle hooks --------------------------------------------------------------

    def _begin(self) -> None:
        self._active = True
        self.count = 0
        # Coordinates must be movable: a count of 1 gives each label unit
        # inertia, like a freshly-seeded sequential k-means.
        self.centroids.reset_counts(1)
        if self.reset_covariance:
            for inst in self.model.instances:
                core = inst.core
                if core.is_fitted:
                    core.P = np.eye(core.n_hidden) / core.reg

    def _finish(self) -> None:
        self._active = False
        self.count = 0
        self.n_reconstructions += 1
        self.centroids.promote_recent_to_trained()

    def abort(self) -> None:
        """Abandon an in-flight reconstruction without promoting anything.

        The guard runtime calls this when the degradation ladder bypasses
        adaptation mid-reconstruction (the samples driving it are suspect):
        the partially-moved recent coordinates are left un-promoted — the
        next reconstruction re-seeds them — and the run does not count
        toward ``n_reconstructions``. A no-op when idle.
        """
        if not self._active:
            return
        self._active = False
        self.count = 0
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(
                "reconstructor.aborts", "reconstructions abandoned by the guard"
            ).inc()

    # -- checkpoint protocol -----------------------------------------------------------

    def get_state(self) -> dict:
        """Snapshot the reconstruction progress counters.

        The shared model/centroids are snapshotted by their owners; this
        covers only what the reconstructor itself mutates.
        """
        return {
            "count": int(self.count),
            "n_reconstructions": int(self.n_reconstructions),
            "active": bool(self._active),
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot."""
        self.count = int(state["count"])
        self.n_reconstructions = int(state["n_reconstructions"])
        self._active = bool(state["active"])

    def state_nbytes(self) -> int:
        """Three scalar counters — the reconstructor stores no samples."""
        return 3 * 8

    # -- Algorithm 2 -------------------------------------------------------------------

    def process(self, x: np.ndarray) -> ReconstructionStep:
        """Feed one sample; returns whether reconstruction continues.

        Mirrors Algorithm 2: increments ``count``, dispatches the sample
        to the phase-appropriate coordinate and training updates, and
        returns ``False`` (complete) exactly when ``count == N``.
        """
        if not self._active:
            self._begin()
        self.count += 1
        count = self.count
        x = np.asarray(x, dtype=np.float64).ravel()

        phase = "train_predict"
        label = -1
        if count < self.n_search:
            self.centroids.init_coord(x)
            phase = "search"
        if count < self.n_update:
            self.centroids.update_coord(x)
            if phase == "train_predict":
                phase = "update"

        half = self.n_total // 2
        if count < half:
            # Lines 8-9: centroid-labelled training (no model prediction).
            label = self.centroids.nearest_label(x)
            self.model.partial_fit_one(x, label)
            if phase == "train_predict":
                phase = "train_centroid"
            if self.literal_overlap and count < self.n_total:
                label = self.model.partial_fit_one(x)  # second, self-labelled pass
        elif count < self.n_total:
            # Lines 11-12: self-labelled training.
            label = self.model.partial_fit_one(x)
        finished = count >= self.n_total
        tel = self.telemetry
        if tel.enabled:
            reg = tel.registry
            reg.counter(
                "reconstructor.samples",
                "reconstruction samples by phase",
                labels=("phase",),
            ).inc(phase="finish" if finished else phase)
            if finished:
                reg.counter(
                    "reconstructor.reconstructions", "completed reconstructions"
                ).inc()
        if finished:
            # Lines 13-15: budget exhausted — lower the flag; the N-th
            # sample itself is not trained on (count < N is false for it).
            self._finish()
            return ReconstructionStep(False, "finish", label, self.n_total)
        return ReconstructionStep(True, phase, label, count)
