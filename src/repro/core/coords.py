"""Centroid bookkeeping — Algorithms 3 & 4 and the drift-rate distance.

This module owns the paper's per-label coordinate state:

* ``trained`` centroids — frozen means of the initial-training data per
  label (Figure 3(b));
* ``recent`` centroids ``cor`` with per-label sample counts ``num`` —
  sequentially updated from predicted test samples (Figure 3(c)/(d));
* the **drift rate** ``dist = Σ_i Σ_j |cor[i][j] − train_cor[i][j]|``
  (Algorithm 1, line 14) — an L1 distance, cheap on FPU-less MCUs;
* ``init_coord`` (Algorithm 3) — greedy spread-maximising adoption of an
  incoming sample as a label coordinate, inspired by k-means++;
* ``update_coord`` (Algorithm 4) — one sequential k-means step: assign to
  the L1-nearest coordinate, then exact running-mean update.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.validation import as_matrix, as_vector, check_labels, check_positive

__all__ = ["CentroidSet"]


class CentroidSet:
    """Trained + recent centroids for ``C`` labels in ``D`` dimensions.

    Parameters
    ----------
    trained:
        ``(C, D)`` frozen trained centroids.
    counts:
        Initial per-label sample counts ``num`` (Algorithm 1's Require).
        The recent centroids start as copies of the trained ones, so the
        drift rate starts at exactly 0.
    max_count:
        Optional cap on the effective count used in the running-mean
        update. ``None`` keeps the exact arithmetic mean of Algorithm 4;
        a finite cap implements the recency weighting the paper sanctions
        in §3.2 ("assign a higher weight to a newer sample ... so that
        they can represent 'recent' test centroids"): once ``num[c]``
        reaches the cap, each update behaves like an EWMA with weight
        ``1 / (max_count + 1)``, bounding the centroids' inertia on long
        streams.
    """

    def __init__(
        self,
        trained: np.ndarray,
        counts: np.ndarray,
        *,
        max_count: Optional[int] = None,
    ) -> None:
        trained = as_matrix(trained, name="trained")
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (len(trained),):
            raise ConfigurationError(
                f"counts must have shape ({len(trained)},), got {counts.shape}."
            )
        if np.any(counts < 0):
            raise ConfigurationError("counts must be non-negative.")
        if max_count is not None:
            check_positive(max_count, "max_count")
        self.max_count = None if max_count is None else int(max_count)
        self.trained = trained.copy()
        self.trained.setflags(write=False)
        self.recent = trained.copy()
        self.counts = counts.copy()
        self._trained_counts = counts.copy()

    # -- constructors --------------------------------------------------------------

    @classmethod
    def from_labelled_data(
        cls,
        X: np.ndarray,
        y: np.ndarray,
        n_labels: Optional[int] = None,
        *,
        max_count: Optional[int] = None,
    ) -> "CentroidSet":
        """Compute trained centroids as per-label means of ``(X, y)``.

        Labels may come from ground truth or a clustering pass (the paper
        assumes k-means labelling in the unsupervised case, §3.2).
        """
        X = as_matrix(X, name="X")
        y = check_labels(y, name="y")
        if len(X) != len(y):
            raise ConfigurationError(
                f"X has {len(X)} samples but y has {len(y)} labels."
            )
        C = int(n_labels) if n_labels is not None else int(y.max()) + 1
        check_positive(C, "n_labels")
        if y.size and y.max() >= C:
            raise ConfigurationError(
                f"labels reach {int(y.max())} but n_labels is {C}."
            )
        centroids = np.zeros((C, X.shape[1]))
        counts = np.bincount(y, minlength=C)
        if np.any(counts == 0):
            missing = np.flatnonzero(counts == 0).tolist()
            raise ConfigurationError(f"labels {missing} have no samples.")
        np.add.at(centroids, y, X)
        centroids /= counts[:, None]
        return cls(centroids, counts, max_count=max_count)

    # -- basic properties --------------------------------------------------------------

    @property
    def n_labels(self) -> int:
        return self.trained.shape[0]

    @property
    def n_features(self) -> int:
        return self.trained.shape[1]

    # -- Algorithm 1 lines 12-14 -----------------------------------------------------

    def update(self, label: int, x: np.ndarray) -> None:
        """Sequential recent-centroid update for one predicted sample.

        ``cor[c] ← (cor[c]·num[c] + x) / (num[c] + 1)``, ``num[c] += 1``.
        """
        if not 0 <= label < self.n_labels:
            raise ConfigurationError(
                f"label {label} out of range [0, {self.n_labels})."
            )
        x = as_vector(x, name="x", n_features=self.n_features)
        n = int(self.counts[label])
        n_eff = n if self.max_count is None else min(n, self.max_count)
        if n_eff == 0:
            self.recent[label] = x
        else:
            self.recent[label] = (self.recent[label] * n_eff + x) / (n_eff + 1)
        self.counts[label] = n + 1

    def drift_distance(self) -> float:
        """Drift rate: total L1 distance between recent and trained centroids."""
        return float(np.abs(self.recent - self.trained).sum())

    def sample_distance(self, label: int, x: np.ndarray, *, which: str = "trained") -> float:
        """L1 distance from a sample to the trained (or recent) centroid of ``label``."""
        x = as_vector(x, name="x", n_features=self.n_features)
        ref = self.trained if which == "trained" else self.recent
        return float(np.abs(ref[label] - x).sum())

    # -- Algorithm 3: Init_Coord ---------------------------------------------------------

    def _total_pairwise_l1(self, coords: np.ndarray) -> float:
        """Σ_{j<k} |coords[j] − coords[k]|₁ over all coordinate pairs."""
        total = 0.0
        for j in range(len(coords) - 1):
            total += float(np.abs(coords[j + 1 :] - coords[j]).sum())
        return total

    def init_coord(self, x: np.ndarray) -> int:
        """Greedy spread-maximising coordinate adoption (Algorithm 3).

        Tries replacing each recent coordinate with ``x``; adopts the
        replacement that maximises the total pairwise inter-coordinate L1
        distance, provided it beats the current spread. Returns the index
        replaced, or -1 when ``x`` was not adopted.
        """
        x = as_vector(x, name="x", n_features=self.n_features)
        best_label = -1
        best = self._total_pairwise_l1(self.recent)
        for c in range(self.n_labels):
            saved = self.recent[c].copy()
            self.recent[c] = x
            d = self._total_pairwise_l1(self.recent)
            self.recent[c] = saved
            if d > best:
                best = d
                best_label = c
        if best_label != -1:
            self.recent[best_label] = x
        return best_label

    # -- Algorithm 4: Update_Coord ----------------------------------------------------------

    def update_coord(self, x: np.ndarray) -> int:
        """One sequential k-means step (Algorithm 4). Returns the label.

        Assigns ``x`` to the L1-nearest recent coordinate and applies the
        exact running-mean update to that coordinate.
        """
        label = self.nearest_label(x)
        self.update(label, x)
        return label

    def nearest_label(self, x: np.ndarray) -> int:
        """``argmin_c |cor[c] − x|₁`` (used by Algorithms 2 and 4)."""
        x = as_vector(x, name="x", n_features=self.n_features)
        return int(np.abs(self.recent - x).sum(axis=1).argmin())

    # -- lifecycle ---------------------------------------------------------------------------

    def reset_recent(self) -> None:
        """Snap recent centroids/counts back to the trained state."""
        self.recent = self.trained.copy()
        self.counts = self._trained_counts.copy()

    def reset_counts(self, value: int = 1) -> None:
        """Set every ``num[c]`` to ``value`` (used at reconstruction start
        so Update_Coord can actually move the coordinates)."""
        check_positive(value, "value", strict=False)
        self.counts[:] = int(value)

    def promote_recent_to_trained(self) -> None:
        """Adopt the recent coordinates as the new trained centroids.

        Called after a successful model reconstruction: the re-learned
        coordinates become the new reference against which future drift
        rates are measured, and the drift rate drops back to 0.
        """
        self.trained = self.recent.copy()
        self.trained.setflags(write=False)
        self._trained_counts = self.counts.copy()

    def state_nbytes(self) -> int:
        """Resident bytes: two ``(C, D)`` float matrices + counts.

        This is the entire per-stream memory of the proposed detection
        method — the asset behind Table 4's 69 kB row.
        """
        return int(self.trained.nbytes + self.recent.nbytes + self.counts.nbytes)

    # -- checkpoint protocol -----------------------------------------------------------------

    def get_state(self) -> dict:
        """Snapshot every mutable field (trained/recent/counts)."""
        return {
            "trained": self.trained.copy(),
            "recent": self.recent.copy(),
            "counts": self.counts.copy(),
            "trained_counts": self._trained_counts.copy(),
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot onto *this* object.

        Fields are reassigned in place so components sharing the
        CentroidSet by identity (the proposed pipeline's detector and
        reconstructor) keep sharing it after a restore.
        """
        trained = np.asarray(state["trained"], dtype=np.float64)
        recent = np.asarray(state["recent"], dtype=np.float64)
        counts = np.asarray(state["counts"], dtype=np.int64)
        trained_counts = np.asarray(state["trained_counts"], dtype=np.int64)
        if (
            trained.shape != self.trained.shape
            or recent.shape != trained.shape
            or counts.shape != (len(trained),)
            or trained_counts.shape != (len(trained),)
        ):
            raise ConfigurationError(
                f"centroid state shapes {trained.shape}/{recent.shape}/"
                f"{counts.shape} do not match this CentroidSet "
                f"({self.trained.shape})."
            )
        self.trained = trained.copy()
        self.trained.setflags(write=False)
        self.recent = recent.copy()
        self.counts = counts.copy()
        self._trained_counts = trained_counts.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CentroidSet(C={self.n_labels}, D={self.n_features}, "
            f"drift={self.drift_distance():.4f})"
        )
