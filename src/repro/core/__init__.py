"""The paper's contribution: sequential detection, reconstruction, pipelines."""

from .coords import CentroidSet
from .detector import DetectorStep, SequentialDriftDetector
from .factory import (
    build_baseline,
    build_hdddm_pipeline,
    build_model,
    build_onlad,
    build_proposed,
    build_quanttree_pipeline,
    build_spll_pipeline,
)
from .monitor import DriftEvent, DriftMonitor
from .multi_window import MultiWindowDetector, MultiWindowStep
from .pipeline import (
    BatchDetectorPipeline,
    ErrorRatePipeline,
    NoDetectionPipeline,
    ONLADPipeline,
    ProposedPipeline,
    StepRecord,
    StreamPipeline,
)
from .reconstruction import ModelReconstructor, ReconstructionStep
from .threshold import (
    calibrate_drift_threshold,
    calibrate_error_threshold,
    drift_threshold,
    training_distances,
)

__all__ = [
    "CentroidSet",
    "SequentialDriftDetector",
    "DetectorStep",
    "ModelReconstructor",
    "ReconstructionStep",
    "DriftMonitor",
    "DriftEvent",
    "MultiWindowDetector",
    "MultiWindowStep",
    "StepRecord",
    "StreamPipeline",
    "ProposedPipeline",
    "NoDetectionPipeline",
    "ONLADPipeline",
    "BatchDetectorPipeline",
    "ErrorRatePipeline",
    "training_distances",
    "drift_threshold",
    "calibrate_drift_threshold",
    "calibrate_error_threshold",
    "build_model",
    "build_proposed",
    "build_baseline",
    "build_onlad",
    "build_quanttree_pipeline",
    "build_spll_pipeline",
    "build_hdddm_pipeline",
]
