"""Multi-window detector ensemble — the paper's stated future work.

"Using multiple detection models with different window sizes is our future
work to address more complicated drift behaviors" (§5.2). Table 3 shows why:
small windows react fast to sudden drifts but chase short-lived reoccurring
blips; large windows smooth over gradual mixing but may miss brief changes.

:class:`MultiWindowDetector` runs one :class:`SequentialDriftDetector` per
window size over *independent copies* of the recent-centroid state (each
window's centroids accumulate at its own cadence) and combines their drift
flags with a voting policy:

* ``"any"`` — fire when any member fires (fast, sudden-drift biased);
* ``"majority"`` — fire when more than half fire;
* ``"all"`` — fire only when every member fires (conservative,
  reoccurring-blip resistant).

Memory cost scales linearly with the number of windows — still orders of
magnitude below any batch method for small ensembles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..utils.exceptions import ConfigurationError
from .coords import CentroidSet
from .detector import DetectorStep, SequentialDriftDetector

__all__ = ["MultiWindowStep", "MultiWindowDetector"]

_POLICIES = ("any", "majority", "all")


@dataclass(frozen=True)
class MultiWindowStep:
    """Combined outcome plus each member's step, in window-size order."""

    drift_detected: bool
    votes: int
    member_steps: tuple


class MultiWindowDetector:
    """Ensemble of sequential detectors with different window sizes.

    Parameters
    ----------
    centroids:
        The fitted trained-centroid state; each member receives its own
        deep copy so recent-centroid trajectories stay independent.
    window_sizes:
        One positive window size per member (e.g. ``(10, 50, 150)``).
    theta_error, theta_drift:
        Shared thresholds (Algorithm 1 semantics per member).
    policy:
        ``"any"`` | ``"majority"`` | ``"all"`` combination rule.
    """

    def __init__(
        self,
        centroids: CentroidSet,
        window_sizes: Sequence[int],
        *,
        theta_error: float,
        theta_drift: float,
        policy: str = "majority",
    ) -> None:
        if policy not in _POLICIES:
            raise ConfigurationError(f"policy must be one of {_POLICIES}, got {policy!r}.")
        sizes = [int(w) for w in window_sizes]
        if not sizes or any(w <= 0 for w in sizes):
            raise ConfigurationError("window_sizes must be non-empty positive ints.")
        if len(set(sizes)) != len(sizes):
            raise ConfigurationError("window_sizes must be distinct.")
        self.window_sizes = tuple(sorted(sizes))
        self.policy = policy
        self.members: List[SequentialDriftDetector] = []
        for w in self.window_sizes:
            member_state = CentroidSet(
                centroids.trained, centroids.counts, max_count=centroids.max_count
            )
            self.members.append(
                SequentialDriftDetector(
                    member_state,
                    window_size=w,
                    theta_error=theta_error,
                    theta_drift=theta_drift,
                )
            )
        self.drift = False
        self.n_drifts = 0

    def _combine(self, votes: int) -> bool:
        n = len(self.members)
        if self.policy == "any":
            return votes >= 1
        if self.policy == "majority":
            return votes > n // 2
        return votes == n

    def update(self, x: np.ndarray, label: int, error: float) -> MultiWindowStep:
        """Feed one sample to every member; combine their drift flags.

        A member's vote is its *drifting* state (flag currently raised),
        so a slow window's later confirmation can still flip a majority.
        """
        steps: list[DetectorStep] = [m.update(x, label, error) for m in self.members]
        votes = sum(1 for s in steps if s.drifting)
        fired = self._combine(votes)
        detected = fired and not self.drift
        if detected:
            self.n_drifts += 1
        self.drift = fired
        return MultiWindowStep(detected, votes, tuple(steps))

    def end_drift(self) -> None:
        """Lower every member's flag after adaptation completes."""
        for m in self.members:
            m.end_drift()
        self.drift = False

    def state_nbytes(self) -> int:
        """Sum of member footprints (linear in the ensemble size)."""
        return sum(m.state_nbytes() for m in self.members)
