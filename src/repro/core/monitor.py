"""DriftMonitor — an event-driven facade over the streaming pipelines.

Applications embedding the library usually want callbacks, not per-sample
record bookkeeping: *tell me when a drift is detected, tell me when
adaptation finishes, let me poll the current status*. ``DriftMonitor``
wraps any :class:`~repro.core.pipeline.StreamPipeline` and dispatches
three events while delegating all algorithmic behaviour to the pipeline:

* ``on_drift(event)`` — a drift was flagged this sample;
* ``on_reconstruction_end(event)`` — the adaptation phase completed;
* ``on_sample(event)`` — every processed sample (for dashboards; opt-in).

Events are plain dataclasses; callbacks run synchronously in stream order
(on-device there is no other thread to run them on). Exceptions raised by
callbacks propagate — silently swallowing them would hide application
bugs behind the monitoring layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..utils.exceptions import ConfigurationError
from .pipeline import StepRecord, StreamPipeline

__all__ = ["DriftEvent", "DriftMonitor"]


@dataclass(frozen=True)
class DriftEvent:
    """One monitor event.

    ``kind`` is ``"drift"``, ``"reconstruction_end"`` or ``"sample"``;
    ``record`` is the underlying pipeline record; ``n_drifts_so_far``
    counts drift events including this one.
    """

    kind: str
    record: StepRecord
    n_drifts_so_far: int


Callback = Callable[[DriftEvent], None]


class DriftMonitor:
    """Event-dispatching wrapper around a streaming pipeline.

    Parameters
    ----------
    pipeline:
        Any fitted :class:`StreamPipeline` (proposed, batch, ONLAD, ...).
    on_drift, on_reconstruction_end, on_sample:
        Optional callbacks; may also be registered later via
        :meth:`subscribe`.
    """

    def __init__(
        self,
        pipeline: StreamPipeline,
        *,
        on_drift: Optional[Callback] = None,
        on_reconstruction_end: Optional[Callback] = None,
        on_sample: Optional[Callback] = None,
    ) -> None:
        if not isinstance(pipeline, StreamPipeline):
            raise ConfigurationError("pipeline must be a StreamPipeline.")
        self.pipeline = pipeline
        self._subscribers: dict[str, List[Callback]] = {
            "drift": [], "reconstruction_end": [], "sample": [],
        }
        if on_drift:
            self.subscribe("drift", on_drift)
        if on_reconstruction_end:
            self.subscribe("reconstruction_end", on_reconstruction_end)
        if on_sample:
            self.subscribe("sample", on_sample)
        self.n_samples = 0
        self.n_drifts = 0
        self._was_reconstructing = False
        self.last_record: Optional[StepRecord] = None

    def subscribe(self, kind: str, callback: Callback) -> None:
        """Register a callback for ``kind`` events."""
        if kind not in self._subscribers:
            raise ConfigurationError(
                f"unknown event kind {kind!r}; choose from {sorted(self._subscribers)}."
            )
        if not callable(callback):
            raise ConfigurationError("callback must be callable.")
        self._subscribers[kind].append(callback)

    def _emit(self, kind: str, record: StepRecord) -> None:
        event = DriftEvent(kind, record, self.n_drifts)
        for cb in self._subscribers[kind]:
            cb(event)

    # -- streaming ------------------------------------------------------------

    def process(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        """Feed one sample through the pipeline and dispatch events."""
        record = self.pipeline.process_one(x, y_true)
        self.n_samples += 1
        self.last_record = record
        if record.drift_detected:
            self.n_drifts += 1
            self._emit("drift", record)
        if self._was_reconstructing and not record.reconstructing:
            self._emit("reconstruction_end", record)
        self._was_reconstructing = record.reconstructing
        self._emit("sample", record)
        return record

    def process_stream(self, stream) -> List[StepRecord]:
        """Feed a whole :class:`DataStream` (or (x, y) iterable)."""
        return [self.process(x, y) for x, y in stream]

    # -- status -----------------------------------------------------------------

    @property
    def status(self) -> str:
        """``"idle"`` / ``"checking"`` / ``"reconstructing"`` right now."""
        if self.last_record is None:
            return "idle"
        if self.last_record.reconstructing:
            return "reconstructing"
        if self.last_record.phase == "check":
            return "checking"
        return "idle"
