"""Threshold calibration — Eq. 1 for ``θ_drift`` and a ``θ_error`` helper.

The paper sets the drift threshold from the training data (§3.4): for each
trained sample, compute the distance between the sample and the centroid of
its (predicted) label; then

.. math::

    \\theta_{drift} = \\mu + z \\sqrt{\\tfrac{1}{N} \\sum_i (dist[i] - \\mu)^2},

with ``z = 1`` in the paper. ``θ_error`` — the anomaly-score trigger of
Algorithm 1 line 8 — is "a tuning parameter"; we provide the analogous
mean-plus-z-sigma calibration over training anomaly scores, plus a
quantile-based alternative.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..utils.exceptions import ConfigurationError, DataValidationError
from ..utils.validation import as_matrix, check_labels
from .coords import CentroidSet

__all__ = [
    "training_distances",
    "drift_threshold",
    "calibrate_drift_threshold",
    "calibrate_error_threshold",
]


def training_distances(
    X: np.ndarray,
    labels: np.ndarray,
    centroids: np.ndarray,
    *,
    metric: Literal["l1", "l2"] = "l1",
) -> np.ndarray:
    """Per-sample distance to the centroid of the sample's label.

    This is the ``dist`` array of §3.4. L1 matches the drift-rate metric of
    Algorithm 1 line 14 (and the MCU-friendly arithmetic).
    """
    X = as_matrix(X, name="X")
    centroids = as_matrix(centroids, name="centroids", n_features=X.shape[1])
    labels = check_labels(labels, n_classes=len(centroids), name="labels")
    if len(labels) != len(X):
        raise DataValidationError(
            f"labels has {len(labels)} entries but X has {len(X)} samples."
        )
    diff = X - centroids[labels]
    if metric == "l1":
        return np.abs(diff).sum(axis=1)
    if metric == "l2":
        return np.sqrt((diff**2).sum(axis=1))
    raise ConfigurationError(f"metric must be 'l1' or 'l2', got {metric!r}.")


def drift_threshold(distances: np.ndarray, z: float = 1.0) -> float:
    """Eq. 1: ``μ + z·σ`` with the population (1/N) standard deviation."""
    d = np.asarray(distances, dtype=np.float64).ravel()
    if d.size == 0:
        raise DataValidationError("distances must be non-empty.")
    if not np.all(np.isfinite(d)):
        raise DataValidationError("distances contain NaN or infinite values.")
    mu = float(d.mean())
    sigma = float(d.std())  # numpy default ddof=0 == the paper's 1/N form
    return mu + float(z) * sigma


def calibrate_drift_threshold(
    X: np.ndarray,
    labels: np.ndarray,
    centroids: CentroidSet | np.ndarray,
    *,
    z: float = 1.0,
    metric: Literal["l1", "l2"] = "l1",
) -> float:
    """End-to-end §3.4 calibration from training data.

    Accepts either a raw ``(C, D)`` centroid matrix or a fitted
    :class:`~repro.core.coords.CentroidSet` (its trained centroids are used).
    """
    cents = centroids.trained if isinstance(centroids, CentroidSet) else centroids
    return drift_threshold(training_distances(X, labels, cents, metric=metric), z=z)


def calibrate_error_threshold(
    scores: np.ndarray,
    *,
    method: Literal["mean_sigma", "quantile"] = "mean_sigma",
    z: float = 3.0,
    q: float = 0.99,
) -> float:
    """Calibrate ``θ_error`` from training-set anomaly scores.

    ``mean_sigma`` returns ``μ + z·σ`` (default ``z = 3`` — the trigger
    should fire on genuinely unusual samples, not routine noise);
    ``quantile`` returns the ``q``-quantile of the training scores.
    """
    s = np.asarray(scores, dtype=np.float64).ravel()
    if s.size == 0:
        raise DataValidationError("scores must be non-empty.")
    if not np.all(np.isfinite(s)):
        raise DataValidationError("scores contain NaN or infinite values.")
    if method == "mean_sigma":
        return float(s.mean() + z * s.std())
    if method == "quantile":
        if not 0.0 < q <= 1.0:
            raise ConfigurationError(f"q must be in (0, 1], got {q}.")
        return float(np.quantile(s, q))
    raise ConfigurationError(f"unknown method {method!r}.")
