"""Factories assembling the paper's five evaluated method configurations.

Section 4.2 fixes exactly how each method combination is built (shared
OS-ELM geometry, per-dataset detector hyper-parameters). These helpers
capture that wiring in one place so examples, tests, and benchmarks all
construct identical pipelines from an initial-training stream.

Every factory takes the initial-training data ``(X, y)`` — ground-truth or
k-means labels — trains the discriminative model's initial phase, derives
thresholds per §3.4, and returns a ready-to-stream pipeline.
"""

from __future__ import annotations

import numpy as np

from ..detectors.base import BatchDriftDetector
from ..detectors.quanttree import QuantTree
from ..detectors.spll import SPLL
from ..oselm.ensemble import MultiInstanceModel
from ..utils.rng import SeedLike
from ..utils.validation import as_matrix, check_labels
from .coords import CentroidSet
from .detector import SequentialDriftDetector
from .pipeline import (
    BatchDetectorPipeline,
    NoDetectionPipeline,
    ONLADPipeline,
    ProposedPipeline,
)
from .reconstruction import ModelReconstructor
from .threshold import calibrate_drift_threshold, calibrate_error_threshold

__all__ = [
    "build_model",
    "build_proposed",
    "build_baseline",
    "build_onlad",
    "build_quanttree_pipeline",
    "build_spll_pipeline",
    "build_hdddm_pipeline",
]


def _prepare(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    X = as_matrix(X, name="X")
    y = check_labels(y, name="y")
    return X, y, int(y.max()) + 1


def build_model(
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_hidden: int = 22,
    forgetting_factor: float | None = None,
    seed: SeedLike = None,
) -> MultiInstanceModel:
    """Initial-phase-trained multi-instance OS-ELM (paper geometry D-22-D)."""
    X, y, C = _prepare(X, y)
    model = MultiInstanceModel(
        X.shape[1], n_hidden, C, forgetting_factor=forgetting_factor, seed=seed
    )
    return model.fit_initial(X, y)


def build_proposed(
    X: np.ndarray,
    y: np.ndarray,
    *,
    window_size: int = 100,
    n_hidden: int = 22,
    z: float = 1.0,
    error_z: float = 3.0,
    reconstruction_samples: int = 400,
    max_count: int | None = 500,
    seed: SeedLike = None,
) -> ProposedPipeline:
    """Method 1: proposed sequential detector + OS-ELM.

    ``z`` is Eq. 1's multiplier (paper: 1). ``θ_error`` is calibrated as
    ``μ + error_z·σ`` over the training anomaly scores. ``max_count``
    bounds the recent centroids' inertia (§3.2's recency weighting);
    ``None`` keeps the exact running mean.
    """
    X, y, C = _prepare(X, y)
    model = build_model(X, y, n_hidden=n_hidden, seed=seed)
    centroids = CentroidSet.from_labelled_data(X, y, C, max_count=max_count)
    theta_drift = calibrate_drift_threshold(X, y, centroids, z=z)
    train_scores = model.scores(X)[np.arange(len(X)), y]
    theta_error = calibrate_error_threshold(train_scores, z=error_z)
    detector = SequentialDriftDetector(
        centroids,
        window_size=window_size,
        theta_error=theta_error,
        theta_drift=theta_drift,
    )
    reconstructor = ModelReconstructor(
        model, centroids, n_total=reconstruction_samples
    )
    return ProposedPipeline(model, detector, reconstructor)


def build_baseline(
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_hidden: int = 22,
    seed: SeedLike = None,
) -> NoDetectionPipeline:
    """Method 2: OS-ELM with no detection and no adaptation."""
    return NoDetectionPipeline(build_model(X, y, n_hidden=n_hidden, seed=seed))


def build_onlad(
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_hidden: int = 22,
    forgetting_factor: float = 0.97,
    seed: SeedLike = None,
) -> ONLADPipeline:
    """Method 5: ONLAD — forgetting OS-ELM retrained on every sample."""
    model = build_model(
        X, y, n_hidden=n_hidden, forgetting_factor=forgetting_factor, seed=seed
    )
    return ONLADPipeline(model)


def _batch_pipeline(
    X: np.ndarray,
    y: np.ndarray,
    detector: BatchDriftDetector,
    *,
    n_hidden: int,
    reconstruction_samples: int,
    seed: SeedLike,
    name: str,
) -> BatchDetectorPipeline:
    X, y, C = _prepare(X, y)
    model = build_model(X, y, n_hidden=n_hidden, seed=seed)
    centroids = CentroidSet.from_labelled_data(X, y, C)
    detector.fit_reference(X)
    reconstructor = ModelReconstructor(
        model, centroids, n_total=reconstruction_samples
    )
    return BatchDetectorPipeline(model, detector, reconstructor, name=name)


def build_quanttree_pipeline(
    X: np.ndarray,
    y: np.ndarray,
    *,
    batch_size: int = 480,
    n_bins: int = 32,
    n_hidden: int = 22,
    reconstruction_samples: int = 400,
    seed: SeedLike = None,
) -> BatchDetectorPipeline:
    """Method 3: Quant Tree + OS-ELM (paper: B=480/K=32 on NSL-KDD,
    B=235/K=16 on the cooling fan)."""
    qt = QuantTree(batch_size, n_bins, seed=seed)
    return _batch_pipeline(
        X,
        y,
        qt,
        n_hidden=n_hidden,
        reconstruction_samples=reconstruction_samples,
        seed=seed,
        name="quanttree",
    )


def build_hdddm_pipeline(
    X: np.ndarray,
    y: np.ndarray,
    *,
    batch_size: int = 480,
    n_bins: int | None = None,
    n_hidden: int = 22,
    reconstruction_samples: int = 400,
    seed: SeedLike = None,
) -> BatchDetectorPipeline:
    """Extra batch baseline: HDDDM (Hellinger distance) + OS-ELM."""
    from ..detectors.hdddm import HDDDM

    det = HDDDM(batch_size, n_bins=n_bins)
    return _batch_pipeline(
        X,
        y,
        det,
        n_hidden=n_hidden,
        reconstruction_samples=reconstruction_samples,
        seed=seed,
        name="hdddm",
    )


def build_spll_pipeline(
    X: np.ndarray,
    y: np.ndarray,
    *,
    batch_size: int = 480,
    n_clusters: int = 3,
    n_hidden: int = 22,
    reconstruction_samples: int = 400,
    seed: SeedLike = None,
) -> BatchDetectorPipeline:
    """Method 4: SPLL + OS-ELM (paper batch sizes 480 / 235)."""
    sp = SPLL(batch_size, n_clusters, seed=seed)
    return _batch_pipeline(
        X,
        y,
        sp,
        n_hidden=n_hidden,
        reconstruction_samples=reconstruction_samples,
        seed=seed,
        name="spll",
    )
