"""Drift-adaptive streaming pipelines — the full Figure-2 loop.

The paper evaluates five method combinations (§4.2). Each is a *pipeline*
here, sharing one streaming interface so the evaluation harness, memory
model, and benchmarks treat them uniformly:

1. :class:`ProposedPipeline` — proposed sequential detector + OS-ELM
   (active approach; Algorithms 1-4 end to end);
2. :class:`NoDetectionPipeline` — OS-ELM frozen after initial training
   (the paper's "Baseline (no concept drift detection)");
3./4. :class:`BatchDetectorPipeline` — Quant Tree or SPLL + OS-ELM
   (active approach with batch detection; reconstruction on detection);
5. :class:`ONLADPipeline` — ONLAD (forgetting OS-ELM), retrained on every
   sample (passive approach, no detector).

Plus :class:`ErrorRatePipeline` (DDM/ADWIN + OS-ELM) for the error-rate
family the paper discusses but does not benchmark — useful for ablations.

Every ``process_one`` returns a :class:`StepRecord`; ``run`` maps a
:class:`~repro.datasets.stream.DataStream` to the list of records the
metrics layer consumes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..datasets.stream import DataStream
from ..detectors.base import BatchDriftDetector, DriftState, ErrorRateDriftDetector
from ..oselm.ensemble import MultiInstanceModel
from ..telemetry import Telemetry, get_telemetry
from ..utils.exceptions import CheckpointCorruptError, ConfigurationError
from .detector import SequentialDriftDetector
from .reconstruction import ModelReconstructor

__all__ = [
    "StepRecord",
    "StreamPipeline",
    "ProposedPipeline",
    "NoDetectionPipeline",
    "ONLADPipeline",
    "BatchDetectorPipeline",
    "ErrorRatePipeline",
]


@dataclass(frozen=True)
class StepRecord:
    """Everything the evaluation harness needs about one processed sample."""

    index: int
    predicted: int
    true_label: Optional[int]
    correct: Optional[bool]
    anomaly_score: float
    drift_detected: bool
    reconstructing: bool
    phase: str


class StreamPipeline(abc.ABC):
    """Common streaming interface for the five evaluated methods."""

    #: Human-readable method name used in reports and tables.
    name: str = "pipeline"

    #: Chunk length used by :meth:`run` when ``chunk_size`` is not given.
    default_chunk_size: int = 256

    #: How the pipeline's adaptive state evolves while streaming:
    #: ``"static"`` — never after construction (frozen baseline);
    #: ``"quiet"`` — only on non-predict samples (drift checks,
    #: reconstruction), which the record stream makes observable;
    #: ``"always"`` — potentially on every sample (per-sample training,
    #: detector buffers/statistics). Checkpointed runs rewrite the state
    #: container only for intervals that may have mutated state; the
    #: record log is appended either way.
    checkpoint_volatility: str = "always"

    #: ``True`` — fsync the record log and state container so
    #: checkpoints survive power cuts; ``False`` (default) — atomic
    #: rename only, which survives any *process* crash (the tested
    #: threat model) but may lose the newest checkpoint to a power cut.
    #: On edge flash storage an fsync costs milliseconds of wall time
    #: and real kernel CPU, so durability is opt-in.
    checkpoint_durable: bool = False

    #: append accumulated clean (state-unchanged) records to the record
    #: log and push them to the OS after this many clean checkpoint
    #: intervals (fsync'd too under :attr:`checkpoint_durable`). A plain
    #: crash loses nothing regardless — the unwind path persists the
    #: clean tail — so this only bounds how much pure-predict progress a
    #: SIGKILL or power cut can cost.
    checkpoint_sync_blocks: int = 8

    def __init__(self, model: MultiInstanceModel) -> None:
        if not isinstance(model, MultiInstanceModel):
            raise ConfigurationError("model must be a MultiInstanceModel.")
        self.model = model
        self._index = 0
        #: stream indices at which this pipeline reported a drift
        self.detections: List[int] = []
        #: telemetry hub (the process default; reassign for private capture)
        self.telemetry: Telemetry = get_telemetry()
        self._in_recon = False
        #: position of the checkpoint the last :meth:`resume` continued from
        self.last_resumed_at: Optional[int] = None
        #: attached :class:`~repro.guard.runtime.RuntimeGuard` (or None)
        self.guard = None

    def attach_guard(self, guard) -> "StreamPipeline":
        """Route every sample through ``guard`` (see :mod:`repro.guard`).

        Must be called after the guard's telemetry-relevant configuration
        is final and before :meth:`run`; the guard adopts this pipeline's
        telemetry hub and takes its initial rollback snapshot here.
        Returns ``self`` for chaining.
        """
        guard.bind(self)
        self.guard = guard
        return self

    @abc.abstractmethod
    def process_one(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        """Consume one sample; returns the per-sample record."""

    def run(
        self,
        stream: DataStream,
        *,
        chunk_size: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
    ) -> List[StepRecord]:
        """Replay ``stream``; returns one :class:`StepRecord` per sample.

        ``chunk_size`` controls the vectorized fast path: samples are
        consumed in chunks of up to that many, and while the pipeline is
        in its pure-predict phase (detector idle, no reconstruction, no
        refit) a whole chunk is scored with matrix ops at once, dropping
        back to :meth:`process_one` from the first sample that triggers a
        state change. Records are **bit-identical** to the per-sample path
        (the golden-equivalence tests assert this), so the default is
        chunked; pass ``chunk_size=1`` to force the reference per-sample
        loop.

        With ``checkpoint_every=N`` and ``checkpoint_path`` given (both
        or neither), the run is checkpointed every ``N`` processed
        samples as two files: ``checkpoint_path`` — an atomic state
        container, rewritten only when the interval may have changed
        adaptive state (see :attr:`checkpoint_volatility`) — and a
        ``checkpoint_path.log`` sidecar to which each interval's records
        are appended incrementally (:mod:`repro.resilience.reclog`). A
        later :meth:`resume` on a freshly built pipeline continues from
        the last checkpoint with byte-identical records. Because chunked
        and per-sample scoring agree bit-for-bit, a checkpoint taken at
        any whole number of samples resumes exactly, wherever chunk
        boundaries fell.
        """
        if (checkpoint_every is None) != (checkpoint_path is None):
            raise ConfigurationError(
                "checkpoint_every and checkpoint_path must be given together."
            )
        chunk = self.default_chunk_size if chunk_size is None else int(chunk_size)
        tel = self.telemetry
        with tel.span("pipeline.run", pipeline=self.name, samples=len(stream)):
            if checkpoint_path is not None:
                if int(checkpoint_every) < 1:
                    raise ConfigurationError(
                        f"checkpoint_every must be >= 1, got {checkpoint_every}."
                    )
                return self._run_checkpointed(
                    stream,
                    chunk,
                    int(checkpoint_every),
                    Path(checkpoint_path),
                    records=[],
                    start=0,
                )
            if chunk <= 1 and self.guard is None:
                return [self.process_one(x, y) for x, y in stream]
            records: List[StepRecord] = []
            X, y = stream.X, stream.y
            n = len(stream)
            step = max(1, chunk)
            i = 0
            while i < n:
                with tel.span("pipeline.chunk", pipeline=self.name, start=i):
                    recs = self._consume_chunk(X[i : i + step], y[i : i + step])
                records.extend(recs)
                i += len(recs)
            return records

    def _run_checkpointed(
        self,
        stream: DataStream,
        chunk: int,
        every: int,
        path: Path,
        *,
        records: List[StepRecord],
        start: int,
        start_epoch: int = 0,
        state_written: bool = False,
        log_trusted_bytes: Optional[int] = None,
    ) -> List[StepRecord]:
        """Shared engine of checkpointed :meth:`run` and :meth:`resume`.

        Sub-chunks are capped at the next checkpoint boundary so saves
        land at exact multiples of ``every`` samples (unless a pipeline
        state change ends a chunk early, in which case the save happens
        as soon as the boundary is crossed).

        Record persistence is *deferred*: a boundary whose span may have
        mutated adaptive state (per :attr:`checkpoint_volatility`)
        appends everything accumulated since the last append as one
        block (with a bumped epoch — see :mod:`repro.resilience.reclog`
        for the trust rule) and rewrites the state container; a clean
        boundary writes nothing at all, so the pure-predict hot path —
        the paper's common case — costs only the boundary arithmetic.
        Accumulated clean records reach the log at the next dirty
        boundary, every :attr:`checkpoint_sync_blocks` clean intervals,
        or on the crash-unwind path below, whichever comes first. For
        ``"quiet"`` pipelines an interval is clean iff its last record
        is a pure prediction: every fast path returns the state-mutating
        sample *last* in its sub-chunk, so the check is O(1) per
        sub-chunk.

        The slow work — state-container writes and (with
        :attr:`checkpoint_durable`) fsyncs — runs on the shared
        strict-FIFO writer thread. FIFO plus program order preserves the
        trust-rule ordering (the boundary's block reaches the OS before
        its container lands), and the writer is drained before this
        method returns *or* raises, so everything submitted is on disk
        by the time the caller observes the outcome — a killed run can
        be resumed immediately, and a finished one can unlink its
        checkpoint without racing the worker.
        """
        from ..resilience.checkpoint import save_checkpoint
        from ..resilience.reclog import RecordLogWriter, record_log_path
        from ..resilience.writer import shared_writer

        tel = self.telemetry
        X, y = stream.X, stream.y
        n = len(stream)
        i = start
        last_saved = start
        last_appended = start
        step = max(1, chunk)
        volatility = self.checkpoint_volatility
        durable = self.checkpoint_durable
        dirty = volatility == "always"
        epoch = int(start_epoch)
        unsynced = 0
        stream_id = self._stream_id(stream)
        log = RecordLogWriter(record_log_path(path), trusted_bytes=log_trusted_bytes)
        writer = shared_writer()

        def _submit_state(boundary: int, snap_epoch: int) -> None:
            # get_state() is an isolated snapshot (the resilience state
            # tests assert this), so the worker thread can serialise it
            # while the loop keeps mutating the live pipeline.
            snapshot = self.get_state()
            state = {
                "pipeline_class": type(self).__name__,
                "pipeline": snapshot,
                "position": boundary,
                "checkpoint_every": int(every),
                "epoch": snap_epoch,
                "stream": stream_id,
            }
            meta = {"pipeline": self.name, "position": boundary}

            def task() -> None:
                if durable:
                    # The boundary's log block must be durable before
                    # the container that references it (trust rule).
                    log.sync()
                save_checkpoint(path, state, kind="pipeline-run", meta=meta, durable=durable)

            writer.submit(task)

        try:
            while i < n:
                take = min(step, n - i, max(1, last_saved + every - i))
                with tel.span("pipeline.chunk", pipeline=self.name, start=i):
                    recs = self._consume_chunk(X[i : i + take], y[i : i + take])
                records.extend(recs)
                i += len(recs)
                if volatility == "quiet" and not dirty:
                    last = recs[-1]
                    if last.phase != "predict" or last.drift_detected or last.reconstructing:
                        dirty = True
                if i - last_saved >= every and i < n:
                    if dirty or not state_written:
                        # A dirty span's block carries the *new* epoch
                        # and lands before its container: a crash in
                        # between leaves a higher-epoch tail that resume
                        # correctly distrusts.
                        epoch += 1
                        log.append(
                            records[last_appended:i], start_index=last_appended, epoch=epoch
                        )
                        last_appended = i
                        # The block must reach the OS before the sync +
                        # container task can run (sync only fsyncs the fd).
                        log.flush()
                        _submit_state(i, epoch)
                        state_written = True
                        dirty = volatility == "always"
                        unsynced = 0
                    else:
                        # Clean interval: nothing to persist — the log
                        # stays deferred so the pure-predict hot path
                        # writes nothing. Every ``checkpoint_sync_blocks``
                        # intervals the accumulated span is appended and
                        # pushed to the OS, bounding how much progress a
                        # SIGKILL (which skips the unwind hook below) can
                        # cost; a plain exception loses nothing either way.
                        unsynced += 1
                        if unsynced >= self.checkpoint_sync_blocks:
                            log.append(
                                records[last_appended:i], start_index=last_appended, epoch=epoch
                            )
                            last_appended = i
                            log.flush()
                            if durable:
                                writer.submit(log.sync)
                            unsynced = 0
                    last_saved = i
        except BaseException:
            # Crash unwind: if state has not changed since the last
            # container write, the accumulated clean records are still
            # resumable — append them so resume continues from the exact
            # crash point rather than the last boundary. (A dirty tail
            # is useless to resume — the on-disk state predates it — so
            # it is dropped.) Never let persistence errors mask the
            # original exception.
            if not dirty and i > last_appended:
                try:
                    log.append(records[last_appended:i], start_index=last_appended, epoch=epoch)
                    log.flush()
                except Exception:
                    pass
            try:
                writer.flush()
            except Exception:
                pass
            log.close()
            raise
        try:
            writer.flush()
        finally:
            log.close()
        return records

    @staticmethod
    def _stream_id(stream: DataStream) -> dict:
        return {
            "fingerprint": stream.fingerprint(),
            "length": int(len(stream)),
            "name": stream.name,
            "n_features": int(stream.X.shape[1]),
        }

    def resume(
        self,
        stream: DataStream,
        checkpoint_path: Union[str, Path],
        *,
        chunk_size: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
    ) -> List[StepRecord]:
        """Continue an interrupted checkpointed :meth:`run`.

        Call on a *freshly constructed* pipeline (same configuration as
        the interrupted one); the checkpoint restores every mutable
        field. Returns the **full** record list — the records produced
        before the checkpoint plus the remainder of the stream — and the
        result is byte-identical to an uninterrupted run. Checkpointing
        continues to the same files (cadence from the checkpoint unless
        ``checkpoint_every`` overrides it).

        The resume position is the end of the record log's trusted
        prefix (see :mod:`repro.resilience.reclog`): at least the state
        container's position, and further when clean intervals were
        logged after the last state rewrite.

        Raises :class:`~repro.utils.exceptions.CheckpointCorruptError`
        for damaged files — including a record log that cannot cover the
        state container's position — with in-memory state left untouched,
        and :class:`~repro.utils.exceptions.ConfigurationError` when the
        checkpoint belongs to a different pipeline class or stream.
        """
        from ..resilience.checkpoint import load_checkpoint
        from ..resilience.reclog import read_record_log, record_log_path

        path = Path(checkpoint_path)
        ckpt = load_checkpoint(path, expected_kind="pipeline-run")
        state = ckpt.state
        if state["pipeline_class"] != type(self).__name__:
            raise ConfigurationError(
                f"checkpoint is for pipeline {state['pipeline_class']!r}, "
                f"not {type(self).__name__!r}."
            )
        expected = self._stream_id(stream)
        if state["stream"] != expected:
            raise ConfigurationError(
                f"checkpoint stream {state['stream']!r} does not match the "
                f"given stream {expected!r}."
            )
        epoch = int(state["epoch"])
        base_position = int(state["position"])
        records, trusted_bytes = read_record_log(
            record_log_path(path), max_epoch=epoch
        )
        if len(records) < base_position:
            tel = self.telemetry
            if tel.enabled:
                tel.registry.counter(
                    "checkpoint.corrupt", "corrupt checkpoints rejected"
                ).inc()
            raise CheckpointCorruptError(
                f"record log for {path} is missing or damaged before the "
                f"checkpoint position ({len(records)} of {base_position} "
                "records recovered)."
            )
        position = len(records)
        self.set_state(state["pipeline"])
        # The trusted log may extend past the container's position by
        # clean intervals (only the sample counter advanced); fast-forward
        # the counter to match.
        self._index = position
        #: stream position this run continued from
        self.last_resumed_at = position
        every = (
            int(state["checkpoint_every"])
            if checkpoint_every is None
            else int(checkpoint_every)
        )
        chunk = self.default_chunk_size if chunk_size is None else int(chunk_size)
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(
                "pipeline.resumes", "checkpointed runs resumed"
            ).inc()
            tel.emit(
                "run_resumed",
                pipeline=self.name,
                position=position,
                path=str(path),
            )
        with tel.span("pipeline.run", pipeline=self.name, samples=len(stream)):
            return self._run_checkpointed(
                stream,
                chunk,
                every,
                path,
                records=records,
                start=position,
                start_epoch=epoch,
                state_written=True,
                log_trusted_bytes=trusted_bytes,
            )

    def _consume_chunk(self, Xc: np.ndarray, yc: np.ndarray) -> List[StepRecord]:
        """Chunk dispatcher: through the guard when attached, direct otherwise.

        Both :meth:`run` loops call this instead of
        :meth:`_process_chunk`, so attaching a guard re-routes every
        sample without the pipelines knowing; unguarded runs pay one
        attribute check per chunk.
        """
        if self.guard is None:
            return self._process_chunk(Xc, yc)
        return self.guard.process_chunk(Xc, yc)

    def _process_chunk(self, Xc: np.ndarray, yc: np.ndarray) -> List[StepRecord]:
        """Consume a non-empty prefix of the chunk; returns its records.

        The base implementation has no fast path and simply streams the
        whole chunk through :meth:`process_one` (ONLAD trains on every
        sample, so nothing can be batched there). Subclasses with a pure
        predict phase override this to score vectorised prefixes.
        """
        return [self.process_one(Xc[j], int(yc[j])) for j in range(len(Xc))]

    def _guard_bypass(self) -> None:
        """Guard hook: drop adaptive in-flight state on entering bypass.

        Called once when the degradation ladder escalates to
        ``PASSTHROUGH`` or beyond. Subclasses with detectors or an
        in-flight reconstruction override this to abort/reset them so
        adaptation restarts cleanly if the ladder later steps back down.
        The frozen baseline has nothing to drop.
        """

    # -- shared helpers --------------------------------------------------------------

    def _record(
        self,
        predicted: int,
        score: float,
        y_true: Optional[int],
        *,
        drift_detected: bool = False,
        reconstructing: bool = False,
        phase: str = "predict",
    ) -> StepRecord:
        rec = StepRecord(
            index=self._index,
            predicted=int(predicted),
            true_label=None if y_true is None else int(y_true),
            correct=None if y_true is None else bool(predicted == y_true),
            anomaly_score=float(score),
            drift_detected=bool(drift_detected),
            reconstructing=bool(reconstructing),
            phase=phase,
        )
        if drift_detected:
            self.detections.append(self._index)
        self._index += 1
        tel = self.telemetry
        if tel.enabled:
            self._telemetry_step(tel, rec)
        elif reconstructing or self._in_recon:
            # Edge state stays consistent even while telemetry is off, so
            # enabling it mid-stream never fabricates a started event.
            self._in_recon = reconstructing and phase != "finish"
        return rec

    def _telemetry_step(self, tel: Telemetry, rec: StepRecord) -> None:
        """Per-sample metrics + the drift/reconstruction event edges."""
        reg = tel.registry
        reg.counter(
            "pipeline.samples", "processed samples", labels=("pipeline", "phase")
        ).inc(pipeline=self.name, phase=rec.phase)
        if rec.drift_detected:
            reg.counter(
                "pipeline.drifts", "drifts reported", labels=("pipeline",)
            ).inc(pipeline=self.name)
            tel.emit(
                "drift_detected",
                pipeline=self.name,
                index=rec.index,
                score=rec.anomaly_score,
            )
        if rec.reconstructing:
            if not self._in_recon:
                tel.emit(
                    "reconstruction_started", pipeline=self.name, index=rec.index
                )
            if rec.phase == "finish":
                tel.emit(
                    "reconstruction_finished", pipeline=self.name, index=rec.index
                )
        self._in_recon = rec.reconstructing and rec.phase != "finish"

    def state_nbytes(self) -> int:
        """Resident bytes of everything beyond the discriminative model."""
        return 0

    # -- checkpoint protocol -----------------------------------------------------------

    def _extra_state(self) -> dict:
        """Subclass hook: additional mutable fields to checkpoint."""
        return {}

    def _set_extra_state(self, state: dict) -> None:
        """Subclass hook: restore the fields from :meth:`_extra_state`."""

    def get_state(self) -> dict:
        """Snapshot every mutable field of the pipeline and its model."""
        return {
            "index": int(self._index),
            "detections": [int(d) for d in self.detections],
            "in_recon": bool(self._in_recon),
            "model": self.model.get_state(),
            "extra": self._extra_state(),
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot."""
        self._index = int(state["index"])
        self.detections = [int(d) for d in state["detections"]]
        self._in_recon = bool(state["in_recon"])
        self.model.set_state(state["model"])
        self._set_extra_state(state["extra"])


class NoDetectionPipeline(StreamPipeline):
    """Frozen OS-ELM ensemble — predicts, never adapts (Table 2 'Baseline')."""

    name = "baseline"
    #: frozen model: the state container is written once, then only the
    #: record log grows — checkpointing costs O(interval) per interval.
    checkpoint_volatility = "static"

    def process_one(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        c, err = self.model.predict_with_score(x)
        return self._record(c, err, y_true)

    def _process_chunk(self, Xc: np.ndarray, yc: np.ndarray) -> List[StepRecord]:
        # The model is frozen, so every chunk is one batched forward pass.
        labels, scores = self.model.predict_with_score_batch(Xc)
        return [
            self._record(labels[j], scores[j], int(yc[j])) for j in range(len(Xc))
        ]


class ONLADPipeline(StreamPipeline):
    """ONLAD — passive approach: test-then-train on every sample.

    The model should be built with a ``forgetting_factor`` (0.97 / 0.99 in
    the paper); the pipeline itself works with any
    :class:`MultiInstanceModel` and always trains the closest instance on
    the incoming sample after predicting it.
    """

    name = "onlad"

    def process_one(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        c, err = self.model.predict_with_score(x)
        self.model.partial_fit_one(x, c)
        return self._record(c, err, y_true, phase="train")


class ProposedPipeline(StreamPipeline):
    """The paper's proposal: sequential detection + sequential reconstruction.

    Wires Algorithm 1 (``detector``) to Algorithm 2 (``reconstructor``)
    exactly as in the pseudocode: the sample that completes a drifting
    window is also the first sample fed to ``Reconstruct_Model`` (line 21
    executes in the same loop iteration).
    """

    name = "proposed"
    #: Algorithm 1 mutates nothing for idle sub-threshold predictions,
    #: and every state-mutating sample (trigger, check, reconstruction)
    #: ends its sub-chunk and is flagged by phase/drift/recon — so clean
    #: intervals skip the state-container rewrite.
    checkpoint_volatility = "quiet"

    def __init__(
        self,
        model: MultiInstanceModel,
        detector: SequentialDriftDetector,
        reconstructor: ModelReconstructor,
    ) -> None:
        super().__init__(model)
        if reconstructor.model is not model:
            raise ConfigurationError(
                "reconstructor must operate on the same model as the pipeline."
            )
        if reconstructor.centroids is not detector.centroids:
            raise ConfigurationError(
                "detector and reconstructor must share one CentroidSet."
            )
        self.detector = detector
        self.reconstructor = reconstructor

    def process_one(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        if self.detector.drift:
            # Lines 20-21: the stream drives reconstruction.
            c, err = self.model.predict_with_score(x)
            step = self.reconstructor.process(x)
            if not step.still_reconstructing:
                self.detector.end_drift()
            return self._record(
                c, err, y_true, reconstructing=True, phase=step.phase
            )
        c, err = self.model.predict_with_score(x)
        det = self.detector.update(x, c, err)
        if det.drift_detected:
            step = self.reconstructor.process(x)
            if not step.still_reconstructing:
                self.detector.end_drift()
            return self._record(
                c, err, y_true, drift_detected=True, reconstructing=True, phase=step.phase
            )
        phase = "check" if det.checking else "predict"
        return self._record(c, err, y_true, phase=phase)

    def _process_chunk(self, Xc: np.ndarray, yc: np.ndarray) -> List[StepRecord]:
        # Fast path only while the detector is idle: no open check window,
        # no reconstruction. Idle samples with score < θ_error are pure
        # predictions (Algorithm 1 mutates nothing for them), so the chunk
        # is scored at once and control drops to process_one at the first
        # sample whose score reaches the trigger.
        if self.detector.drift or self.detector.check:
            return [self.process_one(Xc[0], int(yc[0]))]
        labels, scores = self.model.predict_with_score_batch(Xc)
        hits = np.flatnonzero(scores >= self.detector.theta_error)
        stop = int(hits[0]) if len(hits) else len(Xc)
        recs = [self._record(labels[j], scores[j], int(yc[j])) for j in range(stop)]
        if stop < len(Xc):
            recs.append(self.process_one(Xc[stop], int(yc[stop])))
        return recs

    def state_nbytes(self) -> int:
        """Detector centroid state (the method's whole extra footprint)."""
        return self.detector.state_nbytes()

    def _guard_bypass(self) -> None:
        # Abandon any half-done reconstruction (nothing is promoted) and
        # close the detector's window/flag so Algorithm 1 restarts idle.
        self.reconstructor.abort()
        self.detector.end_drift()

    def _extra_state(self) -> dict:
        # The detector snapshot covers the shared CentroidSet.
        return {
            "detector": self.detector.get_state(),
            "reconstructor": self.reconstructor.get_state(),
        }

    def _set_extra_state(self, state: dict) -> None:
        self.detector.set_state(state["detector"])
        self.reconstructor.set_state(state["reconstructor"])


class BatchDetectorPipeline(StreamPipeline):
    """Active approach with a batch detector (Quant Tree / SPLL).

    Samples stream into the batch detector's buffer; when a full batch
    tests positive the pipeline switches to reconstruction (same
    Algorithm 2 machinery as the proposal, for a like-for-like accuracy
    comparison) and the detector's buffer is cleared.

    With ``refit_reference=True`` (default) the detector's reference
    window is rebuilt from the first ``batch_size`` samples that arrive
    after reconstruction completes — otherwise a stale reference keeps
    re-detecting the new (now adapted-to) concept every batch.
    """

    def __init__(
        self,
        model: MultiInstanceModel,
        detector: BatchDriftDetector,
        reconstructor: ModelReconstructor,
        *,
        refit_reference: bool = True,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(model)
        if reconstructor.model is not model:
            raise ConfigurationError(
                "reconstructor must operate on the same model as the pipeline."
            )
        self.detector = detector
        self.reconstructor = reconstructor
        self.refit_reference = bool(refit_reference)
        self.name = name or type(detector).__name__.lower()
        self._reconstructing = False
        self._refit_buffer: List[np.ndarray] = []
        self._refitting = False

    def _finish_reconstruction(self) -> None:
        self._reconstructing = False
        self.detector.reset_stream()
        if self.refit_reference:
            self._refitting = True
            self._refit_buffer = []

    def _guard_bypass(self) -> None:
        # Drop reconstruction, any half-filled refit buffer, and the
        # detector's sample buffer — all built from now-suspect input.
        self.reconstructor.abort()
        self._reconstructing = False
        self._refitting = False
        self._refit_buffer = []
        self.detector.reset_stream()

    def process_one(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        c, err = self.model.predict_with_score(x)
        if self._reconstructing:
            step = self.reconstructor.process(x)
            if not step.still_reconstructing:
                self._finish_reconstruction()
            return self._record(c, err, y_true, reconstructing=True, phase=step.phase)
        if self._refitting:
            self._refit_buffer.append(np.asarray(x, dtype=np.float64).ravel())
            if len(self._refit_buffer) >= self.detector.batch_size:
                self.detector.fit_reference(np.asarray(self._refit_buffer))
                self._refit_buffer = []
                self._refitting = False
                self.telemetry.emit(
                    "reference_refitted", pipeline=self.name, index=self._index
                )
            return self._record(c, err, y_true, phase="refit")
        detected = self.detector.update_one(x)
        if detected:
            self._reconstructing = True
            step = self.reconstructor.process(x)
            if not step.still_reconstructing:
                self._finish_reconstruction()
            return self._record(
                c, err, y_true, drift_detected=True, reconstructing=True, phase=step.phase
            )
        return self._record(c, err, y_true)

    def _process_chunk(self, Xc: np.ndarray, yc: np.ndarray) -> List[StepRecord]:
        # Samples that cannot complete the detector's batch are pure
        # predictions plus a buffer append; score them in one batched
        # forward pass and leave the batch-completing sample (and any
        # reconstruction/refit state) to process_one.
        if self._reconstructing or self._refitting:
            return [self.process_one(Xc[0], int(yc[0]))]
        room = self.detector.batch_size - self.detector.buffered_samples - 1
        stop = min(room, len(Xc))
        if stop <= 0:
            return [self.process_one(Xc[0], int(yc[0]))]
        labels, scores = self.model.predict_with_score_batch(Xc[:stop])
        recs = []
        for j in range(stop):
            self.detector.update_one(Xc[j])  # cannot fill the batch: no test fires
            recs.append(self._record(labels[j], scores[j], int(yc[j])))
        return recs

    def state_nbytes(self) -> int:
        """Batch-detector state incl. its sample buffer (Table 4's cost).

        Also counts the samples held in ``_refit_buffer`` while the
        reference window is being rebuilt — they are resident memory this
        method (and only this method) pays for.
        """
        nbytes = getattr(self.detector, "state_nbytes", None)
        total = int(nbytes()) if callable(nbytes) else 0
        return total + sum(int(s.nbytes) for s in self._refit_buffer)

    def _extra_state(self) -> dict:
        return {
            "detector": self.detector.get_state(),
            "reconstructor": self.reconstructor.get_state(),
            "centroids": self.reconstructor.centroids.get_state(),
            "reconstructing": bool(self._reconstructing),
            "refitting": bool(self._refitting),
            "refit_buffer": (
                np.asarray(self._refit_buffer) if self._refit_buffer else None
            ),
        }

    def _set_extra_state(self, state: dict) -> None:
        self.detector.set_state(state["detector"])
        self.reconstructor.set_state(state["reconstructor"])
        self.reconstructor.centroids.set_state(state["centroids"])
        self._reconstructing = bool(state["reconstructing"])
        self._refitting = bool(state["refitting"])
        buf = state["refit_buffer"]
        self._refit_buffer = (
            [] if buf is None else [row.copy() for row in np.asarray(buf)]
        )


class ErrorRatePipeline(StreamPipeline):
    """Supervised error-rate detection (DDM / ADWIN) + reconstruction.

    Requires ground-truth labels per sample (``y_true``) — exactly the
    requirement that makes this family "not suited to resource-limited
    edge devices" (§2.2.2); provided for ablation studies.
    """

    def __init__(
        self,
        model: MultiInstanceModel,
        detector: ErrorRateDriftDetector,
        reconstructor: ModelReconstructor,
        *,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(model)
        self.detector = detector
        self.reconstructor = reconstructor
        self.name = name or type(detector).__name__.lower()
        self._reconstructing = False

    def _reconstruction_step(self, x: np.ndarray):
        """Drive one reconstruction sample; resets detector on completion.

        The detector reset must happen in *every* path that finishes a
        reconstruction — including the one-shot case where reconstruction
        completes within the detection sample itself — or stale DDM/ADWIN
        error statistics re-fire immediately on the next sample.
        """
        step = self.reconstructor.process(x)
        if not step.still_reconstructing:
            self._reconstructing = False
            self.detector.reset()
        return step

    def _guard_bypass(self) -> None:
        # Error-rate statistics accumulated on faulty predictions are
        # meaningless — restart the detector clean alongside the abort.
        self.reconstructor.abort()
        self._reconstructing = False
        self.detector.reset()

    def process_one(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        if y_true is None:
            raise ConfigurationError(
                f"{self.name} needs ground-truth labels (supervised detection)."
            )
        c, err = self.model.predict_with_score(x)
        if self._reconstructing:
            step = self._reconstruction_step(x)
            return self._record(c, err, y_true, reconstructing=True, phase=step.phase)
        state = self.detector.update(c != y_true)
        if state is DriftState.DRIFT:
            self._reconstructing = True
            step = self._reconstruction_step(x)
            return self._record(
                c, err, y_true, drift_detected=True, reconstructing=True, phase=step.phase
            )
        return self._record(c, err, y_true)

    def _process_chunk(self, Xc: np.ndarray, yc: np.ndarray) -> List[StepRecord]:
        # The model is only mutated by reconstruction, so chunk scores stay
        # valid up to (and including) the sample that fires the detector;
        # the detector itself is still fed sample by sample.
        if self._reconstructing:
            return [self.process_one(Xc[0], int(yc[0]))]
        labels, scores = self.model.predict_with_score_batch(Xc)
        recs: List[StepRecord] = []
        for j in range(len(Xc)):
            c, y_j = int(labels[j]), int(yc[j])
            state = self.detector.update(c != y_j)
            if state is DriftState.DRIFT:
                self._reconstructing = True
                step = self._reconstruction_step(Xc[j])
                recs.append(
                    self._record(
                        c, scores[j], y_j,
                        drift_detected=True, reconstructing=True, phase=step.phase,
                    )
                )
                return recs
            recs.append(self._record(c, scores[j], y_j))
        return recs

    def state_nbytes(self) -> int:
        nbytes = getattr(self.detector, "state_nbytes", None)
        return int(nbytes()) if callable(nbytes) else 0

    def _extra_state(self) -> dict:
        return {
            "detector": self.detector.get_state(),
            "reconstructor": self.reconstructor.get_state(),
            "centroids": self.reconstructor.centroids.get_state(),
            "reconstructing": bool(self._reconstructing),
        }

    def _set_extra_state(self, state: dict) -> None:
        self.detector.set_state(state["detector"])
        self.reconstructor.set_state(state["reconstructor"])
        self.reconstructor.centroids.set_state(state["centroids"])
        self._reconstructing = bool(state["reconstructing"])
