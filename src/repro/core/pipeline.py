"""Drift-adaptive streaming pipelines — the full Figure-2 loop.

The paper evaluates five method combinations (§4.2). Each is a *pipeline*
here, sharing one streaming interface so the evaluation harness, memory
model, and benchmarks treat them uniformly:

1. :class:`ProposedPipeline` — proposed sequential detector + OS-ELM
   (active approach; Algorithms 1-4 end to end);
2. :class:`NoDetectionPipeline` — OS-ELM frozen after initial training
   (the paper's "Baseline (no concept drift detection)");
3./4. :class:`BatchDetectorPipeline` — Quant Tree or SPLL + OS-ELM
   (active approach with batch detection; reconstruction on detection);
5. :class:`ONLADPipeline` — ONLAD (forgetting OS-ELM), retrained on every
   sample (passive approach, no detector).

Plus :class:`ErrorRatePipeline` (DDM/ADWIN + OS-ELM) for the error-rate
family the paper discusses but does not benchmark — useful for ablations.

Every ``process_one`` returns a :class:`StepRecord`; ``run`` maps a
:class:`~repro.datasets.stream.DataStream` to the list of records the
metrics layer consumes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..datasets.stream import DataStream
from ..detectors.base import BatchDriftDetector, DriftState, ErrorRateDriftDetector
from ..oselm.ensemble import MultiInstanceModel
from ..utils.exceptions import ConfigurationError
from .detector import SequentialDriftDetector
from .reconstruction import ModelReconstructor

__all__ = [
    "StepRecord",
    "StreamPipeline",
    "ProposedPipeline",
    "NoDetectionPipeline",
    "ONLADPipeline",
    "BatchDetectorPipeline",
    "ErrorRatePipeline",
]


@dataclass(frozen=True)
class StepRecord:
    """Everything the evaluation harness needs about one processed sample."""

    index: int
    predicted: int
    true_label: Optional[int]
    correct: Optional[bool]
    anomaly_score: float
    drift_detected: bool
    reconstructing: bool
    phase: str


class StreamPipeline(abc.ABC):
    """Common streaming interface for the five evaluated methods."""

    #: Human-readable method name used in reports and tables.
    name: str = "pipeline"

    def __init__(self, model: MultiInstanceModel) -> None:
        if not isinstance(model, MultiInstanceModel):
            raise ConfigurationError("model must be a MultiInstanceModel.")
        self.model = model
        self._index = 0
        #: stream indices at which this pipeline reported a drift
        self.detections: List[int] = []

    @abc.abstractmethod
    def process_one(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        """Consume one sample; returns the per-sample record."""

    def run(self, stream: DataStream) -> List[StepRecord]:
        """Stream every sample through :meth:`process_one`."""
        return [self.process_one(x, y) for x, y in stream]

    # -- shared helpers --------------------------------------------------------------

    def _record(
        self,
        predicted: int,
        score: float,
        y_true: Optional[int],
        *,
        drift_detected: bool = False,
        reconstructing: bool = False,
        phase: str = "predict",
    ) -> StepRecord:
        rec = StepRecord(
            index=self._index,
            predicted=int(predicted),
            true_label=None if y_true is None else int(y_true),
            correct=None if y_true is None else bool(predicted == y_true),
            anomaly_score=float(score),
            drift_detected=bool(drift_detected),
            reconstructing=bool(reconstructing),
            phase=phase,
        )
        if drift_detected:
            self.detections.append(self._index)
        self._index += 1
        return rec

    def state_nbytes(self) -> int:
        """Resident bytes of everything beyond the discriminative model."""
        return 0


class NoDetectionPipeline(StreamPipeline):
    """Frozen OS-ELM ensemble — predicts, never adapts (Table 2 'Baseline')."""

    name = "baseline"

    def process_one(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        c, err = self.model.predict_with_score(x)
        return self._record(c, err, y_true)


class ONLADPipeline(StreamPipeline):
    """ONLAD — passive approach: test-then-train on every sample.

    The model should be built with a ``forgetting_factor`` (0.97 / 0.99 in
    the paper); the pipeline itself works with any
    :class:`MultiInstanceModel` and always trains the closest instance on
    the incoming sample after predicting it.
    """

    name = "onlad"

    def process_one(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        c, err = self.model.predict_with_score(x)
        self.model.partial_fit_one(x, c)
        return self._record(c, err, y_true, phase="train")


class ProposedPipeline(StreamPipeline):
    """The paper's proposal: sequential detection + sequential reconstruction.

    Wires Algorithm 1 (``detector``) to Algorithm 2 (``reconstructor``)
    exactly as in the pseudocode: the sample that completes a drifting
    window is also the first sample fed to ``Reconstruct_Model`` (line 21
    executes in the same loop iteration).
    """

    name = "proposed"

    def __init__(
        self,
        model: MultiInstanceModel,
        detector: SequentialDriftDetector,
        reconstructor: ModelReconstructor,
    ) -> None:
        super().__init__(model)
        if reconstructor.model is not model:
            raise ConfigurationError(
                "reconstructor must operate on the same model as the pipeline."
            )
        if reconstructor.centroids is not detector.centroids:
            raise ConfigurationError(
                "detector and reconstructor must share one CentroidSet."
            )
        self.detector = detector
        self.reconstructor = reconstructor

    def process_one(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        if self.detector.drift:
            # Lines 20-21: the stream drives reconstruction.
            c, err = self.model.predict_with_score(x)
            step = self.reconstructor.process(x)
            if not step.still_reconstructing:
                self.detector.end_drift()
            return self._record(
                c, err, y_true, reconstructing=True, phase=step.phase
            )
        c, err = self.model.predict_with_score(x)
        det = self.detector.update(x, c, err)
        if det.drift_detected:
            step = self.reconstructor.process(x)
            if not step.still_reconstructing:
                self.detector.end_drift()
            return self._record(
                c, err, y_true, drift_detected=True, reconstructing=True, phase=step.phase
            )
        phase = "check" if det.checking else "predict"
        return self._record(c, err, y_true, phase=phase)

    def state_nbytes(self) -> int:
        """Detector centroid state (the method's whole extra footprint)."""
        return self.detector.state_nbytes()


class BatchDetectorPipeline(StreamPipeline):
    """Active approach with a batch detector (Quant Tree / SPLL).

    Samples stream into the batch detector's buffer; when a full batch
    tests positive the pipeline switches to reconstruction (same
    Algorithm 2 machinery as the proposal, for a like-for-like accuracy
    comparison) and the detector's buffer is cleared.

    With ``refit_reference=True`` (default) the detector's reference
    window is rebuilt from the first ``batch_size`` samples that arrive
    after reconstruction completes — otherwise a stale reference keeps
    re-detecting the new (now adapted-to) concept every batch.
    """

    def __init__(
        self,
        model: MultiInstanceModel,
        detector: BatchDriftDetector,
        reconstructor: ModelReconstructor,
        *,
        refit_reference: bool = True,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(model)
        if reconstructor.model is not model:
            raise ConfigurationError(
                "reconstructor must operate on the same model as the pipeline."
            )
        self.detector = detector
        self.reconstructor = reconstructor
        self.refit_reference = bool(refit_reference)
        self.name = name or type(detector).__name__.lower()
        self._reconstructing = False
        self._refit_buffer: List[np.ndarray] = []
        self._refitting = False

    def _finish_reconstruction(self) -> None:
        self._reconstructing = False
        self.detector.reset_stream()
        if self.refit_reference:
            self._refitting = True
            self._refit_buffer = []

    def process_one(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        c, err = self.model.predict_with_score(x)
        if self._reconstructing:
            step = self.reconstructor.process(x)
            if not step.still_reconstructing:
                self._finish_reconstruction()
            return self._record(c, err, y_true, reconstructing=True, phase=step.phase)
        if self._refitting:
            self._refit_buffer.append(np.asarray(x, dtype=np.float64).ravel())
            if len(self._refit_buffer) >= self.detector.batch_size:
                self.detector.fit_reference(np.asarray(self._refit_buffer))
                self._refit_buffer = []
                self._refitting = False
            return self._record(c, err, y_true, phase="refit")
        detected = self.detector.update_one(x)
        if detected:
            self._reconstructing = True
            step = self.reconstructor.process(x)
            if not step.still_reconstructing:
                self._finish_reconstruction()
            return self._record(
                c, err, y_true, drift_detected=True, reconstructing=True, phase=step.phase
            )
        return self._record(c, err, y_true)

    def state_nbytes(self) -> int:
        """Batch-detector state incl. its sample buffer (Table 4's cost)."""
        nbytes = getattr(self.detector, "state_nbytes", None)
        return int(nbytes()) if callable(nbytes) else 0


class ErrorRatePipeline(StreamPipeline):
    """Supervised error-rate detection (DDM / ADWIN) + reconstruction.

    Requires ground-truth labels per sample (``y_true``) — exactly the
    requirement that makes this family "not suited to resource-limited
    edge devices" (§2.2.2); provided for ablation studies.
    """

    def __init__(
        self,
        model: MultiInstanceModel,
        detector: ErrorRateDriftDetector,
        reconstructor: ModelReconstructor,
        *,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(model)
        self.detector = detector
        self.reconstructor = reconstructor
        self.name = name or type(detector).__name__.lower()
        self._reconstructing = False

    def process_one(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        if y_true is None:
            raise ConfigurationError(
                f"{self.name} needs ground-truth labels (supervised detection)."
            )
        c, err = self.model.predict_with_score(x)
        if self._reconstructing:
            step = self.reconstructor.process(x)
            if not step.still_reconstructing:
                self._reconstructing = False
                self.detector.reset()
            return self._record(c, err, y_true, reconstructing=True, phase=step.phase)
        state = self.detector.update(c != y_true)
        if state is DriftState.DRIFT:
            self._reconstructing = True
            step = self.reconstructor.process(x)
            if not step.still_reconstructing:
                self._reconstructing = False
            return self._record(
                c, err, y_true, drift_detected=True, reconstructing=True, phase=step.phase
            )
        return self._record(c, err, y_true)

    def state_nbytes(self) -> int:
        nbytes = getattr(self.detector, "state_nbytes", None)
        return int(nbytes()) if callable(nbytes) else 0
