"""Drift-adaptive streaming pipelines — the full Figure-2 loop.

The paper evaluates five method combinations (§4.2). Each is a *pipeline*
here, sharing one streaming interface so the evaluation harness, memory
model, and benchmarks treat them uniformly:

1. :class:`ProposedPipeline` — proposed sequential detector + OS-ELM
   (active approach; Algorithms 1-4 end to end);
2. :class:`NoDetectionPipeline` — OS-ELM frozen after initial training
   (the paper's "Baseline (no concept drift detection)");
3./4. :class:`BatchDetectorPipeline` — Quant Tree or SPLL + OS-ELM
   (active approach with batch detection; reconstruction on detection);
5. :class:`ONLADPipeline` — ONLAD (forgetting OS-ELM), retrained on every
   sample (passive approach, no detector).

Plus :class:`ErrorRatePipeline` (DDM/ADWIN + OS-ELM) for the error-rate
family the paper discusses but does not benchmark — useful for ablations.

Every ``process_one`` returns a :class:`StepRecord`; ``run`` maps a
:class:`~repro.datasets.stream.DataStream` to the list of records the
metrics layer consumes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..datasets.stream import DataStream
from ..detectors.base import BatchDriftDetector, DriftState, ErrorRateDriftDetector
from ..oselm.ensemble import MultiInstanceModel
from ..utils.hooks import default_telemetry
from ..utils.exceptions import ConfigurationError
from ..utils.validation import validate_checkpoint_config
from .detector import SequentialDriftDetector
from .reconstruction import ModelReconstructor

__all__ = [
    "StepRecord",
    "StreamPipeline",
    "ProposedPipeline",
    "NoDetectionPipeline",
    "ONLADPipeline",
    "BatchDetectorPipeline",
    "ErrorRatePipeline",
]


@dataclass(frozen=True)
class StepRecord:
    """Everything the evaluation harness needs about one processed sample."""

    index: int
    predicted: int
    true_label: Optional[int]
    correct: Optional[bool]
    anomaly_score: float
    drift_detected: bool
    reconstructing: bool
    phase: str


class StreamPipeline(abc.ABC):
    """Common streaming interface for the five evaluated methods."""

    #: Human-readable method name used in reports and tables.
    name: str = "pipeline"

    #: Chunk length used by :meth:`run` when ``chunk_size`` is not given.
    default_chunk_size: int = 256

    #: How the pipeline's adaptive state evolves while streaming:
    #: ``"static"`` — never after construction (frozen baseline);
    #: ``"quiet"`` — only on non-predict samples (drift checks,
    #: reconstruction), which the record stream makes observable;
    #: ``"always"`` — potentially on every sample (per-sample training,
    #: detector buffers/statistics). Checkpointed runs rewrite the state
    #: container only for intervals that may have mutated state; the
    #: record log is appended either way.
    checkpoint_volatility: str = "always"

    #: ``True`` — fsync the record log and state container so
    #: checkpoints survive power cuts; ``False`` (default) — atomic
    #: rename only, which survives any *process* crash (the tested
    #: threat model) but may lose the newest checkpoint to a power cut.
    #: On edge flash storage an fsync costs milliseconds of wall time
    #: and real kernel CPU, so durability is opt-in.
    checkpoint_durable: bool = False

    #: append accumulated clean (state-unchanged) records to the record
    #: log and push them to the OS after this many clean checkpoint
    #: intervals (fsync'd too under :attr:`checkpoint_durable`). A plain
    #: crash loses nothing regardless — the unwind path persists the
    #: clean tail — so this only bounds how much pure-predict progress a
    #: SIGKILL or power cut can cost.
    checkpoint_sync_blocks: int = 8

    def __init__(self, model: MultiInstanceModel) -> None:
        if not isinstance(model, MultiInstanceModel):
            raise ConfigurationError("model must be a MultiInstanceModel.")
        self.model = model
        self._index = 0
        #: stream indices at which this pipeline reported a drift
        self.detections: List[int] = []
        #: telemetry hub (the process default; reassign for private capture)
        self.telemetry = default_telemetry()
        self._in_recon = False
        #: position of the checkpoint the last :meth:`resume` continued from
        self.last_resumed_at: Optional[int] = None
        #: attached :class:`~repro.guard.runtime.RuntimeGuard` (or None)
        self.guard = None

    def attach_guard(self, guard) -> "StreamPipeline":
        """Route every sample through ``guard`` (see :mod:`repro.guard`).

        Must be called after the guard's telemetry-relevant configuration
        is final and before :meth:`run`; the guard adopts this pipeline's
        telemetry hub and takes its initial rollback snapshot here.
        Returns ``self`` for chaining.
        """
        guard.bind(self)
        self.guard = guard
        return self

    @abc.abstractmethod
    def process_one(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        """Consume one sample; returns the per-sample record."""

    def run(
        self,
        stream: DataStream,
        *,
        chunk_size: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
    ) -> List[StepRecord]:
        """Replay ``stream``; returns one :class:`StepRecord` per sample.

        ``chunk_size`` controls the vectorized fast path: samples are
        consumed in chunks of up to that many, and while the pipeline is
        in its pure-predict phase (detector idle, no reconstruction, no
        refit) a whole chunk is scored with matrix ops at once, dropping
        back to :meth:`process_one` from the first sample that triggers a
        state change. Records are **bit-identical** to the per-sample path
        (the golden-equivalence tests assert this), so the default is
        chunked; pass ``chunk_size=1`` to force the reference per-sample
        loop.

        With ``checkpoint_every=N`` and ``checkpoint_path`` given (both
        or neither), the run is checkpointed every ``N`` processed
        samples as two files: ``checkpoint_path`` — an atomic state
        container, rewritten only when the interval may have changed
        adaptive state (see :attr:`checkpoint_volatility`) — and a
        ``checkpoint_path.log`` sidecar to which each interval's records
        are appended incrementally (:mod:`repro.resilience.reclog`). A
        later :meth:`resume` on a freshly built pipeline continues from
        the last checkpoint with byte-identical records. Because chunked
        and per-sample scoring agree bit-for-bit, a checkpoint taken at
        any whole number of samples resumes exactly, wherever chunk
        boundaries fell.

        The run itself is driven by :mod:`repro.engine`: this method
        validates the options and assembles the default interceptor
        stack (telemetry → guard → chunk scheduler → checkpoint).
        """
        every, path = validate_checkpoint_config(checkpoint_every, checkpoint_path)
        from ..engine import run_stream

        return run_stream(
            self,
            stream,
            chunk_size=chunk_size,
            checkpoint_every=every,
            checkpoint_path=path,
        )

    def resume(
        self,
        stream: DataStream,
        checkpoint_path: Union[str, Path],
        *,
        chunk_size: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
    ) -> List[StepRecord]:
        """Continue an interrupted checkpointed :meth:`run`.

        Call on a *freshly constructed* pipeline (same configuration as
        the interrupted one); the checkpoint restores every mutable
        field. Returns the **full** record list — the records produced
        before the checkpoint plus the remainder of the stream — and the
        result is byte-identical to an uninterrupted run. Checkpointing
        continues to the same files (cadence from the checkpoint unless
        ``checkpoint_every`` overrides it).

        The resume position is the end of the record log's trusted
        prefix (see :mod:`repro.resilience.reclog`): at least the state
        container's position, and further when clean intervals were
        logged after the last state rewrite.

        Raises :class:`~repro.utils.exceptions.CheckpointCorruptError`
        for damaged files — including a record log that cannot cover the
        state container's position — with in-memory state left untouched,
        and :class:`~repro.utils.exceptions.ConfigurationError` when the
        checkpoint belongs to a different pipeline class or stream.

        Like :meth:`run`, the actual loop is :mod:`repro.engine`'s; the
        engine restores the state snapshot, fast-forwards to the trusted
        log prefix, and continues checkpointing to the same files.
        """
        from ..engine import resume_stream

        return resume_stream(
            self,
            stream,
            checkpoint_path,
            chunk_size=chunk_size,
            checkpoint_every=checkpoint_every,
        )

    def _process_chunk(self, Xc: np.ndarray, yc: np.ndarray) -> List[StepRecord]:
        """Consume a non-empty prefix of the chunk; returns its records.

        The base implementation has no fast path and simply streams the
        whole chunk through :meth:`process_one` (ONLAD trains on every
        sample, so nothing can be batched there). Subclasses with a pure
        predict phase override this to score vectorised prefixes.
        """
        return [self.process_one(Xc[j], int(yc[j])) for j in range(len(Xc))]

    def _guard_bypass(self) -> None:
        """Guard hook: drop adaptive in-flight state on entering bypass.

        Called once when the degradation ladder escalates to
        ``PASSTHROUGH`` or beyond. Subclasses with detectors or an
        in-flight reconstruction override this to abort/reset them so
        adaptation restarts cleanly if the ladder later steps back down.
        The frozen baseline has nothing to drop.
        """

    def prefers_batched_scoring(self) -> bool:
        """Would cross-session batched scoring pay off *right now*?

        The fleet's :class:`~repro.fleet.batching.BatchPlanner` asks this
        before stacking a session's pending rows into a shared forward
        pass (see :func:`~repro.oselm.ensemble.MultiInstanceModel.prime_scores`).
        ``True`` means the model is not expected to mutate while the
        primed rows are consumed — a pure heuristic: priming stays
        *correct* either way, because any training step invalidates the
        primed cache and scoring falls back to the computed path.
        The base answer is ``False`` (unknown pipelines, and ONLAD —
        which trains on every sample — fall back to sequential scoring).
        """
        return False

    # -- shared helpers --------------------------------------------------------------

    def _record(
        self,
        predicted: int,
        score: float,
        y_true: Optional[int],
        *,
        drift_detected: bool = False,
        reconstructing: bool = False,
        phase: str = "predict",
    ) -> StepRecord:
        rec = StepRecord(
            index=self._index,
            predicted=int(predicted),
            true_label=None if y_true is None else int(y_true),
            correct=None if y_true is None else bool(predicted == y_true),
            anomaly_score=float(score),
            drift_detected=bool(drift_detected),
            reconstructing=bool(reconstructing),
            phase=phase,
        )
        if drift_detected:
            self.detections.append(self._index)
        self._index += 1
        tel = self.telemetry
        if tel.enabled:
            self._telemetry_step(tel, rec)
        elif reconstructing or self._in_recon:
            # Edge state stays consistent even while telemetry is off, so
            # enabling it mid-stream never fabricates a started event.
            self._in_recon = reconstructing and phase != "finish"
        return rec

    def _telemetry_step(self, tel: Telemetry, rec: StepRecord) -> None:
        """Per-sample metrics + the drift/reconstruction event edges."""
        reg = tel.registry
        reg.counter(
            "pipeline.samples", "processed samples", labels=("pipeline", "phase")
        ).inc(pipeline=self.name, phase=rec.phase)
        if rec.drift_detected:
            reg.counter(
                "pipeline.drifts", "drifts reported", labels=("pipeline",)
            ).inc(pipeline=self.name)
            tel.emit(
                "drift_detected",
                pipeline=self.name,
                index=rec.index,
                score=rec.anomaly_score,
            )
        if rec.reconstructing:
            if not self._in_recon:
                tel.emit(
                    "reconstruction_started", pipeline=self.name, index=rec.index
                )
            if rec.phase == "finish":
                tel.emit(
                    "reconstruction_finished", pipeline=self.name, index=rec.index
                )
        self._in_recon = rec.reconstructing and rec.phase != "finish"

    def state_nbytes(self) -> int:
        """Resident bytes of everything beyond the discriminative model."""
        return 0

    # -- checkpoint protocol -----------------------------------------------------------

    def _extra_state(self) -> dict:
        """Subclass hook: additional mutable fields to checkpoint."""
        return {}

    def _set_extra_state(self, state: dict) -> None:
        """Subclass hook: restore the fields from :meth:`_extra_state`."""

    def get_state(self) -> dict:
        """Snapshot every mutable field of the pipeline and its model."""
        return {
            "index": int(self._index),
            "detections": [int(d) for d in self.detections],
            "in_recon": bool(self._in_recon),
            "model": self.model.get_state(),
            "extra": self._extra_state(),
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot."""
        self._index = int(state["index"])
        self.detections = [int(d) for d in state["detections"]]
        self._in_recon = bool(state["in_recon"])
        self.model.set_state(state["model"])
        self._set_extra_state(state["extra"])


class NoDetectionPipeline(StreamPipeline):
    """Frozen OS-ELM ensemble — predicts, never adapts (Table 2 'Baseline')."""

    name = "baseline"
    #: frozen model: the state container is written once, then only the
    #: record log grows — checkpointing costs O(interval) per interval.
    checkpoint_volatility = "static"

    def process_one(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        c, err = self.model.predict_with_score(x)
        return self._record(c, err, y_true)

    def _process_chunk(self, Xc: np.ndarray, yc: np.ndarray) -> List[StepRecord]:
        # The model is frozen, so every chunk is one batched forward pass.
        labels, scores = self.model.predict_with_score_batch(Xc)
        return [
            self._record(labels[j], scores[j], int(yc[j])) for j in range(len(Xc))
        ]

    def prefers_batched_scoring(self) -> bool:
        # Frozen model: always a pure forward pass.
        return True


class ONLADPipeline(StreamPipeline):
    """ONLAD — passive approach: test-then-train on every sample.

    The model should be built with a ``forgetting_factor`` (0.97 / 0.99 in
    the paper); the pipeline itself works with any
    :class:`MultiInstanceModel` and always trains the closest instance on
    the incoming sample after predicting it.
    """

    name = "onlad"

    def process_one(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        c, err = self.model.predict_with_score(x)
        self.model.partial_fit_one(x, c)
        return self._record(c, err, y_true, phase="train")


class ProposedPipeline(StreamPipeline):
    """The paper's proposal: sequential detection + sequential reconstruction.

    Wires Algorithm 1 (``detector``) to Algorithm 2 (``reconstructor``)
    exactly as in the pseudocode: the sample that completes a drifting
    window is also the first sample fed to ``Reconstruct_Model`` (line 21
    executes in the same loop iteration).
    """

    name = "proposed"
    #: Algorithm 1 mutates nothing for idle sub-threshold predictions,
    #: and every state-mutating sample (trigger, check, reconstruction)
    #: ends its sub-chunk and is flagged by phase/drift/recon — so clean
    #: intervals skip the state-container rewrite.
    checkpoint_volatility = "quiet"

    def __init__(
        self,
        model: MultiInstanceModel,
        detector: SequentialDriftDetector,
        reconstructor: ModelReconstructor,
    ) -> None:
        super().__init__(model)
        if reconstructor.model is not model:
            raise ConfigurationError(
                "reconstructor must operate on the same model as the pipeline."
            )
        if reconstructor.centroids is not detector.centroids:
            raise ConfigurationError(
                "detector and reconstructor must share one CentroidSet."
            )
        self.detector = detector
        self.reconstructor = reconstructor

    def process_one(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        if self.detector.drift:
            # Lines 20-21: the stream drives reconstruction.
            c, err = self.model.predict_with_score(x)
            step = self.reconstructor.process(x)
            if not step.still_reconstructing:
                self.detector.end_drift()
            return self._record(
                c, err, y_true, reconstructing=True, phase=step.phase
            )
        c, err = self.model.predict_with_score(x)
        det = self.detector.update(x, c, err)
        if det.drift_detected:
            step = self.reconstructor.process(x)
            if not step.still_reconstructing:
                self.detector.end_drift()
            return self._record(
                c, err, y_true, drift_detected=True, reconstructing=True, phase=step.phase
            )
        phase = "check" if det.checking else "predict"
        return self._record(c, err, y_true, phase=phase)

    def _process_chunk(self, Xc: np.ndarray, yc: np.ndarray) -> List[StepRecord]:
        # Fast path only while the detector is idle: no open check window,
        # no reconstruction. Idle samples with score < θ_error are pure
        # predictions (Algorithm 1 mutates nothing for them), so the chunk
        # is scored at once and control drops to process_one at the first
        # sample whose score reaches the trigger.
        if self.detector.drift or self.detector.check:
            return [self.process_one(Xc[0], int(yc[0]))]
        labels, scores = self.model.predict_with_score_batch(Xc)
        hits = np.flatnonzero(scores >= self.detector.theta_error)
        stop = int(hits[0]) if len(hits) else len(Xc)
        recs = [self._record(labels[j], scores[j], int(yc[j])) for j in range(stop)]
        if stop < len(Xc):
            recs.append(self.process_one(Xc[stop], int(yc[stop])))
        return recs

    def prefers_batched_scoring(self) -> bool:
        # Reconstruction (the drift flag) trains on every sample; the
        # check window only updates detector statistics, so primed scores
        # stay valid through it.
        return not self.detector.drift

    def state_nbytes(self) -> int:
        """Detector centroid state (the method's whole extra footprint)."""
        return self.detector.state_nbytes()

    def _guard_bypass(self) -> None:
        # Abandon any half-done reconstruction (nothing is promoted) and
        # close the detector's window/flag so Algorithm 1 restarts idle.
        self.reconstructor.abort()
        self.detector.end_drift()

    def _extra_state(self) -> dict:
        # The detector snapshot covers the shared CentroidSet.
        return {
            "detector": self.detector.get_state(),
            "reconstructor": self.reconstructor.get_state(),
        }

    def _set_extra_state(self, state: dict) -> None:
        self.detector.set_state(state["detector"])
        self.reconstructor.set_state(state["reconstructor"])


class BatchDetectorPipeline(StreamPipeline):
    """Active approach with a batch detector (Quant Tree / SPLL).

    Samples stream into the batch detector's buffer; when a full batch
    tests positive the pipeline switches to reconstruction (same
    Algorithm 2 machinery as the proposal, for a like-for-like accuracy
    comparison) and the detector's buffer is cleared.

    With ``refit_reference=True`` (default) the detector's reference
    window is rebuilt from the first ``batch_size`` samples that arrive
    after reconstruction completes — otherwise a stale reference keeps
    re-detecting the new (now adapted-to) concept every batch.
    """

    def __init__(
        self,
        model: MultiInstanceModel,
        detector: BatchDriftDetector,
        reconstructor: ModelReconstructor,
        *,
        refit_reference: bool = True,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(model)
        if reconstructor.model is not model:
            raise ConfigurationError(
                "reconstructor must operate on the same model as the pipeline."
            )
        self.detector = detector
        self.reconstructor = reconstructor
        self.refit_reference = bool(refit_reference)
        self.name = name or type(detector).__name__.lower()
        self._reconstructing = False
        self._refit_buffer: List[np.ndarray] = []
        self._refitting = False

    def _finish_reconstruction(self) -> None:
        self._reconstructing = False
        self.detector.reset_stream()
        if self.refit_reference:
            self._refitting = True
            self._refit_buffer = []

    def _guard_bypass(self) -> None:
        # Drop reconstruction, any half-filled refit buffer, and the
        # detector's sample buffer — all built from now-suspect input.
        self.reconstructor.abort()
        self._reconstructing = False
        self._refitting = False
        self._refit_buffer = []
        self.detector.reset_stream()

    def process_one(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        c, err = self.model.predict_with_score(x)
        if self._reconstructing:
            step = self.reconstructor.process(x)
            if not step.still_reconstructing:
                self._finish_reconstruction()
            return self._record(c, err, y_true, reconstructing=True, phase=step.phase)
        if self._refitting:
            self._refit_buffer.append(np.asarray(x, dtype=np.float64).ravel())
            if len(self._refit_buffer) >= self.detector.batch_size:
                self.detector.fit_reference(np.asarray(self._refit_buffer))
                self._refit_buffer = []
                self._refitting = False
                self.telemetry.emit(
                    "reference_refitted", pipeline=self.name, index=self._index
                )
            return self._record(c, err, y_true, phase="refit")
        detected = self.detector.update_one(x)
        if detected:
            self._reconstructing = True
            step = self.reconstructor.process(x)
            if not step.still_reconstructing:
                self._finish_reconstruction()
            return self._record(
                c, err, y_true, drift_detected=True, reconstructing=True, phase=step.phase
            )
        return self._record(c, err, y_true)

    def _process_chunk(self, Xc: np.ndarray, yc: np.ndarray) -> List[StepRecord]:
        # Samples that cannot complete the detector's batch are pure
        # predictions plus a buffer append; score them in one batched
        # forward pass and leave the batch-completing sample (and any
        # reconstruction/refit state) to process_one.
        if self._reconstructing or self._refitting:
            return [self.process_one(Xc[0], int(yc[0]))]
        room = self.detector.batch_size - self.detector.buffered_samples - 1
        stop = min(room, len(Xc))
        if stop <= 0:
            return [self.process_one(Xc[0], int(yc[0]))]
        labels, scores = self.model.predict_with_score_batch(Xc[:stop])
        recs = []
        for j in range(stop):
            self.detector.update_one(Xc[j])  # cannot fill the batch: no test fires
            recs.append(self._record(labels[j], scores[j], int(yc[j])))
        return recs

    def prefers_batched_scoring(self) -> bool:
        # The detector only buffers between batch tests; the model itself
        # mutates only during reconstruction.
        return not (self._reconstructing or self._refitting)

    def state_nbytes(self) -> int:
        """Batch-detector state incl. its sample buffer (Table 4's cost).

        Also counts the samples held in ``_refit_buffer`` while the
        reference window is being rebuilt — they are resident memory this
        method (and only this method) pays for.
        """
        nbytes = getattr(self.detector, "state_nbytes", None)
        total = int(nbytes()) if callable(nbytes) else 0
        return total + sum(int(s.nbytes) for s in self._refit_buffer)

    def _extra_state(self) -> dict:
        return {
            "detector": self.detector.get_state(),
            "reconstructor": self.reconstructor.get_state(),
            "centroids": self.reconstructor.centroids.get_state(),
            "reconstructing": bool(self._reconstructing),
            "refitting": bool(self._refitting),
            "refit_buffer": (
                np.asarray(self._refit_buffer) if self._refit_buffer else None
            ),
        }

    def _set_extra_state(self, state: dict) -> None:
        self.detector.set_state(state["detector"])
        self.reconstructor.set_state(state["reconstructor"])
        self.reconstructor.centroids.set_state(state["centroids"])
        self._reconstructing = bool(state["reconstructing"])
        self._refitting = bool(state["refitting"])
        buf = state["refit_buffer"]
        self._refit_buffer = (
            [] if buf is None else [row.copy() for row in np.asarray(buf)]
        )


class ErrorRatePipeline(StreamPipeline):
    """Supervised error-rate detection (DDM / ADWIN) + reconstruction.

    Requires ground-truth labels per sample (``y_true``) — exactly the
    requirement that makes this family "not suited to resource-limited
    edge devices" (§2.2.2); provided for ablation studies.
    """

    def __init__(
        self,
        model: MultiInstanceModel,
        detector: ErrorRateDriftDetector,
        reconstructor: ModelReconstructor,
        *,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(model)
        self.detector = detector
        self.reconstructor = reconstructor
        self.name = name or type(detector).__name__.lower()
        self._reconstructing = False

    def _reconstruction_step(self, x: np.ndarray):
        """Drive one reconstruction sample; resets detector on completion.

        The detector reset must happen in *every* path that finishes a
        reconstruction — including the one-shot case where reconstruction
        completes within the detection sample itself — or stale DDM/ADWIN
        error statistics re-fire immediately on the next sample.
        """
        step = self.reconstructor.process(x)
        if not step.still_reconstructing:
            self._reconstructing = False
            self.detector.reset()
        return step

    def _guard_bypass(self) -> None:
        # Error-rate statistics accumulated on faulty predictions are
        # meaningless — restart the detector clean alongside the abort.
        self.reconstructor.abort()
        self._reconstructing = False
        self.detector.reset()

    def process_one(self, x: np.ndarray, y_true: Optional[int] = None) -> StepRecord:
        if y_true is None:
            raise ConfigurationError(
                f"{self.name} needs ground-truth labels (supervised detection)."
            )
        c, err = self.model.predict_with_score(x)
        if self._reconstructing:
            step = self._reconstruction_step(x)
            return self._record(c, err, y_true, reconstructing=True, phase=step.phase)
        state = self.detector.update(c != y_true)
        if state is DriftState.DRIFT:
            self._reconstructing = True
            step = self._reconstruction_step(x)
            return self._record(
                c, err, y_true, drift_detected=True, reconstructing=True, phase=step.phase
            )
        return self._record(c, err, y_true)

    def _process_chunk(self, Xc: np.ndarray, yc: np.ndarray) -> List[StepRecord]:
        # The model is only mutated by reconstruction, so chunk scores stay
        # valid up to (and including) the sample that fires the detector;
        # the detector itself is still fed sample by sample.
        if self._reconstructing:
            return [self.process_one(Xc[0], int(yc[0]))]
        labels, scores = self.model.predict_with_score_batch(Xc)
        recs: List[StepRecord] = []
        for j in range(len(Xc)):
            c, y_j = int(labels[j]), int(yc[j])
            state = self.detector.update(c != y_j)
            if state is DriftState.DRIFT:
                self._reconstructing = True
                step = self._reconstruction_step(Xc[j])
                recs.append(
                    self._record(
                        c, scores[j], y_j,
                        drift_detected=True, reconstructing=True, phase=step.phase,
                    )
                )
                return recs
            recs.append(self._record(c, scores[j], y_j))
        return recs

    def prefers_batched_scoring(self) -> bool:
        # DDM/ADWIN statistics update per sample but never touch the model.
        return not self._reconstructing

    def state_nbytes(self) -> int:
        nbytes = getattr(self.detector, "state_nbytes", None)
        return int(nbytes()) if callable(nbytes) else 0

    def _extra_state(self) -> dict:
        return {
            "detector": self.detector.get_state(),
            "reconstructor": self.reconstructor.get_state(),
            "centroids": self.reconstructor.centroids.get_state(),
            "reconstructing": bool(self._reconstructing),
        }

    def _set_extra_state(self, state: dict) -> None:
        self.detector.set_state(state["detector"])
        self.reconstructor.set_state(state["reconstructor"])
        self.reconstructor.centroids.set_state(state["centroids"])
        self._reconstructing = bool(state["reconstructing"])
