"""The proposed fully-sequential drift detector — Algorithm 1's state machine.

Per test sample the detector receives the discriminative model's predicted
label ``c`` and anomaly score ``error`` (Algorithm 1, lines 6-7) and runs
lines 8-19:

* when idle, an anomaly score ``≥ θ_error`` opens a **check window** of
  ``W`` samples (lines 8-10);
* inside an open window every sample updates the recent centroid of its
  predicted label and the L1 drift rate (lines 11-15) — O(C·D) time,
  O(C·D) memory, no stored samples;
* when the window fills, ``dist ≥ θ_drift`` raises the **drift** flag
  (lines 16-19); the caller then drives model reconstruction
  (:mod:`repro.core.reconstruction`) until it reports completion and calls
  :meth:`SequentialDriftDetector.end_drift`.

The detector itself never stores past samples — the paper's entire memory
argument (Table 4) rests on this property, which the tests assert via
:meth:`state_nbytes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.hooks import default_telemetry
from ..utils.validation import check_positive
from .coords import CentroidSet

if TYPE_CHECKING:  # type-only: core has no runtime telemetry dependency
    from ..telemetry import Telemetry

__all__ = ["DetectorStep", "SequentialDriftDetector"]


@dataclass(frozen=True)
class DetectorStep:
    """Outcome of feeding one sample to the detector.

    Attributes
    ----------
    drift_detected:
        True on the exact sample whose full window crossed ``θ_drift``.
    drifting:
        True while the drift flag is raised (until ``end_drift``).
    checking:
        True while a check window is open (after this sample).
    window_count:
        ``win`` after this sample (0 when idle).
    distance:
        Current drift rate ``dist`` (L1 centroid displacement sum).
    """

    drift_detected: bool
    drifting: bool
    checking: bool
    window_count: int
    distance: float


class SequentialDriftDetector:
    """Algorithm 1 (lines 2-19) over a :class:`CentroidSet`.

    Parameters
    ----------
    centroids:
        Trained/recent centroid state (Require: ``cor``, ``train_cor``,
        ``num``).
    window_size:
        ``W`` — samples per check window (paper sweeps 10-1000).
    theta_error:
        Anomaly-score trigger ``θ_error`` opening a check window.
    theta_drift:
        Drift-rate threshold ``θ_drift`` (Eq. 1).
    """

    def __init__(
        self,
        centroids: CentroidSet,
        *,
        window_size: int,
        theta_error: float,
        theta_drift: float,
    ) -> None:
        if not isinstance(centroids, CentroidSet):
            raise ConfigurationError("centroids must be a CentroidSet.")
        check_positive(window_size, "window_size")
        check_positive(theta_error, "theta_error", strict=False)
        check_positive(theta_drift, "theta_drift", strict=False)
        self.centroids = centroids
        self.window_size = int(window_size)
        self.theta_error = float(theta_error)
        self.theta_drift = float(theta_drift)
        # Algorithm 1 lines 2-3.
        self.drift = False
        self.check = False
        self._win = 0
        self.last_distance = 0.0
        #: total check windows opened / drifts flagged (diagnostics)
        self.n_windows_opened = 0
        self.n_drifts = 0
        #: telemetry hub (the process default; reassign for private capture)
        self.telemetry: Telemetry = default_telemetry()

    @property
    def window_count(self) -> int:
        """Current ``win`` counter."""
        return self._win

    def update(self, x: np.ndarray, label: int, error: float) -> DetectorStep:
        """Feed one sample with its predicted label and anomaly score.

        Implements lines 5-19 of Algorithm 1. While the drift flag is
        raised the detector is inert (the caller is reconstructing the
        model); it resumes after :meth:`end_drift`.
        """
        drift_detected = False
        opened = False
        closed = False
        if not self.drift:
            if not self.check:
                # Lines 8-10: open a window on an anomalous score.
                if error >= self.theta_error:
                    self.check = True
                    self._win = 0
                    self.n_windows_opened += 1
                    opened = True
            if self.check and self._win < self.window_size:
                # Lines 12-15: sequential centroid + drift-rate update.
                self.centroids.update(label, x)
                self.last_distance = self.centroids.drift_distance()
                self._win += 1
                if self._win == self.window_size:
                    # Lines 16-19: end-of-window drift decision.
                    closed = True
                    if self.last_distance >= self.theta_drift:
                        self.drift = True
                        drift_detected = True
                        self.n_drifts += 1
                    self.check = False
                    if not self.drift:
                        # The window closed without drift: the detector is
                        # idle again, so ``win`` must honour its documented
                        # "0 when idle" contract (on drift, ``end_drift``
                        # performs the reset).
                        self._win = 0
        tel = self.telemetry
        if tel.enabled and (opened or closed or self.check):
            self._telemetry_update(tel, opened, closed, drift_detected, error)
        return DetectorStep(
            drift_detected=drift_detected,
            drifting=self.drift,
            checking=self.check,
            window_count=self._win,
            distance=self.last_distance,
        )

    def _telemetry_update(
        self,
        tel: Telemetry,
        opened: bool,
        closed: bool,
        drift_detected: bool,
        error: float,
    ) -> None:
        """Window lifecycle events + the live drift-rate gauge."""
        reg = tel.registry
        reg.gauge(
            "detector.distance", "current L1 centroid drift rate (Eq. 1 numerator)"
        ).set(self.last_distance)
        if opened:
            reg.counter(
                "detector.windows_opened", "check windows opened (θ_error crossings)"
            ).inc()
            tel.emit("window_opened", window=self.n_windows_opened, score=error)
        if closed:
            reg.counter(
                "detector.windows_closed", "check windows closed", labels=("drift",)
            ).inc(drift=drift_detected)
            if drift_detected:
                reg.counter(
                    "detector.drifts", "drift flags raised (θ_drift crossings)"
                ).inc()
            tel.emit(
                "window_closed",
                window=self.n_windows_opened,
                drift=drift_detected,
                distance=self.last_distance,
                threshold=self.theta_drift,
            )

    def end_drift(self) -> None:
        """Lower the drift flag (Reconstruct_Model returned False)."""
        self.drift = False
        self.check = False
        self._win = 0

    def state_nbytes(self) -> int:
        """Centroid state + a few scalars — no sample storage, ever."""
        return self.centroids.state_nbytes() + 6 * 8

    # -- checkpoint protocol -----------------------------------------------------------

    def get_state(self) -> dict:
        """Snapshot the Algorithm 1 state machine plus its centroids."""
        return {
            "centroids": self.centroids.get_state(),
            "drift": bool(self.drift),
            "check": bool(self.check),
            "win": int(self._win),
            "last_distance": float(self.last_distance),
            "n_windows_opened": int(self.n_windows_opened),
            "n_drifts": int(self.n_drifts),
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot."""
        self.centroids.set_state(state["centroids"])
        self.drift = bool(state["drift"])
        self.check = bool(state["check"])
        self._win = int(state["win"])
        self.last_distance = float(state["last_distance"])
        self.n_windows_opened = int(state["n_windows_opened"])
        self.n_drifts = int(state["n_drifts"])
