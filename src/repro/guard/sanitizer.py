"""Input sanitation — the first rung of the self-healing runtime.

A month-long edge deployment sees data nobody validated for: NaN bursts
from a dying ADC, ±10⁶ electrical spikes, channels stuck at zero. The
:class:`InputSanitizer` sits between the stream and the pipeline and
classifies every sample as *clean* or *faulty* (non-finite anywhere, or
outside per-feature bounds learned from the initial-training set), then
applies one of four policies to faulty samples:

``reject``
    Raise :class:`~repro.utils.exceptions.GuardError` — the loud-failure
    mode for development and CI, equivalent to the library's historical
    validation-boundary behaviour but correctly classified.
``clip``
    Repair in place: non-finite features take the last good reading,
    then the whole sample is clipped into the learned bounds. Keeps every
    sample flowing (best when faults are mild range excursions).
``impute_last_good``
    Replace each faulty feature with its most recent clean reading
    (bounds midpoint before any clean sample has been seen). The sample
    still reaches the pipeline, so detectors keep their cadence.
``quarantine``
    Withhold the sample from the pipeline entirely; the guard emits a
    placeholder record instead. The raw sample is retained in a bounded
    buffer for post-mortem inspection.

Clean samples are returned **by reference, untouched** — this is what
makes a guarded no-fault run byte-identical to an unguarded one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.validation import as_matrix

__all__ = ["POLICIES", "FeatureBounds", "SanitizedSample", "InputSanitizer"]

#: The four supported sanitizer policies.
POLICIES = ("reject", "clip", "impute_last_good", "quarantine")


@dataclass(frozen=True)
class FeatureBounds:
    """Per-feature plausibility interval learned from the init set.

    ``from_data`` pads the observed min/max by ``margin`` times the
    feature's range (or its magnitude, for constant features), so
    legitimate drift — which moves distributions by fractions of the
    range — stays inside the bounds while sensor spikes (orders of
    magnitude out) do not.
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=np.float64).ravel()
        hi = np.asarray(self.hi, dtype=np.float64).ravel()
        if lo.shape != hi.shape or lo.size == 0:
            raise ConfigurationError(
                f"bounds must be equal-length non-empty vectors, got {lo.shape}/{hi.shape}."
            )
        if not (np.isfinite(lo).all() and np.isfinite(hi).all()):
            raise ConfigurationError("bounds must be finite.")
        if np.any(lo > hi):
            raise ConfigurationError("every lower bound must be <= its upper bound.")
        lo.setflags(write=False)
        hi.setflags(write=False)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @classmethod
    def from_data(cls, X: np.ndarray, *, margin: float = 3.0) -> "FeatureBounds":
        """Learn padded per-feature bounds from (clean) training data.

        The pad is floored at ``margin`` times the **global** feature
        span, not just each feature's own: legitimate concept drift can
        sweep a formerly-quiet feature across the data's whole scale
        (e.g. a spectral peak moving into a flat bin), and drift must
        *never* look like a sensor fault — only values far outside the
        scale of anything in the init set (spikes, garbage) should trip.
        """
        X = as_matrix(X, name="X")
        if margin < 0:
            raise ConfigurationError(f"margin must be >= 0, got {margin!r}.")
        lo, hi = X.min(axis=0), X.max(axis=0)
        span = hi - lo
        # Global value range: after drift, any feature may plausibly take
        # values anywhere on the scale the init data occupies overall.
        scale = float(hi.max() - lo.min()) if X.size else 0.0
        if scale == 0.0:
            scale = max(float(np.abs(X).max()), 1.0) if X.size else 1.0
        pad = margin * np.maximum(span, scale)
        return cls(lo - pad, hi + pad)

    @property
    def n_features(self) -> int:
        return int(self.lo.size)

    @property
    def midpoint(self) -> np.ndarray:
        """Centre of each interval — the imputation value of last resort."""
        return 0.5 * (self.lo + self.hi)

    def violations(self, x: np.ndarray) -> np.ndarray:
        """Boolean mask of features outside the interval (NaN counts)."""
        with np.errstate(invalid="ignore"):
            return ~((x >= self.lo) & (x <= self.hi))

    def contains_all(self, X: np.ndarray) -> bool:
        """Vectorized whole-chunk check.

        The bounds are finite, so this also screens out non-finite
        values: NaN fails both comparisons and ±inf fails one.
        """
        with np.errstate(invalid="ignore"):
            return bool((X >= self.lo).all() and (X <= self.hi).all())


@dataclass(frozen=True)
class SanitizedSample:
    """Outcome of sanitising one sample.

    ``x`` is the vector to feed the pipeline (the *original reference*
    for action ``"ok"``, a repaired copy for ``"clipped"``/``"imputed"``,
    and ``None`` for ``"quarantined"``/``"rejected"``).
    """

    x: Optional[np.ndarray]
    action: str
    bad_features: Tuple[int, ...] = ()


class InputSanitizer:
    """Classify-and-repair front end for a guarded pipeline.

    Parameters
    ----------
    n_features:
        Expected sample width (samples of any other width are faulty as
        a whole — e.g. rows mangled upstream of the guard).
    policy:
        One of :data:`POLICIES`.
    bounds:
        Optional :class:`FeatureBounds`. Without bounds only non-finite
        values count as faults, so finite garbage (spikes, stuck-at)
        passes — fit bounds from the init set whenever one exists.
    quarantine_capacity:
        Most recent quarantined raw samples retained for inspection.
    """

    def __init__(
        self,
        n_features: int,
        *,
        policy: str = "impute_last_good",
        bounds: Optional[FeatureBounds] = None,
        quarantine_capacity: int = 128,
    ) -> None:
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown guard policy {policy!r}; choose from {POLICIES}."
            )
        self.n_features = int(n_features)
        if self.n_features < 1:
            raise ConfigurationError("n_features must be >= 1.")
        if bounds is not None and bounds.n_features != self.n_features:
            raise ConfigurationError(
                f"bounds cover {bounds.n_features} features, expected {self.n_features}."
            )
        self.policy = policy
        self.bounds = bounds
        self.quarantined: Deque[np.ndarray] = deque(maxlen=int(quarantine_capacity))
        self._last_good: Optional[np.ndarray] = None
        #: per-action tallies (report currency; "ok" counts clean samples)
        self.counts = {"ok": 0, "clipped": 0, "imputed": 0, "quarantined": 0, "rejected": 0}

    # -- fast path -------------------------------------------------------------

    def all_clean(self, Xc: np.ndarray) -> bool:
        """Vectorized chunk screen: True iff every sample is clean.

        This is the only sanitizer work the healthy fast path pays — a
        couple of element-wise passes, negligible next to the chunk's
        model scoring (the guard-overhead bench bounds it at <5 %).
        """
        if Xc.shape[1] != self.n_features:
            return False
        if self.bounds is not None:
            # Finite bounds subsume the finiteness check (see contains_all),
            # saving one full pass over the chunk on the hot path.
            return self.bounds.contains_all(Xc)
        return bool(np.isfinite(Xc).all())

    def note_good(self, x: np.ndarray) -> None:
        """Record the most recent clean reading (imputation source)."""
        self._last_good = np.array(x, dtype=np.float64).ravel()
        self.counts["ok"] += 1

    # -- per-sample path -------------------------------------------------------

    def sanitize(self, x: np.ndarray) -> SanitizedSample:
        """Classify one sample and apply the policy if it is faulty."""
        arr = np.asarray(x, dtype=np.float64).ravel()
        if arr.size != self.n_features:
            # The whole row is unusable (e.g. truncated after an upstream
            # quarantine): every feature counts as bad.
            return self._faulty(arr, tuple(range(self.n_features)), whole_row=True)
        finite = np.isfinite(arr)
        bad = ~finite
        if self.bounds is not None:
            bad |= self.bounds.violations(arr)
        if not bad.any():
            self.note_good(arr)
            return SanitizedSample(x, "ok")
        return self._faulty(arr, tuple(int(i) for i in np.flatnonzero(bad)))

    def _fallback(self) -> np.ndarray:
        """Imputation source: last clean reading, else bounds midpoint, else zeros."""
        if self._last_good is not None:
            return self._last_good
        if self.bounds is not None:
            return self.bounds.midpoint
        return np.zeros(self.n_features)

    def _faulty(
        self, arr: np.ndarray, bad: Tuple[int, ...], *, whole_row: bool = False
    ) -> SanitizedSample:
        policy = self.policy
        if policy == "reject":
            self.counts["rejected"] += 1
            return SanitizedSample(None, "rejected", bad)
        if policy == "quarantine" or whole_row:
            # A wrong-width row cannot be repaired feature-wise; repairing
            # policies degrade to quarantine for it.
            self.counts["quarantined"] += 1
            self.quarantined.append(arr.copy())
            return SanitizedSample(None, "quarantined", bad)
        fallback = self._fallback()
        out = arr.copy()
        if policy == "impute_last_good":
            out[list(bad)] = fallback[list(bad)]
            self.counts["imputed"] += 1
            return SanitizedSample(out, "imputed", bad)
        # clip: repair non-finite from the fallback, then clamp into bounds.
        nonfinite = ~np.isfinite(out)
        out[nonfinite] = fallback[nonfinite]
        if self.bounds is not None:
            np.clip(out, self.bounds.lo, self.bounds.hi, out=out)
        self.counts["clipped"] += 1
        return SanitizedSample(out, "clipped", bad)

    # -- reporting -------------------------------------------------------------

    @property
    def n_faults(self) -> int:
        """Samples that needed any intervention."""
        c = self.counts
        return c["clipped"] + c["imputed"] + c["quarantined"] + c["rejected"]
