"""Numeric-health sentinels — the second rung of the self-healing runtime.

The OS-ELM recursion is numerically delicate: each sequential update
multiplies through the running inverse covariance ``P``, so one garbage
sample (or plain accumulation over a month of updates) can leave ``P``
asymmetric, blow up ``beta``, or seed a NaN that silently poisons every
later prediction. The failure is *latent* — the update itself does not
raise — which is why the guard probes model state **after** mutating
steps rather than trusting exceptions.

:class:`NumericHealthSentinel` wraps the per-instance probes
(``OSELM.numeric_health`` / ``OSELM.check_health``) for a whole
:class:`~repro.oselm.ensemble.MultiInstanceModel` and reports which
instances tripped. The guard runtime decides what to do about a trip
(roll back to the last healthy snapshot, or re-initialize) — the
sentinel only detects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..oselm.ensemble import MultiInstanceModel
from ..utils.exceptions import NumericalHealthError

__all__ = ["SentinelTrip", "NumericHealthSentinel"]


@dataclass(frozen=True)
class SentinelTrip:
    """One instance's failed health check."""

    instance: int
    reason: str


class NumericHealthSentinel:
    """Health probe over every OS-ELM instance of a multi-instance model.

    Parameters mirror ``OSELM.check_health``:

    max_beta_norm:
        Frobenius-norm ceiling for the output weights. The init-set fit
        lands orders of magnitude below this; crossing it means the
        recursion is diverging.
    max_p_magnitude:
        Ceiling for ``|P|``. ``P`` shrinks as evidence accumulates
        (it is an inverse covariance); growth toward this bound signals
        a collapsing information matrix.
    symmetry_tol:
        Allowed ``max|P - Pᵀ|``. The update preserves symmetry exactly
        in real arithmetic; drift beyond round-off means accumulated
        floating-point damage (the library re-symmetrizes, so any
        violation here is serious).
    """

    def __init__(
        self,
        *,
        max_beta_norm: float = 1e6,
        max_p_magnitude: float = 1e8,
        symmetry_tol: float = 1e-6,
    ) -> None:
        self.max_beta_norm = float(max_beta_norm)
        self.max_p_magnitude = float(max_p_magnitude)
        self.symmetry_tol = float(symmetry_tol)
        #: total instance-level trips observed (report currency)
        self.n_trips = 0

    def check(self, model: MultiInstanceModel) -> Tuple[SentinelTrip, ...]:
        """Probe every instance; return the trips (empty = healthy)."""
        trips: List[SentinelTrip] = []
        for c, inst in enumerate(model.instances):
            core = getattr(inst, "core", inst)
            try:
                core.check_health(
                    max_beta_norm=self.max_beta_norm,
                    max_p_magnitude=self.max_p_magnitude,
                    symmetry_tol=self.symmetry_tol,
                )
            except NumericalHealthError as exc:
                trips.append(SentinelTrip(instance=c, reason=str(exc)))
        self.n_trips += len(trips)
        return tuple(trips)

    def is_healthy(self, model: MultiInstanceModel) -> bool:
        """Convenience wrapper: True iff :meth:`check` finds nothing."""
        return not self.check(model)
