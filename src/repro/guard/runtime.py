"""The guard runtime: sanitizer + sentinels + ladder wired to a pipeline.

:class:`RuntimeGuard` is the object users actually touch. Attach one to
any :class:`~repro.core.pipeline.StreamPipeline` via
``pipeline.attach_guard(guard)`` and every sample the pipeline consumes
flows through the guard first:

* while the ladder is ``HEALTHY`` and a whole chunk screens clean, the
  guard delegates to the pipeline's own vectorized chunk path verbatim —
  guarded no-fault runs are **byte-identical** to unguarded ones, and
  the only cost is the vectorized cleanliness screen (<5 % on
  pure-predict streams, enforced by ``bench_guard_overhead``);
* faulty samples are repaired, quarantined, or rejected per the
  sanitizer policy, and bursts of them climb the degradation ladder;
* after state-mutating steps the numeric-health sentinel probes the
  model; a trip rolls the model (and the pipeline's extra state) back to
  the last healthy in-memory snapshot — taken with
  :func:`repro.resilience.state.snapshot_state` on a fixed cadence — or
  re-initializes the diverged instances when no snapshot can help;
* every intervention and every ladder transition is emitted on the
  pipeline's telemetry hub with the exact stream index, so a month-long
  run leaves an auditable recovery trail.

The guard holds **in-memory** snapshots only; it composes with (and does
not replace) the on-disk checkpointing in :mod:`repro.resilience`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..resilience.state import snapshot_state
from ..telemetry import Telemetry, get_telemetry
from ..utils.exceptions import ConfigurationError, GuardError
from .ladder import DegradationLadder, GuardLevel, Transition
from .sanitizer import FeatureBounds, InputSanitizer
from .sentinels import NumericHealthSentinel

__all__ = ["RuntimeGuard"]

#: record phases that do NOT mutate adaptive model state
_NON_MUTATING_PHASES = frozenset(("predict", "quarantine", "passthrough", "frozen"))


def _mutating(rec) -> bool:
    """Does this record's step possibly change learned model state?"""
    return (
        rec.phase not in _NON_MUTATING_PHASES
        or rec.drift_detected
        or rec.reconstructing
    )


class RuntimeGuard:
    """Self-healing wrapper around one stream pipeline.

    Parameters
    ----------
    sanitizer:
        The input rung. Build via :meth:`from_init_data` to get bounds
        learned from the initial-training set.
    sentinel:
        Numeric-health probe; ``None`` disables model-state sentinels
        (input guarding still works).
    ladder:
        Level controller; defaults to a :class:`DegradationLadder` with
        stock hysteresis.
    snapshot_every:
        In-memory rollback snapshots are refreshed at most once per this
        many processed samples (and only when the sentinel passes), so a
        trip never restores state older than one cadence.
    """

    def __init__(
        self,
        sanitizer: InputSanitizer,
        *,
        sentinel: Optional[NumericHealthSentinel] = None,
        ladder: Optional[DegradationLadder] = None,
        snapshot_every: int = 256,
    ) -> None:
        if int(snapshot_every) < 1:
            raise ConfigurationError(
                f"snapshot_every must be >= 1, got {snapshot_every!r}."
            )
        self.sanitizer = sanitizer
        self.sentinel = sentinel
        self.ladder = ladder if ladder is not None else DegradationLadder()
        self.snapshot_every = int(snapshot_every)
        self.pipeline = None
        self.telemetry: Telemetry = get_telemetry()
        #: full transition history (report currency)
        self.transitions: List[Transition] = []
        self.n_rollbacks = 0
        self.n_reinits = 0
        self._snapshot: Optional[dict] = None
        self._snapshot_index = 0
        self._since_snapshot = 0
        self._last_pred = -1
        self._last_score = float("nan")

    @classmethod
    def from_init_data(
        cls,
        X: np.ndarray,
        *,
        policy: str = "impute_last_good",
        margin: float = 3.0,
        sentinel: Optional[NumericHealthSentinel] = None,
        ladder: Optional[DegradationLadder] = None,
        snapshot_every: int = 256,
    ) -> "RuntimeGuard":
        """Build a guard whose bounds are learned from the init set.

        This is the intended construction path: the same data that fits
        the model's initial state defines what "plausible input" means.
        The sentinel defaults to a stock :class:`NumericHealthSentinel`.
        """
        X = np.asarray(X, dtype=np.float64)
        bounds = FeatureBounds.from_data(X, margin=margin)
        sanitizer = InputSanitizer(bounds.n_features, policy=policy, bounds=bounds)
        return cls(
            sanitizer,
            sentinel=sentinel if sentinel is not None else NumericHealthSentinel(),
            ladder=ladder,
            snapshot_every=snapshot_every,
        )

    # -- attachment ------------------------------------------------------------

    def bind(self, pipeline) -> None:
        """Adopt ``pipeline`` (called by ``StreamPipeline.attach_guard``)."""
        if self.pipeline is not None and self.pipeline is not pipeline:
            raise ConfigurationError("guard is already attached to another pipeline.")
        self.pipeline = pipeline
        self.telemetry = pipeline.telemetry
        self._take_snapshot()

    @property
    def level(self) -> GuardLevel:
        return self.ladder.level

    # -- snapshots & recovery --------------------------------------------------

    def _take_snapshot(self) -> None:
        pipe = self.pipeline
        self._snapshot = {
            "model": snapshot_state(pipe.model.get_state()),
            "extra": snapshot_state(pipe._extra_state()),
        }
        self._snapshot_index = pipe._index
        self._since_snapshot = 0

    def _maybe_snapshot(self) -> None:
        """Refresh the rollback snapshot on cadence, sentinel permitting."""
        if self._since_snapshot < self.snapshot_every:
            return
        if self.sentinel is not None and not self.sentinel.check(self.pipeline.model):
            self._take_snapshot()
        elif self.sentinel is None:
            self._take_snapshot()
        # A tripping model is never snapshotted — the trip handler runs
        # from the mutation path before this cadence comes around again.

    def _check_sentinel(self) -> None:
        """Probe model health after a mutating step; recover on a trip."""
        if self.sentinel is None:
            return
        trips = self.sentinel.check(self.pipeline.model)
        if trips:
            self._handle_trips(trips)

    def _handle_trips(self, trips) -> None:
        pipe = self.pipeline
        index = pipe._index
        tel = self.telemetry
        reason = "; ".join(f"instance {t.instance}: {t.reason}" for t in trips)
        if tel.enabled:
            tel.registry.counter(
                "guard.trips", "numeric-health sentinel trips", labels=("pipeline",)
            ).inc(pipeline=pipe.name)
            tel.emit(
                "sentinel_tripped",
                pipeline=pipe.name,
                index=index,
                instances=[t.instance for t in trips],
                reason=reason,
            )
        self._recover(index, trips)
        self._apply(self.ladder.record_trip(index, reason))

    def _recover(self, index: int, trips) -> None:
        """Roll back to the last healthy snapshot; re-initialize if that fails."""
        pipe = self.pipeline
        tel = self.telemetry
        if self._snapshot is not None:
            pipe.model.set_state(snapshot_state(self._snapshot["model"]))
            pipe._set_extra_state(snapshot_state(self._snapshot["extra"]))
            if self.sentinel is None or not self.sentinel.check(pipe.model):
                self.n_rollbacks += 1
                if tel.enabled:
                    tel.registry.counter(
                        "guard.rollbacks", "snapshot rollbacks", labels=("pipeline",)
                    ).inc(pipeline=pipe.name)
                    tel.emit(
                        "model_rolled_back",
                        pipeline=pipe.name,
                        index=index,
                        snapshot_index=self._snapshot_index,
                    )
                return
        # No snapshot, or the snapshot itself is poisoned: rebuild the
        # diverged instances' recursion state in place. Predictions keep
        # whatever finite weights survive; the RLS restarts from scratch.
        self._reinitialize(index, trips)

    def _reinitialize(self, index: int, trips) -> None:
        pipe = self.pipeline
        tel = self.telemetry
        instances = sorted({t.instance for t in trips})
        for c in instances:
            core = getattr(pipe.model.instances[c], "core", pipe.model.instances[c])
            if core.P is not None:
                core.P = np.eye(core.n_hidden) / core.reg
            if core.beta is not None:
                core.beta = np.nan_to_num(
                    core.beta, nan=0.0, posinf=0.0, neginf=0.0
                )
        self.n_reinits += 1
        if tel.enabled:
            tel.registry.counter(
                "guard.reinits", "instance re-initializations", labels=("pipeline",)
            ).inc(pipeline=pipe.name)
            tel.emit(
                "model_reinitialized",
                pipeline=pipe.name,
                index=index,
                instances=instances,
            )
        self._take_snapshot()

    # -- ladder plumbing -------------------------------------------------------

    def _apply(self, transition: Optional[Transition]) -> None:
        if transition is None:
            return
        self.transitions.append(transition)
        pipe = self.pipeline
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(
                "guard.level_changes", "degradation-ladder moves", labels=("pipeline",)
            ).inc(pipeline=pipe.name)
            tel.emit(
                "guard_level_changed",
                pipeline=pipe.name,
                index=transition.index,
                from_level=transition.from_level.name,
                to_level=transition.to_level.name,
                reason=transition.reason,
            )
        if (
            transition.to_level >= GuardLevel.PASSTHROUGH
            and transition.from_level < GuardLevel.PASSTHROUGH
        ):
            # Entering bypass: abort any half-done reconstruction and
            # clear detector state so adaptation resumes cleanly if the
            # ladder ever steps back down.
            pipe._guard_bypass()

    def _note_fault(self, action: str, bad) -> None:
        pipe = self.pipeline
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(
                "guard.faults", "input faults handled", labels=("pipeline", "action")
            ).inc(pipeline=pipe.name, action=action)
            tel.emit(
                "guard_fault",
                pipeline=pipe.name,
                index=pipe._index,
                action=action,
                bad_features=list(bad),
            )
        self._apply(self.ladder.record_fault(pipe._index))

    # -- the streaming surface -------------------------------------------------

    def process_chunk(self, Xc: np.ndarray, yc: np.ndarray) -> list:
        """Consume a non-empty prefix of the chunk through the guard.

        Mirrors the contract of ``StreamPipeline._process_chunk`` so the
        run loops need no special casing.
        """
        pipe = self.pipeline
        if (
            self.level == GuardLevel.HEALTHY
            and len(Xc) > 0
            and self.sanitizer.all_clean(np.asarray(Xc, dtype=np.float64))
        ):
            # Fast path: delegate verbatim — records byte-identical to an
            # unguarded run. Bookkeeping only touches tallies.
            recs = pipe._process_chunk(Xc, yc)
            self.sanitizer.counts["ok"] += len(recs)
            self.sanitizer._last_good = np.array(Xc[len(recs) - 1], dtype=np.float64)
            last = recs[-1]
            self._last_pred, self._last_score = last.predicted, last.anomaly_score
            if pipe.checkpoint_volatility == "always" or _mutating(last):
                # Only steps that can change learned state advance the
                # snapshot cadence — a pure-predict chunk costs nothing.
                self._since_snapshot += len(recs)
                self._check_sentinel()
                self._maybe_snapshot()
            return recs
        # Slow path: per-sample sanitation. For "quiet" pipelines the
        # sub-chunk must end right after a state-mutating record — the
        # checkpoint dirty-tracking inspects only the last record.
        quiet = pipe.checkpoint_volatility == "quiet"
        recs = []
        for j in range(len(Xc)):
            rec = self._step(Xc[j], int(yc[j]))
            recs.append(rec)
            if quiet and _mutating(rec):
                break
        return recs

    def _step(self, x: np.ndarray, y_true: int):
        """Guarded equivalent of ``pipeline.process_one`` for one sample."""
        pipe = self.pipeline
        result = self.sanitizer.sanitize(x)
        if result.action == "ok":
            self._apply(self.ladder.record_clean(pipe._index))
        else:
            self._note_fault(result.action, result.bad_features)
            if result.action == "rejected":
                raise GuardError(
                    f"guard policy 'reject': sample {pipe._index} has faulty "
                    f"features {list(result.bad_features)}."
                )
            if result.action == "quarantined":
                # The pipeline never sees the sample; emit a placeholder
                # record carrying the last known prediction so the record
                # stream stays index-aligned with the input stream.
                return pipe._record(
                    self._last_pred, self._last_score, y_true, phase="quarantine"
                )
        xs = result.x
        level = self.level
        if level >= GuardLevel.PASSTHROUGH:
            # Detector and training bypassed: score-and-record only.
            c, err = pipe.model.predict_with_score(xs)
            self._last_pred, self._last_score = int(c), float(err)
            phase = "frozen" if level == GuardLevel.FROZEN else "passthrough"
            return pipe._record(c, err, y_true, phase=phase)
        rec = pipe.process_one(xs, y_true)
        self._last_pred, self._last_score = rec.predicted, rec.anomaly_score
        if _mutating(rec) or pipe.checkpoint_volatility == "always":
            self._since_snapshot += 1
            self._check_sentinel()
            self._maybe_snapshot()
        return rec

    # -- checkpoint protocol ---------------------------------------------------

    def get_state(self) -> dict:
        """Isolated snapshot of everything mutable: ladder position,
        sanitizer tallies and imputation source, sentinel trip count,
        the in-memory rollback snapshot, and the intervention history.

        Mirrors ``StreamPipeline.get_state`` so a guarded session can be
        evicted to a checkpoint container and restored with its
        degradation state — not just its model — intact.
        """
        state = {
            "ladder": self.ladder.get_state(),
            "sanitizer": {
                "counts": dict(self.sanitizer.counts),
                "last_good": self.sanitizer._last_good,
                "quarantined": list(self.sanitizer.quarantined),
            },
            "sentinel_trips": (
                0 if self.sentinel is None else int(self.sentinel.n_trips)
            ),
            "transitions": [
                {
                    "index": int(t.index),
                    "from": int(t.from_level),
                    "to": int(t.to_level),
                    "reason": t.reason,
                }
                for t in self.transitions
            ],
            "n_rollbacks": int(self.n_rollbacks),
            "n_reinits": int(self.n_reinits),
            "snapshot": self._snapshot,
            "snapshot_index": int(self._snapshot_index),
            "since_snapshot": int(self._since_snapshot),
            "last_pred": int(self._last_pred),
            "last_score": float(self._last_score),
        }
        return snapshot_state(state)

    def set_state(self, state: dict) -> None:
        """Restore :meth:`get_state` output (after ``bind``)."""
        self.ladder.set_state(state["ladder"])
        san = state["sanitizer"]
        self.sanitizer.counts = {k: int(v) for k, v in san["counts"].items()}
        last_good = san["last_good"]
        self.sanitizer._last_good = (
            None if last_good is None else np.array(last_good, dtype=np.float64)
        )
        self.sanitizer.quarantined.clear()
        self.sanitizer.quarantined.extend(
            np.array(a, dtype=np.float64) for a in san["quarantined"]
        )
        if self.sentinel is not None:
            self.sentinel.n_trips = int(state["sentinel_trips"])
        self.transitions = [
            Transition(
                index=int(t["index"]),
                from_level=GuardLevel(int(t["from"])),
                to_level=GuardLevel(int(t["to"])),
                reason=str(t["reason"]),
            )
            for t in state["transitions"]
        ]
        self.n_rollbacks = int(state["n_rollbacks"])
        self.n_reinits = int(state["n_reinits"])
        snap = state["snapshot"]
        self._snapshot = None if snap is None else snapshot_state(snap)
        self._snapshot_index = int(state["snapshot_index"])
        self._since_snapshot = int(state["since_snapshot"])
        self._last_pred = int(state["last_pred"])
        self._last_score = float(state["last_score"])

    # -- reporting -------------------------------------------------------------

    def report(self) -> dict:
        """Machine-readable summary of everything the guard did."""
        return {
            "policy": self.sanitizer.policy,
            "level": self.level.name,
            "counts": dict(self.sanitizer.counts),
            "n_faults": self.sanitizer.n_faults,
            "sentinel_trips": 0 if self.sentinel is None else self.sentinel.n_trips,
            "rollbacks": self.n_rollbacks,
            "reinitializations": self.n_reinits,
            "transitions": [
                {
                    "index": t.index,
                    "from": t.from_level.name,
                    "to": t.to_level.name,
                    "reason": t.reason,
                }
                for t in self.transitions
            ],
        }

    def report_text(self) -> str:
        """Human-readable guard report (the CLI's ``--guard-report``)."""
        r = self.report()
        lines = [
            f"guard policy      : {r['policy']}",
            f"final level       : {r['level']}",
            f"clean samples     : {r['counts']['ok']}",
            f"faults handled    : {r['n_faults']} "
            f"(clipped={r['counts']['clipped']}, imputed={r['counts']['imputed']}, "
            f"quarantined={r['counts']['quarantined']}, rejected={r['counts']['rejected']})",
            f"sentinel trips    : {r['sentinel_trips']}",
            f"rollbacks         : {r['rollbacks']}",
            f"reinitializations : {r['reinitializations']}",
        ]
        if r["transitions"]:
            lines.append("transitions       :")
            lines.extend(
                f"  @{t['index']:>6} {t['from']} -> {t['to']}  ({t['reason']})"
                for t in r["transitions"]
            )
        else:
            lines.append("transitions       : none")
        return "\n".join(lines)
