"""The degradation ladder — the third rung of the self-healing runtime.

A pipeline that keeps adapting on garbage data destroys its own model; a
pipeline that halts on the first bad sample fails the paper's
month-long-unattended deployment story. The ladder resolves the tension
by trading capability for safety one notch at a time:

``HEALTHY``
    Full pipeline: detection, reconstruction, sequential training, and
    the vectorized chunk fast path. Byte-identical to an unguarded run.
``SANITIZING``
    Full pipeline behaviour, but every sample goes through the
    per-sample sanitizer (the chunk fast path is suspended). Entered
    after a burst of input faults.
``PASSTHROUGH``
    Detector and reconstruction are bypassed: the model still predicts
    and the record stream keeps flowing, but nothing adapts — faulty
    input can no longer masquerade as concept drift. Entered when a
    numeric-health sentinel trips (the model just had to be restored
    from a snapshot; feeding the restored state more suspect data would
    re-poison it).
``FROZEN``
    Terminal safe mode: predictions only, from whatever state survived,
    until the operator intervenes. Entered after repeated sentinel
    trips — the "limp home" rung.

Transitions have **hysteresis** in both directions: escalation needs a
burst (several faults inside a short window), not a single bad sample,
and de-escalation needs a clean streak that doubles with altitude, so a
flapping sensor cannot bounce the pipeline between rungs every few
samples. ``FROZEN`` never de-escalates on its own.

The ladder is pure bookkeeping — it decides *levels*, while the guard
runtime enforces what each level means and emits the telemetry trail.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import List, Optional

from ..utils.exceptions import ConfigurationError

__all__ = ["GuardLevel", "Transition", "DegradationLadder"]


class GuardLevel(IntEnum):
    """Rungs of the degradation ladder, ordered by lost capability."""

    HEALTHY = 0
    SANITIZING = 1
    PASSTHROUGH = 2
    FROZEN = 3


@dataclass(frozen=True)
class Transition:
    """One ladder move, stamped with the exact stream index."""

    index: int
    from_level: GuardLevel
    to_level: GuardLevel
    reason: str


class DegradationLadder:
    """Hysteretic level controller for a guarded pipeline.

    Parameters
    ----------
    trip_faults, fault_window:
        Escalate ``HEALTHY → SANITIZING`` once ``trip_faults`` input
        faults land within any ``fault_window`` consecutive samples. A
        single cosmic-ray sample is repaired without a level change.
    freeze_trips, trip_window:
        Escalate to ``FROZEN`` once ``freeze_trips`` sentinel trips land
        within ``trip_window`` samples — repeated numeric divergence
        means rollback is not containing the problem.
    cooldown:
        Clean samples required to step down one level from
        ``SANITIZING``; each higher rung doubles it (``cooldown * 2``
        from ``PASSTHROUGH``). De-escalation is always one rung at a
        time, and ``FROZEN`` is sticky.
    """

    def __init__(
        self,
        *,
        trip_faults: int = 3,
        fault_window: int = 32,
        freeze_trips: int = 2,
        trip_window: int = 512,
        cooldown: int = 64,
    ) -> None:
        for label, v in (
            ("trip_faults", trip_faults),
            ("fault_window", fault_window),
            ("freeze_trips", freeze_trips),
            ("trip_window", trip_window),
            ("cooldown", cooldown),
        ):
            if int(v) < 1:
                raise ConfigurationError(f"{label} must be >= 1, got {v!r}.")
        self.trip_faults = int(trip_faults)
        self.fault_window = int(fault_window)
        self.freeze_trips = int(freeze_trips)
        self.trip_window = int(trip_window)
        self.cooldown = int(cooldown)
        self.level = GuardLevel.HEALTHY
        self._fault_indices: List[int] = []
        self._trip_indices: List[int] = []
        self._clean_streak = 0

    # -- event intake ----------------------------------------------------------

    def record_fault(self, index: int) -> Optional[Transition]:
        """An input fault at stream ``index``; maybe escalate to SANITIZING."""
        self._clean_streak = 0
        self._fault_indices.append(int(index))
        lo = index - self.fault_window + 1
        self._fault_indices = [i for i in self._fault_indices if i >= lo]
        if (
            self.level == GuardLevel.HEALTHY
            and len(self._fault_indices) >= self.trip_faults
        ):
            return self._move(
                index,
                GuardLevel.SANITIZING,
                f"{len(self._fault_indices)} input faults within "
                f"{self.fault_window} samples",
            )
        return None

    def record_trip(self, index: int, reason: str = "sentinel trip") -> Optional[Transition]:
        """A sentinel trip at ``index``; escalate to PASSTHROUGH or FROZEN."""
        self._clean_streak = 0
        self._trip_indices.append(int(index))
        lo = index - self.trip_window + 1
        self._trip_indices = [i for i in self._trip_indices if i >= lo]
        if self.level == GuardLevel.FROZEN:
            return None
        if len(self._trip_indices) >= self.freeze_trips:
            return self._move(
                index,
                GuardLevel.FROZEN,
                f"{len(self._trip_indices)} sentinel trips within "
                f"{self.trip_window} samples ({reason})",
            )
        if self.level < GuardLevel.PASSTHROUGH:
            return self._move(index, GuardLevel.PASSTHROUGH, reason)
        return None

    def record_clean(self, index: int) -> Optional[Transition]:
        """A clean sample at ``index``; maybe step one rung back down."""
        if self.level in (GuardLevel.HEALTHY, GuardLevel.FROZEN):
            return None
        self._clean_streak += 1
        needed = self.cooldown * (2 ** (int(self.level) - 1))
        if self._clean_streak >= needed:
            self._clean_streak = 0
            return self._move(
                index,
                GuardLevel(int(self.level) - 1),
                f"{needed} consecutive clean samples",
            )
        return None

    def _move(self, index: int, to: GuardLevel, reason: str) -> Transition:
        t = Transition(int(index), self.level, to, reason)
        self.level = to
        self._clean_streak = 0
        return t

    # -- checkpoint protocol ---------------------------------------------------

    def get_state(self) -> dict:
        return {
            "level": int(self.level),
            "fault_indices": list(self._fault_indices),
            "trip_indices": list(self._trip_indices),
            "clean_streak": int(self._clean_streak),
        }

    def set_state(self, state: dict) -> None:
        self.level = GuardLevel(int(state["level"]))
        self._fault_indices = [int(i) for i in state["fault_indices"]]
        self._trip_indices = [int(i) for i in state["trip_indices"]]
        self._clean_streak = int(state["clean_streak"])
