"""Self-healing runtime: input guards, sentinels, and a degradation ladder.

The paper's deployment target is a resource-limited edge device running
unattended for weeks. Everything upstream of the model — transducers,
ADCs, wiring — fails more often than the model does, and the OS-ELM
recursion happily trains on whatever arrives. This package hardens the
streaming pipelines against that reality with three cooperating layers:

* :mod:`~repro.guard.sanitizer` — per-feature input plausibility bounds
  learned from the init set, with four handling policies (``reject``,
  ``clip``, ``impute_last_good``, ``quarantine``);
* :mod:`~repro.guard.sentinels` — numeric-health probes over the OS-ELM
  recursion state (P symmetry/magnitude, beta norm, non-finite state);
* :mod:`~repro.guard.ladder` — a hysteretic degradation ladder
  (healthy → sanitizing → detector-bypassed passthrough → frozen).

:class:`~repro.guard.runtime.RuntimeGuard` composes the three and
attaches to any :class:`~repro.core.pipeline.StreamPipeline`; the
:mod:`~repro.guard.chaos` module provides the seeded fault-schedule
harness the chaos-soak tests run all five pipelines through.

With a guard attached and no faults in the stream, per-step records are
byte-identical to an unguarded run — hardening costs nothing until
something actually goes wrong.
"""

from .chaos import (
    FAULT_KINDS,
    ScheduledFault,
    apply_fault_schedule,
    chaos_stream,
    make_fault_schedule,
)
from .ladder import DegradationLadder, GuardLevel, Transition
from .runtime import RuntimeGuard
from .sanitizer import POLICIES, FeatureBounds, InputSanitizer, SanitizedSample
from .sentinels import NumericHealthSentinel, SentinelTrip

__all__ = [
    "POLICIES",
    "FeatureBounds",
    "InputSanitizer",
    "SanitizedSample",
    "NumericHealthSentinel",
    "SentinelTrip",
    "GuardLevel",
    "Transition",
    "DegradationLadder",
    "RuntimeGuard",
    "FAULT_KINDS",
    "ScheduledFault",
    "make_fault_schedule",
    "apply_fault_schedule",
    "chaos_stream",
]
