"""Chaos-soak harness: seeded random fault schedules over real streams.

The unit tests exercise each fault and each policy in isolation; the
chaos soak answers the deployment question — *does every pipeline
survive a month of compounding sensor failures?* — by splicing a seeded
random schedule of the five fault generators (NaN bursts, stuck-at,
dropout, spike trains, dead features) into an otherwise ordinary
evaluation stream, then streaming it through a guarded pipeline and
asserting zero uncaught exceptions plus a recovery trail in telemetry.

Determinism: a schedule is fully determined by ``(seed, stream shape)``
— ``numpy.random.default_rng(seed)`` drives every choice — so a failing
soak reproduces from its seed alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..datasets.stream import DataStream
from ..resilience.faults import dropout, feature_dead, nan_burst, spike_train, stuck_at
from ..utils.exceptions import ConfigurationError

__all__ = [
    "FAULT_KINDS",
    "ScheduledFault",
    "make_fault_schedule",
    "apply_fault_schedule",
    "chaos_stream",
]

#: fault generators a schedule can draw from (all deterministic)
FAULT_KINDS = ("nan_burst", "stuck_at", "dropout", "spike_train", "feature_dead")


@dataclass(frozen=True)
class ScheduledFault:
    """One fault occurrence: what, where, and how wide."""

    kind: str
    start: int
    length: int
    columns: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}."
            )


def make_fault_schedule(
    n_samples: int,
    n_features: int,
    *,
    seed: int,
    n_faults: int = 6,
    max_length: int = 12,
    kinds: Sequence[str] = FAULT_KINDS,
    protect_prefix: int = 0,
) -> Tuple[ScheduledFault, ...]:
    """Draw a deterministic random schedule of ``n_faults`` faults.

    ``protect_prefix`` keeps the first samples fault-free (handy when the
    stream's head doubles as the guard's bounds source). ``feature_dead``
    is drawn with a bounded length here — the soak wants overlapping
    transient faults, not one channel erasing the rest of the stream.
    """
    if n_samples < 1 or n_features < 1:
        raise ConfigurationError("schedule needs a non-empty stream.")
    for k in kinds:
        if k not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {k!r}; choose from {FAULT_KINDS}."
            )
    rng = np.random.default_rng(seed)
    lo = min(int(protect_prefix), n_samples - 1)
    faults = []
    for _ in range(int(n_faults)):
        kind = str(rng.choice(list(kinds)))
        start = int(rng.integers(lo, n_samples))
        length = int(rng.integers(1, max(2, max_length + 1)))
        n_cols = int(rng.integers(1, n_features + 1))
        cols = tuple(
            int(c) for c in sorted(rng.choice(n_features, size=n_cols, replace=False))
        )
        faults.append(ScheduledFault(kind, start, length, cols))
    return tuple(sorted(faults, key=lambda f: (f.start, f.kind)))


def apply_fault_schedule(
    X: np.ndarray, schedule: Sequence[ScheduledFault]
) -> np.ndarray:
    """Splice every scheduled fault into a copy of ``X`` (in order)."""
    X = np.asarray(X, dtype=np.float64).copy()
    for f in schedule:
        cols = list(f.columns)
        if f.kind == "nan_burst":
            X = nan_burst(X, f.start, f.length, columns=cols)
        elif f.kind == "stuck_at":
            X = stuck_at(X, f.start, f.length, columns=cols)
        elif f.kind == "dropout":
            X = dropout(X, f.start, f.length, columns=cols)
        elif f.kind == "spike_train":
            X = spike_train(X, f.start, f.length, columns=cols)
        else:  # feature_dead — bounded to the scheduled window for soaks
            stop = min(f.start + f.length, len(X))
            X = dropout(X, f.start, stop - f.start, columns=cols[:1])
    return X


def chaos_stream(
    stream: DataStream,
    schedule: Sequence[ScheduledFault],
    *,
    name: Optional[str] = None,
) -> DataStream:
    """Return ``stream`` with the schedule's faults spliced in.

    The result is built with ``ensure_finite=False`` — it may carry NaN
    and is only meant for pipelines with a guard attached (an unguarded
    pipeline raises ``DataValidationError`` at the first bad sample, by
    design).
    """
    X = apply_fault_schedule(stream.X, schedule)
    return DataStream(
        X,
        stream.y,
        drift_points=stream.drift_points,
        name=name or f"{stream.name}+chaos",
        ensure_finite=False,
    )
