"""Unsupervised initial labelling — the paper's §3.2 assumption.

"In the case of unsupervised learning, it is assumed that these initial
samples can be labeled with a clustering algorithm such as k-means."

:func:`cluster_label` performs that step: k-means over the initial
training window, returning cluster indices as pseudo-labels plus a quality
diagnostic (silhouette-style separation score) so callers can detect a
poorly-chosen ``C`` before building a model on bad labels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..clustering.kmeans import KMeans
from ..utils.exceptions import ConfigurationError
from ..utils.math import pairwise_sq_dists
from ..utils.rng import SeedLike
from ..utils.validation import as_matrix, check_positive

__all__ = ["ClusterLabels", "cluster_label"]


@dataclass(frozen=True)
class ClusterLabels:
    """Pseudo-labels from the unsupervised initial-labelling step.

    Attributes
    ----------
    labels:
        Cluster index per training sample — usable anywhere the library
        expects ``y``.
    centers:
        The ``(C, D)`` cluster centres (these become the trained
        centroids of §3.2 when passed to ``CentroidSet``).
    separation:
        Mean ratio of (distance to own centre) / (distance to nearest
        other centre); ``< 1`` is separable, near or above 1 means the
        chosen ``C`` does not describe the data.
    """

    labels: np.ndarray
    centers: np.ndarray
    separation: float

    @property
    def n_labels(self) -> int:
        return self.centers.shape[0]

    def is_reliable(self, threshold: float = 0.6) -> bool:
        """Heuristic: labels usable when clusters are clearly separated."""
        return self.separation < threshold


def cluster_label(
    X: np.ndarray,
    n_labels: int,
    *,
    n_init: int = 4,
    seed: SeedLike = None,
) -> ClusterLabels:
    """k-means pseudo-labelling of an initial training window.

    Every cluster is guaranteed non-empty (required downstream: each
    label must train one OS-ELM instance and own one centroid).
    """
    X = as_matrix(X, name="X")
    check_positive(n_labels, "n_labels")
    if len(X) < 2 * n_labels:
        raise ConfigurationError(
            f"need at least {2 * n_labels} samples to label {n_labels} clusters."
        )
    km = KMeans(n_labels, n_init=n_init, seed=seed).fit(X)
    labels = km.labels_
    centers = km.cluster_centers_
    counts = np.bincount(labels, minlength=n_labels)
    if (counts == 0).any():
        raise ConfigurationError(
            "k-means produced an empty cluster; reduce n_labels."
        )
    d = np.sqrt(pairwise_sq_dists(X, centers))
    own = d[np.arange(len(X)), labels]
    d_masked = d.copy()
    d_masked[np.arange(len(X)), labels] = np.inf
    nearest_other = d_masked.min(axis=1)
    ratio = own / np.where(nearest_other > 0, nearest_other, np.inf)
    return ClusterLabels(labels, centers, float(ratio.mean()))
