"""Streams, drift generators, and the paper's two (synthesised) datasets."""

from .benchmarks import (
    make_hyperplane_stream,
    make_rbf_drift_stream,
    make_sea_stream,
)
from .fleet import DevicePlan, ReplayPace, interleave_schedule, plan_fleet
from .labeling import ClusterLabels, cluster_label
from .coolingfan import (
    N_BINS,
    FanSpectrumModel,
    fan_condition,
    make_cooling_fan_like,
    make_fan_samples,
)
from .nslkdd import NSLKDDConfig, make_nslkdd_like, nslkdd_default_config
from .preprocessing import MinMaxScaler, StandardScaler
from .stream import DataStream, concatenate_streams
from .synthetic import (
    GaussianConcept,
    make_gradual_drift_stream,
    make_incremental_drift_stream,
    make_reoccurring_drift_stream,
    make_stationary_stream,
    make_sudden_drift_stream,
)

__all__ = [
    "DataStream",
    "concatenate_streams",
    "GaussianConcept",
    "make_stationary_stream",
    "make_sudden_drift_stream",
    "make_gradual_drift_stream",
    "make_incremental_drift_stream",
    "make_reoccurring_drift_stream",
    "NSLKDDConfig",
    "nslkdd_default_config",
    "make_nslkdd_like",
    "N_BINS",
    "FanSpectrumModel",
    "fan_condition",
    "make_fan_samples",
    "make_cooling_fan_like",
    "MinMaxScaler",
    "StandardScaler",
    "ClusterLabels",
    "cluster_label",
    "make_sea_stream",
    "make_hyperplane_stream",
    "make_rbf_drift_stream",
    "DevicePlan",
    "ReplayPace",
    "plan_fleet",
    "interleave_schedule",
]
