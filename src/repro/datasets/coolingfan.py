"""Synthetic cooling-fan vibration-spectrum streams.

The paper's second dataset (§4.1.2) contains frequency spectra (1–511 Hz, so
511 features) of cooling-fan vibration measured with an industrial
accelerometer, for a normal fan and two damage modes — holes drilled in a
blade and a chipped blade edge — in silent and noisy environments. Damaged
blades unbalance the rotor radially, producing characteristic harmonic
energy.

The real recordings are not available offline, so this module synthesises
spectra from a compact physical model (substitution documented in
DESIGN.md §1):

* a rotational fundamental around 38 Hz with decaying integer harmonics;
* a blade-pass frequency (``n_blades ×`` rotation) with its own harmonics;
* a coloured broadband noise floor;
* **hole damage** → strong 1× unbalance line + raised odd harmonics;
* **chipped blade** → milder unbalance + blade-pass sidebands;
* **noisy environment** → an interfering ventilation-fan line near 50 Hz
  and a lifted noise floor.

Scenario builders replicate the paper's three test schedules exactly:
sudden (drift @120), gradual (mixing 120–600), reoccurring (damage only in
120–170).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal, Tuple

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.rng import SeedLike, ensure_rng
from .stream import DataStream

__all__ = [
    "N_BINS",
    "FanSpectrumModel",
    "fan_condition",
    "make_fan_samples",
    "make_cooling_fan_like",
]

#: Spectrum resolution of the real dataset: 1 Hz bins from 1 to 511 Hz.
N_BINS = 511

Condition = Literal["normal", "holes", "chipped"]
Environment = Literal["silent", "noisy"]


@dataclass(frozen=True)
class FanSpectrumModel:
    """Parametric generator of one fan/environment vibration spectrum.

    Amplitudes are in arbitrary acceleration units; spectra are
    non-negative. ``unbalance`` scales the 1×-rotation line (the radial
    unbalance signature the paper attributes to damaged blades);
    ``sideband`` scales blade-pass sidebands (chipped-edge signature).
    """

    rotation_hz: float = 38.0
    n_blades: int = 7
    base_amplitude: float = 1.0
    harmonic_decay: float = 0.55
    unbalance: float = 0.15
    sideband: float = 0.0
    noise_floor: float = 0.01
    interference_hz: float = 0.0
    interference_amp: float = 0.0
    jitter: float = 0.006

    def __post_init__(self) -> None:
        if self.rotation_hz <= 0 or self.n_blades < 1:
            raise ConfigurationError("rotation_hz must be > 0 and n_blades >= 1.")
        if min(self.base_amplitude, self.noise_floor, self.unbalance) < 0:
            raise ConfigurationError("amplitudes must be non-negative.")

    def mean_spectrum(self, n_bins: int = N_BINS) -> np.ndarray:
        """The noise-free expected spectrum over ``n_bins`` 1-Hz bins."""
        freqs = np.arange(1, n_bins + 1, dtype=np.float64)
        spec = np.full(n_bins, self.noise_floor)
        # Coloured floor: slightly more energy at low frequency.
        spec += self.noise_floor * 2.0 / (1.0 + freqs / 60.0)

        def add_line(f0: float, amp: float, width: float = 1.6) -> None:
            spec_line = amp * np.exp(-0.5 * ((freqs - f0) / width) ** 2)
            np.add(spec, spec_line, out=spec)

        # Rotational harmonics: 1x, 2x, 3x, ...
        k = 1
        while k * self.rotation_hz < n_bins:
            amp = self.base_amplitude * self.harmonic_decay ** (k - 1) * 0.4
            if k == 1:
                amp += self.unbalance  # radial unbalance raises the 1x line
            elif k % 2 == 1:
                amp += 0.3 * self.unbalance
            add_line(k * self.rotation_hz, amp)
            k += 1
        # Blade-pass frequency and harmonics.
        bpf = self.n_blades * self.rotation_hz
        k = 1
        while k * bpf < n_bins:
            amp = self.base_amplitude * self.harmonic_decay ** (k - 1)
            add_line(k * bpf, amp)
            if self.sideband > 0:
                add_line(k * bpf - self.rotation_hz, self.sideband * amp)
                add_line(k * bpf + self.rotation_hz, self.sideband * amp)
            k += 1
        if self.interference_amp > 0 and 0 < self.interference_hz < n_bins:
            add_line(self.interference_hz, self.interference_amp, width=2.5)
            add_line(2 * self.interference_hz, 0.5 * self.interference_amp, width=2.5)
        return spec

    def sample(self, n: int, rng: np.random.Generator, n_bins: int = N_BINS) -> np.ndarray:
        """Draw ``n`` noisy spectra (multiplicative + additive noise, ≥ 0)."""
        mean = self.mean_spectrum(n_bins)
        gain = 1.0 + rng.normal(0.0, 0.05, size=(n, 1))  # per-capture gain
        X = mean * gain * (1.0 + rng.normal(0.0, self.jitter, size=(n, n_bins)))
        X += rng.normal(0.0, self.noise_floor * 0.5, size=(n, n_bins))
        np.maximum(X, 0.0, out=X)
        return X


def fan_condition(
    condition: Condition = "normal",
    environment: Environment = "silent",
) -> FanSpectrumModel:
    """The six paper conditions as configured spectrum models."""
    base = FanSpectrumModel()
    if condition == "holes":
        base = replace(base, unbalance=1.4, harmonic_decay=0.62, jitter=0.012)
    elif condition == "chipped":
        base = replace(base, unbalance=1.2, sideband=0.8, jitter=0.012)
    elif condition != "normal":
        raise ConfigurationError(f"unknown condition {condition!r}.")
    if environment == "noisy":
        base = replace(
            base,
            noise_floor=base.noise_floor * 3.0,
            interference_hz=50.0,
            interference_amp=0.5,
        )
    elif environment != "silent":
        raise ConfigurationError(f"unknown environment {environment!r}.")
    return base


def make_fan_samples(
    condition: Condition,
    environment: Environment,
    n: int,
    *,
    seed: SeedLike = None,
    n_bins: int = N_BINS,
) -> np.ndarray:
    """Convenience: ``n`` spectra for one condition/environment."""
    rng = ensure_rng(seed)
    return fan_condition(condition, environment).sample(n, rng, n_bins)


def make_cooling_fan_like(
    scenario: Literal["sudden", "gradual", "reoccurring"] = "sudden",
    *,
    n_train: int = 120,
    n_test: int = 700,
    drift_at: int = 120,
    gradual_end: int = 600,
    reoccur_at: int = 170,
    environment: Environment = "silent",
    train_environment: Environment = "silent",
    n_modes: int = 1,
    seed: SeedLike = 0,
    n_bins: int = N_BINS,
) -> Tuple[DataStream, DataStream]:
    """Build ``(train, test)`` streams for one of the paper's three scenarios.

    * ``sudden`` — normal before ``drift_at``, hole-damaged after (paper
      test set 1; drift at the 120th point).
    * ``gradual`` — normal before ``drift_at``; between ``drift_at`` and
      ``gradual_end`` normal and chipped-blade spectra mix with a linearly
      rising damage probability; chipped only afterwards (paper test set 2).
    * ``reoccurring`` — chipped-blade spectra appear only in
      ``[drift_at, reoccur_at)``; normal reoccurs after (paper test set 3).

    The training stream is the normal fan in ``train_environment``
    (silent by default, matching the paper; set it to ``"noisy"`` to
    study environment-matched noisy deployments). Labels: 0 = normal,
    1 = damaged (ground truth for the evaluation harness; the detector
    itself never sees them).

    ``n_modes=2`` adds a second *normal operating mode* (higher rotation
    speed) to the training data as a second label — the "multiple normal
    patterns" setup of the paper's on-device demo (its Table 6 prices
    Init_Coord above zero, which requires C ≥ 2 instances). The test
    scenarios still stream mode-1 data.
    """
    if scenario not in ("sudden", "gradual", "reoccurring"):
        raise ConfigurationError(f"unknown scenario {scenario!r}.")
    if not 0 < drift_at < n_test:
        raise ConfigurationError(f"drift_at must be in (0, {n_test}).")
    if n_modes not in (1, 2):
        raise ConfigurationError(f"n_modes must be 1 or 2, got {n_modes}.")
    rng = ensure_rng(seed)
    normal = fan_condition("normal", environment)
    damaged = fan_condition("holes" if scenario == "sudden" else "chipped", environment)

    X_train = fan_condition("normal", train_environment).sample(n_train, rng, n_bins)
    y_train = np.zeros(n_train, dtype=np.int64)
    if n_modes == 2:
        fast = replace(fan_condition("normal", train_environment), rotation_hz=45.0)
        X_train = np.concatenate([X_train, fast.sample(n_train, rng, n_bins)])
        y_train = np.concatenate([y_train, np.ones(n_train, dtype=np.int64)])
    train = DataStream(X_train, y_train, name=f"fan/{scenario}/train")

    X = np.empty((n_test, n_bins))
    y = np.zeros(n_test, dtype=np.int64)
    X[:drift_at] = normal.sample(drift_at, rng, n_bins)

    if scenario == "sudden":
        X[drift_at:] = damaged.sample(n_test - drift_at, rng, n_bins)
        y[drift_at:] = 1
        drifts: tuple[int, ...] = (drift_at,)
    elif scenario == "gradual":
        if not drift_at < gradual_end <= n_test:
            raise ConfigurationError("need drift_at < gradual_end <= n_test.")
        span = gradual_end - drift_at
        p_damaged = (np.arange(span) + 1) / span
        dmg = rng.random(span) < p_damaged
        idx = np.arange(drift_at, gradual_end)
        X[idx[~dmg]] = normal.sample(int((~dmg).sum()), rng, n_bins)
        X[idx[dmg]] = damaged.sample(int(dmg.sum()), rng, n_bins)
        y[idx[dmg]] = 1
        X[gradual_end:] = damaged.sample(n_test - gradual_end, rng, n_bins)
        y[gradual_end:] = 1
        drifts = (drift_at,)
    else:  # reoccurring
        if not drift_at < reoccur_at < n_test:
            raise ConfigurationError("need drift_at < reoccur_at < n_test.")
        X[drift_at:reoccur_at] = damaged.sample(reoccur_at - drift_at, rng, n_bins)
        y[drift_at:reoccur_at] = 1
        X[reoccur_at:] = normal.sample(n_test - reoccur_at, rng, n_bins)
        drifts = (drift_at, reoccur_at)

    test = DataStream(X, y, drift_points=drifts, name=f"fan/{scenario}/test")
    return train, test
