"""Synthetic drift-stream generators — the four archetypes of Figure 1.

The paper (Section 2.1, Figure 1) distinguishes four concept-drift types:

* **sudden** — the old distribution is replaced instantaneously;
* **gradual** — old and new samples interleave with a rising probability of
  the new concept until it takes over;
* **incremental** — the distribution itself slides continuously from old to
  new (every intermediate distribution is visited);
* **reoccurring** — the new distribution appears for a bounded interval and
  then the old one returns.

Each generator here produces a :class:`~repro.datasets.stream.DataStream`
whose ``drift_points`` mark the ground-truth change positions, built on top
of a pluggable *concept* abstraction (a per-class sampling distribution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.rng import SeedLike, ensure_rng
from .stream import DataStream

__all__ = [
    "GaussianConcept",
    "make_sudden_drift_stream",
    "make_gradual_drift_stream",
    "make_incremental_drift_stream",
    "make_reoccurring_drift_stream",
    "make_stationary_stream",
]


@dataclass(frozen=True)
class GaussianConcept:
    """A labelled concept: one Gaussian blob per class.

    Parameters
    ----------
    means:
        ``(n_classes, n_features)`` class means.
    stds:
        ``(n_classes, n_features)`` or scalar per-class standard deviations.
    class_probs:
        Prior over classes; uniform when omitted.
    """

    means: np.ndarray
    stds: np.ndarray
    class_probs: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        means = np.atleast_2d(np.asarray(self.means, dtype=np.float64))
        stds = np.asarray(self.stds, dtype=np.float64)
        if stds.ndim == 0:
            stds = np.full_like(means, float(stds))
        stds = np.atleast_2d(stds)
        if stds.shape != means.shape:
            raise ConfigurationError(
                f"stds shape {stds.shape} must match means shape {means.shape}."
            )
        if np.any(stds < 0):
            raise ConfigurationError("stds must be non-negative.")
        probs = self.class_probs
        if probs is None:
            probs = np.full(len(means), 1.0 / len(means))
        probs = np.asarray(probs, dtype=np.float64)
        if probs.shape != (len(means),):
            raise ConfigurationError(
                f"class_probs must have length {len(means)}, got {probs.shape}."
            )
        if np.any(probs < 0) or not np.isclose(probs.sum(), 1.0):
            raise ConfigurationError("class_probs must be a probability vector.")
        object.__setattr__(self, "means", means)
        object.__setattr__(self, "stds", stds)
        object.__setattr__(self, "class_probs", probs)

    @property
    def n_classes(self) -> int:
        return self.means.shape[0]

    @property
    def n_features(self) -> int:
        return self.means.shape[1]

    def sample(self, n: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` labelled samples from the concept."""
        y = rng.choice(self.n_classes, size=n, p=self.class_probs)
        X = self.means[y] + rng.normal(size=(n, self.n_features)) * self.stds[y]
        return X, y

    def shifted(self, delta: np.ndarray | float) -> "GaussianConcept":
        """A copy with every class mean translated by ``delta``."""
        return GaussianConcept(self.means + np.asarray(delta, dtype=np.float64),
                               self.stds.copy(), self.class_probs.copy())

    def interpolate(self, other: "GaussianConcept", t: float) -> "GaussianConcept":
        """Linear interpolation between two concepts (``t=0`` → self)."""
        if other.means.shape != self.means.shape:
            raise ConfigurationError("Concepts must share shape to interpolate.")
        t = float(t)
        return GaussianConcept(
            (1 - t) * self.means + t * other.means,
            (1 - t) * self.stds + t * other.stds,
            (1 - t) * self.class_probs + t * other.class_probs,
        )


def _check_concepts(old: GaussianConcept, new: GaussianConcept) -> None:
    if old.n_features != new.n_features or old.n_classes != new.n_classes:
        raise ConfigurationError(
            "old and new concepts must share n_features and n_classes; got "
            f"({old.n_classes}×{old.n_features}) vs ({new.n_classes}×{new.n_features})."
        )


def make_stationary_stream(
    concept: GaussianConcept,
    n_samples: int,
    *,
    seed: SeedLike = None,
    name: str = "stationary",
) -> DataStream:
    """A drift-free stream from a single concept."""
    rng = ensure_rng(seed)
    X, y = concept.sample(n_samples, rng)
    return DataStream(X, y, drift_points=(), name=name)


def make_sudden_drift_stream(
    old: GaussianConcept,
    new: GaussianConcept,
    *,
    n_samples: int,
    drift_at: int,
    seed: SeedLike = None,
    name: str = "sudden",
) -> DataStream:
    """Sudden drift: ``old`` before ``drift_at``, ``new`` strictly after."""
    _check_concepts(old, new)
    if not 0 < drift_at < n_samples:
        raise ConfigurationError(f"drift_at must be in (0, {n_samples}), got {drift_at}.")
    rng = ensure_rng(seed)
    X1, y1 = old.sample(drift_at, rng)
    X2, y2 = new.sample(n_samples - drift_at, rng)
    return DataStream(
        np.concatenate([X1, X2]),
        np.concatenate([y1, y2]),
        drift_points=(drift_at,),
        name=name,
    )


def make_gradual_drift_stream(
    old: GaussianConcept,
    new: GaussianConcept,
    *,
    n_samples: int,
    drift_start: int,
    drift_end: int,
    seed: SeedLike = None,
    name: str = "gradual",
) -> DataStream:
    """Gradual drift: inside ``[drift_start, drift_end)`` each sample comes
    from the *new* concept with probability rising linearly 0 → 1; both
    concepts therefore appear during the transition (Figure 1, 2nd panel).
    """
    _check_concepts(old, new)
    if not 0 < drift_start < drift_end <= n_samples:
        raise ConfigurationError(
            f"need 0 < drift_start < drift_end <= n_samples, got "
            f"({drift_start}, {drift_end}, {n_samples})."
        )
    rng = ensure_rng(seed)
    X = np.empty((n_samples, old.n_features))
    y = np.empty(n_samples, dtype=np.int64)
    p_new = np.zeros(n_samples)
    span = drift_end - drift_start
    p_new[drift_start:drift_end] = (np.arange(span) + 1) / span
    p_new[drift_end:] = 1.0
    use_new = rng.random(n_samples) < p_new
    n_new = int(use_new.sum())
    Xo, yo = old.sample(n_samples - n_new, rng)
    Xn, yn = new.sample(n_new, rng)
    X[~use_new], y[~use_new] = Xo, yo
    X[use_new], y[use_new] = Xn, yn
    return DataStream(X, y, drift_points=(drift_start,), name=name)


def make_incremental_drift_stream(
    old: GaussianConcept,
    new: GaussianConcept,
    *,
    n_samples: int,
    drift_start: int,
    drift_end: int,
    seed: SeedLike = None,
    name: str = "incremental",
) -> DataStream:
    """Incremental drift: the concept itself interpolates from old to new
    across ``[drift_start, drift_end)`` (Figure 1, 3rd panel) — every sample
    in the transition is drawn from an intermediate distribution.
    """
    _check_concepts(old, new)
    if not 0 < drift_start < drift_end <= n_samples:
        raise ConfigurationError(
            f"need 0 < drift_start < drift_end <= n_samples, got "
            f"({drift_start}, {drift_end}, {n_samples})."
        )
    rng = ensure_rng(seed)
    X = np.empty((n_samples, old.n_features))
    y = np.empty(n_samples, dtype=np.int64)
    Xa, ya = old.sample(drift_start, rng)
    X[:drift_start], y[:drift_start] = Xa, ya
    for i in range(drift_start, drift_end):
        t = (i - drift_start + 1) / (drift_end - drift_start)
        xi, yi = old.interpolate(new, t).sample(1, rng)
        X[i], y[i] = xi[0], yi[0]
    if drift_end < n_samples:
        Xb, yb = new.sample(n_samples - drift_end, rng)
        X[drift_end:], y[drift_end:] = Xb, yb
    return DataStream(X, y, drift_points=(drift_start,), name=name)


def make_reoccurring_drift_stream(
    old: GaussianConcept,
    new: GaussianConcept,
    *,
    n_samples: int,
    drift_at: int,
    reoccur_at: int,
    seed: SeedLike = None,
    name: str = "reoccurring",
) -> DataStream:
    """Reoccurring drift: ``new`` appears only in ``[drift_at, reoccur_at)``
    and then ``old`` returns (Figure 1, 4th panel). Both the appearance and
    the reversion are ground-truth drift points.
    """
    _check_concepts(old, new)
    if not 0 < drift_at < reoccur_at < n_samples:
        raise ConfigurationError(
            f"need 0 < drift_at < reoccur_at < n_samples, got "
            f"({drift_at}, {reoccur_at}, {n_samples})."
        )
    rng = ensure_rng(seed)
    X1, y1 = old.sample(drift_at, rng)
    X2, y2 = new.sample(reoccur_at - drift_at, rng)
    X3, y3 = old.sample(n_samples - reoccur_at, rng)
    return DataStream(
        np.concatenate([X1, X2, X3]),
        np.concatenate([y1, y2, y3]),
        drift_points=(drift_at, reoccur_at),
        name=name,
    )
