"""Synthetic NSL-KDD-like intrusion-detection stream.

The paper evaluates on NSL-KDD restricted to its two largest labels,
``normal`` and ``neptune`` (a SYN-flood attack), pre-processed down to 38
numeric features, with 2 522 initial-training samples and 22 701 test
samples, and a distribution shift at the 8 333rd test sample.

That dataset cannot be fetched offline, so this module generates a
*statistically analogous* stream (substitution documented in DESIGN.md §1):

* 38 features in ``[0, 1]`` after min-max scaling — a mix of dense
  "traffic-volume" features, sparse "flag" features that are near-zero for
  one class and active for the other, and a few near-constant features (as
  in real NSL-KDD, where several columns are almost always 0);
* two classes drawn from class-conditional Gaussian mixtures that are well
  separated initially (the paper's OS-ELM ensemble reaches ≳95 % before the
  drift);
* a **covariate drift** at ``drift_at``: both class-conditional
  distributions translate and the attack class changes its active feature
  set, so a model trained on the initial concept degrades sharply while the
  classes remain separable — exactly the regime in which retraining recovers
  accuracy (Figure 4).

The generator returns ``(train, test)`` streams; call
:func:`nslkdd_default_config` for the paper's exact sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.rng import SeedLike, ensure_rng
from .stream import DataStream

__all__ = ["NSLKDDConfig", "nslkdd_default_config", "make_nslkdd_like"]

#: Paper's feature count after NSL-KDD preprocessing.
N_FEATURES = 38
#: Paper's sample counts (§4.1.1).
N_TRAIN = 2522
N_TEST = 22701
DRIFT_AT = 8333


@dataclass(frozen=True)
class NSLKDDConfig:
    """Sizing and drift-severity knobs for the synthetic NSL-KDD stream.

    ``attack_fraction`` is the prior of the ``neptune`` class (label 1);
    the real selected subset is roughly balanced, so 0.45 is the default.
    ``drift_shift`` scales how far the class-conditional means move at the
    drift — 0 reproduces a stationary stream, larger values make the drift
    easier for every detector.
    """

    n_features: int = N_FEATURES
    n_train: int = N_TRAIN
    n_test: int = N_TEST
    drift_at: int = DRIFT_AT
    attack_fraction: float = 0.45
    drift_shift: float = 1.1
    noise_std: float = 0.08
    ambiguous_fraction: float = 0.04

    def __post_init__(self) -> None:
        if self.n_features < 8:
            raise ConfigurationError("n_features must be >= 8 for the feature groups.")
        if not 0 < self.drift_at < self.n_test:
            raise ConfigurationError(
                f"drift_at must be in (0, n_test={self.n_test}), got {self.drift_at}."
            )
        if not 0.0 < self.attack_fraction < 1.0:
            raise ConfigurationError("attack_fraction must be in (0, 1).")
        if not 0.0 <= self.ambiguous_fraction < 1.0:
            raise ConfigurationError("ambiguous_fraction must be in [0, 1).")
        if self.drift_shift < 0 or self.noise_std < 0:
            raise ConfigurationError("drift_shift and noise_std must be >= 0.")


def nslkdd_default_config() -> NSLKDDConfig:
    """The paper's exact sizes: 38 features, 2 522 train, 22 701 test, drift @8 333."""
    return NSLKDDConfig()


def _class_profiles(cfg: NSLKDDConfig, rng: np.random.Generator) -> dict:
    """Build the pre-/post-drift class-conditional mean vectors.

    Feature layout (indices over ``n_features``):

    * the first quarter — "volume" features: moderate means, both classes
      active but at different levels (duration, src_bytes, counts, ...);
    * the second quarter — "flag" features: near 0 for normal, high for
      neptune (SYN-error rates are the classic neptune signature);
    * the third quarter — "service" features: high for normal, low for
      neptune;
    * the final quarter — near-constant background features.
    """
    d = cfg.n_features
    q = d // 4
    normal = np.full(d, 0.1)
    attack = np.full(d, 0.1)
    normal[:q] = rng.uniform(0.30, 0.55, size=q)
    attack[:q] = rng.uniform(0.55, 0.80, size=q)
    normal[q : 2 * q] = rng.uniform(0.02, 0.08, size=q)
    attack[q : 2 * q] = rng.uniform(0.75, 0.95, size=q)
    normal[2 * q : 3 * q] = rng.uniform(0.60, 0.85, size=q)
    attack[2 * q : 3 * q] = rng.uniform(0.05, 0.20, size=q)
    normal[3 * q :] = rng.uniform(0.04, 0.10, size=d - 3 * q)
    attack[3 * q :] = rng.uniform(0.04, 0.10, size=d - 3 * q)

    # Post-drift concept: a moderate covariate shift mirroring NSL-KDD's
    # train→test gap. Both class-conditional means move a fraction of the
    # way toward each other on the discriminative feature groups (flags +
    # services) — a congested network raises benign SYN-error rates while
    # the attack's signature weakens — and the shared traffic-volume
    # features translate. The pull is deliberately partial: the paper's
    # frozen baseline still reaches ≈74 % post-drift accuracy, and the
    # unsupervised reconstruction relies on each new cluster staying
    # closer to its own old centroid than to the other class's.
    s = cfg.drift_shift
    gap = attack - normal
    disc = np.zeros(d)
    disc[q : 3 * q] = 1.0  # flags + services: the discriminative groups
    # Post-drift normal traffic suffers *heterogeneous* congestion: each
    # flow is pulled a per-sample fraction u ~ Beta(2, 3) of the way
    # toward the attack signature (direction vector below). The class
    # mean stays on the normal side of the midpoint (E[u]·0.75 + 0.15 ≈
    # 0.45 of the gap), preserving cluster identity for the unsupervised
    # reconstruction, while the Beta tail crosses the frozen model's
    # boundary — that tail is the ≈26 % post-drift error of the paper's
    # baseline.
    normal_post = normal.copy()
    normal_post[:q] = np.clip(
        normal[:q] + s * 0.15 * rng.choice([-1.0, 1.0], size=q), 0.0, 1.0
    )
    normal_post = np.clip(normal_post + s * 0.05 * gap * disc, 0.0, 1.0)
    normal_post_dir = s * 0.75 * gap * disc
    attack_post = attack.copy()
    attack_post[:q] = np.clip(attack[:q] + s * 0.15, 0.0, 1.0)
    attack_post = np.clip(attack_post - s * 0.25 * gap * disc, 0.0, 1.0)
    return {
        "pre": {0: normal, 1: attack},
        "post": {0: normal_post, 1: attack_post},
        "post_normal_dir": normal_post_dir,
    }


def _sample_class(
    mean: np.ndarray, n: int, noise_std: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``n`` samples around a class mean, clipped into [0, 1].

    A small heavy-tailed component models the bursty traffic statistics of
    the real dataset (a plain Gaussian is too clean for a drift benchmark).
    """
    X = mean + rng.normal(0.0, noise_std, size=(n, mean.shape[0]))
    bursts = rng.random(size=X.shape) < 0.02
    X = X + bursts * rng.normal(0.0, 6.0 * noise_std, size=X.shape)
    return np.clip(X, 0.0, 1.0)


def make_nslkdd_like(
    config: NSLKDDConfig | None = None,
    *,
    seed: SeedLike = 0,
) -> Tuple[DataStream, DataStream]:
    """Generate ``(train, test)`` NSL-KDD-like streams.

    The training stream is drift-free (pre-drift concept only). The test
    stream switches to the post-drift concept at ``config.drift_at`` and
    carries that index in ``drift_points``.

    Examples
    --------
    >>> train, test = make_nslkdd_like(seed=7)
    >>> train.n_features, len(train), len(test), test.drift_points
    (38, 2522, 22701, (8333,))
    """
    cfg = config or nslkdd_default_config()
    rng = ensure_rng(seed)
    profiles = _class_profiles(cfg, rng)

    def build(n: int, concept: str) -> tuple[np.ndarray, np.ndarray]:
        y = (rng.random(n) < cfg.attack_fraction).astype(np.int64)
        X = np.empty((n, cfg.n_features))
        means = profiles[concept]
        for c in (0, 1):
            mask = y == c
            m = int(mask.sum())
            Xc = _sample_class(means[c], m, cfg.noise_std, rng)
            if concept == "post" and c == 0:
                # Heterogeneous congestion severity per benign flow.
                u = rng.beta(2.0, 3.0, size=m)
                Xc = np.clip(Xc + u[:, None] * profiles["post_normal_dir"], 0.0, 1.0)
            X[mask] = Xc
        if cfg.ambiguous_fraction > 0:
            # A small share of inherently ambiguous flows (port scans,
            # half-open probes) sits between the class profiles with extra
            # spread. These keep every method's accuracy a little below
            # 100 % and, crucially, feed ONLAD's self-labelled training
            # with contaminated labels — the seed of the gradual decay the
            # paper observes for the passive approach.
            amb = rng.random(n) < cfg.ambiguous_fraction
            m = int(amb.sum())
            if m:
                means = profiles[concept]
                mid = 0.5 * (means[0] + means[1])
                X[amb] = _sample_class(mid, m, 2.0 * cfg.noise_std, rng)
                y[amb] = (rng.random(m) < 0.5).astype(np.int64)
        return X, y

    X_train, y_train = build(cfg.n_train, "pre")
    X_pre, y_pre = build(cfg.drift_at, "pre")
    X_post, y_post = build(cfg.n_test - cfg.drift_at, "post")

    train = DataStream(X_train, y_train, drift_points=(), name="nslkdd-like/train")
    test = DataStream(
        np.concatenate([X_pre, X_post]),
        np.concatenate([y_pre, y_post]),
        drift_points=(cfg.drift_at,),
        name="nslkdd-like/test",
    )
    return train, test
