"""Labelled data streams with ground-truth drift annotations.

A :class:`DataStream` is the unit of evaluation in this library: an ordered
sequence of ``(x, y)`` samples plus metadata about *where the distribution
actually changed* (``drift_points``), which the delay metrics in
:mod:`repro.metrics.delay` measure detections against.

Streams are immutable value objects; transformations (slicing, concatenation,
noise injection) return new streams and re-index drift points accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from ..utils.exceptions import DataValidationError
from ..utils.validation import as_matrix, check_labels

__all__ = ["DataStream", "concatenate_streams"]


def _owned(arr: np.ndarray, source: object) -> np.ndarray:
    """Return ``arr``, copied iff freezing it would mutate caller memory."""
    if (
        isinstance(source, np.ndarray)
        and source.flags.writeable
        and np.shares_memory(arr, source)
    ):
        return arr.copy()
    return arr


@dataclass(frozen=True)
class DataStream:
    """An ordered, labelled sample stream with known drift positions.

    Parameters
    ----------
    X:
        ``(n_samples, n_features)`` feature matrix in stream order.
    y:
        ``(n_samples,)`` integer class labels (ground truth; on-device
        methods may ignore them — the paper's detector is unsupervised).
    drift_points:
        Indices into the stream at which the underlying data distribution
        changes. Used only by the evaluation harness, never by detectors.
    name:
        Human-readable identifier used in reports.
    ensure_finite:
        ``True`` (default) — refuse NaN/inf at construction, the safe
        contract every unguarded pipeline relies on. ``False`` — admit
        non-finite samples; this is how the fault-injection and
        :mod:`repro.guard` chaos harnesses model a dying sensor, and such
        streams are only meant for pipelines with a guard attached (an
        unguarded pipeline will raise ``DataValidationError`` at the
        first bad sample instead of silently corrupting its state).
    """

    X: np.ndarray
    y: np.ndarray
    drift_points: Tuple[int, ...] = ()
    name: str = "stream"
    ensure_finite: bool = True

    def __post_init__(self) -> None:
        X = as_matrix(
            self.X, name="X", allow_empty=True, ensure_finite=self.ensure_finite
        )
        y = check_labels(self.y, name="y")
        if len(X) != len(y):
            raise DataValidationError(
                f"X has {len(X)} samples but y has {len(y)} labels."
            )
        drifts = tuple(sorted(int(d) for d in self.drift_points))
        for d in drifts:
            if not 0 <= d <= len(X):
                raise DataValidationError(
                    f"drift point {d} outside stream of length {len(X)}."
                )
        # The coercion helpers return the input by reference when it is
        # already a contiguous array of the right dtype — freezing such an
        # array in place would silently freeze the *caller's* data too, so
        # take a private copy before setflags.
        X = _owned(X, self.X)
        y = _owned(y, self.y)
        X.setflags(write=False)
        y.setflags(write=False)
        object.__setattr__(self, "X", X)
        object.__setattr__(self, "y", y)
        object.__setattr__(self, "drift_points", drifts)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.X)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, int]]:
        for i in range(len(self)):
            yield self.X[i], int(self.y[i])

    @property
    def n_features(self) -> int:
        """Dimensionality of each sample."""
        return self.X.shape[1]

    @property
    def n_classes(self) -> int:
        """Number of distinct class indices (max label + 1; 0 if empty)."""
        return int(self.y.max()) + 1 if len(self.y) else 0

    def fingerprint(self) -> str:
        """Content hash of the stream (data + labels + drift points).

        Used by the checkpoint layer to refuse resuming a run against a
        different stream than the one it was interrupted on. Cached — the
        arrays are frozen, so the hash cannot go stale.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            import hashlib

            h = hashlib.sha256()
            h.update(str(self.X.shape).encode())
            h.update(np.ascontiguousarray(self.X).tobytes())
            h.update(np.ascontiguousarray(self.y).tobytes())
            h.update(repr(self.drift_points).encode())
            cached = h.hexdigest()[:32]
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    # -- transformations -----------------------------------------------------

    def slice(self, start: int, stop: Optional[int] = None) -> "DataStream":
        """Return the sub-stream ``[start, stop)`` with re-indexed drifts."""
        stop = len(self) if stop is None else stop
        start, stop, _ = slice(start, stop).indices(len(self))
        # Drift points are legal anywhere in ``0 <= d <= len``, so a drift
        # sitting exactly at ``stop`` stays with the sub-stream (re-indexed
        # to its end) — ``take(len(s))`` must not lose an end annotation.
        drifts = tuple(d - start for d in self.drift_points if start <= d <= stop)
        Xs = self.X[start:stop].copy()  # sub-streams own their data
        Xs.setflags(write=False)
        return DataStream(
            Xs,
            self.y[start:stop].copy(),
            drift_points=drifts,
            name=f"{self.name}[{start}:{stop}]",
            ensure_finite=self.ensure_finite,
        )

    def take(self, n: int) -> "DataStream":
        """First ``n`` samples (convenience for quick experiments)."""
        return self.slice(0, n)

    def with_noise(self, scale: float, rng: np.random.Generator) -> "DataStream":
        """Return a copy with additive Gaussian noise of std ``scale``."""
        noisy = self.X + rng.normal(0.0, scale, size=self.X.shape)
        noisy.setflags(write=False)  # freshly built here: freeze, don't re-copy
        return DataStream(
            noisy, self.y, self.drift_points, f"{self.name}+noise",
            ensure_finite=self.ensure_finite,
        )

    def shuffled_within(self, start: int, stop: int, rng: np.random.Generator) -> "DataStream":
        """Shuffle samples inside ``[start, stop)`` (drift points unchanged).

        Useful for building gradual-drift mixtures where the two concepts
        interleave randomly inside the transition region.
        """
        idx = np.arange(len(self))
        seg = idx[start:stop].copy()
        rng.shuffle(seg)
        idx[start:stop] = seg
        Xs, ys = self.X[idx], self.y[idx]  # fancy indexing: already fresh arrays
        Xs.setflags(write=False)
        ys.setflags(write=False)
        return DataStream(
            Xs, ys, self.drift_points, self.name, ensure_finite=self.ensure_finite
        )


def concatenate_streams(
    streams: Sequence[DataStream],
    *,
    mark_boundaries: bool = True,
    name: Optional[str] = None,
) -> DataStream:
    """Concatenate streams in order.

    When ``mark_boundaries`` is true every junction between two consecutive
    streams is recorded as a drift point (this is how the sudden-drift
    scenarios are assembled), in addition to any drift points the parts
    already carry (re-indexed by their offset).
    """
    if not streams:
        raise DataValidationError("concatenate_streams needs at least one stream.")
    n_features = streams[0].n_features
    for s in streams[1:]:
        if s.n_features != n_features:
            raise DataValidationError(
                f"Feature mismatch: {s.name} has {s.n_features}, expected {n_features}."
            )
    X = np.concatenate([s.X for s in streams], axis=0)
    y = np.concatenate([s.y for s in streams], axis=0)
    X.setflags(write=False)  # freshly built: freeze so __post_init__ need not copy
    y.setflags(write=False)
    drifts: list[int] = []
    offset = 0
    for i, s in enumerate(streams):
        drifts.extend(offset + d for d in s.drift_points)
        offset += len(s)
        if mark_boundaries and i < len(streams) - 1:
            drifts.append(offset)
    return DataStream(
        X,
        y,
        drift_points=tuple(sorted(set(drifts))),
        name=name or "+".join(s.name for s in streams),
        ensure_finite=all(s.ensure_finite for s in streams),
    )
