"""Classic synthetic drift benchmarks from the concept-drift literature.

The paper's future work plans evaluation "with more concept drift
datasets"; these are the standard generators that drift papers (and the
river / scikit-multiflow ecosystems) use for that purpose, implemented
from their original definitions:

* **SEA concepts** (Street & Kim 2001) — 3 relevant features in [0, 10];
  label = (f1 + f2 ≤ θ) with θ switching between concept blocks;
* **rotating hyperplane** (Hulten et al. 2001) — labels from a moving
  linear boundary in d dimensions; drift = slow weight rotation;
* **RBF drift** — labelled Gaussian prototypes whose centres move with
  constant velocity (incremental drift in cluster space).

Each returns a :class:`~repro.datasets.stream.DataStream` with ground-truth
drift annotations, so the whole evaluation harness applies unchanged.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import check_positive, check_probability
from .stream import DataStream

__all__ = [
    "make_sea_stream",
    "make_hyperplane_stream",
    "make_rbf_drift_stream",
]

#: The four classic SEA thresholds (Street & Kim 2001).
SEA_THRESHOLDS = (8.0, 9.0, 7.0, 9.5)


def make_sea_stream(
    block_size: int = 2500,
    *,
    thresholds: Sequence[float] = SEA_THRESHOLDS,
    noise: float = 0.0,
    seed: SeedLike = None,
    name: str = "sea",
) -> DataStream:
    """SEA concepts: sudden drifts between threshold blocks.

    Features are uniform in ``[0, 10]^3`` (only the first two are
    relevant); within block ``k`` the label is ``f1 + f2 <= thresholds[k]``.
    ``noise`` flips that fraction of labels uniformly at random.
    """
    check_positive(block_size, "block_size")
    check_probability(noise, "noise")
    if len(thresholds) < 1:
        raise ConfigurationError("thresholds must be non-empty.")
    rng = ensure_rng(seed)
    n = block_size * len(thresholds)
    X = rng.uniform(0.0, 10.0, size=(n, 3))
    y = np.empty(n, dtype=np.int64)
    for k, theta in enumerate(thresholds):
        sl = slice(k * block_size, (k + 1) * block_size)
        y[sl] = (X[sl, 0] + X[sl, 1] <= theta).astype(np.int64)
    if noise > 0:
        flip = rng.random(n) < noise
        y[flip] = 1 - y[flip]
    drifts = tuple(block_size * k for k in range(1, len(thresholds)))
    return DataStream(X, y, drift_points=drifts, name=name)


def make_hyperplane_stream(
    n_samples: int = 10000,
    n_features: int = 10,
    *,
    drift_start: int = 5000,
    rotation_per_step: float = 1e-3,
    margin_noise: float = 0.05,
    seed: SeedLike = None,
    name: str = "hyperplane",
) -> DataStream:
    """Rotating hyperplane: an incremental real-concept drift.

    Samples are uniform in ``[0, 1]^d``; the label is the side of the
    hyperplane ``w·x = w·0.5``. From ``drift_start`` onward the weight
    vector rotates in a random 2-plane by ``rotation_per_step`` radians
    per sample, so the decision boundary moves continuously.
    """
    check_positive(n_samples, "n_samples")
    check_positive(n_features, "n_features")
    if not 0 < drift_start <= n_samples:
        raise ConfigurationError(
            f"drift_start must be in (0, {n_samples}], got {drift_start}."
        )
    check_positive(rotation_per_step, "rotation_per_step", strict=False)
    rng = ensure_rng(seed)
    X = rng.uniform(0.0, 1.0, size=(n_samples, n_features))
    # Orthonormal pair spanning the rotation plane.
    u = rng.normal(size=n_features)
    u /= np.linalg.norm(u)
    v = rng.normal(size=n_features)
    v -= (v @ u) * u
    v /= np.linalg.norm(v)
    y = np.empty(n_samples, dtype=np.int64)
    noise = rng.normal(0.0, margin_noise, size=n_samples)
    for i in range(n_samples):
        angle = rotation_per_step * max(0, i - drift_start)
        w = np.cos(angle) * u + np.sin(angle) * v
        y[i] = 1 if (X[i] - 0.5) @ w + noise[i] > 0 else 0
    return DataStream(X, y, drift_points=(drift_start,), name=name)


def make_rbf_drift_stream(
    n_samples: int = 6000,
    n_features: int = 8,
    n_prototypes: int = 4,
    *,
    drift_start: int = 2000,
    velocity: float = 5e-4,
    spread: float = 0.08,
    seed: SeedLike = None,
    name: str = "rbf-drift",
) -> DataStream:
    """Moving-prototype RBF stream: incremental covariate drift.

    ``n_prototypes`` labelled Gaussian prototypes live in ``[0, 1]^d``;
    from ``drift_start`` on, each moves with a constant random velocity
    (reflecting at the box walls). Labels alternate over prototypes so
    every class's distribution moves.
    """
    check_positive(n_samples, "n_samples")
    check_positive(n_prototypes, "n_prototypes")
    if not 0 < drift_start <= n_samples:
        raise ConfigurationError(
            f"drift_start must be in (0, {n_samples}], got {drift_start}."
        )
    rng = ensure_rng(seed)
    centers = rng.uniform(0.2, 0.8, size=(n_prototypes, n_features))
    vel = rng.normal(size=(n_prototypes, n_features))
    vel /= np.linalg.norm(vel, axis=1, keepdims=True)
    vel *= velocity
    X = np.empty((n_samples, n_features))
    y = np.empty(n_samples, dtype=np.int64)
    for i in range(n_samples):
        if i >= drift_start:
            centers += vel
            # Reflect at the unit-box walls.
            over = centers > 1.0
            under = centers < 0.0
            centers[over] = 2.0 - centers[over]
            centers[under] = -centers[under]
            vel[over | under] *= -1.0
        p = int(rng.integers(n_prototypes))
        X[i] = centers[p] + rng.normal(0.0, spread, size=n_features)
        y[i] = p % 2
    return DataStream(X, y, drift_points=(drift_start,), name=name)
