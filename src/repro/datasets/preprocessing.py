"""Feature scaling fitted on the initial training window.

On-device pipelines (paper §3) normalise inputs with statistics computed from
the *initial training* data only — the scaler itself must stay frozen while
streaming, otherwise the normalisation would mask the very distribution shift
the detector is looking for. Both scalers therefore follow a strict
``fit`` → ``transform`` lifecycle with no incremental refitting.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..utils.exceptions import NotFittedError
from ..utils.validation import as_matrix

__all__ = ["MinMaxScaler", "StandardScaler"]


class MinMaxScaler:
    """Scale features to ``[0, 1]`` using training-set min/max.

    Constant features (max == min) map to 0. Values outside the training
    range are clipped when ``clip=True`` (the on-device default: a bounded
    representation keeps fixed-point-friendly magnitudes).
    """

    def __init__(self, *, clip: bool = False) -> None:
        self.clip = bool(clip)
        self.data_min_: Optional[np.ndarray] = None
        self.data_max_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self.data_min_ is not None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        """Learn per-feature min and max from ``X``."""
        X = as_matrix(X, name="X")
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        span = self.data_max_ - self.data_min_
        # Treat (near-)constant features as constant: a subnormal span
        # would overflow 1/span to inf and poison the transform.
        ok = span > np.finfo(np.float64).smallest_normal
        self.scale_ = np.where(ok, 1.0 / np.where(ok, span, 1.0), 0.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map ``X`` into the training range's unit box."""
        if not self.is_fitted:
            raise NotFittedError(self, "transform")
        X = as_matrix(X, name="X", n_features=self.data_min_.shape[0])
        out = (X - self.data_min_) * self.scale_
        if self.clip:
            np.clip(out, 0.0, 1.0, out=out)
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return the transformed ``X``."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Map scaled values back to the original feature space."""
        if not self.is_fitted:
            raise NotFittedError(self, "inverse_transform")
        X = as_matrix(X, name="X", n_features=self.data_min_.shape[0])
        span = self.data_max_ - self.data_min_
        return X * span + self.data_min_


class StandardScaler:
    """Zero-mean / unit-variance scaling with frozen training statistics."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self.mean_ is not None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Learn per-feature mean and standard deviation from ``X``."""
        X = as_matrix(X, name="X")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.std_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Standardise ``X`` with the frozen training statistics."""
        if not self.is_fitted:
            raise NotFittedError(self, "transform")
        X = as_matrix(X, name="X", n_features=self.mean_.shape[0])
        return (X - self.mean_) / self.std_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return the transformed ``X``."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Undo standardisation."""
        if not self.is_fitted:
            raise NotFittedError(self, "inverse_transform")
        X = as_matrix(X, name="X", n_features=self.mean_.shape[0])
        return X * self.std_ + self.mean_
