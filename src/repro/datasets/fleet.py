"""Multi-device stream planning for fleet simulations.

A fleet run multiplexes *N* independent device streams through one
process (see :mod:`repro.fleet`). This module owns the stream-level
side of that: deterministically deriving per-device parameters (seed,
whether the device drifts, where) and the interleaved arrival schedule
that decides whose chunk lands next.

Everything here is a pure function of its seed — the fleet golden tests
rely on a plan being reproducible across processes — and nothing
imports :mod:`repro.engine` (the registry imports ``repro.datasets`` at
module scope, so the reverse edge would be a load-time cycle; spec
construction therefore lives in :mod:`repro.fleet`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..utils.exceptions import ConfigurationError

__all__ = ["DevicePlan", "plan_fleet", "interleave_schedule"]


@dataclass(frozen=True)
class DevicePlan:
    """Deterministic per-device stream parameters within a fleet.

    ``drift_at`` is ``None`` for stationary devices. Drifting devices in
    one fleet share the same ``drift_at`` (a *correlated* drift — the
    fleet-wide event an edge deployment actually sees, e.g. a firmware
    rollout or seasonal load change) but keep independent sample noise
    through their per-device ``seed``.
    """

    device_id: str
    seed: int
    drift_at: int | None
    shift: float


def plan_fleet(
    n_devices: int,
    *,
    seed: int = 0,
    drift_fraction: float = 0.25,
    drift_at: int = 400,
    shift: float = 0.45,
    id_prefix: str = "dev",
) -> List[DevicePlan]:
    """Derive the per-device plans for an ``n_devices`` fleet.

    Which devices drift is a seeded draw (``drift_fraction`` of the
    fleet, rounded down, spread uniformly), so fleets with the same seed
    agree across processes and runs.
    """
    if n_devices <= 0:
        raise ConfigurationError(f"n_devices must be positive, got {n_devices}.")
    if not 0.0 <= drift_fraction <= 1.0:
        raise ConfigurationError(
            f"drift_fraction must be in [0, 1], got {drift_fraction}."
        )
    rng = np.random.default_rng(seed)
    n_drift = int(n_devices * drift_fraction)
    drifting = set(rng.choice(n_devices, size=n_drift, replace=False).tolist())
    width = max(4, len(str(n_devices - 1)))
    plans = []
    for i in range(n_devices):
        plans.append(
            DevicePlan(
                device_id=f"{id_prefix}{i:0{width}d}",
                seed=int(seed) * 100_003 + i,
                drift_at=drift_at if i in drifting else None,
                shift=shift if i in drifting else 0.0,
            )
        )
    return plans


def interleave_schedule(
    lengths: Sequence[int],
    chunk_size: int,
    *,
    seed: int = 0,
) -> Iterator[Tuple[int, int, int]]:
    """Yield ``(device_index, start, stop)`` chunks in a seeded shuffle.

    Round-based: each round visits every device that still has samples
    once, in a freshly shuffled order, and hands over its next
    ``chunk_size`` samples. That is the adversarial access pattern for
    an LRU cache of sessions — with more live devices than resident
    slots, *every* visit in a round is a miss — while staying exactly
    reproducible from ``seed``.
    """
    if chunk_size <= 0:
        raise ConfigurationError(f"chunk_size must be positive, got {chunk_size}.")
    rng = np.random.default_rng(seed)
    cursors = [0] * len(lengths)
    live = [i for i, n in enumerate(lengths) if n > 0]
    while live:
        order = rng.permutation(len(live))
        for j in order:
            i = live[j]
            start = cursors[i]
            stop = min(start + chunk_size, lengths[i])
            cursors[i] = stop
            yield i, start, stop
        live = [i for i in live if cursors[i] < lengths[i]]
