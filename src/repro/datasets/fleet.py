"""Multi-device stream planning for fleet simulations.

A fleet run multiplexes *N* independent device streams through one
process (see :mod:`repro.fleet`). This module owns the stream-level
side of that: deterministically deriving per-device parameters (seed,
whether the device drifts, where) and the interleaved arrival schedule
that decides whose chunk lands next.

Everything here is a pure function of its seed — the fleet golden tests
rely on a plan being reproducible across processes — and nothing
imports :mod:`repro.engine` (the registry imports ``repro.datasets`` at
module scope, so the reverse edge would be a load-time cycle; spec
construction therefore lives in :mod:`repro.fleet`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..utils.exceptions import ConfigurationError

__all__ = ["DevicePlan", "ReplayPace", "plan_fleet", "interleave_schedule"]

#: Seed-sequence domain tag for inter-arrival jitter — a separate stream
#: from the round-shuffle RNG, so pacing a schedule never changes *which*
#: chunk arrives next, only *when* (byte-identity comparisons against the
#: unpaced schedule rely on this).
_PACE_DOMAIN = 0x9ACE


@dataclass(frozen=True)
class ReplayPace:
    """Wall-clock arrival model for trace replay.

    Each device nominally emits ``samples_per_sec`` samples, so a chunk
    of *n* samples follows its predecessor on the same device after
    ``n / samples_per_sec`` seconds, scaled down by the acceleration
    ``rate`` (``rate=10`` replays ten times faster than real time) and
    multiplied by a seeded jitter drawn uniformly from
    ``[1 - jitter, 1 + jitter]`` — the bursty-but-reproducible arrival
    process both :func:`~repro.fleet.soak.run_fleet_soak` replays and the
    serving load generator (:mod:`repro.serving.loadgen`) put on the wire.
    """

    samples_per_sec: float = 100.0
    rate: float = 1.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not self.samples_per_sec > 0:
            raise ConfigurationError(
                f"samples_per_sec must be positive, got {self.samples_per_sec!r}."
            )
        if not self.rate > 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate!r}.")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter!r}."
            )


@dataclass(frozen=True)
class DevicePlan:
    """Deterministic per-device stream parameters within a fleet.

    ``drift_at`` is ``None`` for stationary devices. Drifting devices in
    one fleet share the same ``drift_at`` (a *correlated* drift — the
    fleet-wide event an edge deployment actually sees, e.g. a firmware
    rollout or seasonal load change) but keep independent sample noise
    through their per-device ``seed``.
    """

    device_id: str
    seed: int
    drift_at: int | None
    shift: float


def plan_fleet(
    n_devices: int,
    *,
    seed: int = 0,
    drift_fraction: float = 0.25,
    drift_at: int = 400,
    shift: float = 0.45,
    id_prefix: str = "dev",
) -> List[DevicePlan]:
    """Derive the per-device plans for an ``n_devices`` fleet.

    Which devices drift is a seeded draw (``drift_fraction`` of the
    fleet, rounded down, spread uniformly), so fleets with the same seed
    agree across processes and runs.
    """
    if n_devices <= 0:
        raise ConfigurationError(f"n_devices must be positive, got {n_devices}.")
    if not 0.0 <= drift_fraction <= 1.0:
        raise ConfigurationError(
            f"drift_fraction must be in [0, 1], got {drift_fraction}."
        )
    rng = np.random.default_rng(seed)
    n_drift = int(n_devices * drift_fraction)
    drifting = set(rng.choice(n_devices, size=n_drift, replace=False).tolist())
    width = max(4, len(str(n_devices - 1)))
    plans = []
    for i in range(n_devices):
        plans.append(
            DevicePlan(
                device_id=f"{id_prefix}{i:0{width}d}",
                seed=int(seed) * 100_003 + i,
                drift_at=drift_at if i in drifting else None,
                shift=shift if i in drifting else 0.0,
            )
        )
    return plans


def interleave_schedule(
    lengths: Sequence[int],
    chunk_size: int,
    *,
    seed: int = 0,
    pace: Optional[ReplayPace] = None,
) -> Iterator[Tuple[int, ...]]:
    """Yield ``(device_index, start, stop)`` chunks in a seeded shuffle.

    Round-based: each round visits every device that still has samples
    once, in a freshly shuffled order, and hands over its next
    ``chunk_size`` samples. That is the adversarial access pattern for
    an LRU cache of sessions — with more live devices than resident
    slots, *every* visit in a round is a miss — while staying exactly
    reproducible from ``seed``.

    With ``pace`` the same chunks come back as 4-tuples
    ``(arrival_seconds, device_index, start, stop)`` sorted by arrival
    time: each device runs its own clock (chunk of *n* samples lands
    ``n / samples_per_sec / rate`` seconds after its predecessor, times
    a seeded jitter factor), and the merged timeline is the trace-replay
    arrival process. Jitter draws come from a dedicated RNG stream, so
    the per-device chunk sequence is identical to the unpaced schedule —
    only timestamps change.
    """
    if chunk_size <= 0:
        raise ConfigurationError(f"chunk_size must be positive, got {chunk_size}.")
    rng = np.random.default_rng(seed)
    cursors = [0] * len(lengths)
    live = [i for i, n in enumerate(lengths) if n > 0]

    def _rounds() -> Iterator[Tuple[int, int, int]]:
        nonlocal live
        while live:
            order = rng.permutation(len(live))
            for j in order:
                i = live[j]
                start = cursors[i]
                stop = min(start + chunk_size, lengths[i])
                cursors[i] = stop
                yield i, start, stop
            live = [i for i in live if cursors[i] < lengths[i]]

    if pace is None:
        yield from _rounds()
        return

    jitter_rng = np.random.default_rng((int(seed), _PACE_DOMAIN))
    clocks = [0.0] * len(lengths)
    timed = []
    for order_idx, (i, start, stop) in enumerate(_rounds()):
        gap = (stop - start) / pace.samples_per_sec / pace.rate
        if pace.jitter:
            gap *= 1.0 + pace.jitter * (2.0 * jitter_rng.random() - 1.0)
        clocks[i] += gap
        timed.append((clocks[i], order_idx, i, start, stop))
    timed.sort(key=lambda ev: (ev[0], ev[1]))
    for t, _order_idx, i, start, stop in timed:
        yield t, i, start, stop
