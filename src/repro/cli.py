"""Command-line experiment runner: ``python -m repro <experiment>``.

Reproduces any of the paper's tables/figures from the shell without
touching pytest:

.. code-block:: bash

    python -m repro table2 --reduced      # five-method NSL-KDD comparison
    python -m repro table3                # fan window-size matrix
    python -m repro table4                # memory accounts + Pico feasibility
    python -m repro table5                # fan-stream execution time
    python -m repro table6                # Pico latency breakdown
    python -m repro fig1                  # the four drift archetypes
    python -m repro all --reduced         # everything
    python -m repro spec my_experiments.json   # run declarative spec file(s)

``--reduced`` shrinks the NSL-KDD stream ~4× for quick runs; ``--tiny``
shrinks every stream much further (seconds end-to-end — for smoke tests,
not faithful numbers). The fan experiments are small either way. Every
command prints a reproduced-vs-paper table through
:mod:`repro.metrics.tables`.

The streaming tables are declarative: each cell is an
:class:`repro.engine.ExperimentSpec` naming a registered pipeline builder
and dataset factory (see ``docs/architecture.md``). ``--seed`` moves the
dataset seed, ``--model-seed`` the builder seed (default 1, the paper's
fixed model seed). The ``spec`` command runs arbitrary cells from a JSON
file — either one spec object or ``{"experiments": [...]}``:

.. code-block:: bash

    python -m repro spec examples/specs/quickstart.json

Observability flags (see ``docs/telemetry.md``)::

    python -m repro table2 --tiny --telemetry trace.jsonl
    python -m repro table3 --telemetry-summary

``--telemetry PATH`` streams every event (drifts, reconstructions,
spans, parallel cells, ``drift_audit`` provenance) as JSON lines to
``PATH``; ``--telemetry-summary`` prints an ASCII metrics digest after
the run. ``python -m repro audit PATH`` summarises the ``drift_audit``
events in such a trace (top drifting devices, recovery percentiles).
``repro --version`` prints the package version.

Fleet observability (see ``docs/fleet.md``)::

    python -m repro fleet --tiny --shards 4 --serve-metrics 9100

``--shards N`` partitions the device fleet over N worker processes
(their telemetry merges back into this process, labelled by shard);
``--serve-metrics PORT`` serves ``/metrics`` (Prometheus text),
``/health`` and ``/fleet`` on ``127.0.0.1:PORT`` while the soak runs
(port 0 = any free port).

Self-healing flags (see ``docs/robustness.md``)::

    python -m repro table2 --tiny --guard-policy impute_last_good --guard-report

``--guard-policy`` attaches a :class:`repro.guard.RuntimeGuard` (bounds
learned from each experiment's training set) to every evaluated
pipeline; ``--guard-report`` prints each guard's intervention summary
after its run.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

from .datasets import NSLKDDConfig
from .device import (
    RASPBERRY_PI_4,
    RASPBERRY_PI_PICO,
    StageCostModel,
    estimate_stream_seconds,
    fits_on,
    proposed_memory,
    quanttree_batch_ops,
    quanttree_memory,
    spll_batch_ops,
    spll_memory,
    stage_latency_table,
)
from .engine import Experiment, ExperimentSpec, build_experiment
from .metrics import detection_delay, evaluate_method, format_table
from .resilience import remove_run_checkpoint
from .telemetry import JsonlSink, render_summary
from .telemetry import configure as configure_telemetry
from .utils.exceptions import ConfigurationError
from .utils.validation import validate_checkpoint_config

__all__ = ["main"]


def _nslkdd(args):
    """NSL-KDD sizing for the active fidelity tier → (dataset_kwargs, batch, cfg)."""
    if getattr(args, "tiny", False):
        cfg = NSLKDDConfig(n_train=300, n_test=1500, drift_at=500)
        batch = 150
    elif args.reduced:
        cfg = NSLKDDConfig(n_train=800, n_test=6000, drift_at=2000)
        batch = 300
    else:
        cfg = NSLKDDConfig()
        batch = 480
    kwargs = {"n_train": cfg.n_train, "n_test": cfg.n_test, "drift_at": cfg.drift_at}
    return kwargs, batch, cfg


def _fan_kwargs(args) -> dict:
    """Cooling-fan stream sizing: default paper shape, or ``--tiny``."""
    if getattr(args, "tiny", False):
        return {"n_test": 300, "gradual_end": 260}
    return {}


def _slug(text: str) -> str:
    return "-".join(re.findall(r"[a-z0-9]+", text.lower()))


def _spec(args, **fields) -> ExperimentSpec:
    """An :class:`ExperimentSpec` carrying the CLI's global knobs."""
    fields.setdefault("seed", args.seed)
    fields.setdefault("model_seed", args.model_seed)
    fields.setdefault("guard_policy", getattr(args, "guard_policy", None))
    return ExperimentSpec(**fields)


def _eval_experiment(args, experiment: Experiment, *, label=None):
    """``evaluate_method`` with the CLI's crash-safety and guard flags.

    With ``--checkpoint-dir`` (or ``--resume-from``) each evaluation
    checkpoints under a stable per-cell filename; ``--resume-from``
    additionally picks up any checkpoint left by an interrupted run.
    Spent checkpoints are removed once the cell completes. The guard (if
    the spec carries a ``guard_policy``) was already attached by
    :func:`repro.engine.build_experiment`.
    """
    spec = experiment.spec
    ckpt_dir = args.resume_from or args.checkpoint_dir
    if ckpt_dir is None:
        result = evaluate_method(
            experiment.pipeline, experiment.test,
            name=spec.name, chunk_size=spec.chunk_size,
        )
    else:
        path = Path(ckpt_dir) / f"{_slug(label or spec.name)}.ckpt"
        path.parent.mkdir(parents=True, exist_ok=True)
        result = evaluate_method(
            experiment.pipeline,
            experiment.test,
            name=spec.name,
            chunk_size=spec.chunk_size,
            checkpoint_every=args.checkpoint_every or 256,
            checkpoint_path=path,
            resume=args.resume_from is not None,
        )
        remove_run_checkpoint(path)
    if experiment.guard is not None and getattr(args, "guard_report", False):
        print(f"\n[guard] {label or spec.name}")
        print(experiment.guard.report_text())
        print()
    return result


def _run_spec(args, spec: ExperimentSpec, *, label=None):
    """Build ``spec`` and evaluate it → (result, built experiment)."""
    experiment = build_experiment(spec)
    return _eval_experiment(args, experiment, label=label), experiment


def cmd_table2(args) -> None:
    dataset_kwargs, batch, cfg = _nslkdd(args)
    methods = {
        "Quant Tree": ("quanttree", {"batch_size": batch, "n_bins": 32}),
        "SPLL": ("spll", {"batch_size": batch}),
        "Baseline (no detection)": ("baseline", {}),
        "ONLAD": ("onlad", {"forgetting_factor": 0.90}),
        "Proposed (W=100)": ("proposed", {"window_size": 100}),
        "Proposed (W=250)": ("proposed", {"window_size": 250}),
        "Proposed (W=1000)": ("proposed", {"window_size": 1000}),
    }
    rows = []
    stream_len = cfg.n_test
    for name, (pipeline, pipeline_kwargs) in methods.items():
        spec = _spec(
            args, name=name, pipeline=pipeline, dataset="nslkdd",
            pipeline_kwargs=pipeline_kwargs, dataset_kwargs=dataset_kwargs,
        )
        res, ex = _run_spec(args, spec, label=f"table2-{name}")
        stream_len = len(ex.test)
        rows.append([name, round(100 * res.accuracy, 1), res.first_delay])
    print(format_table(
        ["method", "accuracy %", "delay"],
        rows,
        title=f"Table 2 reproduction (stream {stream_len}, drift @{cfg.drift_at})",
    ))
    print("\nPaper: QT 96.8/296, SPLL 96.3/296, baseline 83.5, ONLAD 65.7, "
          "proposed 96.0/843 (W=100), 95.5/993 (W=250), 92.5/1263 (W=1000).")


def cmd_table3(args) -> None:
    rows = []
    for W in (10, 50, 150):
        row: list[object] = [f"Window size = {W}"]
        for scenario in ("sudden", "gradual", "reoccurring"):
            spec = _spec(
                args,
                name=f"Proposed (W={W}) @ {scenario}",
                pipeline="proposed",
                dataset="coolingfan",
                pipeline_kwargs={"window_size": W},
                dataset_kwargs={"scenario": scenario, **_fan_kwargs(args)},
            )
            res, _ = _run_spec(args, spec, label=f"table3-w{W}-{scenario}")
            row.append(detection_delay(res.delay.detections, 120))
        rows.append(row)
    print(format_table(
        ["", "Sudden", "Gradual", "Reoccurring"],
        rows,
        title="Table 3 reproduction (cooling-fan stream, drift @120)",
    ))
    print("\nPaper: sudden 53/60/160, gradual 161/157/257, reoccurring 22/62/-.")


def cmd_table4(args) -> None:
    reports = {
        "Quant Tree": quanttree_memory(235, 511, 16),
        "SPLL": spll_memory(235, 511, 3),
        "Proposed method": proposed_memory(2, 511),
    }
    paper = {"Quant Tree": 619, "SPLL": 1933, "Proposed method": 69}
    rows = [
        [name, round(rep.total_kb, 1), paper[name],
         "yes" if fits_on(rep, RASPBERRY_PI_PICO) else "NO"]
        for name, rep in reports.items()
    ]
    print(format_table(
        ["method", "reproduced kB", "paper kB", "fits Pico?"],
        rows,
        title="Table 4 reproduction (fan config: D=511, batch=235)",
    ))


def cmd_table5(args) -> None:
    batch = 100 if getattr(args, "tiny", False) else 235
    geometry = StageCostModel(2, 511, 22)
    dataset_kwargs = {"scenario": "sudden", "n_modes": 2, **_fan_kwargs(args)}
    methods = {
        "Quant Tree": (
            ("quanttree", {"batch_size": batch, "n_bins": 16}),
            quanttree_batch_ops(batch, 16),
        ),
        "SPLL": (("spll", {"batch_size": batch}), spll_batch_ops(batch, 511, 3)),
        "Baseline": (("baseline", {}), None),
        "Proposed method": (("proposed", {"window_size": 50}), None),
    }
    paper = {"Quant Tree": 1.52, "SPLL": 9.28, "Baseline": 1.05, "Proposed method": 1.50}
    rows = []
    stream_len = dataset_kwargs.get("n_test", 0)
    for name, ((pipeline, pipeline_kwargs), ops) in methods.items():
        spec = _spec(
            args, name=name, pipeline=pipeline, dataset="coolingfan",
            pipeline_kwargs=pipeline_kwargs, dataset_kwargs=dataset_kwargs,
        )
        res, ex = _run_spec(args, spec, label=f"table5-{name}")
        stream_len = len(ex.test)
        est = estimate_stream_seconds(
            res.phase_tally, geometry, RASPBERRY_PI_4,
            per_batch_ops=ops,
            n_batches=stream_len // batch if ops is not None else 0,
        )
        rows.append([name, round(est, 2), paper[name], round(res.wall_seconds, 2)])
    print(format_table(
        ["method", "estimated Pi4 s", "paper s", "host wall s"],
        rows,
        title=f"Table 5 reproduction ({stream_len}-sample fan stream)",
    ))


def cmd_table6(args) -> None:
    paper = {
        "Label prediction": 148.87,
        "Distance computation": 10.58,
        "Model retraining without label prediction": 25.42,
        "Model retraining with label prediction": 166.65,
        "Label coordinates initialization": 25.59,
        "Label coordinates update": 6.05,
    }
    ours = stage_latency_table(StageCostModel(2, 511, 22), RASPBERRY_PI_PICO)
    rows = [[k, round(ours[k], 2), v] for k, v in paper.items()]
    print(format_table(
        ["stage", "reproduced ms", "paper ms"],
        rows,
        title="Table 6 reproduction (Raspberry Pi Pico, C=2, D=511, H=22)",
    ))


def cmd_fig1(args) -> None:
    from .datasets import (
        GaussianConcept,
        make_gradual_drift_stream,
        make_incremental_drift_stream,
        make_reoccurring_drift_stream,
        make_sudden_drift_stream,
    )

    old = GaussianConcept(np.array([[0.2] * 6, [0.8] * 6]), 0.05)
    new = GaussianConcept(np.array([[0.2] * 6, [0.8] * 6]) + 0.5, 0.05)
    streams = {
        "sudden": make_sudden_drift_stream(old, new, n_samples=1200, drift_at=400, seed=args.seed),
        "gradual": make_gradual_drift_stream(old, new, n_samples=1200, drift_start=400, drift_end=900, seed=args.seed),
        "incremental": make_incremental_drift_stream(old, new, n_samples=1200, drift_start=400, drift_end=900, seed=args.seed),
        "reoccurring": make_reoccurring_drift_stream(old, new, n_samples=1200, drift_at=400, reoccur_at=700, seed=args.seed),
    }
    rows = []
    for name, stream in streams.items():
        bounds = np.linspace(0, len(stream), 13).astype(int)
        series = [float(stream.X[a:b].mean()) for a, b in zip(bounds, bounds[1:])]
        lo, hi = min(series), max(series)
        glyphs = "".join(
            "▁▂▃▄▅▆▇█"[int(7 * (v - lo) / (hi - lo + 1e-12))] for v in series
        )
        rows.append([name, glyphs, str(stream.drift_points)])
    print(format_table(
        ["drift type", "concept level over time", "drift points"],
        rows,
        title="Figure 1 reproduction: the four concept-drift types",
    ))


def _load_specs(path: Path) -> List[ExperimentSpec]:
    """Parse a spec file: one JSON spec object, or ``{"experiments": [...]}``."""
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read spec file {str(path)!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"spec file {str(path)!r} is not valid JSON: {exc}") from exc
    if isinstance(data, dict):
        entries = data["experiments"] if "experiments" in data else [data]
    elif isinstance(data, list):
        entries = data
    else:
        raise ConfigurationError(
            f"spec file {str(path)!r} must hold a spec object, a list of "
            "them, or {\"experiments\": [...]}."
        )
    return [ExperimentSpec.from_json(entry) for entry in entries]


def cmd_spec(args) -> None:
    """Run the experiments declared in a JSON spec file (``spec`` command)."""
    specs = _load_specs(Path(args.spec_path))
    rows = []
    for spec in specs:
        if spec.guard_policy is None and getattr(args, "guard_policy", None):
            spec = spec.replace(guard_policy=args.guard_policy)
        res, _ = _run_spec(args, spec, label=f"spec-{spec.name}")
        rows.append([
            spec.name,
            f"{spec.pipeline} @ {spec.dataset}",
            round(100 * res.accuracy, 1),
            res.first_delay,
        ])
    print(format_table(
        ["experiment", "cell", "accuracy %", "delay"],
        rows,
        title=f"Spec run: {args.spec_path} ({len(specs)} experiment(s))",
    ))


def cmd_fleet(args) -> None:
    """Multiplex a device fleet through one engine (``fleet`` command)."""
    import tempfile

    from .fleet import run_fleet_soak

    sharded = args.shards is not None and args.shards > 0
    supervise_cfg = None
    if args.supervise or args.fleet_chaos is not None:
        from .fleet import SupervisorConfig

        if not sharded:
            raise ConfigurationError(
                "--supervise/--fleet-chaos require --shards N (supervision "
                "recovers worker processes; there is none to recover in-process)."
            )
        supervise_cfg = SupervisorConfig(
            request_timeout=args.request_timeout, seed=args.seed
        )
    live: dict = {}

    def _hook(fm) -> None:
        live["manager"] = fm

    server = None
    if args.serve_metrics is not None:
        from .telemetry.httpd import MetricsServer

        def _fleet_stats() -> dict:
            fm = live.get("manager")
            if fm is None:
                return {"status": "starting", "devices": args.devices}
            if sharded:
                # Worker pipes are owned by the soak thread, but shards
                # piggyback stats deltas on every reply — live_stats()
                # reads the parent-side fold, no pipe access needed.
                return {
                    "sharded": True,
                    "shards": int(args.shards),
                    "devices": args.devices,
                    "live": fm.live_stats(),
                }
            return fm.stats.to_json(include_devices=True)

        def _health() -> dict:
            fm = live.get("manager")
            if supervise_cfg is not None and fm is not None:
                # Supervisor health is pure parent-side state — safe to
                # read while the soak thread owns the worker pipes.
                return fm.health()
            return {"status": "ok", "devices": args.devices}

        server = MetricsServer(
            args.serve_metrics,
            health_provider=_health,
            fleet_provider=_fleet_stats,
        ).start()
        print(f"serving metrics on {server.url} (/metrics /health /fleet)")

    def _soak(spool: str):
        return run_fleet_soak(
            args.devices,
            args.capacity,
            spool_dir=spool,
            seed=args.seed,
            n_test=args.fleet_samples,
            feed_chunk=args.fleet_chunk,
            guard_policy=args.guard_policy,
            n_shards=args.shards if sharded else None,
            batch_scoring=args.batch_scoring,
            supervise=supervise_cfg,
            chaos=args.fleet_chaos,
            verify=args.fleet_verify,
            progress=print,
            manager_hook=_hook,
        )

    shard_note = f", {args.shards} shards" if sharded else ""
    print(
        f"fleet soak: {args.devices} devices, LRU capacity {args.capacity}, "
        f"{args.fleet_samples} samples/device{shard_note}"
    )
    try:
        if args.spool_dir is not None:
            report = _soak(args.spool_dir)
        else:
            with tempfile.TemporaryDirectory(prefix="repro-fleet-") as tmp:
                report = _soak(tmp)
    finally:
        if server is not None:
            server.stop()
    rows = [
        [k, v]
        for k, v in report.to_json().items()
        if k != "mismatches" and v is not None
    ]
    print(format_table(["metric", "value"], rows, title="Fleet soak report"))
    if report.mismatches:
        raise ConfigurationError(
            f"fleet records diverged from standalone runs for {report.mismatches}."
        )
    if report.verified:
        print(f"\n{report.verified} device(s) verified byte-identical to standalone runs.")


def cmd_serve(args) -> None:
    """Serve a fleet over HTTP (``serve`` command; see docs/serving.md)."""
    import tempfile
    import time as _time

    from .datasets.fleet import ReplayPace
    from .engine import build_experiment as _build
    from .fleet.soak import make_fleet_specs, verify_device
    from .serving import ServingStack, run_load

    specs = make_fleet_specs(
        args.devices, seed=args.seed, n_test=args.fleet_samples
    )

    def _serve(spool: str) -> None:
        stack = ServingStack(
            capacity=args.capacity,
            spool_dir=spool,
            batch_scoring=args.batch_scoring,
            n_shards=args.shards,
            queue_capacity=args.queue_capacity,
            gap_window=args.gap_window,
            port=args.port,
        )
        for dev, spec in specs.items():
            stack.register(dev, spec)
        stack.start()
        print(
            f"serving {args.devices} device(s) on {stack.url} "
            "(POST /v1/devices/{id}/chunks; /metrics /health /fleet)"
        )
        try:
            if not args.loadgen:
                # Foreground server: run until interrupted.
                while True:  # pragma: no cover — interactive mode
                    _time.sleep(1.0)
            streams = {dev: _build(spec).test for dev, spec in specs.items()}
            pace = None
            if args.rate is not None:
                pace = ReplayPace(rate=args.rate, jitter=args.jitter)
            report = run_load(
                stack.url,
                streams,
                feed_chunk=args.fleet_chunk,
                seed=args.seed,
                pace=pace,
                reorder=args.reorder,
                progress=print,
            )
            rows = [
                [k, v if not isinstance(v, float) else round(v, 3)]
                for k, v in report.to_json().items()
                if k != "statuses"
            ]
            rows += [[f"status: {k}", v] for k, v in sorted(report.statuses.items())]
            print(format_table(["metric", "value"], rows, title="Load report"))
            per_device = stack.finish_all()
            if args.fleet_verify:
                targets = list(specs)[: args.fleet_verify]
                mismatches = [
                    dev for dev in targets
                    if not verify_device(specs[dev], per_device[dev])
                ]
                if mismatches:
                    raise ConfigurationError(
                        f"served records diverged from standalone runs "
                        f"for {mismatches}."
                    )
                print(
                    f"\n{len(targets)} device(s) verified byte-identical "
                    "to standalone runs."
                )
        except KeyboardInterrupt:  # pragma: no cover — interactive mode
            print("\nshutting down.")
        finally:
            stack.close()

    if args.spool_dir is not None:
        _serve(args.spool_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
            _serve(tmp)


def cmd_audit(args) -> None:
    """Summarise a ``drift_audit`` JSONL trace (``audit`` command)."""
    from .telemetry import audit_report, load_audit, render_audit

    records = load_audit(Path(args.spec_path))
    print(render_audit(audit_report(records)))


COMMANDS: Dict[str, Callable] = {
    "table2": cmd_table2,
    "table3": cmd_table3,
    "table4": cmd_table4,
    "table5": cmd_table5,
    "table6": cmd_table6,
    "fig1": cmd_fig1,
    "fleet": cmd_fleet,
    "serve": cmd_serve,
    "audit": cmd_audit,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's tables and figures from the shell.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "experiment",
        choices=[*COMMANDS, "all", "spec"],
        help="which table/figure to reproduce, or 'spec' to run a JSON spec file",
    )
    parser.add_argument(
        "spec_path", nargs="?", default=None,
        help="JSON experiment-spec file ('spec' command) or drift-audit "
             "JSONL trace ('audit' command)",
    )
    parser.add_argument("--reduced", action="store_true",
                        help="shrink the NSL-KDD stream for quick runs")
    parser.add_argument("--tiny", action="store_true",
                        help="shrink every stream to smoke-test size "
                             "(fast, not faithful to the paper's numbers)")
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    parser.add_argument("--model-seed", type=int, default=1,
                        help="model/builder seed for the table pipelines "
                             "(default 1, the paper's fixed model seed)")
    parser.add_argument("--telemetry", metavar="PATH", default=None,
                        help="write a JSONL telemetry event trace to PATH")
    parser.add_argument("--telemetry-summary", action="store_true",
                        help="print an ASCII telemetry digest after the run")
    parser.add_argument("--checkpoint-every", metavar="N", type=int, default=None,
                        help="checkpoint pipeline state every N samples "
                             "(needs --checkpoint-dir or --resume-from; default 256)")
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="write per-evaluation crash-recovery checkpoints to DIR")
    parser.add_argument("--resume-from", metavar="DIR", default=None,
                        help="like --checkpoint-dir, but also resume any "
                             "checkpoints an interrupted run left in DIR")
    parser.add_argument("--guard-policy", metavar="POLICY", default=None,
                        choices=["reject", "clip", "impute_last_good", "quarantine"],
                        help="attach a self-healing runtime guard with this "
                             "input-fault policy to every evaluated pipeline")
    parser.add_argument("--guard-report", action="store_true",
                        help="print each guard's intervention summary after "
                             "its run (needs --guard-policy)")
    parser.add_argument("--devices", type=int, default=100,
                        help="fleet command: number of device streams")
    parser.add_argument("--capacity", type=int, default=16,
                        help="fleet command: LRU capacity (max resident sessions)")
    parser.add_argument("--fleet-samples", type=int, default=300, metavar="N",
                        help="fleet command: test samples per device")
    parser.add_argument("--fleet-chunk", type=int, default=100, metavar="N",
                        help="fleet command: samples arriving per submit")
    parser.add_argument("--fleet-verify", type=int, default=0, metavar="K",
                        help="fleet command: byte-compare the first K devices "
                             "against standalone runs")
    parser.add_argument("--spool-dir", metavar="DIR", default=None,
                        help="fleet command: eviction spool directory "
                             "(default: a temporary directory)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="fleet command: partition the fleet over N "
                             "worker processes; their telemetry merges back "
                             "into this process labelled by shard")
    parser.add_argument("--serve-metrics", type=int, default=None, metavar="PORT",
                        help="fleet command: serve /metrics, /health and "
                             "/fleet on 127.0.0.1:PORT during the soak "
                             "(0 = any free port; implies telemetry)")
    parser.add_argument("--batch-scoring", action="store_true",
                        help="fleet command: score same-signature sessions "
                             "in stacked cross-session GEMMs (records stay "
                             "byte-identical; see docs/fleet.md)")
    parser.add_argument("--supervise", action="store_true",
                        help="fleet command: self-healing shards — journal "
                             "feeds, respawn dead/hung workers, restore "
                             "sessions byte-identically (needs --shards)")
    parser.add_argument("--fleet-chaos", type=int, default=None, metavar="N",
                        help="fleet command: inject N seeded faults "
                             "(kill/hang/corrupt) during the soak to prove "
                             "recovery (implies --supervise)")
    parser.add_argument("--request-timeout", type=float, default=30.0,
                        metavar="SEC",
                        help="fleet command: per-request deadline before a "
                             "worker counts as hung (with --supervise)")
    parser.add_argument("--port", type=int, default=8099,
                        help="serve command: HTTP port for the ingestion "
                             "front-end (0 = any free port; default 8099)")
    parser.add_argument("--queue-capacity", type=int, default=64, metavar="N",
                        help="serve command: per-device inbound lane bound")
    parser.add_argument("--gap-window", type=int, default=32, metavar="N",
                        help="serve command: how far ahead of the expected "
                             "sequence a chunk may arrive and be buffered")
    parser.add_argument("--loadgen", action="store_true",
                        help="serve command: self-drive the server with the "
                             "seeded load generator, print the load report, "
                             "then shut down (instead of serving foreground)")
    parser.add_argument("--rate", type=float, default=None, metavar="R",
                        help="serve command: pace the load generator at R x "
                             "real time (default: as fast as admitted)")
    parser.add_argument("--jitter", type=float, default=0.0, metavar="J",
                        help="serve command: seeded inter-arrival jitter "
                             "fraction for the paced load generator")
    parser.add_argument("--reorder", type=float, default=0.0, metavar="P",
                        help="serve command: probability the load generator "
                             "delivers a chunk out of order (within the "
                             "gap window)")
    args = parser.parse_args(argv)
    try:
        # Same pairing rule as StreamPipeline.run; the CLI additionally
        # defaults the cadence (256) when only a directory is given.
        validate_checkpoint_config(
            args.checkpoint_every,
            args.resume_from or args.checkpoint_dir,
            allow_default_every=True,
        )
    except ConfigurationError as exc:
        parser.error(str(exc))
    if args.guard_report and args.guard_policy is None:
        parser.error("--guard-report requires --guard-policy")
    if args.experiment == "spec" and args.spec_path is None:
        parser.error("the 'spec' command needs a JSON spec file path")
    if args.experiment == "audit" and args.spec_path is None:
        parser.error("the 'audit' command needs a drift-audit JSONL file path")
    if args.experiment not in ("spec", "audit") and args.spec_path is not None:
        parser.error(
            "a file path only makes sense with the 'spec' or 'audit' command"
        )
    if args.serve_metrics is not None and args.experiment != "fleet":
        parser.error("--serve-metrics only applies to the 'fleet' command")

    telemetry_on = bool(
        args.telemetry
        or args.telemetry_summary
        or args.serve_metrics is not None
        or args.experiment == "serve"  # /metrics needs a live hub
    )
    sink = None
    if telemetry_on:
        sinks = []
        if args.telemetry:
            sink = JsonlSink(args.telemetry)
            sinks.append(sink)
        configure_telemetry(enabled=True, sinks=sinks, reset=True)
    try:
        if args.experiment == "spec":
            cmd_spec(args)
        else:
            if args.experiment == "all":
                # 'all' reproduces the paper artifacts; the fleet soak and
                # audit report are infrastructure, run them explicitly.
                targets = [n for n in COMMANDS if n not in ("fleet", "audit")]
            else:
                targets = [args.experiment]
            for i, name in enumerate(targets):
                if i:
                    print("\n" + "=" * 72 + "\n")
                COMMANDS[name](args)
        if args.telemetry_summary:
            print("\n" + "=" * 72 + "\n")
            print(render_summary())
    finally:
        if telemetry_on:
            if sink is not None:
                sink.close()
            # Leave the process-wide hub as main() found it so repeated
            # in-process calls (tests, notebooks) stay isolated.
            configure_telemetry(enabled=False, sinks=[], reset=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
