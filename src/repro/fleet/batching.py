"""Cross-session batched OS-ELM scoring: group, stack, one GEMM, prime.

A resident fleet wastes the hardware's GEMM throughput when every device
scores its pending rows as an independent small-matrix op. Devices that
share one firmware image share one ``model_seed`` — hence *identical*
random-layer weights — so their forward passes differ only in the
learned betas. The batched path exploits exactly that:

1. :class:`BatchPlanner` groups the sessions of one submit window by
   :func:`model_signature` — a digest over the model *and its
   RNG-derived random-layer weights*, not just its shape. Two devices
   with identical dims but different seeds hash differently and never
   share a stacked forward pass (sharing one would score every other
   device against the wrong hidden layer).
2. Each group's pending rows are stacked and scored in one pass by
   :meth:`~repro.oselm.ensemble.MultiInstanceModel.score_batch_many`
   (shared hidden activations, per-device betas gathered from a 3-D
   tensor) — bit-identical per row to each device's own scoring path.
3. The results are *primed* onto each device's model
   (:meth:`~repro.oselm.ensemble.MultiInstanceModel.prime_scores`); the
   session then feeds as usual and its pipeline consumes the primed
   rows instead of recomputing them.

Fallback is per-session and automatic. A session whose pipeline reports
``prefers_batched_scoring() == False`` (drift window open, an in-flight
reconstruction / reference refit, ONLAD's per-sample training), carries
a guard, or hosts a foreign model class is left on the sequential path.
And because any training step invalidates the primed cache, eligibility
is purely a *throughput* heuristic — a drift that fires mid-window
simply drops the remaining primed rows and recomputes, byte-identically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..oselm.ensemble import MultiInstanceModel

__all__ = ["BatchGroup", "BatchPlanner", "model_signature"]


def model_signature(model) -> Optional[str]:
    """Digest identifying models that may share one stacked forward pass.

    Covers the model class, ensemble geometry, error metric, activation,
    and — critically — the bytes of every instance's random-layer weights
    and biases. The weights are the RNG draw itself, so models built from
    different seeds (or different ``weight_scale``) can never collide the
    way a shape-only key would. Returns ``None`` for anything that is not
    a fitted :class:`MultiInstanceModel` (never batchable).
    """
    if not isinstance(model, MultiInstanceModel) or not model.is_fitted:
        return None
    digest = hashlib.sha256()
    digest.update(type(model).__name__.encode())
    digest.update(
        f"|{model.n_features}|{model.n_hidden}|{model.n_labels}|".encode()
    )
    for inst in model.instances:
        layer = inst.core.layer
        digest.update(
            f"{type(inst.core).__name__}|{inst.error_metric}|"
            f"{layer.activation}|".encode()
        )
        digest.update(np.ascontiguousarray(layer.weights).tobytes())
        digest.update(np.ascontiguousarray(layer.biases).tobytes())
    return digest.hexdigest()


@dataclass
class BatchGroup:
    """One signature's worth of sessions with rows pending this window."""

    signature: str
    device_ids: List[str] = field(default_factory=list)
    pipelines: List = field(default_factory=list)
    rows: List[np.ndarray] = field(default_factory=list)

    @property
    def n_devices(self) -> int:
        return len(self.device_ids)

    @property
    def n_samples(self) -> int:
        return sum(len(r) for r in self.rows)

    def prime(self) -> int:
        """Run the group GEMM and prime every member; returns row count.

        Primed rows are keyed to each pipeline's current ``_index`` (the
        stream-global record counter), so a member whose feed is driven
        later in the window consumes its slice at exactly the indices it
        was computed for — and a member that mutates mid-feed invalidates
        its own slice without touching the others.
        """
        X = self.rows[0] if len(self.rows) == 1 else np.concatenate(self.rows)
        owners = np.repeat(
            np.arange(len(self.rows)), [len(r) for r in self.rows]
        )
        models = [p.model for p in self.pipelines]
        labels, scores = MultiInstanceModel.score_batch_many(models, X, owners)
        offset = 0
        for pipeline, rows in zip(self.pipelines, self.rows):
            n = len(rows)
            pipeline.model.prime_scores(
                labels[offset : offset + n].copy(),
                scores[offset : offset + n].copy(),
                base_index=pipeline._index,
                index_fn=(lambda p=pipeline: p._index),
            )
            offset += n
        return len(X)


class BatchPlanner:
    """Split one submit window into stackable groups plus a fallback set.

    Stateless: callers hand it ``(device_id, pipeline, rows)`` triples
    for the sessions of one window and get back :class:`BatchGroup` objects (keyed on
    :func:`model_signature`, including singletons: even one device's
    rows beat its per-sample scalar loop) and the list of
    ``(device_id, n_rows)`` pairs that must stay sequential.
    """

    def plan(
        self, items: Sequence[Tuple[str, object, np.ndarray]]
    ) -> Tuple[List[BatchGroup], List[Tuple[str, int]]]:
        groups: dict = {}
        fallback: List[Tuple[str, int]] = []
        for device_id, pipeline, rows in items:
            if len(rows) == 0:
                continue
            signature = None
            if pipeline.guard is None and pipeline.prefers_batched_scoring():
                signature = model_signature(pipeline.model)
            if signature is None:
                fallback.append((device_id, len(rows)))
                continue
            group = groups.get(signature)
            if group is None:
                group = groups[signature] = BatchGroup(signature=signature)
            group.device_ids.append(device_id)
            group.pipelines.append(pipeline)
            group.rows.append(np.asarray(rows, dtype=np.float64))
        return list(groups.values()), fallback
