"""Seeded fleet soak: N devices, correlated drift, adversarial LRU churn.

The soak is the fleet's end-to-end proof *and* its first benchmark. It
plans a fleet (:func:`repro.datasets.fleet.plan_fleet`), registers every
device with a :class:`~repro.fleet.manager.FleetManager` whose capacity
is far below the device count, and replays the devices' test streams in
a seeded interleave so sessions constantly evict and restore. When
``verify`` is on, every device's record list is compared byte-for-byte
against a standalone :func:`~repro.engine.spec.build_experiment` run of
the same spec — the multiplexed fleet must be indistinguishable from
each device running alone.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..datasets.fleet import interleave_schedule, plan_fleet
from ..engine.spec import ExperimentSpec, build_experiment
from ..utils.exceptions import (
    ConfigurationError,
    DeviceQuarantinedError,
    FleetOverloadError,
)
from .chaos import ChaosController, ChaosEvent, make_chaos_schedule
from .manager import FleetManager
from .sharding import ShardedFleetManager
from .supervisor import SupervisorConfig

__all__ = ["SoakReport", "make_fleet_specs", "run_fleet_soak", "verify_device"]


def make_fleet_specs(
    n_devices: int,
    *,
    seed: int = 0,
    drift_fraction: float = 0.25,
    n_test: int = 600,
    drift_at: Optional[int] = None,
    shift: float = 0.45,
    pipeline: str = "proposed",
    model_seed: int = 7,
    chunk_size: Optional[int] = None,
    guard_policy: Optional[str] = None,
) -> Dict[str, ExperimentSpec]:
    """One ``blobs`` :class:`ExperimentSpec` per planned device.

    Stationary devices get ``shift=0.0`` (their "drift" moves nothing);
    drifting devices share ``drift_at`` — the correlated fleet-wide
    event. All devices share ``model_seed`` (one firmware image) while
    ``seed`` varies per device (independent sensor noise).
    """
    if drift_at is None:
        drift_at = (2 * int(n_test)) // 3
    plans = plan_fleet(
        n_devices,
        seed=seed,
        drift_fraction=drift_fraction,
        drift_at=drift_at,
        shift=shift,
    )
    specs = {}
    for plan in plans:
        specs[plan.device_id] = ExperimentSpec(
            name=plan.device_id,
            pipeline=pipeline,
            dataset="blobs",
            seed=plan.seed,
            model_seed=model_seed,
            dataset_kwargs={
                "n_test": int(n_test),
                "drift_at": int(plan.drift_at if plan.drift_at is not None else drift_at),
                "shift": float(plan.shift),
            },
            chunk_size=chunk_size,
            guard_policy=guard_policy,
        )
    return specs


def verify_device(spec: ExperimentSpec, records: list) -> bool:
    """Byte-identity check: fleet records vs a standalone run of ``spec``."""
    exp = build_experiment(spec)
    solo = exp.run()
    if len(solo) != len(records):
        return False
    for a, b in zip(solo, records):
        if a != b:
            return False
    scores = np.array([r.anomaly_score for r in records], dtype=np.float64)
    solo_scores = np.array([r.anomaly_score for r in solo], dtype=np.float64)
    return scores.tobytes() == solo_scores.tobytes()


@dataclass
class SoakReport:
    """What one soak run produced (the fleet bench serialises this)."""

    devices: int
    capacity: int
    samples: int
    chunks: int
    elapsed_seconds: float
    sessions_per_sec: float
    samples_per_sec: float
    evictions: int
    restores: int
    max_resident: int
    evict_seconds: float
    restore_seconds: float
    drifts: int = 0
    shards: Optional[int] = None
    batch_scoring: bool = False
    batch_groups: int = 0
    batched_samples: int = 0
    fallback_samples: int = 0
    verified: Optional[int] = None
    mismatches: Optional[List[str]] = None
    supervised: bool = False
    respawns: int = 0
    replayed_samples: int = 0
    failed_recoveries: int = 0
    rejected_submits: int = 0
    recovery_seconds: float = 0.0
    supervisor_level: int = 0
    quarantined: Optional[List[str]] = None
    chaos_events: Optional[List[dict]] = None
    skipped_chunks: int = 0

    @property
    def byte_identical(self) -> Optional[bool]:
        if self.mismatches is None:
            return None
        return not self.mismatches

    def to_json(self) -> dict:
        out = {
            "devices": self.devices,
            "capacity": self.capacity,
            "samples": self.samples,
            "chunks": self.chunks,
            "elapsed_seconds": self.elapsed_seconds,
            "sessions_per_sec": self.sessions_per_sec,
            "samples_per_sec": self.samples_per_sec,
            "evictions": self.evictions,
            "restores": self.restores,
            "max_resident": self.max_resident,
            "evict_seconds": self.evict_seconds,
            "restore_seconds": self.restore_seconds,
            "drifts": self.drifts,
            "shards": self.shards,
            "batch_scoring": self.batch_scoring,
            "batch_groups": self.batch_groups,
            "batched_samples": self.batched_samples,
            "fallback_samples": self.fallback_samples,
            "restore_ms_mean": (
                1000.0 * self.restore_seconds / self.restores if self.restores else 0.0
            ),
        }
        if self.mismatches is not None:
            out["verified_devices"] = self.verified
            out["byte_identical"] = self.byte_identical
            out["mismatches"] = list(self.mismatches)
        if self.supervised:
            out["supervised"] = True
            out["respawns"] = self.respawns
            out["replayed_samples"] = self.replayed_samples
            out["failed_recoveries"] = self.failed_recoveries
            out["rejected_submits"] = self.rejected_submits
            out["recovery_seconds"] = self.recovery_seconds
            out["supervisor_level"] = self.supervisor_level
            out["quarantined"] = list(self.quarantined or [])
            out["skipped_chunks"] = self.skipped_chunks
        if self.chaos_events is not None:
            out["chaos_events"] = list(self.chaos_events)
        return out


def run_fleet_soak(
    n_devices: int = 1000,
    capacity: int = 64,
    *,
    spool_dir,
    seed: int = 0,
    n_test: int = 600,
    feed_chunk: int = 100,
    drift_fraction: float = 0.25,
    pipeline: str = "proposed",
    guard_policy: Optional[str] = None,
    n_shards: Optional[int] = None,
    batch_scoring: bool = False,
    supervise: Optional[SupervisorConfig] = None,
    chaos: Union[int, Sequence[ChaosEvent], None] = None,
    verify: int = 0,
    progress=None,
    manager_hook=None,
) -> SoakReport:
    """Drive the fleet through an interleaved replay; optionally verify.

    ``feed_chunk`` is the *arrival* granularity (how many samples land
    per submit), independent of the pipelines' internal chunking.
    ``n_shards`` partitions the fleet over a
    :class:`~repro.fleet.sharding.ShardedFleetManager` worker pool
    (``None`` = one in-process manager); per-shard capacity stays
    ``capacity``. ``batch_scoring`` buffers arrivals and feeds them via
    :meth:`~repro.fleet.manager.FleetManager.submit_many`, so
    same-signature sessions share stacked scoring GEMMs — records stay
    byte-identical, which is exactly what ``verify`` proves when both
    are on (the verification baseline is a *sequential* standalone run).
    ``verify`` re-runs the first ``verify`` devices
    standalone and byte-compares (0 = skip; it dominates runtime for
    large fleets). ``progress`` is an optional callable invoked with a
    status line. ``manager_hook`` is called once with the live manager
    before the replay starts (the CLI uses it to wire the ``/fleet``
    endpoint to the manager's stats).

    ``supervise`` (a :class:`~repro.fleet.supervisor.SupervisorConfig`,
    sharded fleets only) turns on self-healing: journaled feeds,
    deadline escalation, respawn + byte-identical replay, quarantine,
    and the load-shedding ladder. ``chaos`` (requires ``supervise``)
    injects scheduled faults — an int draws that many seeded
    kill/hang/corrupt events via
    :func:`~repro.fleet.chaos.make_chaos_schedule`, or pass explicit
    :class:`~repro.fleet.chaos.ChaosEvent`\\ s. Chunks rejected by
    quarantine or load shedding are dropped and counted in
    ``skipped_chunks``; quarantined devices are excluded from
    verification (their streams were cut short by design).
    """
    if supervise is not None and not (n_shards is not None and int(n_shards) > 0):
        raise ConfigurationError(
            "supervise= needs a sharded fleet (pass n_shards >= 1)."
        )
    if chaos is not None and supervise is None:
        raise ConfigurationError("chaos= requires supervise= (see repro.fleet.chaos).")
    specs = make_fleet_specs(
        n_devices,
        seed=seed,
        drift_fraction=drift_fraction,
        n_test=n_test,
        pipeline=pipeline,
        guard_policy=guard_policy,
    )
    device_ids = list(specs)
    # Pre-synthesise every device's test stream once: the soak measures
    # the manager's churn, not dataset synthesis.
    streams = {dev: build_experiment(spec).test for dev, spec in specs.items()}
    lengths = [len(streams[dev].X) for dev in device_ids]

    sharded = n_shards is not None and int(n_shards) > 0
    if sharded:
        fm = ShardedFleetManager(
            int(n_shards), capacity=capacity, spool_dir=spool_dir,
            batch_scoring=batch_scoring, supervisor=supervise,
        )
    else:
        fm = FleetManager(
            capacity=capacity, spool_dir=spool_dir, batch_scoring=batch_scoring
        )
    for dev, spec in specs.items():
        fm.add_device(dev, spec)
    if manager_hook is not None:
        manager_hook(fm)

    controller: Optional[ChaosController] = None
    if chaos is not None:
        if isinstance(chaos, int):
            n_chunks = sum(math.ceil(n / feed_chunk) for n in lengths)
            schedule = make_chaos_schedule(
                n_chunks, int(n_shards), seed=seed, n_events=chaos
            )
        else:
            schedule = tuple(chaos)
        controller = ChaosController(schedule, fm, spool_dir=spool_dir)

    # With batch scoring, arrivals are buffered and flushed through
    # submit_many so one flush spans a whole batching window (sharded
    # fleets split each flush across workers, so scale the buffer).
    flush_every = capacity * (int(n_shards) if sharded else 1)
    buffered: list = []

    def flush() -> None:
        if buffered:
            fm.submit_many(buffered)
            buffered.clear()

    t0 = time.perf_counter()
    done = 0
    skipped = 0
    for i, start, stop in interleave_schedule(lengths, feed_chunk, seed=seed):
        dev = device_ids[i]
        stream = streams[dev]
        if controller is not None:
            controller.maybe_inject(done)
        try:
            if batch_scoring:
                buffered.append((dev, stream.X[start:stop], stream.y[start:stop]))
                if len(buffered) >= flush_every:
                    flush()
            else:
                fm.submit(dev, stream.X[start:stop], stream.y[start:stop])
        except (DeviceQuarantinedError, FleetOverloadError):
            # Supervised fleets shed by design: the chunk is dropped and
            # counted, the soak keeps going.
            skipped += 1
        done += 1
        if sharded and done % 256 == 0:
            # Bound the per-shard reply backlog: an OS pipe buffer filled
            # with uncollected replies would wedge worker and parent.
            flush()
            fm.drain()
        if progress is not None and done % 500 == 0:
            if sharded:
                progress(f"  {done} chunks enqueued across {fm.n_shards} shards")
            else:
                progress(
                    f"  {done} chunks, {fm.stats.evictions} evictions, "
                    f"{fm.stats.restores} restores"
                )
    flush()
    per_device = fm.finish_all()
    elapsed = time.perf_counter() - t0
    stats = fm.aggregate_stats() if sharded else fm.stats
    supervisor = fm.supervisor if (sharded and supervise is not None) else None
    quarantined = sorted(supervisor.quarantined) if supervisor is not None else None
    fm.close()

    mismatches: Optional[List[str]] = None
    verified: Optional[int] = None
    if verify:
        mismatches = []
        benched = set(quarantined or ())
        targets = [d for d in device_ids if d not in benched][: int(verify)]
        for dev in targets:
            if not verify_device(specs[dev], per_device[dev]):
                mismatches.append(dev)
        verified = len(targets)

    if supervisor is not None:
        skipped += supervisor.dropped_feeds

    return SoakReport(
        devices=n_devices,
        capacity=capacity,
        samples=stats.samples,
        chunks=stats.chunks,
        elapsed_seconds=elapsed,
        sessions_per_sec=n_devices / elapsed if elapsed > 0 else 0.0,
        samples_per_sec=stats.samples / elapsed if elapsed > 0 else 0.0,
        evictions=stats.evictions,
        restores=stats.restores,
        max_resident=stats.max_resident,
        evict_seconds=stats.evict_seconds,
        restore_seconds=stats.restore_seconds,
        drifts=stats.drifts,
        shards=int(n_shards) if sharded else None,
        batch_scoring=bool(batch_scoring),
        batch_groups=stats.batch_groups,
        batched_samples=stats.batched_samples,
        fallback_samples=stats.fallback_samples,
        verified=verified,
        mismatches=mismatches,
        supervised=supervisor is not None,
        respawns=supervisor.respawns if supervisor else 0,
        replayed_samples=supervisor.replayed_samples if supervisor else 0,
        failed_recoveries=supervisor.failed_recoveries if supervisor else 0,
        rejected_submits=supervisor.rejected_submits if supervisor else 0,
        recovery_seconds=supervisor.recovery_seconds if supervisor else 0.0,
        supervisor_level=int(supervisor.level) if supervisor else 0,
        quarantined=quarantined,
        chaos_events=list(controller.applied) if controller is not None else None,
        skipped_chunks=skipped,
    )
