"""repro.fleet — multi-tenant session hosting for device fleets.

Multiplexes thousands of independent device pipelines through one
process (or a shard pool of them) on top of the engine's
:class:`~repro.engine.session.StreamSession`:

* :class:`FleetManager` — per-device sessions behind an LRU: resident
  memory is bounded by ``capacity``; cold sessions spill to
  :mod:`repro.resilience` checkpoints and restore lazily,
  byte-identically.
* :class:`ShardedFleetManager` — the same fleet partitioned over
  long-lived worker processes via
  :class:`~repro.metrics.parallel.ShardPool`.
* :func:`run_fleet_soak` — the seeded N-device churn harness that
  doubles as the fleet benchmark (``benchmarks/bench_fleet.py``).

See ``docs/fleet.md``.
"""

from .batching import BatchGroup, BatchPlanner, model_signature
from .chaos import ChaosController, ChaosEvent, make_chaos_schedule
from .manager import FleetManager, FleetStats
from .sharding import ShardedFleetManager, shard_of
from .soak import SoakReport, make_fleet_specs, run_fleet_soak, verify_device
from .supervisor import FleetSupervisor, JournalEntry, SupervisorConfig

__all__ = [
    "BatchGroup",
    "BatchPlanner",
    "model_signature",
    "ChaosController",
    "ChaosEvent",
    "make_chaos_schedule",
    "FleetManager",
    "FleetStats",
    "FleetSupervisor",
    "JournalEntry",
    "SupervisorConfig",
    "ShardedFleetManager",
    "shard_of",
    "SoakReport",
    "make_fleet_specs",
    "run_fleet_soak",
    "verify_device",
]
